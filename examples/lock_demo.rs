//! Section 4.3 regression, live: N cores run ticket-lock protected
//! increments through the full SCORPIO machine; the final counter must be
//! exactly cores × iterations.
//!
//! ```text
//! cargo run --release --example lock_demo [k] [iters]
//! ```

use scorpio::{System, SystemConfig};
use scorpio_coherence::LineAddr;
use scorpio_workloads::{CoreProgram, TicketLockProgram};

fn main() {
    let k: u16 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let iters: u64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let cfg = SystemConfig::square(k);
    let cores = cfg.cores() as u64;
    let (ticket, serving, counter) = (0x1_0000u64, 0x1_0040, 0x1_0080);
    let programs: Vec<Box<dyn CoreProgram + Send>> = (0..cores)
        .map(|_| {
            Box::new(TicketLockProgram::new(ticket, serving, counter, iters))
                as Box<dyn CoreProgram + Send>
        })
        .collect();
    let mut sys = System::with_programs(cfg, programs);
    let report = sys.run_to_completion();

    let addr = LineAddr(counter);
    let value = (0..cores as usize)
        .filter(|&t| sys.l2(t).line_state(addr).is_owner())
        .find_map(|t| sys.l2(t).line_value(addr))
        // No cache owns it: memory does. Every MC snoops the full ordered
        // stream, so each store tracks every line — MC 0 is authoritative.
        .or_else(|| Some(sys.mc(0).memory_value(addr)))
        .expect("counter line vanished");
    println!(
        "{} cores x {} iterations under a ticket lock -> counter = {} (expected {})",
        cores,
        iters,
        value,
        cores * iters
    );
    assert_eq!(value, cores * iters, "coherence lost an update!");
    println!(
        "runtime {} cycles, {} ops, {} cache-to-cache transfers, ordering {:.1} cyc avg",
        report.runtime_cycles,
        report.ops_completed,
        report.data_forwards,
        report.ordering_delay.mean()
    );
}
