//! Figure 1 walkthrough: two cores inject coherence requests on a 4×4
//! ordered mesh; every node (including the sources, via loopback) observes
//! them in the identical global order decided by the notification network.
//!
//! ```text
//! cargo run --release --example walkthrough
//! ```

use scorpio_nic::{Nic, NicConfig, NicMode};
use scorpio_noc::{Endpoint, Mesh, MultiNetwork, NocConfig, RouterId, Sid};
use scorpio_notify::{NotifyConfig, NotifyNetwork};
use std::num::NonZeroUsize;

fn main() {
    let mesh = Mesh::square_with_corner_mcs(4);
    let cores = mesh.router_count();
    let one = NonZeroUsize::new(1).expect("non-zero");
    let mut net: MultiNetwork<&'static str> =
        MultiNetwork::new(mesh.clone(), NocConfig::scorpio(), one, 0);
    let mut notify = NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh));
    let mut nics: Vec<Nic<&'static str>> = mesh
        .endpoints()
        .map(|ep| {
            let sid = ep.slot.is_tile().then_some(Sid(ep.router.0));
            Nic::new(ep, sid, NicMode::Ordered, cores, 1, NicConfig::default())
        })
        .collect();

    // T1/T2 (Figure 1): core 11 injects M1 (GETX Addr1), core 1 injects M2
    // (GETS Addr2) shortly after.
    let m1_src = net.endpoint_index(Endpoint::tile(RouterId(11)));
    let m2_src = net.endpoint_index(Endpoint::tile(RouterId(1)));
    println!("T1: core 11 injects M1 (GETX Addr1)");
    println!("T2: core  1 injects M2 (GETS Addr2)");
    let now = net.cycle();
    nics[m1_src]
        .try_send_request("M1(GETX Addr1)", now, &mut net)
        .unwrap();
    nics[m2_src]
        .try_send_request("M2(GETS Addr2)", now, &mut net)
        .unwrap();
    println!(
        "T3: both notifications broadcast at the next {}-cycle window boundary",
        notify.config().window
    );

    let mut logs: Vec<Vec<&'static str>> = vec![Vec::new(); nics.len()];
    for _ in 0..80 {
        let now = net.cycle();
        for (i, nic) in nics.iter_mut().enumerate() {
            nic.tick(now, &mut net, Some(&mut notify));
            while let Some(d) = nic.pop_ordered() {
                if logs[i].is_empty() {
                    println!(
                        "T5: {} receives {} first (SID == ESID {:?})",
                        if i < cores {
                            format!("core {i}")
                        } else {
                            format!("mc {}", i - cores)
                        },
                        d.payload,
                        d.sid
                    );
                }
                logs[i].push(d.payload);
            }
        }
        net.tick();
        net.commit();
        notify.tick();
    }

    let reference = &logs[0];
    assert!(
        logs.iter().all(|l| l == reference),
        "nodes disagreed on the global order!"
    );
    println!(
        "\nAll {} nodes (tiles + MC ports) processed the requests in the same order: {:?}",
        logs.len(),
        reference
    );
    println!("The rotating priority arbiter put core 1's M2 ahead of core 11's M1,");
    println!("matching the paper's walkthrough (priority starts at the lowest SID).");
}
