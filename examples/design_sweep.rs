//! A miniature Figure 8: sweep channel width and GO-REQ VCs on a 4×4
//! SCORPIO system and print normalized runtimes.
//!
//! ```text
//! cargo run --release --example design_sweep
//! ```

use scorpio::{System, SystemConfig};
use scorpio_workloads::{generate, WorkloadParams};

fn run(cfg: SystemConfig, params: &WorkloadParams) -> u64 {
    let traces = generate(params, cfg.cores(), cfg.seed);
    let mut sys = System::with_traces(cfg, traces);
    sys.run_to_completion().runtime_cycles
}

fn main() {
    let params = WorkloadParams::by_name("radix").unwrap().with_ops(120);

    println!("channel-width sweep (radix, 4x4):");
    let base = run(SystemConfig::square(4).with_channel_bytes(16), &params);
    for cw in [8u32, 16, 32] {
        let rt = run(SystemConfig::square(4).with_channel_bytes(cw), &params);
        println!(
            "  CW={cw:>2}B  runtime={rt:>8}  normalized={:.3}",
            rt as f64 / base as f64
        );
    }

    println!("GO-REQ VC sweep (radix, 4x4):");
    for vcs in [2u8, 4, 6] {
        let rt = run(SystemConfig::square(4).with_goreq_vcs(vcs), &params);
        println!(
            "  VCs={vcs}   runtime={rt:>8}  normalized={:.3}",
            rt as f64 / base as f64
        );
    }
}
