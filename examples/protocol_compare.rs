//! Protocol shoot-out: the same workload under SCORPIO, the directory
//! baselines and the unordered-network baselines, on one small mesh.
//!
//! ```text
//! cargo run --release --example protocol_compare [benchmark] [mesh-k]
//! ```

use scorpio::{Protocol, System, SystemConfig};
use scorpio_workloads::{generate, WorkloadParams};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "canneal".into());
    let k: u16 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let params = WorkloadParams::by_name(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"))
        .with_ops(120);
    println!("workload: {bench}, mesh {k}x{k}, {} ops/core\n", 120);
    let protocols = [
        Protocol::Scorpio,
        Protocol::HtDir,
        Protocol::LpdDir,
        Protocol::TokenB,
        Protocol::Inso { expiry_window: 40 },
    ];
    let mut base = None;
    for p in protocols {
        let cfg = SystemConfig::square(k).with_protocol(p);
        let traces = generate(&params, cfg.cores(), cfg.seed);
        let mut sys = System::with_traces(cfg, traces);
        let r = sys.run_to_completion();
        let base_rt = *base.get_or_insert(r.runtime_cycles as f64);
        println!(
            "{}   (normalized runtime {:.3})",
            r.summary(),
            r.runtime_cycles as f64 / base_rt
        );
    }
}
