//! Quickstart: build the 36-core SCORPIO chip configuration, run a
//! SPLASH-2-like workload, and print the headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scorpio::{System, SystemConfig};
use scorpio_workloads::{generate, WorkloadParams};

fn main() {
    // The Table 1 chip: 6×6 mesh, 4 MC ports, GO-REQ/UO-RESP virtual
    // networks, 13-cycle notification windows.
    let cfg = SystemConfig::chip();
    println!(
        "SCORPIO chip: {} cores, {} MC ports, {}-cycle notification window",
        cfg.cores(),
        cfg.mesh.mc_routers().len(),
        cfg.mesh.notification_window()
    );

    let params = WorkloadParams::by_name("barnes").unwrap().with_ops(100);
    let traces = generate(&params, cfg.cores(), cfg.seed);
    let mut sys = System::with_traces(cfg, traces);
    let report = sys.run_to_completion();

    println!("{}", report.summary());
    println!(
        "misses: {} ({} served on-chip by other caches, {} by memory)",
        report.l2_misses,
        report.cache_served.count(),
        report.memory_served.count()
    );
    println!(
        "network: {} packets, mean latency {:.1} cycles, {:.1}% of flits bypassed",
        report.packets_injected,
        report.packet_latency.mean(),
        100.0 * report.bypass_rate()
    );
    println!(
        "notification network: {} windows completed, {} carried announcements",
        report.notify_windows, report.notify_nonempty
    );
}
