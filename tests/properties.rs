//! Property-based tests (proptest) over the reproduction's core
//! invariants: exactly-once broadcast delivery on arbitrary meshes,
//! global-order agreement of notification trackers under arbitrary window
//! streams, and full-system coherence of final values under random
//! write-sharing traces.

use proptest::prelude::*;
use scorpio::{Protocol, System, SystemConfig};
use scorpio_nic::NotificationTracker;
use scorpio_noc::{routing, Endpoint, Mesh, Network, NocConfig, Packet, Port, RouterId, Sid};
use scorpio_notify::NotifyMsg;
use scorpio_workloads::{Trace, TraceOp, TraceRecord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The broadcast tree reaches every tile except the source exactly
    /// once, on any mesh shape (the per-topology generalization lives in
    /// `scorpio_noc::routing::check_broadcast_exactly_once`).
    #[test]
    fn broadcast_tree_exactly_once(cols in 1u16..8, rows in 1u16..8, src_seed in any::<u16>()) {
        let topo: scorpio_noc::Topology = Mesh::new(cols, rows, &[]).into();
        let src = RouterId(src_seed % (cols * rows));
        let deliveries = routing::broadcast_deliveries(&topo, src);
        for r in topo.routers() {
            let got = deliveries[r.index()].contains(Port::Tile);
            prop_assert_eq!(got, r != src, "router {} from {}", r, src);
        }
    }

    /// Unicast XY paths have exactly Manhattan length and end at the
    /// destination, for any pair.
    #[test]
    fn unicast_paths_are_minimal(cols in 1u16..8, rows in 1u16..8, a in any::<u16>(), b in any::<u16>()) {
        let topo: scorpio_noc::Topology = Mesh::new(cols, rows, &[]).into();
        let n = cols * rows;
        let (src, dst) = (RouterId(a % n), RouterId(b % n));
        let path = routing::unicast_path(&topo, src, Endpoint::tile(dst));
        prop_assert_eq!(path.len() as u16 - 1, topo.hops(src, dst));
        prop_assert_eq!(*path.last().unwrap(), dst);
    }

    /// The broadcast exactly-once property holds on wraparound fabrics of
    /// arbitrary size, not just meshes.
    #[test]
    fn broadcast_exactly_once_on_wraparound_fabrics(cols in 2u16..7, rows in 2u16..7, len in 2u16..20) {
        use scorpio_noc::{Ring, Torus};
        routing::check_broadcast_exactly_once(&Torus::new(cols, rows, &[]).into());
        routing::check_broadcast_exactly_once(&Ring::new(len, &[]).into());
    }

    /// Notification trackers fed the same window stream agree on the full
    /// expansion order regardless of when each one drains.
    #[test]
    fn trackers_agree_on_any_window_stream(
        windows in prop::collection::vec(
            prop::collection::vec(0u8..3, 6),
            1..10
        )
    ) {
        let make = || NotificationTracker::new(6, 16);
        let mut eager = make();
        let mut lazy = make();
        let mut eager_order = Vec::new();
        for w in &windows {
            let mut msg = NotifyMsg::new(6, 2);
            for (core, &count) in w.iter().enumerate() {
                msg.set_count(core, count);
            }
            if msg.is_empty() {
                continue;
            }
            eager.push_window(msg.clone());
            lazy.push_window(msg);
            // Eager drains immediately.
            while let Some(sid) = eager.current_esid() {
                eager_order.push(sid.0);
                eager.advance();
            }
        }
        let mut lazy_order = Vec::new();
        while let Some(sid) = lazy.current_esid() {
            lazy_order.push(sid.0);
            lazy.advance();
        }
        prop_assert_eq!(eager_order, lazy_order);
    }

    /// A network full of random single-flit broadcasts always drains, and
    /// every packet is delivered to all other endpoints exactly once.
    #[test]
    fn random_broadcast_batches_drain(seed in any::<u64>(), k in 2u16..5) {
        let mesh = Mesh::new(k, k, &[]);
        let n = (k * k) as u64;
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let mut rng = scorpio_sim::SimRng::seed_from(seed);
        let mut uids = Vec::new();
        for r in 0..n as u16 {
            if rng.chance(0.7) {
                let src = Endpoint::tile(RouterId(r));
                let uid = net
                    .try_inject(src, Packet::request(src, Sid(r), 0, r as u64))
                    .unwrap();
                uids.push(uid);
            }
        }
        for _ in 0..3000 {
            let eps: Vec<Endpoint> = net.mesh().endpoints().collect();
            for ep in eps {
                let slots: Vec<_> = net.eject_heads(ep).map(|(s, _)| s).collect();
                for s in slots {
                    net.eject_take(ep, s);
                }
            }
            net.step();
            if net.is_drained() {
                break;
            }
        }
        prop_assert!(net.is_drained(), "network failed to drain");
        for uid in uids {
            prop_assert_eq!(net.deliveries(uid), n as u32 - 1);
        }
    }

    /// Plane steering is a partition: for any plane count and interleave
    /// granularity, every address maps to exactly one in-range plane,
    /// deterministically, and full stripe rotations divide evenly.
    #[test]
    fn plane_steering_partitions_addresses(planes in 1usize..=16, gran in 0u32..12, addr in any::<u64>()) {
        let steer = scorpio_noc::PlaneSteer::new(
            std::num::NonZeroUsize::new(planes).unwrap(),
            gran,
        );
        let p = steer.plane_of(addr);
        prop_assert!(p < planes, "plane {p} out of range for {planes}");
        prop_assert_eq!(steer.plane_of(addr), p, "steering must be deterministic");
        // The mapping matches the striping spec exactly — every node
        // computing this formula independently lands on the same plane,
        // and the modulo makes the per-stripe partition total + disjoint.
        prop_assert_eq!(p as u64, (addr >> gran) % planes as u64);
        // Addresses within the same stripe share the plane.
        let stripe_base = addr & !((1u64 << gran) - 1);
        prop_assert_eq!(steer.plane_of(stripe_base), p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full-system coherence: after random stores from random cores to a
    /// small line pool, a final load of each line (from a fresh core)
    /// returns the value of the globally last completed store. Runs on
    /// SCORPIO and the TokenB baseline.
    #[test]
    fn final_values_are_coherent(seed in any::<u64>(), tokenb in any::<bool>()) {
        let protocol = if tokenb { Protocol::TokenB } else { Protocol::Scorpio };
        let cfg = SystemConfig::square(2).with_protocol(protocol);
        let mut rng = scorpio_sim::SimRng::seed_from(seed);
        let lines: Vec<u64> = (0..4).map(|i| 0x7_0000 + i * 32).collect();
        // Each core writes an ascending series to random lines; because
        // stores from one core are program-ordered and tagged uniquely,
        // the final value of each line must equal one of the last-issued
        // stores to it — and reading it back from every core must agree.
        let mut traces = vec![Trace::new(); 4];
        for (c, trace) in traces.iter_mut().enumerate() {
            for s in 0..12u64 {
                let addr = lines[rng.gen_range_usize(lines.len())];
                trace.push(TraceRecord {
                    gap: rng.gen_range_u64(4) as u32,
                    op: TraceOp::Store,
                    addr,
                    value: (c as u64) << 32 | s,
                });
            }
        }
        // Afterwards every core reads every line.
        for trace in traces.iter_mut() {
            for &addr in &lines {
                trace.push(TraceRecord { gap: 1, op: TraceOp::Load, addr, value: 0 });
            }
        }
        let mut sys = System::with_traces(cfg, traces);
        let r = sys.run_to_completion();
        prop_assert_eq!(r.ops_completed, 4 * (12 + 4));
        // Single-owner invariant at quiescence: each line has at most one
        // owner among the L2s.
        for &addr in &lines {
            let line = scorpio_coherence::LineAddr(addr);
            let owners = (0..4)
                .filter(|&t| sys.l2(t).line_state(line).is_owner())
                .count();
            prop_assert!(owners <= 1, "line {addr:#x} has {owners} owners");
        }
    }
}
