//! Full-system integration tests: every protocol variant runs synthetic
//! workloads to completion, and the §4.3-style regressions (locks,
//! barriers) validate end-to-end coherence through L1s, L2s, both networks
//! and the memory controllers.

use scorpio::{Protocol, System, SystemConfig};
use scorpio_workloads::{
    generate, BarrierProgram, CoreProgram, TicketLockProgram, Trace, TraceOp, TraceRecord,
    WorkloadParams,
};

fn small_workload(cfg: &SystemConfig, ops: usize) -> Vec<Trace> {
    let params = WorkloadParams::by_name("fluidanimate")
        .unwrap()
        .with_ops(ops);
    generate(&params, cfg.cores(), cfg.seed)
}

#[test]
fn scorpio_system_completes_synthetic_workload() {
    let cfg = SystemConfig::square(4);
    let traces = small_workload(&cfg, 60);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 16 * 60);
    assert!(r.runtime_cycles > 0);
    assert!(r.l2_misses > 0, "workload never exercised coherence");
    assert!(r.data_forwards > 0, "no cache-to-cache transfers");
    assert!(r.notify_nonempty > 0, "notification network unused");
    assert!(r.bypass_rate() > 0.1, "lookahead bypassing inert");
}

#[test]
fn tokenb_and_inso_complete_the_same_workload() {
    for protocol in [Protocol::TokenB, Protocol::Inso { expiry_window: 40 }] {
        let cfg = SystemConfig::square(3).with_protocol(protocol);
        let traces = small_workload(&cfg, 40);
        let mut sys = System::with_traces(cfg, traces);
        let r = sys.run_to_completion();
        assert_eq!(r.ops_completed, 9 * 40, "{}", protocol.name());
        if let Protocol::Inso { .. } = protocol {
            assert!(r.expiry_messages > 0, "INSO never expired a slot");
        }
    }
}

#[test]
fn directory_baselines_complete_and_pay_indirection() {
    let mut runtimes = Vec::new();
    for protocol in [Protocol::Scorpio, Protocol::HtDir, Protocol::LpdDir] {
        let cfg = SystemConfig::square(3).with_protocol(protocol);
        let traces = small_workload(&cfg, 50);
        let mut sys = System::with_traces(cfg, traces);
        let r = sys.run_to_completion();
        assert_eq!(r.ops_completed, 9 * 50, "{}", protocol.name());
        if protocol.uses_directory() {
            assert!(r.dir_accesses > 0, "directory never consulted");
        }
        runtimes.push((
            protocol.name(),
            r.runtime_cycles,
            r.l2_service_latency.mean(),
        ));
    }
    // The paper's headline: SCORPIO beats both directory baselines.
    let scorpio = runtimes[0].1 as f64;
    for (name, rt, _) in &runtimes[1..] {
        assert!(
            (*rt as f64) > scorpio * 0.95,
            "{name} ({rt}) should not beat SCORPIO ({scorpio}) clearly"
        );
    }
}

#[test]
fn multi_plane_systems_complete_on_every_fabric() {
    // The plane subsystem end-to-end: 2 and 4 address-interleaved main
    // networks under the full SCORPIO stack (per-plane notification
    // words, per-plane ESID streams, steered data responses), across
    // delivery fabrics. Completion + exact op counts means no plane ever
    // wedged and no request was double- or un-delivered.
    for planes in [2usize, 4] {
        for cfg in [
            SystemConfig::square(4).with_planes(planes),
            SystemConfig::torus(4).with_planes(planes),
            SystemConfig::ring(16, 4).with_planes(planes),
        ] {
            let label = cfg.label();
            let traces = small_workload(&cfg, 40);
            let mut sys = System::with_traces(cfg, traces);
            let r = sys.run_to_completion();
            assert_eq!(r.ops_completed, 16 * 40, "{label}");
            assert!(r.l2_misses > 0, "{label} never exercised coherence");
            assert!(r.notify_nonempty > 0, "{label} notification unused");
        }
    }
}

#[test]
fn multi_plane_baselines_complete_too() {
    // Planes compose with every ordering protocol: the baselines reorder
    // by slot value, so cross-plane delivery skew must not matter.
    for protocol in [
        Protocol::TokenB,
        Protocol::Inso { expiry_window: 40 },
        Protocol::HtDir,
    ] {
        let cfg = SystemConfig::square(3)
            .with_planes(2)
            .with_protocol(protocol);
        let traces = small_workload(&cfg, 30);
        let mut sys = System::with_traces(cfg, traces);
        let r = sys.run_to_completion();
        assert_eq!(r.ops_completed, 9 * 30, "{}", protocol.name());
    }
}

#[test]
fn ticket_lock_counts_exactly_on_four_planes() {
    // The §4.3 lock regression on a 4-plane network: the ticket, serving
    // and counter lines stripe onto different planes, so lock acquisition
    // order and the protected increments cross plane boundaries — per-
    // address order must still be airtight.
    let cfg = SystemConfig::square(3).with_planes(4);
    let cores = cfg.cores() as u64;
    let iters = 3u64;
    let programs: Vec<Box<dyn CoreProgram + Send>> = (0..cores)
        .map(|_| {
            Box::new(TicketLockProgram::new(0x2_0000, 0x2_0040, 0x2_0080, iters))
                as Box<dyn CoreProgram + Send>
        })
        .collect();
    let mut sys = System::with_programs(cfg, programs);
    let _ = sys.run_to_completion();
    assert_eq!(sys.cores_done(), cores as usize, "a core never finished");
    let addr = scorpio_coherence::LineAddr(0x2_0080);
    let mut value = None;
    for t in 0..cores as usize {
        if let Some(v) = sys.l2(t).line_value(addr) {
            if sys.l2(t).line_state(addr).is_owner() {
                value = Some(v);
            }
        }
    }
    let value = value.or_else(|| {
        (0..4).find_map(|m| {
            let mc = sys.mc(m);
            mc.owner(addr)
                .eq(&scorpio_coherence::Owner::Memory)
                .then(|| mc.memory_value(addr))
        })
    });
    assert_eq!(
        value,
        Some(cores * iters),
        "lock-protected counter lost increments across planes"
    );
}

#[test]
fn ticket_lock_counts_exactly_on_scorpio() {
    // The paper's §4.3 regression: lock-protected increments through the
    // full machine. Any coherence bug (lost invalidation, stale L1, broken
    // ordering) makes the final count wrong or wedges the run.
    let cfg = SystemConfig::square(3);
    let cores = cfg.cores() as u64;
    let iters = 3u64;
    let programs: Vec<Box<dyn CoreProgram + Send>> = (0..cores)
        .map(|_| {
            Box::new(TicketLockProgram::new(0x1_0000, 0x1_0040, 0x1_0080, iters))
                as Box<dyn CoreProgram + Send>
        })
        .collect();
    let mut sys = System::with_programs(cfg, programs);
    let r = sys.run_to_completion();
    assert_eq!(sys.cores_done(), cores as usize, "a core never finished");
    // Verify the final counter via the L2s' coherent state: find the owner.
    let addr = scorpio_coherence::LineAddr(0x1_0080);
    let mut value = None;
    for t in 0..cores as usize {
        if let Some(v) = sys.l2(t).line_value(addr) {
            if sys.l2(t).line_state(addr).is_owner() {
                value = Some(v);
            }
        }
    }
    let value = value
        .or_else(|| {
            // Written back to memory: ask the responsible controller.
            (0..4).find_map(|m| {
                let mc = sys.mc(m);
                mc.owner(addr)
                    .eq(&scorpio_coherence::Owner::Memory)
                    .then(|| mc.memory_value(addr))
            })
        })
        .expect("counter line vanished");
    assert_eq!(value, cores * iters, "lost updates under the lock");
    assert!(r.ops_completed > cores * iters * 4);
}

#[test]
fn barrier_rounds_complete_on_scorpio() {
    let cfg = SystemConfig::square(3);
    let cores = cfg.cores() as u64;
    let programs: Vec<Box<dyn CoreProgram + Send>> = (0..cores)
        .map(|_| Box::new(BarrierProgram::new(0x2_0000, cores, 2)) as Box<dyn CoreProgram + Send>)
        .collect();
    let mut sys = System::with_programs(cfg, programs);
    sys.run_to_completion();
    assert_eq!(sys.cores_done(), cores as usize, "barrier wedged");
}

#[test]
fn ticket_lock_counts_exactly_on_baselines() {
    for protocol in [Protocol::TokenB, Protocol::HtDir] {
        let cfg = SystemConfig::square(2).with_protocol(protocol);
        let cores = cfg.cores() as u64;
        let iters = 2u64;
        let programs: Vec<Box<dyn CoreProgram + Send>> = (0..cores)
            .map(|_| {
                Box::new(TicketLockProgram::new(0x3_0000, 0x3_0040, 0x3_0080, iters))
                    as Box<dyn CoreProgram + Send>
            })
            .collect();
        let mut sys = System::with_programs(cfg, programs);
        sys.run_to_completion();
        assert_eq!(sys.cores_done(), cores as usize, "{}", protocol.name());
        let addr = scorpio_coherence::LineAddr(0x3_0080);
        let value = (0..cores as usize)
            .filter(|&t| sys.l2(t).line_state(addr).is_owner())
            .find_map(|t| sys.l2(t).line_value(addr))
            .or_else(|| {
                (0..4).find_map(|m| {
                    (sys.mc(m).owner(addr) == scorpio_coherence::Owner::Memory)
                        .then(|| sys.mc(m).memory_value(addr))
                })
            })
            .expect("counter line vanished");
        assert_eq!(value, cores * iters, "{}: lost updates", protocol.name());
    }
}

#[test]
fn single_writer_multiple_reader_values_propagate() {
    // Core 0 writes generations into a line; readers poll until they see
    // the final generation. Exercises O_D sharing chains.
    struct Writer {
        addr: u64,
        gens: u64,
        sent: u64,
    }
    impl CoreProgram for Writer {
        fn next(&mut self, _last: Option<u64>) -> Option<scorpio_workloads::ProgOp> {
            if self.sent == self.gens {
                return None;
            }
            self.sent += 1;
            Some(scorpio_workloads::ProgOp {
                op: TraceOp::Store,
                addr: self.addr,
                value: self.sent,
            })
        }
    }
    struct Reader {
        addr: u64,
        target: u64,
        started: bool,
    }
    impl CoreProgram for Reader {
        fn next(&mut self, last: Option<u64>) -> Option<scorpio_workloads::ProgOp> {
            if self.started && last == Some(self.target) {
                return None;
            }
            self.started = true;
            Some(scorpio_workloads::ProgOp {
                op: TraceOp::Load,
                addr: self.addr,
                value: 0,
            })
        }
    }
    let cfg = SystemConfig::square(2);
    let addr = 0x5_0000u64;
    let gens = 5u64;
    let programs: Vec<Box<dyn CoreProgram + Send>> = vec![
        Box::new(Writer {
            addr,
            gens,
            sent: 0,
        }),
        Box::new(Reader {
            addr,
            target: gens,
            started: false,
        }),
        Box::new(Reader {
            addr,
            target: gens,
            started: false,
        }),
        Box::new(Reader {
            addr,
            target: gens,
            started: false,
        }),
    ];
    let mut sys = System::with_programs(cfg, programs);
    sys.run_to_completion();
    assert_eq!(sys.cores_done(), 4, "a reader never saw the final value");
}

#[test]
fn trace_record_gaps_are_respected() {
    // A single core with large gaps: runtime must reflect them.
    let cfg = SystemConfig::square(2);
    let mut traces = vec![Trace::new(); 4];
    for k in 0..10 {
        traces[0].push(TraceRecord {
            gap: 100,
            op: TraceOp::Load,
            addr: 0x9000 + k * 32,
            value: 0,
        });
    }
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert!(
        r.runtime_cycles >= 1000,
        "gaps ignored: runtime {}",
        r.runtime_cycles
    );
}

#[test]
fn scorpio_completes_on_a_concentrated_mesh() {
    // 16 cores as a 4x2 router grid x 2 tiles per router: same core count
    // as `square(4)` with the diameter cut from 6 to 4. The full stack —
    // per-slot broadcast delivery, sibling-tile forwarding, tile-indexed
    // SIDs and notification lanes — must carry the ordered protocol.
    let cfg = SystemConfig::cmesh(4, 2, 2);
    assert_eq!(cfg.cores(), 16);
    let traces = small_workload(&cfg, 60);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 16 * 60);
    assert!(r.l2_misses > 0, "workload never exercised coherence");
    assert!(r.data_forwards > 0, "no cache-to-cache transfers");
    assert!(r.notify_nonempty > 0, "notification network unused");
}

#[test]
fn every_protocol_completes_on_cmesh_and_composes_with_planes() {
    for protocol in [
        Protocol::Scorpio,
        Protocol::TokenB,
        Protocol::Inso { expiry_window: 40 },
        Protocol::LpdDir,
        Protocol::HtDir,
    ] {
        let cfg = SystemConfig::cmesh(2, 2, 4).with_protocol(protocol);
        let traces = small_workload(&cfg, 40);
        let mut sys = System::with_traces(cfg, traces);
        let r = sys.run_to_completion();
        assert_eq!(r.ops_completed, 16 * 40, "{}", protocol.name());
    }
    // The fabric axis composes with the plane axis: two address-interleaved
    // CMesh planes behind one delivery interface.
    let cfg = SystemConfig::cmesh(4, 2, 2).with_planes(2);
    let traces = small_workload(&cfg, 40);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 16 * 40);
}

#[test]
fn single_tile_cmesh_reports_match_the_plain_mesh() {
    // Concentration 1 is the mesh: same router grid, same port set, same
    // tables, same windows — the whole report must be byte-identical.
    let mesh_cfg = SystemConfig::square(4);
    let cmesh_cfg = SystemConfig::cmesh(4, 4, 1);
    let traces = small_workload(&mesh_cfg, 50);
    let mut mesh_sys = System::with_traces(mesh_cfg, traces.clone());
    let mut cmesh_sys = System::with_traces(cmesh_cfg, traces);
    assert_eq!(
        mesh_sys.run_to_completion().to_json(),
        cmesh_sys.run_to_completion().to_json(),
        "c=1 CMesh diverged from the mesh"
    );
}

#[test]
fn concentration_cuts_ordered_broadcast_latency_at_matched_core_count() {
    // The CMesh acceptance bar: 16 cores at concentration 1 (4x4 routers,
    // diameter 6), 2 (4x2, diameter 4) and 4 (2x2, diameter 2) on an
    // uncongested workload. Fewer hops must show up as strictly lower
    // average packet latency at c=2 and c=4 than at c=1.
    let run = |cols: u16, rows: u16, c: u8| -> f64 {
        let cfg = SystemConfig::cmesh(cols, rows, c);
        assert_eq!(cfg.cores(), 16);
        let traces = small_workload(&cfg, 60);
        let mut sys = System::with_traces(cfg, traces);
        sys.run_to_completion().packet_latency.mean()
    };
    let c1 = run(4, 4, 1);
    let c2 = run(4, 2, 2);
    let c4 = run(2, 2, 4);
    assert!(
        c2 < c1,
        "c=2 packet latency {c2:.1} not below c=1's {c1:.1}"
    );
    assert!(
        c4 < c1,
        "c=4 packet latency {c4:.1} not below c=1's {c1:.1}"
    );
}

#[test]
fn nonpipelined_uncore_is_slower() {
    let mk = |pl: bool| {
        let cfg = SystemConfig::square(3).with_pipelined_uncore(pl);
        let traces = small_workload(&cfg, 40);
        let mut sys = System::with_traces(cfg, traces);
        sys.run_to_completion().runtime_cycles
    };
    let pipelined = mk(true);
    let nonpipelined = mk(false);
    assert!(
        nonpipelined > pipelined,
        "non-pipelined ({nonpipelined}) should exceed pipelined ({pipelined})"
    );
}
