//! Failure-injection and pathological-configuration tests: the system must
//! stay correct (never deadlock, never lose an update) when every buffer
//! is squeezed to its minimum, when notification pressure forces stop-bit
//! storms, and when the uncore runs at its slowest settings.

use scorpio::{Protocol, System, SystemConfig};
use scorpio_workloads::{generate, CoreProgram, TicketLockProgram, WorkloadParams};

fn shrunk(mut cfg: SystemConfig) -> SystemConfig {
    // Minimum legal buffering everywhere.
    cfg.nic.tracker_depth = 2;
    cfg.nic.ordered_queue_depth = 1;
    cfg.nic.packet_queue_depth = 1;
    cfg.nic.max_pending_notifications = 1;
    cfg.noc.inject_queue_depth = 1;
    cfg.l2.queue_depth = 1;
    cfg.l2.fid_capacity = 1;
    cfg.l2.wb_entries = 1;
    cfg
}

#[test]
fn minimum_buffering_still_completes() {
    let cfg = shrunk(SystemConfig::square(3));
    let params = WorkloadParams::by_name("canneal").unwrap().with_ops(40);
    let traces = generate(&params, cfg.cores(), 3);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 9 * 40);
    // The squeeze must actually have produced backpressure events.
    assert!(
        r.stop_windows > 0 || r.l2_misses > 0,
        "squeezed run exercised nothing"
    );
}

#[test]
fn minimum_buffering_lock_is_exact() {
    let cfg = shrunk(SystemConfig::square(2));
    let cores = cfg.cores() as u64;
    let programs: Vec<Box<dyn CoreProgram + Send>> = (0..cores)
        .map(|_| {
            Box::new(TicketLockProgram::new(0x9_0000, 0x9_0040, 0x9_0080, 3))
                as Box<dyn CoreProgram + Send>
        })
        .collect();
    let mut sys = System::with_programs(cfg, programs);
    sys.run_to_completion();
    let addr = scorpio_coherence::LineAddr(0x9_0080);
    let value = (0..cores as usize)
        .filter(|&t| sys.l2(t).line_state(addr).is_owner())
        .find_map(|t| sys.l2(t).line_value(addr))
        // No cache owns it: memory does. Every MC snoops the full ordered
        // stream, so each store tracks every line — MC 0 is authoritative.
        .or_else(|| Some(sys.mc(0).memory_value(addr)))
        .expect("counter vanished");
    assert_eq!(value, cores * 3);
}

#[test]
fn tiny_l2_forces_writeback_storms() {
    // A 2 KB L2 on a shared working set: constant capacity evictions and
    // writeback/GETX races, all of which must be squashed or completed
    // consistently.
    let mut cfg = SystemConfig::square(3);
    cfg.l2.capacity_bytes = 2 * 1024;
    let params = WorkloadParams::by_name("radix").unwrap().with_ops(80);
    let traces = generate(&params, cfg.cores(), 11);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 9 * 80);
    assert!(
        r.writebacks > 10,
        "tiny L2 produced only {} writebacks",
        r.writebacks
    );
}

#[test]
fn slowest_uncore_configuration_completes() {
    let mut cfg = SystemConfig::square(3).with_pipelined_uncore(false);
    cfg.l2.latency = 20;
    cfg.nic.latency = 6;
    let params = WorkloadParams::by_name("water-nsq").unwrap().with_ops(30);
    let traces = generate(&params, cfg.cores(), 5);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 9 * 30);
}

#[test]
fn single_vc_network_is_live() {
    // One regular GO-REQ VC (+rVC) and one UO-RESP VC: the rVC chain is
    // the only thing standing between this and deadlock.
    let mut cfg = SystemConfig::square(3);
    cfg.noc.vnets[0].vcs = 1;
    cfg.noc.vnets[1].vcs = 1;
    let params = WorkloadParams::by_name("fmm").unwrap().with_ops(40);
    let traces = generate(&params, cfg.cores(), 9);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 9 * 40);
}

#[test]
fn region_tracker_disabled_still_coherent() {
    let mut cfg = SystemConfig::square(3);
    cfg.l2.region_entries = None;
    let params = WorkloadParams::by_name("lu").unwrap().with_ops(40);
    let traces = generate(&params, cfg.cores(), 13);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 9 * 40);
    assert_eq!(r.snoops_filtered, 0, "filter ran while disabled");
}

#[test]
fn inso_with_hostile_expiry_window_completes() {
    // A 200-cycle expiry window (well past the paper's sweep) maximises
    // ordering stalls; the system must still finish.
    let cfg = SystemConfig::square(3).with_protocol(Protocol::Inso { expiry_window: 200 });
    let params = WorkloadParams::by_name("swaptions").unwrap().with_ops(30);
    let traces = generate(&params, cfg.cores(), 17);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 9 * 30);
}

#[test]
fn notification_bits_and_outstanding_sweep_is_live() {
    for (bits, outstanding) in [(1u8, 2usize), (2, 3), (3, 4)] {
        let cfg = SystemConfig::square(3)
            .with_notification_bits(bits)
            .with_outstanding(outstanding);
        let params = WorkloadParams::by_name("barnes").unwrap().with_ops(40);
        let traces = generate(&params, cfg.cores(), 19);
        let mut sys = System::with_traces(cfg, traces);
        let r = sys.run_to_completion();
        assert_eq!(
            r.ops_completed,
            9 * 40,
            "bits={bits} outstanding={outstanding}"
        );
    }
}

#[test]
fn rectangular_mesh_system_works() {
    use scorpio_noc::{Mesh, RouterId};
    // A 6×2 mesh with MCs on two corners: exercises asymmetric broadcast
    // trees and window sizing.
    let mesh = Mesh::new(6, 2, &[RouterId(0), RouterId(11)]);
    let cfg = SystemConfig::with_mesh(mesh);
    let params = WorkloadParams::by_name("fft").unwrap().with_ops(40);
    let traces = generate(&params, cfg.cores(), 23);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 12 * 40);
}
