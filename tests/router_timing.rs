//! Router-timing regression anchors: the paper's pipeline claims as exact
//! cycle counts at zero load. These pin the timing model — any change to
//! stage structure, lookahead handling or link delays shows up here first.
//!
//! Timing model under test (DESIGN.md §4): non-bypassed hop = BW/SA-I →
//! SA-O/VS → ST (+1 link) = 4 cycles; bypassed hop = ST (+1 link) = 2
//! cycles; lookaheads processed one cycle before their flit arrives.

use scorpio_noc::{Endpoint, Mesh, Network, NocConfig, Packet, RouterId, Sid, VnetId};

/// Runs until the single injected packet's tail is consumed at `dst`,
/// returning the consumption cycle.
fn delivery_cycle(mut net: Network<u64>, dst: Endpoint) -> u64 {
    for _ in 0..200 {
        let slots: Vec<_> = net.eject_heads(dst).map(|(s, _)| s).collect();
        let mut done = false;
        for s in slots {
            if let Some(f) = net.eject_take(dst, s) {
                if f.is_tail() {
                    done = true;
                }
            }
        }
        if done {
            return net.cycle().as_u64();
        }
        net.step();
    }
    panic!("packet never arrived");
}

fn single_flit_latency(hops: u16, bypass: bool) -> u64 {
    // A 1×N line mesh: hops east from router 0.
    let mesh = Mesh::new(hops + 1, 1, &[]);
    let mut cfg = NocConfig::scorpio();
    cfg.bypass = bypass;
    cfg.track_deliveries = false;
    let mut net: Network<u64> = Network::new(mesh, cfg);
    let src = Endpoint::tile(RouterId(0));
    let dst = Endpoint::tile(RouterId(hops));
    net.try_inject(src, Packet::response(src, dst, 1, 7))
        .unwrap();
    delivery_cycle(net, dst)
}

#[test]
fn bypassed_hop_adds_two_cycles() {
    // At zero load every lookahead wins: each extra hop costs exactly
    // ST + link = 2 cycles.
    let l1 = single_flit_latency(1, true);
    let l2 = single_flit_latency(2, true);
    let l4 = single_flit_latency(4, true);
    assert_eq!(l2 - l1, 2, "hop 1→2: {l1} → {l2}");
    assert_eq!(l4 - l2, 4, "hop 2→4: {l2} → {l4}");
}

#[test]
fn buffered_hop_adds_four_cycles() {
    // With bypassing disabled every hop pays the full three-stage router
    // plus the link.
    let l1 = single_flit_latency(1, false);
    let l2 = single_flit_latency(2, false);
    let l4 = single_flit_latency(4, false);
    assert_eq!(l2 - l1, 4, "hop 1→2: {l1} → {l2}");
    assert_eq!(l4 - l2, 8, "hop 2→4: {l2} → {l4}");
}

#[test]
fn bypass_saves_two_cycles_per_router() {
    // An N-hop path traverses N+1 routers (the source router included),
    // each saving BW/SA-I + SA-O/VS = 2 cycles when bypassed.
    for hops in [1u16, 3, 5] {
        let fast = single_flit_latency(hops, true);
        let slow = single_flit_latency(hops, false);
        assert_eq!(
            slow - fast,
            2 * (hops as u64 + 1),
            "bypass saving at {hops} hops ({fast} vs {slow})"
        );
    }
}

#[test]
fn multi_flit_tail_trails_head_by_flit_count() {
    // Cut-through: at zero load the tail lands len-1 cycles after the head
    // would as a single flit (one flit per cycle on the link).
    let mesh = Mesh::new(4, 1, &[]);
    let mut cfg = NocConfig::scorpio();
    cfg.track_deliveries = false;
    let single = {
        let mut net: Network<u64> = Network::new(mesh.clone(), cfg.clone());
        let src = Endpoint::tile(RouterId(0));
        let dst = Endpoint::tile(RouterId(3));
        net.try_inject(src, Packet::response(src, dst, 1, 7))
            .unwrap();
        delivery_cycle(net, dst)
    };
    let triple = {
        let mut net: Network<u64> = Network::new(mesh, cfg);
        let src = Endpoint::tile(RouterId(0));
        let dst = Endpoint::tile(RouterId(3));
        net.try_inject(src, Packet::response(src, dst, 3, 7))
            .unwrap();
        delivery_cycle(net, dst)
    };
    // Multi-flit packets take the buffered path (no lookahead), so compare
    // against the buffered single-flit baseline plus 2 serialization slots.
    let single_buffered = {
        let mesh = Mesh::new(4, 1, &[]);
        let mut cfg = NocConfig::scorpio();
        cfg.bypass = false;
        cfg.track_deliveries = false;
        let mut net: Network<u64> = Network::new(mesh, cfg);
        let src = Endpoint::tile(RouterId(0));
        let dst = Endpoint::tile(RouterId(3));
        net.try_inject(src, Packet::response(src, dst, 1, 7))
            .unwrap();
        delivery_cycle(net, dst)
    };
    assert!(single < triple, "single {single} vs triple {triple}");
    assert_eq!(
        triple,
        single_buffered + 2,
        "tail should trail the buffered head by exactly 2 flit slots"
    );
}

#[test]
fn broadcast_farthest_copy_matches_unicast_distance() {
    // The XY broadcast tree delivers the farthest copy no later than a
    // unicast over the same distance plus fork-contention slack.
    let mesh = Mesh::new(4, 4, &[]);
    let mut cfg = NocConfig::scorpio();
    cfg.track_deliveries = false;
    let mut net: Network<u64> = Network::new(mesh, cfg);
    let src = Endpoint::tile(RouterId(0));
    let far = Endpoint::tile(RouterId(15));
    net.try_inject(src, Packet::request(src, Sid(0), 0, 7))
        .unwrap();
    let bcast = delivery_cycle(net, far);
    let uni = single_flit_latency(6, true) /* 6 hops on a line */;
    // Same Manhattan distance (6 hops): the broadcast copy pays at most a
    // few cycles of fork arbitration over the unicast.
    assert!(
        bcast <= uni + 8,
        "broadcast far-copy {bcast} vs unicast {uni}"
    );
}

#[test]
fn goreq_vnet_uses_separate_buffers_from_uoresp() {
    // Saturate UO-RESP with data packets; a GO-REQ broadcast must still
    // make progress (virtual-network isolation).
    let mesh = Mesh::new(4, 1, &[]);
    let mut cfg = NocConfig::scorpio();
    cfg.vnets[0].ordered = false;
    cfg.track_deliveries = false;
    let mut net: Network<u64> = Network::new(mesh, cfg);
    let src = Endpoint::tile(RouterId(0));
    let dst = Endpoint::tile(RouterId(3));
    for k in 0..6 {
        let _ = net.try_inject(src, Packet::response(src, dst, 3, k));
    }
    net.try_inject(src, Packet::broadcast_unordered(VnetId(0), src, 99))
        .unwrap();
    // Consume only GO-REQ flits; leave UO-RESP parked to hold its buffers.
    let mut got_broadcast_at = None;
    for _ in 0..120 {
        let slots: Vec<_> = net
            .eject_heads(dst)
            .filter(|(s, _)| s.vnet == VnetId(0))
            .map(|(s, _)| s)
            .collect();
        for s in slots {
            net.eject_take(dst, s);
            got_broadcast_at = Some(net.cycle().as_u64());
        }
        if got_broadcast_at.is_some() {
            break;
        }
        net.step();
    }
    assert!(
        got_broadcast_at.is_some(),
        "GO-REQ blocked behind parked UO-RESP traffic"
    );
}
