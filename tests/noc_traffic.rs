//! Network-level integration tests at the workspace root: latency/
//! throughput sanity of the main network under synthetic traffic patterns
//! (the NoC-only methodology of the paper's Section 5.2 exploration).

use scorpio_noc::{data_packet_flits, Endpoint, Mesh, Network, NocConfig, Packet, RouterId};
use scorpio_sim::SimRng;

fn drain_step(net: &mut Network<u64>) {
    let eps: Vec<Endpoint> = net.mesh().endpoints().collect();
    for ep in eps {
        let slots: Vec<_> = net.eject_heads(ep).map(|(s, _)| s).collect();
        for s in slots {
            net.eject_take(ep, s);
        }
    }
    net.step();
}

#[test]
fn uniform_random_unicast_latency_is_stable_at_low_load() {
    let mesh = Mesh::new(6, 6, &[]);
    let mut cfg = NocConfig::scorpio();
    cfg.track_deliveries = false;
    let mut net: Network<u64> = Network::new(mesh, cfg);
    let mut rng = SimRng::seed_from(99);
    // ~2% injection rate of 3-flit data packets for 2000 cycles.
    for cycle in 0..2000u64 {
        for r in 0..36u16 {
            if cycle < 1500 && rng.chance(0.02) {
                let src = Endpoint::tile(RouterId(r));
                let mut dst = r;
                while dst == r {
                    dst = rng.gen_range_u64(36) as u16;
                }
                let _ = net.try_inject(
                    src,
                    Packet::response(src, Endpoint::tile(RouterId(dst)), 3, cycle),
                );
            }
        }
        drain_step(&mut net);
    }
    for _ in 0..2000 {
        drain_step(&mut net);
        if net.is_drained() {
            break;
        }
    }
    assert!(net.is_drained(), "uniform traffic failed to drain");
    let s = net.stats();
    assert!(s.delivered_packets.get() > 500);
    let mean = s.packet_latency.mean();
    // Zero-load 6x6 average ~ 10 hops worst case; low load must stay well
    // under 60 cycles mean.
    assert!(mean < 60.0, "low-load mean latency {mean} too high");
}

#[test]
fn broadcast_throughput_respects_mesh_bound() {
    // The theoretical broadcast throughput of a k×k mesh is 1/k² flits per
    // node per cycle (Section 5.3). Offer more than that and the network
    // must backpressure rather than wedge or drop.
    let mesh = Mesh::new(4, 4, &[]);
    let mut cfg = NocConfig::scorpio();
    cfg.vnets[0].ordered = false; // pure broadcast traffic, no ESIDs
    cfg.track_deliveries = false;
    let mut net: Network<u64> = Network::new(mesh, cfg);
    let mut injected = 0u64;
    let warm = 3000u64;
    for cycle in 0..warm {
        for r in 0..16u16 {
            let src = Endpoint::tile(RouterId(r));
            let pkt = Packet::broadcast_unordered(scorpio_noc::VnetId(0), src, cycle);
            if net.try_inject(src, pkt).is_ok() {
                injected += 1;
            }
        }
        drain_step(&mut net);
    }
    for _ in 0..4000 {
        drain_step(&mut net);
        if net.is_drained() {
            break;
        }
    }
    assert!(net.is_drained(), "broadcast saturation wedged the network");
    let s = net.stats();
    // Every injected broadcast reached all 15 other tiles.
    assert_eq!(s.delivered_packets.get(), injected * 15);
    // Accepted rate is bounded by ~1/k² per node per cycle (plus modest
    // slack for warm-up buffering).
    let per_node_per_cycle = injected as f64 / (16.0 * warm as f64);
    assert!(
        per_node_per_cycle < 1.5 / 16.0,
        "accepted broadcast rate {per_node_per_cycle} exceeds the topology bound"
    );
}

#[test]
fn channel_width_changes_data_packet_length() {
    for (cw, expect) in [(8u32, 5u8), (16, 3), (32, 2)] {
        assert_eq!(data_packet_flits(cw, 32), expect);
        let mesh = Mesh::new(3, 3, &[]);
        let mut cfg = NocConfig::scorpio();
        cfg.channel_bytes = cw;
        let mut net: Network<u64> = Network::new(mesh, cfg.clone());
        let src = Endpoint::tile(RouterId(0));
        let dst = Endpoint::tile(RouterId(8));
        net.try_inject(src, Packet::response(src, dst, cfg.data_flits(), 1))
            .unwrap();
        let mut flits = 0;
        for _ in 0..200 {
            let slots: Vec<_> = net.eject_heads(dst).map(|(s, _)| s).collect();
            for s in slots {
                net.eject_take(dst, s);
                flits += 1;
            }
            net.step();
            if net.is_drained() {
                break;
            }
        }
        assert_eq!(flits, expect as u32, "CW={cw}");
    }
}

#[test]
fn wider_goreq_helps_under_broadcast_pressure() {
    // More GO-REQ VCs should never hurt broadcast drain time.
    let run = |vcs: u8| -> u64 {
        let mesh = Mesh::new(4, 4, &[]);
        let mut cfg = NocConfig::scorpio();
        cfg.vnets[0].vcs = vcs;
        cfg.vnets[0].ordered = false;
        cfg.track_deliveries = false;
        let mut net: Network<u64> = Network::new(mesh, cfg);
        for r in 0..16u16 {
            let src = Endpoint::tile(RouterId(r));
            for _ in 0..4 {
                let _ = net.try_inject(
                    src,
                    Packet::broadcast_unordered(scorpio_noc::VnetId(0), src, 0),
                );
            }
        }
        let mut cycles = 0;
        for _ in 0..20_000 {
            drain_step(&mut net);
            cycles += 1;
            if net.is_drained() {
                break;
            }
        }
        assert!(net.is_drained(), "vcs={vcs} wedged");
        cycles
    };
    let two = run(2);
    let four = run(4);
    assert!(
        four <= two,
        "4 VCs ({four} cycles) should not be slower than 2 VCs ({two})"
    );
}
