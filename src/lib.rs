//! Workspace facade for the SCORPIO reproduction.
//!
//! This root crate exists to host the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`); the library surface
//! lives in the member crates, headlined by [`scorpio`].

pub use scorpio;
