//! Coherence machinery for the SCORPIO reproduction.
//!
//! * [`CohMsg`] / [`MsgKind`] — the message vocabulary shared by the snoopy
//!   SCORPIO protocol and every baseline (limited-pointer directory,
//!   HyperTransport-style broadcast directory, TokenB, INSO);
//! * [`snoop_transition`] — the MOSI + O_D stable-state table (Section 4.2);
//! * [`FidList`] — forwarding-ID lists for non-blocking snoop service;
//! * [`OwnershipStore`] / [`DirectoryCache`] — the memory-side ownership
//!   bits and the latency model of finite directory caches;
//! * [`InsoSlotAllocator`] / [`InsoReorderBuffer`] — the INSO baseline's
//!   slot ordering with expiry traffic.
//!
//! # Examples
//!
//! ```
//! use scorpio_coherence::{snoop_transition, LineState, MsgKind};
//!
//! // The paper's running example: a remote write invalidates the dirty
//! // owner, which supplies the data.
//! let action = snoop_transition(LineState::Od, MsgKind::GetX);
//! assert!(action.respond_with_data);
//! assert_eq!(action.next, LineState::I);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod directory;
mod fid;
mod inso;
mod mosi;
mod msg;

pub use directory::{home_tile, DirectoryCache, HtEntry, LpdEntry, Owner, OwnershipStore};
pub use fid::{FidEntry, FidList, FidPush};
pub use inso::{InsoReorderBuffer, InsoSlotAllocator, SlotContent};
pub use mosi::{fill_state, snoop_transition, LineState, SnoopAction};
pub use msg::{CohMsg, LineAddr, MsgKind};
