//! Directory structures for the baselines and the SCORPIO memory-controller
//! ownership bits.
//!
//! Functional state is kept in a lossless backing map (the information is
//! fully determined by the request stream); a set-associative
//! [`DirectoryCache`] in front models the *latency and capacity* of the
//! real directory cache — a miss costs an off-chip access, which is how the
//! limited-pointer baseline's larger entries hurt it in Figure 6
//! ("LPD-D caches fewer lines ... leading to a higher directory access
//! latency which includes off-chip latency").

use crate::msg::LineAddr;
use std::collections::HashMap;

/// Sharer-tracking state of a limited-pointer directory entry (LPD, after
/// Agarwal et al.): 2 state bits, an owner id, and up to `P` sharer
/// pointers; overflow falls back to broadcast.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LpdEntry {
    /// The owning cache, if the line is dirty on chip.
    pub owner: Option<u16>,
    /// Known sharers (bounded by the pointer count).
    pub sharers: Vec<u16>,
    /// Pointer overflow: sharer set unknown, invalidations must broadcast.
    pub overflowed: bool,
}

impl LpdEntry {
    /// Records a sharer, overflowing past `max_pointers`.
    pub fn add_sharer(&mut self, tile: u16, max_pointers: usize) {
        if self.overflowed || self.sharers.contains(&tile) {
            return;
        }
        if self.sharers.len() == max_pointers {
            self.overflowed = true;
        } else {
            self.sharers.push(tile);
        }
    }

    /// Clears sharer tracking (after invalidations).
    pub fn clear_sharers(&mut self) {
        self.sharers.clear();
        self.overflowed = false;
    }

    /// The bit width of one entry: 2 state bits + owner id + P pointers
    /// (Section 5, "Each directory entry contains 2 state bits, log N bits
    /// to record the owner ID, and a set of pointers").
    pub fn entry_bits(cores: usize, pointers: usize) -> usize {
        let id_bits = usize::BITS as usize - (cores - 1).leading_zeros() as usize;
        2 + id_bits + pointers * id_bits
    }
}

/// HyperTransport-style entry: no sharer info, just whether memory owns the
/// line and whether the writeback data has landed (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtEntry {
    /// Memory owns the line (no L2 owner on chip).
    pub memory_owned: bool,
    /// Memory's copy is valid (writeback data received).
    pub valid: bool,
}

impl Default for HtEntry {
    fn default() -> Self {
        HtEntry {
            memory_owned: true,
            valid: true,
        }
    }
}

/// Who owns a line, as tracked by the SCORPIO memory controllers' ownership
/// bits. The chip stores 1 owner bit + 1 dirty bit; we additionally keep
/// *which* cache owns so stale writebacks (evictions that lost a race with
/// an earlier-ordered GETX) can be squashed — information fully derivable
/// from the ordered request stream (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Owner {
    /// Memory owns; its copy is valid.
    #[default]
    Memory,
    /// Memory owns but awaits the writeback data from an eviction.
    MemoryPendingWb {
        /// The evicting tile whose WbData is awaited.
        from: u16,
    },
    /// An on-chip cache owns the (dirty) line.
    Cache(u16),
}

/// The lossless ownership/value store behind a SCORPIO memory controller
/// (or a directory home node).
///
/// # Examples
///
/// ```
/// use scorpio_coherence::{LineAddr, Owner, OwnershipStore};
///
/// let mut store = OwnershipStore::new(0);
/// let a = LineAddr(0x40);
/// assert_eq!(store.owner(a), Owner::Memory);
/// store.set_owner(a, Owner::Cache(7));
/// store.write_value(a, 99);
/// assert_eq!(store.owner(a), Owner::Cache(7));
/// assert_eq!(store.value(a), 99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OwnershipStore {
    owners: HashMap<LineAddr, Owner>,
    values: HashMap<LineAddr, u64>,
    default_value: u64,
}

impl OwnershipStore {
    /// A store where untouched lines are memory-owned with `default_value`.
    pub fn new(default_value: u64) -> Self {
        OwnershipStore {
            owners: HashMap::new(),
            values: HashMap::new(),
            default_value,
        }
    }

    /// Current owner of `line`.
    pub fn owner(&self, line: LineAddr) -> Owner {
        self.owners.get(&line).copied().unwrap_or_default()
    }

    /// Updates the owner of `line`.
    pub fn set_owner(&mut self, line: LineAddr, owner: Owner) {
        if owner == Owner::Memory {
            self.owners.remove(&line);
        } else {
            self.owners.insert(line, owner);
        }
    }

    /// Memory's logical value for `line`.
    pub fn value(&self, line: LineAddr) -> u64 {
        self.values
            .get(&line)
            .copied()
            .unwrap_or(self.default_value)
    }

    /// Stores a (written-back) value for `line`.
    pub fn write_value(&mut self, line: LineAddr, value: u64) {
        self.values.insert(line, value);
    }

    /// Lines with a non-default owner (diagnostics).
    pub fn tracked_lines(&self) -> usize {
        self.owners.len()
    }
}

/// A set-associative latency/capacity model of a directory cache.
///
/// [`DirectoryCache::access`] returns whether the entry was resident,
/// touching LRU state and inserting on miss (evicting the LRU way). The
/// *contents* live elsewhere; this models only hit/miss behaviour, which is
/// what turns entry size into latency in Figure 6.
#[derive(Debug, Clone)]
pub struct DirectoryCache {
    sets: Vec<Vec<(u64, u64)>>, // (tag, last_use)
    ways: usize,
    use_counter: u64,
    hits: u64,
    misses: u64,
}

impl DirectoryCache {
    /// A cache with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or `entries < ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be non-zero");
        assert!(entries >= ways, "need at least one set");
        let num_sets = (entries / ways).max(1);
        DirectoryCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            use_counter: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Sizes a cache from a storage budget and an entry width.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small for even one set.
    pub fn with_budget(storage_bytes: usize, entry_bits: usize, ways: usize) -> Self {
        let entries = (storage_bytes * 8) / entry_bits.max(1);
        DirectoryCache::new(entries.max(ways), ways)
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Looks up `line`, returns `true` on hit; on miss, inserts it
    /// (evicting LRU).
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.use_counter += 1;
        let set_count = self.sets.len() as u64;
        let tag = line.0 >> 5; // line address granularity
        let set = &mut self.sets[(tag % set_count) as usize];
        if let Some(slot) = set.iter_mut().find(|(t, _)| *t == tag) {
            slot.1 = self.use_counter;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set.swap_remove(lru);
        }
        set.push((tag, self.use_counter));
        false
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Maps a line to its home tile for distributed directories (line-address
/// interleaving across all `cores` tiles).
pub fn home_tile(line: LineAddr, cores: usize) -> u16 {
    ((line.0 >> 5) % cores as u64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpd_sharers_overflow_to_broadcast() {
        let mut e = LpdEntry::default();
        for t in 0..4 {
            e.add_sharer(t, 4);
        }
        assert_eq!(e.sharers.len(), 4);
        assert!(!e.overflowed);
        e.add_sharer(9, 4);
        assert!(e.overflowed);
        // Duplicates never count twice.
        let mut d = LpdEntry::default();
        d.add_sharer(1, 2);
        d.add_sharer(1, 2);
        assert_eq!(d.sharers.len(), 1);
    }

    #[test]
    fn lpd_entry_bits_match_paper() {
        // 36 cores: id bits = 6; pointer width chosen so ~4 sharers ≈ 24
        // bits of pointers (Section 5: "the pointer vector width is chosen
        // to be 24 ... for 36 cores").
        assert_eq!(LpdEntry::entry_bits(36, 4), 2 + 6 + 24);
        // 64 cores: 6-bit ids… 64 cores → id bits 6, 54-bit pointer vector
        // means 9 pointers of 6 bits.
        assert_eq!(LpdEntry::entry_bits(64, 9), 2 + 6 + 54);
    }

    #[test]
    fn ht_default_is_memory_valid() {
        let e = HtEntry::default();
        assert!(e.memory_owned && e.valid);
    }

    #[test]
    fn ownership_store_roundtrip() {
        let mut s = OwnershipStore::new(7);
        let a = LineAddr(0x100);
        assert_eq!(s.owner(a), Owner::Memory);
        assert_eq!(s.value(a), 7);
        s.set_owner(a, Owner::MemoryPendingWb { from: 3 });
        assert_eq!(s.owner(a), Owner::MemoryPendingWb { from: 3 });
        s.set_owner(a, Owner::Memory);
        assert_eq!(s.tracked_lines(), 0);
    }

    #[test]
    fn directory_cache_hits_and_lru() {
        let mut c = DirectoryCache::new(4, 2); // 2 sets × 2 ways
        let a = LineAddr(0x00 << 5 << 1); // even tags map to set 0
        assert!(!c.access(LineAddr(0 << 6)));
        assert!(c.access(LineAddr(0 << 6)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        let _ = a;
    }

    #[test]
    fn directory_cache_evicts_lru() {
        let mut c = DirectoryCache::new(2, 2); // one set, two ways
        let l = |k: u64| LineAddr(k << 5);
        c.access(l(0));
        c.access(l(1));
        c.access(l(0)); // touch 0, making 1 the LRU
        assert!(!c.access(l(2))); // evicts 1
        assert!(c.access(l(0)));
        assert!(!c.access(l(1)));
    }

    #[test]
    fn budget_sizing() {
        // 256 KB at 32 bits/entry = 65536 entries.
        let c = DirectoryCache::with_budget(256 * 1024, 32, 4);
        assert_eq!(c.capacity(), 65536);
        // Bigger entries → fewer entries (the LPD penalty).
        let lpd = DirectoryCache::with_budget(256 * 1024, 64, 4);
        assert!(lpd.capacity() < c.capacity());
    }

    #[test]
    fn miss_ratio_sane() {
        let mut c = DirectoryCache::new(8, 2);
        assert_eq!(c.miss_ratio(), 0.0);
        c.access(LineAddr(0));
        assert_eq!(c.miss_ratio(), 1.0);
        c.access(LineAddr(0));
        assert_eq!(c.miss_ratio(), 0.5);
    }

    #[test]
    fn home_tiles_cover_all_cores() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..128u64 {
            seen.insert(home_tile(LineAddr(k << 5), 36));
        }
        assert_eq!(seen.len(), 36);
        assert!(seen.iter().all(|&t| t < 36));
    }
}
