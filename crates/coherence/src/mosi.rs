//! The MOSI stable-state protocol with the paper's O_D adaptation
//! (Section 4.2).
//!
//! Instead of a per-line dirty bit, an `O_D` ("owned dirty") state keeps
//! dirty data on chip: the owner of dirty data answers read snoops and
//! stays owner, so data is written back to memory only on eviction.

use crate::msg::MsgKind;

/// Stable cache-line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineState {
    /// Invalid / not present.
    #[default]
    I,
    /// Shared, clean (memory or another cache owns).
    S,
    /// Owned dirty: this cache answers snoops; data is dirty on chip.
    Od,
    /// Modified: sole dirty copy.
    M,
}

impl LineState {
    /// Whether a load hits with sufficient permission.
    pub fn can_read(self) -> bool {
        !matches!(self, LineState::I)
    }

    /// Whether a store hits with sufficient permission.
    pub fn can_write(self) -> bool {
        matches!(self, LineState::M)
    }

    /// Whether this cache is the line's owner (answers snoops, must write
    /// back on eviction).
    pub fn is_owner(self) -> bool {
        matches!(self, LineState::M | LineState::Od)
    }
}

/// What a snoop requires of this cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopAction {
    /// Send the line's data to the requester.
    pub respond_with_data: bool,
    /// The line's next state.
    pub next: LineState,
}

/// The snoop transition table for *remote* ordered requests against a
/// stable line state (transient states are handled by the RSHR machinery
/// in `scorpio-mem`).
///
/// # Panics
///
/// Panics if `kind` is not an ordered request kind.
///
/// # Examples
///
/// ```
/// use scorpio_coherence::{snoop_transition, LineState, MsgKind};
///
/// // Remote GETS against our M line: supply data, keep ownership as O_D.
/// let a = snoop_transition(LineState::M, MsgKind::GetS);
/// assert!(a.respond_with_data);
/// assert_eq!(a.next, LineState::Od);
///
/// // Remote GETX against our S line: silent invalidation.
/// let a = snoop_transition(LineState::S, MsgKind::GetX);
/// assert!(!a.respond_with_data);
/// assert_eq!(a.next, LineState::I);
/// ```
pub fn snoop_transition(state: LineState, kind: MsgKind) -> SnoopAction {
    match kind {
        MsgKind::GetS => match state {
            // Owner of dirty data answers and permits on-chip sharing.
            LineState::M => SnoopAction {
                respond_with_data: true,
                next: LineState::Od,
            },
            LineState::Od => SnoopAction {
                respond_with_data: true,
                next: LineState::Od,
            },
            // Non-owners stay put; memory (or the owner) serves the read.
            s => SnoopAction {
                respond_with_data: false,
                next: s,
            },
        },
        MsgKind::GetX => match state {
            LineState::M | LineState::Od => SnoopAction {
                respond_with_data: true,
                next: LineState::I,
            },
            LineState::S => SnoopAction {
                respond_with_data: false,
                next: LineState::I,
            },
            LineState::I => SnoopAction {
                respond_with_data: false,
                next: LineState::I,
            },
        },
        // Writebacks from other caches never touch our copy: a WbReq can
        // only come from the owner, and ownership is exclusive of S copies
        // elsewhere only for M; an O_D writeback leaves sharers intact and
        // memory becomes the owner.
        MsgKind::WbReq => SnoopAction {
            respond_with_data: false,
            next: state,
        },
        other => panic!("{other:?} is not an ordered snoop kind"),
    }
}

/// The state a requester's line assumes when its own ordered request
/// completes with data.
pub fn fill_state(kind: MsgKind) -> LineState {
    match kind {
        MsgKind::GetS => LineState::S,
        MsgKind::GetX => LineState::M,
        other => panic!("{other:?} does not fill a line"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions() {
        assert!(!LineState::I.can_read());
        assert!(LineState::S.can_read());
        assert!(LineState::Od.can_read());
        assert!(LineState::M.can_read());
        assert!(LineState::M.can_write());
        assert!(!LineState::Od.can_write());
        assert!(!LineState::S.can_write());
        assert!(LineState::M.is_owner());
        assert!(LineState::Od.is_owner());
        assert!(!LineState::S.is_owner());
    }

    #[test]
    fn gets_keeps_dirty_data_on_chip() {
        // The paper's example: owner in M answers a read and moves to O_D,
        // continuing to own the dirty data (no memory writeback).
        let a = snoop_transition(LineState::M, MsgKind::GetS);
        assert_eq!(
            a,
            SnoopAction {
                respond_with_data: true,
                next: LineState::Od
            }
        );
        let again = snoop_transition(LineState::Od, MsgKind::GetS);
        assert!(again.respond_with_data);
        assert_eq!(again.next, LineState::Od);
    }

    #[test]
    fn getx_transfers_ownership() {
        for owner in [LineState::M, LineState::Od] {
            let a = snoop_transition(owner, MsgKind::GetX);
            assert!(a.respond_with_data);
            assert_eq!(a.next, LineState::I);
        }
    }

    #[test]
    fn nonowners_never_respond() {
        for s in [LineState::I, LineState::S] {
            for k in [MsgKind::GetS, MsgKind::GetX] {
                assert!(!snoop_transition(s, k).respond_with_data);
            }
        }
    }

    #[test]
    fn wbreq_is_inert_for_other_caches() {
        for s in [LineState::I, LineState::S, LineState::Od, LineState::M] {
            let a = snoop_transition(s, MsgKind::WbReq);
            assert!(!a.respond_with_data);
            assert_eq!(a.next, s);
        }
    }

    #[test]
    fn fill_states() {
        assert_eq!(fill_state(MsgKind::GetS), LineState::S);
        assert_eq!(fill_state(MsgKind::GetX), LineState::M);
    }

    #[test]
    #[should_panic(expected = "not an ordered snoop kind")]
    fn data_is_not_a_snoop() {
        let _ = snoop_transition(LineState::M, MsgKind::Data);
    }
}
