//! Coherence message types: the payloads carried by the main network.

use scorpio_noc::Endpoint;
use std::fmt;

/// A cache-line address (byte address with the offset bits stripped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing byte address `byte` for `line_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn containing(byte: u64, line_bytes: u64) -> LineAddr {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(byte & !(line_bytes - 1))
    }

    /// The 4 KB region this line falls in (region-tracker granularity).
    pub fn region(self) -> u64 {
        self.0 >> 12
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The kind of a coherence message.
///
/// The snoopy SCORPIO protocol uses the first group (ordered broadcasts) and
/// the second (unordered point-to-point); the directory baselines use the
/// third. One shared enum keeps the network payload type uniform across all
/// protocol drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    // --- Ordered broadcast requests (GO-REQ) ---
    /// Read request: broadcast snoop, owner (cache or memory) responds.
    GetS,
    /// Write/ownership request: broadcast snoop, owner responds, sharers
    /// invalidate.
    GetX,
    /// Writeback announcement: ownership returns to memory in global order;
    /// the data follows on the unordered network.
    WbReq,
    // --- Unordered responses (UO-RESP) ---
    /// Cache-line data to the requester (`value` carries the logical data).
    Data,
    /// Writeback data to the memory controller.
    WbData,
    /// INSO baseline: a node expires its unused snoop-order slots.
    InsoExpire,
    // --- Directory-protocol messages (unordered vnets) ---
    /// Unicast read request to the home node.
    DirGetS,
    /// Unicast write request to the home node.
    DirGetX,
    /// Writeback notice to the home node.
    DirPut,
    /// Home → owner: forward this read (owner answers the requester).
    DirFwdGetS,
    /// Home → owner: forward this write (owner sends data and invalidates).
    DirFwdGetX,
    /// Home → sharer: invalidate (ack goes to the requester).
    DirInv,
    /// Sharer → requester: invalidation acknowledged.
    DirInvAck,
    /// Home → requester: data from memory; `acks_expected` pending.
    DirData,
    /// Home → requester: negative ack, retry (home entry busy).
    DirNack,
    /// Requester → home: transaction complete, unblock the entry.
    DirUnblock,
}

impl MsgKind {
    /// Whether this kind travels as an ordered broadcast in SCORPIO.
    pub fn is_ordered_request(self) -> bool {
        matches!(self, MsgKind::GetS | MsgKind::GetX | MsgKind::WbReq)
    }
}

/// A coherence message: the `Copy` payload carried by every packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohMsg {
    /// What this message is.
    pub kind: MsgKind,
    /// The line it concerns.
    pub addr: LineAddr,
    /// The tile that originated the transaction.
    pub requester: u16,
    /// The requester's RSHR entry id ("request entry ID" in the paper),
    /// used to match responses and FID forwards to outstanding requests.
    pub req_tag: u8,
    /// Logical data value (verification oracle; stands in for the 32-byte
    /// line contents).
    pub value: u64,
    /// For [`MsgKind::DirData`]: invalidation acks the requester must await.
    /// For [`MsgKind::InsoExpire`]: number of slots expired.
    pub aux: u16,
    /// The endpoint that sent this message (responder / home / owner).
    pub sender: Endpoint,
}

/// Multi-plane steering: all traffic for a line travels on the plane its
/// address selects, which is what keeps per-address order intact when the
/// main network is replicated. (The stripe granularity — how the byte
/// address is shifted before the modulo — is configured at the network.)
impl scorpio_noc::SteerKey for CohMsg {
    fn steer_key(&self) -> u64 {
        self.addr.0
    }
}

impl CohMsg {
    /// A new message; `aux` defaults to 0.
    pub fn new(
        kind: MsgKind,
        addr: LineAddr,
        requester: u16,
        req_tag: u8,
        sender: Endpoint,
    ) -> Self {
        CohMsg {
            kind,
            addr,
            requester,
            req_tag,
            value: 0,
            aux: 0,
            sender,
        }
    }

    /// Same message with `value` set.
    #[must_use]
    pub fn with_value(mut self, value: u64) -> Self {
        self.value = value;
        self
    }

    /// Same message with `aux` set.
    #[must_use]
    pub fn with_aux(mut self, aux: u16) -> Self {
        self.aux = aux;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_noc::RouterId;

    #[test]
    fn line_addr_masks_offset() {
        assert_eq!(LineAddr::containing(0x1234, 32), LineAddr(0x1220));
        assert_eq!(LineAddr::containing(0x1220, 32), LineAddr(0x1220));
        assert_eq!(LineAddr::containing(63, 64), LineAddr(0));
    }

    #[test]
    fn region_is_4kb() {
        assert_eq!(LineAddr(0x0FFF).region(), 0);
        assert_eq!(LineAddr(0x1000).region(), 1);
        assert_eq!(LineAddr(0x2FE0).region(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_panics() {
        let _ = LineAddr::containing(0, 48);
    }

    #[test]
    fn ordered_kinds() {
        assert!(MsgKind::GetS.is_ordered_request());
        assert!(MsgKind::GetX.is_ordered_request());
        assert!(MsgKind::WbReq.is_ordered_request());
        assert!(!MsgKind::Data.is_ordered_request());
        assert!(!MsgKind::DirGetS.is_ordered_request());
    }

    #[test]
    fn builder_methods() {
        let ep = Endpoint::tile(RouterId(3));
        let m = CohMsg::new(MsgKind::Data, LineAddr(0x40), 3, 1, ep)
            .with_value(99)
            .with_aux(2);
        assert_eq!(m.value, 99);
        assert_eq!(m.aux, 2);
        assert_eq!(m.sender, ep);
        assert!(format!("{}", m.addr).starts_with("0x"));
    }
}
