//! INSO baseline machinery (Agarwal et al., HPCA 2009): in-network snoop
//! ordering via per-source slot numbers.
//!
//! Every node owns the slot sequence `k, k+N, k+2N, …`. A request from node
//! `k` consumes that node's next slot; all nodes process requests in
//! ascending *global* slot order. A node with no traffic must periodically
//! broadcast *expiry* messages for its unused slots (every `expiry_window`
//! cycles), otherwise the whole system waits on it — the bandwidth and
//! latency cost SCORPIO's Figure 7 quantifies.

use scorpio_sim::Cycle;
use std::collections::BTreeMap;

/// Per-node slot assignment at the source side.
#[derive(Debug, Clone)]
pub struct InsoSlotAllocator {
    node: u64,
    nodes: u64,
    /// Next slot (in per-node units) this node will hand out.
    next_local: u64,
    last_expiry: Cycle,
}

impl InsoSlotAllocator {
    /// Allocator for `node` of `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= nodes` or `nodes == 0`.
    pub fn new(node: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(node < nodes, "node out of range");
        InsoSlotAllocator {
            node: node as u64,
            nodes: nodes as u64,
            next_local: 0,
            last_expiry: Cycle::ZERO,
        }
    }

    /// Takes the next global slot for a real request at time `now` (any
    /// activity restarts the idle-expiry clock).
    pub fn take_slot(&mut self, now: Cycle) -> u64 {
        let slot = self.node + self.next_local * self.nodes;
        self.next_local += 1;
        self.last_expiry = now;
        slot
    }

    /// If `expiry_window` cycles have passed since the last activity, emit
    /// an expiry covering one unused slot. Returns the expired global slot.
    pub fn maybe_expire(&mut self, now: Cycle, expiry_window: u64) -> Option<u64> {
        if now.since(self.last_expiry) >= expiry_window {
            Some(self.take_slot(now))
        } else {
            None
        }
    }

    /// Slots handed out so far (requests + expiries).
    pub fn slots_used(&self) -> u64 {
        self.next_local
    }

    /// The global slot the next allocation would receive.
    pub fn peek_next_slot(&self) -> u64 {
        self.node + self.next_local * self.nodes
    }
}

/// What occupies a global slot at a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotContent<T> {
    /// A real snoop request.
    Request(T),
    /// The source expired this slot.
    Expired,
}

/// Destination-side reorder buffer: releases slot contents in ascending
/// global slot order once contiguous.
///
/// # Examples
///
/// ```
/// use scorpio_coherence::{InsoReorderBuffer, SlotContent};
///
/// let mut rb: InsoReorderBuffer<&str> = InsoReorderBuffer::new();
/// rb.insert(1, SlotContent::Request("b"));
/// assert_eq!(rb.pop_ready(), None); // waiting for slot 0
/// rb.insert(0, SlotContent::Expired);
/// assert_eq!(rb.pop_ready(), Some(None)); // slot 0: expired, nothing to do
/// assert_eq!(rb.pop_ready(), Some(Some("b")));
/// assert_eq!(rb.pop_ready(), None);
/// ```
#[derive(Debug, Clone)]
pub struct InsoReorderBuffer<T> {
    pending: BTreeMap<u64, SlotContent<T>>,
    next_slot: u64,
    /// High-water mark of buffered out-of-order entries (the buffering cost
    /// the paper criticises timestamp-based schemes for).
    pub max_buffered: usize,
}

impl<T> InsoReorderBuffer<T> {
    /// An empty buffer expecting slot 0 first.
    pub fn new() -> Self {
        InsoReorderBuffer {
            pending: BTreeMap::new(),
            next_slot: 0,
            max_buffered: 0,
        }
    }

    /// Buffers `content` for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already seen (duplicate delivery).
    pub fn insert(&mut self, slot: u64, content: SlotContent<T>) {
        assert!(slot >= self.next_slot, "slot {slot} already released");
        let prev = self.pending.insert(slot, content);
        assert!(prev.is_none(), "duplicate slot {slot}");
        self.max_buffered = self.max_buffered.max(self.pending.len());
    }

    /// Releases the next slot if it has arrived: `Some(Some(req))` for a
    /// request, `Some(None)` for an expired slot, `None` if still waiting.
    pub fn pop_ready(&mut self) -> Option<Option<T>> {
        let content = self.pending.remove(&self.next_slot)?;
        self.next_slot += 1;
        match content {
            SlotContent::Request(r) => Some(Some(r)),
            SlotContent::Expired => Some(None),
        }
    }

    /// The global slot this destination is waiting for.
    pub fn next_slot(&self) -> u64 {
        self.next_slot
    }

    /// Entries buffered out of order right now.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

impl<T> Default for InsoReorderBuffer<T> {
    fn default() -> Self {
        InsoReorderBuffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_interleave_by_node() {
        let mut a = InsoSlotAllocator::new(0, 4);
        let mut b = InsoSlotAllocator::new(3, 4);
        let t = Cycle::ZERO;
        assert_eq!(a.take_slot(t), 0);
        assert_eq!(a.take_slot(t), 4);
        assert_eq!(b.take_slot(t), 3);
        assert_eq!(b.take_slot(t), 7);
        assert_eq!(a.slots_used(), 2);
    }

    #[test]
    fn expiry_fires_on_idle_window() {
        let mut a = InsoSlotAllocator::new(1, 4);
        assert_eq!(a.maybe_expire(Cycle::new(10), 20), None);
        let slot = a.maybe_expire(Cycle::new(20), 20);
        assert_eq!(slot, Some(1));
        // Immediately after, the window restarts.
        assert_eq!(a.maybe_expire(Cycle::new(25), 20), None);
        assert_eq!(a.maybe_expire(Cycle::new(40), 20), Some(5));
    }

    #[test]
    fn reorder_releases_in_slot_order() {
        let mut rb = InsoReorderBuffer::new();
        rb.insert(2, SlotContent::Request(22));
        rb.insert(0, SlotContent::Request(0));
        assert_eq!(rb.pop_ready(), Some(Some(0)));
        assert_eq!(rb.pop_ready(), None); // slot 1 missing
        rb.insert(1, SlotContent::Expired);
        assert_eq!(rb.pop_ready(), Some(None));
        assert_eq!(rb.pop_ready(), Some(Some(22)));
        assert_eq!(rb.next_slot(), 3);
    }

    #[test]
    fn tracks_buffering_high_watermark() {
        let mut rb: InsoReorderBuffer<u8> = InsoReorderBuffer::new();
        for slot in [5u64, 3, 4, 1] {
            rb.insert(slot, SlotContent::Expired);
        }
        assert_eq!(rb.max_buffered, 4);
        assert_eq!(rb.buffered(), 4);
        assert_eq!(rb.pop_ready(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate slot")]
    fn duplicate_slot_panics() {
        let mut rb: InsoReorderBuffer<u8> = InsoReorderBuffer::new();
        rb.insert(1, SlotContent::Expired);
        rb.insert(1, SlotContent::Expired);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn stale_slot_panics() {
        let mut rb: InsoReorderBuffer<u8> = InsoReorderBuffer::new();
        rb.insert(0, SlotContent::Expired);
        rb.pop_ready();
        rb.insert(0, SlotContent::Expired);
    }
}
