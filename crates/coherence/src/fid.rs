//! Forwarding-ID lists: non-blocking snoop service for pending writes
//! (Section 4.2).
//!
//! When a snoop hits a line with a pending write, instead of stalling, the
//! L2 records the snooper's forwarding ID — (SID, request entry ID) — and
//! kind. Once the write's data arrives and the write completes, updated
//! data is forwarded to every recorded requester in order. The list closes
//! after recording a GETX: ownership passes to that requester, so any later
//! snoop belongs to *their* pending-write window, not ours.

use crate::msg::MsgKind;

/// One recorded snooper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FidEntry {
    /// The snooper's tile id.
    pub sid: u16,
    /// The snooper's request entry id (matches their RSHR slot).
    pub req_tag: u8,
    /// GETS or GETX.
    pub kind: MsgKind,
}

/// A bounded forwarding-ID list attached to one pending write.
///
/// The chip tracks two sets of FIDs per core (one per outstanding message);
/// each set holds up to `capacity` snoopers, after which snoops stall.
///
/// # Examples
///
/// ```
/// use scorpio_coherence::{FidList, FidPush, MsgKind};
///
/// let mut fids = FidList::new(4);
/// assert_eq!(fids.push(1, 0, MsgKind::GetS), FidPush::Recorded);
/// assert_eq!(fids.push(2, 0, MsgKind::GetX), FidPush::Recorded);
/// // Closed after a GETX: later snoops are someone else's problem.
/// assert_eq!(fids.push(3, 0, MsgKind::GetS), FidPush::Closed);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FidList {
    entries: Vec<FidEntry>,
    capacity: usize,
    closed: bool,
}

/// Outcome of recording a snoop in a [`FidList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidPush {
    /// Recorded; forward data to this snooper after completion.
    Recorded,
    /// List is full: the snoop must stall and retry (paper: "Once the FID
    /// list fills up, subsequent snoop requests will then be stalled").
    Full,
    /// Ownership already promised to an earlier GETX; this snoop is not our
    /// responsibility and needs no action from us.
    Closed,
}

impl FidList {
    /// An empty list holding at most `capacity` snoopers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FID capacity must be non-zero");
        FidList {
            entries: Vec::with_capacity(capacity),
            capacity,
            closed: false,
        }
    }

    /// Records a snooper.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not GETS/GETX.
    pub fn push(&mut self, sid: u16, req_tag: u8, kind: MsgKind) -> FidPush {
        assert!(
            matches!(kind, MsgKind::GetS | MsgKind::GetX),
            "only read/write snoops are forwardable"
        );
        if self.closed {
            return FidPush::Closed;
        }
        if self.entries.len() == self.capacity {
            return FidPush::Full;
        }
        self.entries.push(FidEntry { sid, req_tag, kind });
        if kind == MsgKind::GetX {
            self.closed = true;
        }
        FidPush::Recorded
    }

    /// Whether a GETX closed the list (we lose the line after forwarding).
    pub fn ends_in_getx(&self) -> bool {
        self.closed
    }

    /// Recorded snoopers in arrival (= global) order.
    pub fn entries(&self) -> &[FidEntry] {
        &self.entries
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the list for forwarding, resetting it.
    pub fn drain(&mut self) -> Vec<FidEntry> {
        self.closed = false;
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut f = FidList::new(4);
        f.push(5, 1, MsgKind::GetS);
        f.push(6, 0, MsgKind::GetS);
        let sids: Vec<u16> = f.entries().iter().map(|e| e.sid).collect();
        assert_eq!(sids, vec![5, 6]);
        assert!(!f.ends_in_getx());
    }

    #[test]
    fn getx_closes_list() {
        let mut f = FidList::new(4);
        assert_eq!(f.push(1, 0, MsgKind::GetX), FidPush::Recorded);
        assert!(f.ends_in_getx());
        assert_eq!(f.push(2, 0, MsgKind::GetX), FidPush::Closed);
        assert_eq!(f.entries().len(), 1);
    }

    #[test]
    fn full_list_stalls() {
        let mut f = FidList::new(2);
        f.push(1, 0, MsgKind::GetS);
        f.push(2, 0, MsgKind::GetS);
        assert_eq!(f.push(3, 0, MsgKind::GetS), FidPush::Full);
    }

    #[test]
    fn drain_resets() {
        let mut f = FidList::new(2);
        f.push(1, 0, MsgKind::GetX);
        let drained = f.drain();
        assert_eq!(drained.len(), 1);
        assert!(f.is_empty());
        assert!(!f.ends_in_getx());
        assert_eq!(f.push(2, 0, MsgKind::GetS), FidPush::Recorded);
    }

    #[test]
    #[should_panic(expected = "forwardable")]
    fn non_snoop_kind_panics() {
        let mut f = FidList::new(1);
        f.push(0, 0, MsgKind::Data);
    }
}
