//! Synthetic SPLASH-2 / PARSEC-like workload generators.
//!
//! We cannot run the real benchmarks (no cores, no OS); what the paper's
//! evaluation depends on is the *memory-traffic shape* each benchmark
//! presents to the coherence system: miss rate (via working-set size and
//! locality), read/write mix, how much of the footprint is shared, and how
//! often lines migrate between writers (which drives cache-to-cache
//! transfers — ~90% of misses are served by other caches in the paper's
//! runs). Each preset below dials those knobs to qualitatively match the
//! published characterisations of its namesake. See DESIGN.md's
//! substitution table.

use crate::trace::{Trace, TraceOp, TraceRecord};
use scorpio_sim::SimRng;

/// Tunable traffic shape of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Benchmark name (for reports).
    pub name: &'static str,
    /// Memory operations per core.
    pub ops_per_core: usize,
    /// Mean compute-gap cycles between operations (geometric).
    pub mean_gap: f64,
    /// Fraction of operations that write (store/atomic).
    pub write_fraction: f64,
    /// Fraction of accesses into the *shared* region (rest is per-core
    /// private).
    pub shared_fraction: f64,
    /// Shared-region size in lines.
    pub shared_lines: usize,
    /// Per-core private working set in lines.
    pub private_lines: usize,
    /// Probability a shared access targets the hot subset (sharing
    /// intensity / contention).
    pub hot_fraction: f64,
    /// Hot-subset size in lines.
    pub hot_lines: usize,
    /// Probability a shared access follows a migratory read-modify-write
    /// pattern (drives ownership migration between caches).
    pub migratory_fraction: f64,
    /// Temporal-locality revisit probability for private accesses.
    pub locality: f64,
    /// Ops per compute/communicate phase (0 disables phasing). Barrier-
    /// style applications alternate short memory bursts with long compute
    /// phases; every `phase_ops` operations the trace inserts an extra
    /// `phase_gap`-cycle quiet period on every core, leaving the machine
    /// drained and idle between bursts.
    pub phase_ops: usize,
    /// Extra gap cycles inserted at each phase boundary. Must stay safely
    /// below 50 000: a synchronized quiet phase completes no ops anywhere,
    /// and `System::run_to_completion`'s deadlock watchdog panics after
    /// 50k op-free cycles.
    pub phase_gap: u32,
}

impl WorkloadParams {
    fn preset(
        name: &'static str,
        write_fraction: f64,
        shared_fraction: f64,
        shared_lines: usize,
        private_lines: usize,
        migratory_fraction: f64,
        mean_gap: f64,
    ) -> WorkloadParams {
        WorkloadParams {
            name,
            ops_per_core: 400,
            mean_gap,
            write_fraction,
            shared_fraction,
            shared_lines,
            private_lines,
            hot_fraction: 0.5,
            hot_lines: (shared_lines / 8).max(4),
            migratory_fraction,
            locality: 0.6,
            phase_ops: 0,
            phase_gap: 0,
        }
    }

    /// All SPLASH-2 presets the paper sweeps (Figures 6 and 8).
    pub fn splash2() -> Vec<WorkloadParams> {
        vec![
            // name, writes, shared, shared-lines, private-lines, migratory, gap
            Self::preset("barnes", 0.30, 0.55, 512, 384, 0.35, 6.0),
            Self::preset("fft", 0.25, 0.45, 1024, 768, 0.10, 5.0),
            Self::preset("fmm", 0.25, 0.50, 640, 512, 0.25, 7.0),
            Self::preset("lu", 0.30, 0.40, 768, 512, 0.15, 5.0),
            Self::preset("nlu", 0.30, 0.45, 768, 640, 0.15, 5.0),
            Self::preset("radix", 0.40, 0.50, 1280, 896, 0.10, 4.0),
            Self::preset("water-nsq", 0.25, 0.55, 448, 384, 0.40, 7.0),
            Self::preset("water-spatial", 0.25, 0.50, 512, 448, 0.30, 7.0),
        ]
    }

    /// The PARSEC presets the paper uses.
    pub fn parsec() -> Vec<WorkloadParams> {
        vec![
            Self::preset("blackscholes", 0.20, 0.25, 384, 768, 0.10, 8.0),
            Self::preset("canneal", 0.35, 0.70, 1536, 512, 0.45, 4.0),
            Self::preset("fluidanimate", 0.35, 0.60, 896, 640, 0.40, 5.0),
            Self::preset("swaptions", 0.25, 0.30, 384, 768, 0.15, 7.0),
            Self::preset("streamcluster", 0.20, 0.60, 1024, 512, 0.20, 5.0),
            Self::preset("vips", 0.30, 0.45, 768, 640, 0.25, 6.0),
        ]
    }

    /// Every benchmark in Figure 6 (SPLASH-2 then PARSEC subset).
    pub fn figure6_set() -> Vec<WorkloadParams> {
        let mut v = Self::splash2();
        v.extend(Self::parsec().into_iter().filter(|p| {
            ["blackscholes", "canneal", "fluidanimate", "swaptions"].contains(&p.name)
        }));
        v
    }

    /// The 16-core Figure 7 subset.
    pub fn figure7_set() -> Vec<WorkloadParams> {
        Self::parsec()
            .into_iter()
            .filter(|p| ["blackscholes", "streamcluster", "swaptions", "vips"].contains(&p.name))
            .collect()
    }

    /// Every named preset: SPLASH-2 then PARSEC, in registry order.
    pub fn all() -> Vec<WorkloadParams> {
        let mut v = Self::splash2();
        v.extend(Self::parsec());
        v
    }

    /// The names of every registered preset, in registry order.
    pub fn names() -> Vec<&'static str> {
        Self::all().iter().map(|p| p.name).collect()
    }

    /// Looks a preset up by name.
    pub fn by_name(name: &str) -> Option<WorkloadParams> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// Looks a named *set* of presets up: the suites the paper sweeps.
    ///
    /// Recognized sets: `all`, `splash2`, `parsec`, `figure6`, `figure7`.
    /// A single benchmark name is also accepted and yields a one-element
    /// set, so every sweep-grid axis can be spelled as one string.
    pub fn set_by_name(name: &str) -> Option<Vec<WorkloadParams>> {
        match name {
            "all" => Some(Self::all()),
            "splash2" => Some(Self::splash2()),
            "parsec" => Some(Self::parsec()),
            "figure6" => Some(Self::figure6_set()),
            "figure7" => Some(Self::figure7_set()),
            single => Self::by_name(single).map(|p| vec![p]),
        }
    }

    /// Same workload scaled to `ops` operations per core.
    #[must_use]
    pub fn with_ops(mut self, ops: usize) -> WorkloadParams {
        self.ops_per_core = ops;
        self
    }
}

/// Address-space layout constants for generated traces.
const LINE: u64 = 32;
const SHARED_BASE: u64 = 0x1000_0000;
const PRIVATE_BASE: u64 = 0x8000_0000;
const PRIVATE_STRIDE: u64 = 0x0100_0000;

/// Generates the per-core traces of `params` for `cores` cores.
///
/// Deterministic in (`params`, `cores`, `seed`).
///
/// # Examples
///
/// ```
/// use scorpio_workloads::{generate, WorkloadParams};
///
/// let params = WorkloadParams::by_name("barnes").unwrap().with_ops(50);
/// let traces = generate(&params, 4, 1);
/// assert_eq!(traces.len(), 4);
/// assert_eq!(traces[0].len(), 50);
/// // Deterministic:
/// assert_eq!(generate(&params, 4, 1), traces);
/// ```
pub fn generate(params: &WorkloadParams, cores: usize, seed: u64) -> Vec<Trace> {
    // Mix a crate-specific tag so seeds don't collide with other RNG users.
    let mut root = SimRng::seed_from(seed ^ 0x5C02_11A0_2014_0000);
    (0..cores)
        .map(|core| {
            let mut rng = root.split(core as u64);
            generate_core(params, core, &mut rng)
        })
        .collect()
}

fn generate_core(params: &WorkloadParams, core: usize, rng: &mut SimRng) -> Trace {
    let mut trace = Trace::new();
    let mut last_private: u64 = PRIVATE_BASE + core as u64 * PRIVATE_STRIDE;
    let mut pending_migratory: Option<u64> = None;
    for k in 0..params.ops_per_core {
        let mut gap = geometric(rng, params.mean_gap);
        if params.phase_ops > 0 && k > 0 && k % params.phase_ops == 0 {
            gap += params.phase_gap;
        }
        // A migratory access pattern: read then write the same line.
        if let Some(addr) = pending_migratory.take() {
            trace.push(TraceRecord {
                gap,
                op: TraceOp::Store,
                addr,
                value: (core as u64) << 32 | k as u64,
            });
            continue;
        }
        let shared = rng.chance(params.shared_fraction);
        let addr = if shared {
            let line = if rng.chance(params.hot_fraction) {
                rng.gen_range_u64(params.hot_lines as u64)
            } else {
                rng.gen_range_u64(params.shared_lines as u64)
            };
            SHARED_BASE + line * LINE
        } else if rng.chance(params.locality) {
            last_private
        } else {
            let line = rng.gen_range_u64(params.private_lines as u64);
            let a = PRIVATE_BASE + core as u64 * PRIVATE_STRIDE + line * LINE;
            last_private = a;
            a
        };
        if shared && rng.chance(params.migratory_fraction) {
            // Read now, write next op (classic migratory sharing).
            trace.push(TraceRecord {
                gap,
                op: TraceOp::Load,
                addr,
                value: 0,
            });
            pending_migratory = Some(addr);
            continue;
        }
        let op = if rng.chance(params.write_fraction) {
            TraceOp::Store
        } else {
            TraceOp::Load
        };
        trace.push(TraceRecord {
            gap,
            op,
            addr,
            value: (core as u64) << 32 | k as u64,
        });
    }
    trace
}

fn geometric(rng: &mut SimRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let mut n = 0u32;
    while !rng.chance(p) && n < 10_000 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_paper_benchmarks() {
        let names: Vec<&str> = WorkloadParams::splash2().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "barnes",
                "fft",
                "fmm",
                "lu",
                "nlu",
                "radix",
                "water-nsq",
                "water-spatial"
            ]
        );
        assert_eq!(WorkloadParams::parsec().len(), 6);
        assert_eq!(WorkloadParams::figure6_set().len(), 12);
        assert_eq!(WorkloadParams::figure7_set().len(), 4);
        assert!(WorkloadParams::by_name("canneal").is_some());
        assert!(WorkloadParams::by_name("doom").is_none());
    }

    #[test]
    fn registry_sets_resolve() {
        assert_eq!(WorkloadParams::all().len(), 14);
        assert_eq!(WorkloadParams::names().len(), 14);
        assert_eq!(WorkloadParams::set_by_name("splash2").unwrap().len(), 8);
        assert_eq!(WorkloadParams::set_by_name("parsec").unwrap().len(), 6);
        assert_eq!(WorkloadParams::set_by_name("figure6").unwrap().len(), 12);
        assert_eq!(WorkloadParams::set_by_name("figure7").unwrap().len(), 4);
        let single = WorkloadParams::set_by_name("lu").unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].name, "lu");
        assert!(WorkloadParams::set_by_name("doom").is_none());
        // Registry order is stable: names() pairs with all().
        let names = WorkloadParams::names();
        assert_eq!(names[0], "barnes");
        assert_eq!(names[13], "vips");
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let p = WorkloadParams::by_name("fft").unwrap().with_ops(100);
        let a = generate(&p, 8, 42);
        let b = generate(&p, 8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|t| t.len() == 100));
        let c = generate(&p, 8, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn write_fraction_roughly_matches_params() {
        let p = WorkloadParams::by_name("radix").unwrap().with_ops(2000);
        let traces = generate(&p, 4, 7);
        let wf = traces[0].write_fraction();
        // Migratory stores add to the write mix, so allow a band.
        assert!(
            (0.3..0.6).contains(&wf),
            "radix write fraction {wf} out of band"
        );
    }

    #[test]
    fn shared_addresses_overlap_across_cores() {
        let p = WorkloadParams::by_name("canneal").unwrap().with_ops(500);
        let traces = generate(&p, 2, 9);
        let lines = |t: &Trace| -> std::collections::HashSet<u64> {
            t.records()
                .iter()
                .map(|r| r.addr / 32)
                .filter(|&l| l < PRIVATE_BASE / 32)
                .collect()
        };
        let a = lines(&traces[0]);
        let b = lines(&traces[1]);
        assert!(
            a.intersection(&b).count() > 10,
            "canneal cores should share many lines"
        );
    }

    #[test]
    fn private_regions_are_disjoint() {
        let p = WorkloadParams::by_name("blackscholes")
            .unwrap()
            .with_ops(500);
        let traces = generate(&p, 3, 11);
        for (i, t) in traces.iter().enumerate() {
            for r in t.records() {
                if r.addr >= PRIVATE_BASE {
                    let region = (r.addr - PRIVATE_BASE) / PRIVATE_STRIDE;
                    assert_eq!(region as usize, i, "private access crossed cores");
                }
            }
        }
    }

    #[test]
    fn gaps_follow_requested_mean() {
        let p = WorkloadParams::by_name("barnes").unwrap().with_ops(4000);
        let traces = generate(&p, 1, 13);
        let mean: f64 = traces[0]
            .records()
            .iter()
            .map(|r| r.gap as f64)
            .sum::<f64>()
            / traces[0].len() as f64;
        assert!((mean - 6.0).abs() < 1.5, "mean gap {mean} far from 6");
    }
}
