//! Open-loop arrival processes: when each memory request *arrives* at a
//! core's source queue, decoupled from when the previous one completed.
//!
//! Closed-loop traces release the next operation only after the previous
//! one retires, so a system under test can never be overdriven — offered
//! load self-throttles to the service rate. The generators here produce
//! absolute arrival cycles instead: the tile releases a request when its
//! arrival time passes, queueing behind a bounded source queue when the
//! core is busy. Sweeping the offered-load knob past the saturation knee
//! is what turns the latency histograms into SLO curves (latency vs
//! injection rate, the conventional NoC characterisation).
//!
//! Determinism: schedules are derived from [`SimRng`] streams seeded by
//! `(seed, core)` exactly like the synthetic workload generator, computed
//! serially at system build time — byte-identical for any worker-thread
//! count and any engine.

use crate::trace::Trace;
use scorpio_sim::SimRng;

/// Domain tag folded into the workload seed so arrival streams never
/// collide with the trace generator's streams for the same (seed, core).
const ARRIVAL_TAG: u64 = 0x5C02_11A0_2014_0001;

/// How open-loop request arrivals are distributed over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: geometric inter-arrival gaps (the discrete
    /// Poisson process) with mean `1000 / load_millis` cycles.
    Poisson,
    /// Markov-modulated on/off arrivals: dwell times in the ON and OFF
    /// states are geometric with the given mean cycle counts, and within
    /// an ON burst arrivals are Poisson at the elevated rate that makes
    /// the long-run offered load equal the configured knob. The bursts
    /// stress injection arbitration and tail latency at the same mean
    /// load a smooth Poisson stream would carry.
    Bursty {
        /// Mean ON-dwell cycles (burst length).
        on: u32,
        /// Mean OFF-dwell cycles (quiet length).
        off: u32,
    },
    /// Replay the trace's own think-time deltas as arrival times: record
    /// `i` arrives at the cumulative sum of `gap[0..=i]`. The offered
    /// load is whatever the trace encodes; the load knob is ignored.
    Replay,
}

impl ArrivalProcess {
    /// Short stable label for sink columns and variant names, e.g.
    /// `pois-300`, `burst-300`, `replay`.
    pub fn label(&self, load_millis: u32) -> String {
        match self {
            ArrivalProcess::Poisson => format!("pois-{load_millis}"),
            ArrivalProcess::Bursty { .. } => format!("burst-{load_millis}"),
            ArrivalProcess::Replay => "replay".into(),
        }
    }
}

/// Builds the absolute arrival cycle for every record of `trace`, for
/// core `core` under `(seed, process, load_millis)`.
///
/// `load_millis` is the offered load in requests per 1000 cycles per
/// core. Returns an empty schedule when the load is 0 (for Poisson and
/// bursty processes) — the degenerate case is the closed-loop trace, and
/// the caller keeps closed-loop semantics. [`ArrivalProcess::Replay`]
/// ignores the knob and is driven by the trace's own gaps.
///
/// The schedule is non-decreasing; same-cycle arrivals are legal (the
/// source queue admits them together).
pub fn arrival_schedule(
    process: ArrivalProcess,
    load_millis: u32,
    trace: &Trace,
    core: u64,
    seed: u64,
) -> Vec<u64> {
    let ops = trace.len();
    if ops == 0 {
        return Vec::new();
    }
    match process {
        ArrivalProcess::Replay => {
            let mut t = 0u64;
            trace
                .records()
                .iter()
                .map(|r| {
                    t += u64::from(r.gap);
                    t
                })
                .collect()
        }
        ArrivalProcess::Poisson => {
            if load_millis == 0 {
                return Vec::new();
            }
            let mut rng = rng_for(core, seed);
            let mean = 1000.0 / f64::from(load_millis);
            let mut t = 0u64;
            (0..ops)
                .map(|_| {
                    t += geometric(&mut rng, mean);
                    t
                })
                .collect()
        }
        ArrivalProcess::Bursty { on, off } => {
            if load_millis == 0 {
                return Vec::new();
            }
            let mut rng = rng_for(core, seed);
            // Within an ON dwell the rate rises by (on + off) / on so the
            // long-run mean matches the knob.
            let on = f64::from(on.max(1));
            let off = f64::from(off.max(1));
            let burst_mean = (1000.0 / f64::from(load_millis)) * on / (on + off);
            let mut out = Vec::with_capacity(ops);
            let mut t = 0u64;
            while out.len() < ops {
                // Dwells are >= 1 cycle so the chain always advances.
                let on_len = 1 + geometric(&mut rng, on - 1.0);
                let off_len = 1 + geometric(&mut rng, off - 1.0);
                let end = t + on_len;
                let mut cursor = t;
                while out.len() < ops {
                    cursor += geometric(&mut rng, burst_mean);
                    if cursor >= end {
                        break;
                    }
                    out.push(cursor);
                }
                t = end + off_len;
            }
            out
        }
    }
}

/// Per-core arrival stream: the workload-seed convention (root xor a
/// domain tag, then one split per core), so the schedule depends only on
/// `(seed, core, process, load)`.
fn rng_for(core: u64, seed: u64) -> SimRng {
    SimRng::seed_from(seed ^ ARRIVAL_TAG).split(core)
}

/// Geometric sample with the given mean (counts failures before the
/// first success at `p = 1 / (mean + 1)`), mirroring the synthetic
/// generator's gap sampler.
fn geometric(rng: &mut SimRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let mut n = 0u64;
    while !rng.chance(p) && n < 10_000 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, WorkloadParams};
    use crate::trace::{TraceOp, TraceRecord};

    fn trace_of(ops: usize) -> Trace {
        (0..ops)
            .map(|k| TraceRecord {
                gap: (k % 7) as u32,
                op: TraceOp::Load,
                addr: 64 * k as u64,
                value: 0,
            })
            .collect()
    }

    #[test]
    fn poisson_gap_mean_is_within_tolerance() {
        // Property-style check over several (seed, load) points: the mean
        // inter-arrival gap must track 1000 / load within 15%.
        let trace = trace_of(4000);
        for seed in [1u64, 7, 42] {
            for load in [10u32, 50, 250] {
                let sched = arrival_schedule(ArrivalProcess::Poisson, load, &trace, 3, seed);
                assert_eq!(sched.len(), trace.len());
                let span = sched.last().unwrap() - sched[0];
                let mean = span as f64 / (sched.len() - 1) as f64;
                let want = 1000.0 / f64::from(load);
                assert!(
                    (mean - want).abs() < 0.15 * want,
                    "seed {seed} load {load}: mean gap {mean:.2}, want ~{want:.2}"
                );
            }
        }
    }

    #[test]
    fn bursty_mean_load_tracks_the_knob() {
        let trace = trace_of(4000);
        let p = ArrivalProcess::Bursty { on: 40, off: 160 };
        for seed in [2u64, 9] {
            let sched = arrival_schedule(p, 50, &trace, 0, seed);
            let span = sched.last().unwrap() - sched[0];
            let mean = span as f64 / (sched.len() - 1) as f64;
            assert!(
                (mean - 20.0).abs() < 3.0,
                "seed {seed}: bursty mean gap {mean:.2}, want ~20"
            );
        }
    }

    #[test]
    fn schedules_are_reproducible_and_seed_sensitive() {
        let trace = trace_of(200);
        for p in [
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty { on: 30, off: 90 },
        ] {
            let a = arrival_schedule(p, 80, &trace, 5, 11);
            let b = arrival_schedule(p, 80, &trace, 5, 11);
            assert_eq!(a, b, "{p:?} must be byte-reproducible from (seed, params)");
            let c = arrival_schedule(p, 80, &trace, 5, 12);
            assert_ne!(a, c, "{p:?} must depend on the seed");
            let d = arrival_schedule(p, 80, &trace, 6, 11);
            assert_ne!(a, d, "{p:?} must depend on the core lane");
        }
    }

    #[test]
    fn schedules_are_non_decreasing() {
        let trace = trace_of(500);
        for p in [
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty { on: 20, off: 20 },
            ArrivalProcess::Replay,
        ] {
            let sched = arrival_schedule(p, 120, &trace, 1, 3);
            assert!(sched.windows(2).all(|w| w[0] <= w[1]), "{p:?} not sorted");
        }
    }

    #[test]
    fn zero_load_degenerates_to_closed_loop() {
        let trace = trace_of(100);
        assert!(arrival_schedule(ArrivalProcess::Poisson, 0, &trace, 0, 1).is_empty());
        let bursty = ArrivalProcess::Bursty { on: 10, off: 10 };
        assert!(arrival_schedule(bursty, 0, &trace, 0, 1).is_empty());
        // Replay carries its own schedule regardless of the knob.
        assert_eq!(
            arrival_schedule(ArrivalProcess::Replay, 0, &trace, 0, 1).len(),
            100
        );
    }

    #[test]
    fn replay_round_trips_the_trace_gaps() {
        // think-time deltas -> arrival times -> first differences gives
        // back exactly the recorded gaps, for a real generated workload.
        let params = WorkloadParams::by_name("lu").unwrap().with_ops(64);
        let trace = &generate(&params, 4, 9)[2];
        let sched = arrival_schedule(ArrivalProcess::Replay, 0, trace, 2, 9);
        assert_eq!(sched.len(), trace.len());
        let mut prev = 0u64;
        for (r, &t) in trace.records().iter().zip(&sched) {
            assert_eq!(t - prev, u64::from(r.gap), "gap must round-trip");
            prev = t;
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArrivalProcess::Poisson.label(300), "pois-300");
        assert_eq!(
            ArrivalProcess::Bursty { on: 1, off: 1 }.label(40),
            "burst-40"
        );
        assert_eq!(ArrivalProcess::Replay.label(0), "replay");
    }
}
