//! Memory-operation traces: the unit of work a core model executes.

/// A memory operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Read a word.
    Load,
    /// Write a word.
    Store,
    /// Atomic fetch-and-add (returns the old value).
    AtomicAdd,
}

/// One trace record: wait `gap` cycles of "compute", then issue `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Compute cycles before this access issues.
    pub gap: u32,
    /// The operation.
    pub op: TraceOp,
    /// Byte address.
    pub addr: u64,
    /// Store/add operand.
    pub value: u64,
}

/// A per-core sequence of memory operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Builds a trace from records.
    pub fn from_records(records: Vec<TraceRecord>) -> Trace {
        Trace { records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// The records in program order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of write operations (stores + atomics).
    pub fn write_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let writes = self
            .records
            .iter()
            .filter(|r| !matches!(r.op, TraceOp::Load))
            .count();
        writes as f64 / self.records.len() as f64
    }

    /// Distinct cache lines touched, at `line_bytes` granularity.
    pub fn footprint_lines(&self, line_bytes: u64) -> usize {
        let mut lines: Vec<u64> = self.records.iter().map(|r| r.addr / line_bytes).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: TraceOp, addr: u64) -> TraceRecord {
        TraceRecord {
            gap: 1,
            op,
            addr,
            value: 0,
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(rec(TraceOp::Load, 0x40));
        t.push(rec(TraceOp::Store, 0x80));
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].op, TraceOp::Store);
    }

    #[test]
    fn write_fraction_counts_atomics() {
        let t: Trace = [
            rec(TraceOp::Load, 0),
            rec(TraceOp::Store, 32),
            rec(TraceOp::AtomicAdd, 64),
            rec(TraceOp::Load, 96),
        ]
        .into_iter()
        .collect();
        assert!((t.write_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(Trace::new().write_fraction(), 0.0);
    }

    #[test]
    fn footprint_dedups_lines() {
        let t: Trace = [
            rec(TraceOp::Load, 0),
            rec(TraceOp::Load, 8),
            rec(TraceOp::Load, 40),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.footprint_lines(32), 2);
    }
}
