//! Programmatic cores: small reactive programs whose next operation depends
//! on loaded values. These realise the paper's functional-verification
//! suite (Section 4.3): lock and barrier regressions that exercise
//! coherence between L1s, L2s and memory.

use crate::trace::TraceOp;

/// An operation a program asks its core to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgOp {
    /// Kind.
    pub op: TraceOp,
    /// Byte address.
    pub addr: u64,
    /// Store/add operand.
    pub value: u64,
}

/// A reactive core program: fed the result of its previous operation,
/// yields the next one ( `None` = finished).
pub trait CoreProgram {
    /// The next operation, given the value returned by the previous one
    /// (`None` on the first call).
    fn next(&mut self, last_value: Option<u64>) -> Option<ProgOp>;
}

/// A ticket-lock counter increment program.
///
/// Each core performs `iterations` critical sections: take a ticket with
/// fetch-and-add, spin on `now_serving`, increment the shared counter,
/// release. If coherence is correct, the final counter equals
/// `cores × iterations` exactly — lost updates or stale reads show up as a
/// wrong count.
#[derive(Debug, Clone)]
pub struct TicketLockProgram {
    ticket_addr: u64,
    serving_addr: u64,
    counter_addr: u64,
    iterations: u64,
    state: LockState,
    done: u64,
    my_ticket: u64,
    counter_seen: u64,
}

/// What the previously issued operation was — the incoming `last_value`
/// is interpreted against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockState {
    /// Nothing issued yet.
    Start,
    /// Issued `AtomicAdd(ticket)`: `last_value` is our ticket.
    TookTicket,
    /// Issued `Load(now_serving)`: `last_value` is the serving number.
    SpinRead,
    /// Issued `Load(counter)`: `last_value` is the counter.
    ReadCounter,
    /// Issued `Store(counter)`.
    WroteCounter,
    /// Issued `AtomicAdd(now_serving)` (the release).
    Released,
    /// All iterations done.
    Finished,
}

impl TicketLockProgram {
    /// A program for `iterations` lock-protected increments. All cores must
    /// share the same three addresses.
    pub fn new(ticket_addr: u64, serving_addr: u64, counter_addr: u64, iterations: u64) -> Self {
        TicketLockProgram {
            ticket_addr,
            serving_addr,
            counter_addr,
            iterations,
            state: LockState::Start,
            done: 0,
            my_ticket: 0,
            counter_seen: 0,
        }
    }

    fn take_ticket(&mut self) -> Option<ProgOp> {
        self.state = LockState::TookTicket;
        Some(ProgOp {
            op: TraceOp::AtomicAdd,
            addr: self.ticket_addr,
            value: 1,
        })
    }

    fn spin(&mut self) -> Option<ProgOp> {
        self.state = LockState::SpinRead;
        Some(ProgOp {
            op: TraceOp::Load,
            addr: self.serving_addr,
            value: 0,
        })
    }
}

impl CoreProgram for TicketLockProgram {
    fn next(&mut self, last_value: Option<u64>) -> Option<ProgOp> {
        match self.state {
            LockState::Start => self.take_ticket(),
            LockState::TookTicket => {
                self.my_ticket = last_value.expect("atomic returns the old ticket");
                self.spin()
            }
            LockState::SpinRead => {
                let serving = last_value.expect("load returns a value");
                if serving == self.my_ticket {
                    // Lock acquired: read the protected counter.
                    self.state = LockState::ReadCounter;
                    Some(ProgOp {
                        op: TraceOp::Load,
                        addr: self.counter_addr,
                        value: 0,
                    })
                } else {
                    self.spin()
                }
            }
            LockState::ReadCounter => {
                self.counter_seen = last_value.expect("load returns a value");
                self.state = LockState::WroteCounter;
                Some(ProgOp {
                    op: TraceOp::Store,
                    addr: self.counter_addr,
                    value: self.counter_seen + 1,
                })
            }
            LockState::WroteCounter => {
                self.state = LockState::Released;
                Some(ProgOp {
                    op: TraceOp::AtomicAdd,
                    addr: self.serving_addr,
                    value: 1,
                })
            }
            LockState::Released => {
                self.done += 1;
                if self.done == self.iterations {
                    self.state = LockState::Finished;
                    None
                } else {
                    self.take_ticket()
                }
            }
            LockState::Finished => None,
        }
    }
}

/// A sense-reversing barrier program: each core joins `rounds` barriers by
/// fetch-adding the arrival counter and spinning until all `cores` arrive.
/// Validates that every core observes every arrival.
#[derive(Debug, Clone)]
pub struct BarrierProgram {
    counter_addr: u64,
    cores: u64,
    rounds: u64,
    round: u64,
    spinning: bool,
}

impl BarrierProgram {
    /// A barrier over `cores` cores at `counter_addr`, run `rounds` times.
    pub fn new(counter_addr: u64, cores: u64, rounds: u64) -> Self {
        BarrierProgram {
            counter_addr,
            cores,
            rounds,
            round: 0,
            spinning: false,
        }
    }
}

impl CoreProgram for BarrierProgram {
    fn next(&mut self, last_value: Option<u64>) -> Option<ProgOp> {
        if self.round == self.rounds {
            return None;
        }
        if !self.spinning {
            self.spinning = true;
            return Some(ProgOp {
                op: TraceOp::AtomicAdd,
                addr: self.counter_addr,
                value: 1,
            });
        }
        let v = last_value.expect("spin load returns a value");
        let target = (self.round + 1) * self.cores;
        if v >= target {
            self.round += 1;
            self.spinning = false;
            return self.next(None);
        }
        Some(ProgOp {
            op: TraceOp::Load,
            addr: self.counter_addr,
            value: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sequentially consistent single-threaded interpreter: the weakest
    /// machine a correct program must terminate on.
    fn run_single(prog: &mut dyn CoreProgram, mem: &mut std::collections::HashMap<u64, u64>) {
        let mut last = None;
        let mut steps = 0;
        while let Some(op) = prog.next(last) {
            steps += 1;
            assert!(steps < 100_000, "program diverged");
            let cell = mem.entry(op.addr).or_insert(0);
            last = Some(match op.op {
                TraceOp::Load => *cell,
                TraceOp::Store => {
                    *cell = op.value;
                    op.value
                }
                TraceOp::AtomicAdd => {
                    let old = *cell;
                    *cell = old + op.value;
                    old
                }
            });
        }
    }

    #[test]
    fn single_core_lock_program_counts() {
        let mut mem = std::collections::HashMap::new();
        let mut p = TicketLockProgram::new(0x100, 0x140, 0x180, 5);
        run_single(&mut p, &mut mem);
        assert_eq!(mem[&0x180], 5, "counter");
        assert_eq!(mem[&0x100], 5, "tickets taken");
        assert_eq!(mem[&0x140], 5, "locks released");
    }

    #[test]
    fn interleaved_lock_programs_count_exactly() {
        // Round-robin interpretation of 3 programs over one memory is a
        // legal SC execution; the count must be exact.
        let mut mem = std::collections::HashMap::new();
        let mut progs: Vec<TicketLockProgram> = (0..3)
            .map(|_| TicketLockProgram::new(0x100, 0x140, 0x180, 4))
            .collect();
        let mut last: Vec<Option<u64>> = vec![None; 3];
        let mut live = [true; 3];
        let mut steps = 0;
        while live.iter().any(|&l| l) {
            for i in 0..3 {
                if !live[i] {
                    continue;
                }
                steps += 1;
                assert!(steps < 1_000_000, "diverged");
                match progs[i].next(last[i]) {
                    None => live[i] = false,
                    Some(op) => {
                        let cell = mem.entry(op.addr).or_insert(0);
                        last[i] = Some(match op.op {
                            TraceOp::Load => *cell,
                            TraceOp::Store => {
                                *cell = op.value;
                                op.value
                            }
                            TraceOp::AtomicAdd => {
                                let old = *cell;
                                *cell = old + op.value;
                                old
                            }
                        });
                    }
                }
            }
        }
        assert_eq!(mem[&0x180], 12, "3 cores × 4 iterations");
    }

    #[test]
    fn barrier_program_completes_rounds() {
        let mut mem = std::collections::HashMap::new();
        let mut progs: Vec<BarrierProgram> =
            (0..4).map(|_| BarrierProgram::new(0x200, 4, 3)).collect();
        let mut last: Vec<Option<u64>> = vec![None; 4];
        let mut live = [true; 4];
        let mut steps = 0;
        while live.iter().any(|&l| l) {
            for i in 0..4 {
                if !live[i] {
                    continue;
                }
                steps += 1;
                assert!(steps < 1_000_000, "diverged");
                match progs[i].next(last[i]) {
                    None => live[i] = false,
                    Some(op) => {
                        let cell = mem.entry(op.addr).or_insert(0);
                        last[i] = Some(match op.op {
                            TraceOp::Load => *cell,
                            TraceOp::Store => {
                                *cell = op.value;
                                op.value
                            }
                            TraceOp::AtomicAdd => {
                                let old = *cell;
                                *cell = old + op.value;
                                old
                            }
                        });
                    }
                }
            }
        }
        assert_eq!(mem[&0x200], 12, "4 cores × 3 rounds of arrivals");
    }
}
