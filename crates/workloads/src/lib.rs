//! Workload substrate for the SCORPIO reproduction: memory-operation
//! traces, synthetic generators whose presets mimic the traffic shapes of
//! the paper's SPLASH-2 / PARSEC benchmarks (see DESIGN.md for the
//! substitution rationale), and reactive core programs (ticket locks,
//! barriers) that realise the chip's functional-verification suite
//! (Section 4.3).
//!
//! # Examples
//!
//! ```
//! use scorpio_workloads::{generate, WorkloadParams};
//!
//! let barnes = WorkloadParams::by_name("barnes").unwrap().with_ops(100);
//! let traces = generate(&barnes, 36, 7);
//! assert_eq!(traces.len(), 36);
//! assert!(traces[0].write_fraction() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod program;
mod synthetic;
mod trace;

pub use arrival::{arrival_schedule, ArrivalProcess};
pub use program::{BarrierProgram, CoreProgram, ProgOp, TicketLockProgram};
pub use synthetic::{generate, WorkloadParams};
pub use trace::{Trace, TraceOp, TraceRecord};
