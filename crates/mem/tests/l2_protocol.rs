//! Protocol-level tests of the snoopy L2 + memory controller, with a
//! zero-latency "order broker" standing in for the NoC + notification
//! network: ordered requests are serialized round-robin and delivered to
//! every L2 (with the `own` flag) and the MC; unicast responses are routed
//! directly. This isolates coherence-protocol bugs from network bugs.

use scorpio_coherence::{LineAddr, LineState, MsgKind};
use scorpio_mem::{
    CoreOp, CoreReq, L2Config, L2Out, McConfig, MemoryController, OrderedSnoop, SnoopyL2,
};
use scorpio_noc::{Endpoint, LocalSlot, RouterId};
use scorpio_sim::{Cycle, SimRng};
use std::collections::VecDeque;

struct World {
    l2s: Vec<SnoopyL2>,
    mc: MemoryController,
    now: Cycle,
    /// Snoops in flight: (deliver_at, snoop) delivered to everyone.
    order_wire: VecDeque<(Cycle, scorpio_coherence::CohMsg)>,
    /// Unicast messages in flight.
    uni_wire: VecDeque<(Cycle, Endpoint, scorpio_coherence::CohMsg)>,
    resps: Vec<Vec<scorpio_mem::CoreResp>>,
}

const ORDER_DELAY: u64 = 8;
const UNI_DELAY: u64 = 6;

impl World {
    fn new(n: usize) -> World {
        let mc_ep = Endpoint::mc(RouterId(0));
        let cfg = L2Config::chip(vec![mc_ep]);
        World {
            l2s: (0..n)
                .map(|t| SnoopyL2::new(t as u16, cfg.clone()))
                .collect(),
            mc: MemoryController::new(mc_ep, 0, 1, 32, McConfig::default()),
            now: Cycle::ZERO,
            order_wire: VecDeque::new(),
            uni_wire: VecDeque::new(),
            resps: vec![Vec::new(); n],
        }
    }

    fn step(&mut self) {
        let now = self.now;
        // Deliver due ordered snoops to every L2 (in order) and the MC.
        while self.order_wire.front().is_some_and(|(at, _)| *at <= now) {
            // All L2 snoop queues must have room, else retry next cycle
            // (the NIC would hold the request in its buffers).
            let all_ready = self.l2s.iter().all(|l| l.snoop_ready());
            if !all_ready {
                break;
            }
            let (_, msg) = self.order_wire.pop_front().expect("checked");
            for l2 in &mut self.l2s {
                let own = l2.tile() == msg.requester && msg.kind != MsgKind::WbReq
                    || l2.tile() == msg.requester;
                l2.push_snoop(OrderedSnoop { own, msg });
            }
            self.mc.snoop(OrderedSnoop { own: false, msg }, now);
        }
        // Deliver due unicasts.
        while self.uni_wire.front().is_some_and(|(at, _, _)| *at <= now) {
            let ready = {
                let (_, dest, msg) = self.uni_wire.front().expect("checked");
                match dest.slot {
                    LocalSlot::Tile(_) => {
                        msg.kind != MsgKind::Data || self.l2s[dest.router.index()].resp_ready()
                    }
                    LocalSlot::Mc => true,
                }
            };
            if !ready {
                break;
            }
            let (_, dest, msg) = self.uni_wire.pop_front().expect("checked");
            match dest.slot {
                LocalSlot::Tile(_) => self.l2s[dest.router.index()].push_resp(msg),
                LocalSlot::Mc => self.mc.wb_data(msg, now),
            }
        }
        // Tick controllers and collect outputs.
        for i in 0..self.l2s.len() {
            self.l2s[i].tick(now);
            while let Some(out) = self.l2s[i].pop_out() {
                match out {
                    L2Out::OrderedRequest(msg) => {
                        self.order_wire.push_back((now + ORDER_DELAY, msg));
                    }
                    L2Out::Unicast { dest, msg, .. } => {
                        self.uni_wire.push_back((now + UNI_DELAY, dest, msg));
                    }
                }
            }
            while let Some(r) = self.l2s[i].pop_core_resp() {
                self.resps[i].push(r);
            }
            while self.l2s[i].pop_l1_invalidation().is_some() {}
        }
        self.mc.tick(now);
        while let Some(out) = self.mc.pop_out() {
            self.uni_wire
                .push_back((now + UNI_DELAY, out.dest, out.msg));
        }
        self.now = self.now.next();
    }

    #[allow(dead_code)] // kept: handy when extending these protocol tests
    fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn req(&mut self, tile: usize, op: CoreOp, addr: u64, value: u64, token: u64) {
        let ok = self.l2s[tile].try_core_req(CoreReq {
            op,
            addr,
            value,
            token,
            enqueued: self.now,
            admitted: self.now,
        });
        assert!(ok, "core queue full");
    }

    fn wait_resp(&mut self, tile: usize, token: u64, max: u64) -> scorpio_mem::CoreResp {
        for _ in 0..max {
            if let Some(pos) = self.resps[tile].iter().position(|r| r.token == token) {
                return self.resps[tile].remove(pos);
            }
            self.step();
        }
        panic!("tile {tile} token {token} never completed");
    }

    fn drain(&mut self, max: u64) {
        for _ in 0..max {
            self.step();
            if self.l2s.iter().all(|l| l.is_idle())
                && self.mc.is_idle()
                && self.order_wire.is_empty()
                && self.uni_wire.is_empty()
            {
                return;
            }
        }
        panic!("world failed to drain");
    }
}

#[test]
fn cold_load_served_by_memory() {
    let mut w = World::new(4);
    w.req(0, CoreOp::Load, 0x100, 0, 1);
    let r = w.wait_resp(0, 1, 2000);
    assert_eq!(r.value, 0, "memory default value");
    assert!(!r.hit);
    assert_eq!(w.l2s[0].line_state(LineAddr(0x100)), LineState::S);
    assert_eq!(w.mc.stats.responses.get(), 1);
}

#[test]
fn store_then_remote_load_transfers_on_chip() {
    let mut w = World::new(4);
    w.req(1, CoreOp::Store, 0x200, 42, 1);
    w.wait_resp(1, 1, 2000);
    assert_eq!(w.l2s[1].line_state(LineAddr(0x200)), LineState::M);

    w.req(2, CoreOp::Load, 0x200, 0, 2);
    let r = w.wait_resp(2, 2, 2000);
    assert_eq!(r.value, 42, "dirty data forwarded on chip");
    // Paper's O_D behaviour: the writer stays owner of the dirty line.
    assert_eq!(w.l2s[1].line_state(LineAddr(0x200)), LineState::Od);
    assert_eq!(w.l2s[2].line_state(LineAddr(0x200)), LineState::S);
    // Memory was not involved in the transfer.
    assert_eq!(w.mc.stats.responses.get(), 1, "only the initial GETX fill");
    assert!(w.l2s[1].stats.data_forwards.get() >= 1);
}

#[test]
fn write_migration_invalidates_previous_owner() {
    let mut w = World::new(4);
    w.req(0, CoreOp::Store, 0x300, 1, 1);
    w.wait_resp(0, 1, 2000);
    w.req(3, CoreOp::Store, 0x300, 2, 2);
    w.wait_resp(3, 2, 2000);
    assert_eq!(w.l2s[0].line_state(LineAddr(0x300)), LineState::I);
    assert_eq!(w.l2s[3].line_state(LineAddr(0x300)), LineState::M);
    assert_eq!(w.l2s[3].line_value(LineAddr(0x300)), Some(2));

    // A third reader gets the latest value from tile 3.
    w.req(1, CoreOp::Load, 0x300, 0, 3);
    let r = w.wait_resp(1, 3, 2000);
    assert_eq!(r.value, 2);
}

#[test]
fn atomic_add_is_read_modify_write() {
    let mut w = World::new(2);
    w.req(0, CoreOp::Store, 0x80, 10, 1);
    w.wait_resp(0, 1, 2000);
    w.req(1, CoreOp::AtomicAdd, 0x80, 5, 2);
    let r = w.wait_resp(1, 2, 2000);
    assert_eq!(r.value, 10, "atomic returns the old value");
    assert_eq!(w.l2s[1].line_value(LineAddr(0x80)), Some(15));
}

#[test]
fn capacity_eviction_writes_back_and_refetches() {
    let mut w = World::new(2);
    // The chip L2 is 4-way, 1024 sets: five lines mapping to one set force
    // a dirty eviction. Set index stride: 1024 sets * 32 B = 32 KB.
    let stride = 1024 * 32;
    for k in 0..5u64 {
        w.req(0, CoreOp::Store, k * stride, 100 + k, k);
        w.wait_resp(0, k, 4000);
    }
    assert_eq!(w.l2s[0].stats.writebacks.get(), 1);
    w.drain(4000);
    // The evicted line (LRU: the first one) must be re-servable by memory
    // with the written value.
    w.req(1, CoreOp::Load, 0, 0, 99);
    let r = w.wait_resp(1, 99, 4000);
    assert_eq!(r.value, 100, "writeback value lost");
}

#[test]
fn random_sharing_final_values_match_reference() {
    // A randomized cross-check: several tiles issue random loads/stores to
    // a small shared set of lines; the broker's serialization defines the
    // reference order. At the end, a fresh read of every line must return
    // the value of the last completed store to it.
    let mut w = World::new(4);
    let mut rng = SimRng::seed_from(2024);
    let lines: Vec<u64> = (0..8).map(|k| 0x4000 + k * 32).collect();
    let mut token = 0u64;
    let mut last_store: std::collections::HashMap<u64, u64> = Default::default();
    for _round in 0..40 {
        let tile = rng.gen_range_usize(4);
        let addr = lines[rng.gen_range_usize(lines.len())];
        token += 1;
        if rng.chance(0.5) {
            let value = token * 1000 + tile as u64;
            w.req(tile, CoreOp::Store, addr, value, token);
            w.wait_resp(tile, token, 4000);
            last_store.insert(addr, value);
        } else {
            w.req(tile, CoreOp::Load, addr, 0, token);
            w.wait_resp(tile, token, 4000);
        }
    }
    w.drain(4000);
    for (&addr, &expect) in &last_store {
        token += 1;
        // Read from a tile chosen per line; coherence says any tile agrees.
        let tile = (addr as usize / 32) % 4;
        w.req(tile, CoreOp::Load, addr, 0, token);
        let r = w.wait_resp(tile, token, 4000);
        assert_eq!(r.value, expect, "line {addr:#x} lost its last store");
    }
}

#[test]
fn region_tracker_filters_unrelated_snoops() {
    let mut w = World::new(3);
    // Tile 0 works in one region, tile 1 in another: tile 1's snoops of
    // tile 0's traffic should be filtered.
    w.req(0, CoreOp::Store, 0x10_0000, 1, 1);
    w.wait_resp(0, 1, 2000);
    w.req(1, CoreOp::Store, 0x20_0000, 2, 2);
    w.wait_resp(1, 2, 2000);
    w.drain(2000);
    assert!(
        w.l2s[2].stats.snoops_filtered.get() >= 2,
        "idle tile should filter both snoops"
    );
}
