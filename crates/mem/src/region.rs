//! Region tracker: a RegionScout-style destination snoop filter
//! (Table 1: 4 KB regions, 128 entries).
//!
//! Tracks which 4 KB regions have any line resident in the L2 so incoming
//! snoops to absent regions skip the tag lookup. The tracker is counting
//! and conservative: if the entry table overflows, the spilled regions are
//! kept in an unbounded side table that is *charged as unfiltered* — the
//! filter loses its benefit but never its correctness.

use scorpio_coherence::LineAddr;
use scorpio_sim::stats::Counter;
use std::collections::HashMap;

/// Region tracker statistics.
#[derive(Debug, Clone, Default)]
pub struct RegionTrackerStats {
    /// Snoops skipped thanks to the filter.
    pub filtered: Counter,
    /// Snoops that had to look up the L2 tags.
    pub unfiltered: Counter,
    /// Region insertions that spilled past the entry table.
    pub overflows: Counter,
}

/// The region tracker.
///
/// # Examples
///
/// ```
/// use scorpio_mem::RegionTracker;
/// use scorpio_coherence::LineAddr;
///
/// let mut rt = RegionTracker::new(128);
/// rt.line_filled(LineAddr(0x1040));
/// assert!(rt.may_be_present(LineAddr(0x1000))); // same 4 KB region
/// assert!(!rt.may_be_present(LineAddr(0x9000)));
/// rt.line_evicted(LineAddr(0x1040));
/// assert!(!rt.may_be_present(LineAddr(0x1000)));
/// ```
#[derive(Debug, Clone)]
pub struct RegionTracker {
    entries: HashMap<u64, u32>,
    capacity: usize,
    /// Spill table: regions present in the cache but not representable in
    /// the entry budget; queries touching these count as unfiltered.
    spill: HashMap<u64, u32>,
    /// Statistics.
    pub stats: RegionTrackerStats,
}

impl RegionTracker {
    /// A tracker with `capacity` region entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "region tracker needs capacity");
        RegionTracker {
            entries: HashMap::with_capacity(capacity),
            capacity,
            spill: HashMap::new(),
            stats: RegionTrackerStats::default(),
        }
    }

    /// Records that a line of `addr`'s region is now resident.
    pub fn line_filled(&mut self, addr: LineAddr) {
        let region = addr.region();
        if let Some(count) = self.entries.get_mut(&region) {
            *count += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(region, 1);
        } else {
            self.stats.overflows.incr();
            *self.spill.entry(region).or_insert(0) += 1;
        }
    }

    /// Records that a line of `addr`'s region left the cache.
    ///
    /// # Panics
    ///
    /// Panics if the region was never recorded (an accounting bug).
    pub fn line_evicted(&mut self, addr: LineAddr) {
        let region = addr.region();
        if let Some(count) = self.entries.get_mut(&region) {
            *count -= 1;
            if *count == 0 {
                self.entries.remove(&region);
                // Promote a spilled region into the freed slot.
                if let Some((&r, _)) = self.spill.iter().next() {
                    let c = self.spill.remove(&r).expect("just observed");
                    self.entries.insert(r, c);
                }
            }
            return;
        }
        let count = self
            .spill
            .get_mut(&region)
            .expect("evicted line from untracked region");
        *count -= 1;
        if *count == 0 {
            self.spill.remove(&region);
        }
    }

    /// Snoop-filter query: could a line of `addr`'s region be resident?
    /// `false` means the snoop can safely skip the L2 tags.
    pub fn may_be_present(&mut self, addr: LineAddr) -> bool {
        let region = addr.region();
        if self.entries.contains_key(&region) || self.spill.contains_key(&region) {
            self.stats.unfiltered.incr();
            true
        } else {
            self.stats.filtered.incr();
            false
        }
    }

    /// Regions currently tracked (entry table only).
    pub fn tracked_regions(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_lines_per_region() {
        let mut rt = RegionTracker::new(4);
        rt.line_filled(LineAddr(0x1000));
        rt.line_filled(LineAddr(0x1020));
        rt.line_evicted(LineAddr(0x1000));
        assert!(rt.may_be_present(LineAddr(0x1FE0)));
        rt.line_evicted(LineAddr(0x1020));
        assert!(!rt.may_be_present(LineAddr(0x1FE0)));
    }

    #[test]
    fn overflow_stays_conservative() {
        let mut rt = RegionTracker::new(2);
        rt.line_filled(LineAddr(0x1000));
        rt.line_filled(LineAddr(0x2000));
        rt.line_filled(LineAddr(0x3000)); // spills
        assert_eq!(rt.stats.overflows.get(), 1);
        assert!(
            rt.may_be_present(LineAddr(0x3000)),
            "spilled region must still snoop"
        );
        // Freeing an entry promotes the spilled region.
        rt.line_evicted(LineAddr(0x1000));
        assert_eq!(rt.tracked_regions(), 2);
        assert!(rt.may_be_present(LineAddr(0x3000)));
        assert!(!rt.may_be_present(LineAddr(0x1000)));
    }

    #[test]
    fn stats_count_filter_outcomes() {
        let mut rt = RegionTracker::new(2);
        rt.line_filled(LineAddr(0x1000));
        rt.may_be_present(LineAddr(0x1000));
        rt.may_be_present(LineAddr(0x5000));
        assert_eq!(rt.stats.unfiltered.get(), 1);
        assert_eq!(rt.stats.filtered.get(), 1);
    }

    #[test]
    #[should_panic(expected = "untracked region")]
    fn unbalanced_eviction_panics() {
        let mut rt = RegionTracker::new(2);
        rt.line_evicted(LineAddr(0x1000));
    }
}
