//! Split L1 caches: write-through, no-write-allocate, with an invalidation
//! port (Section 4.1).
//!
//! The e200 cores were not designed for hardware coherence, so the chip
//! adds an invalidation port and runs the L1s write-through under an
//! inclusion requirement: the L2 invalidates L1 lines whenever it loses or
//! evicts a line, so L1 contents are always a subset of clean L2 contents.

use crate::array::{CacheArray, Line};
use scorpio_coherence::{LineAddr, LineState};
use scorpio_sim::stats::Counter;

/// L1 statistics.
#[derive(Debug, Clone, Default)]
pub struct L1Stats {
    /// Load hits.
    pub load_hits: Counter,
    /// Load misses (go to the L2).
    pub load_misses: Counter,
    /// Stores (always written through to the L2).
    pub stores: Counter,
    /// Lines invalidated through the invalidation port.
    pub invalidations: Counter,
}

/// A write-through L1 data (or instruction) cache.
///
/// # Examples
///
/// ```
/// use scorpio_mem::L1Cache;
/// use scorpio_coherence::LineAddr;
///
/// let mut l1 = L1Cache::new(16 * 1024, 4, 32);
/// assert_eq!(l1.load(LineAddr(0x40)), None); // cold miss
/// l1.fill(LineAddr(0x40), 7);
/// assert_eq!(l1.load(LineAddr(0x40)), Some(7));
/// l1.invalidate(LineAddr(0x40));
/// assert_eq!(l1.load(LineAddr(0x40)), None);
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    array: CacheArray,
    /// Statistics.
    pub stats: L1Stats,
}

impl L1Cache {
    /// An L1 of `capacity_bytes` with `ways` associativity (chip: 16 KB,
    /// 4-way, 32-byte lines).
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        L1Cache {
            array: CacheArray::with_capacity(capacity_bytes, ways, line_bytes),
            stats: L1Stats::default(),
        }
    }

    /// Attempts a load; `Some(value)` on hit.
    pub fn load(&mut self, addr: LineAddr) -> Option<u64> {
        match self.array.lookup(addr) {
            Some(line) => {
                self.stats.load_hits.incr();
                Some(line.value)
            }
            None => {
                self.stats.load_misses.incr();
                None
            }
        }
    }

    /// A store: updates the local copy if present (write-through — the
    /// caller must also send the store to the L2). No-write-allocate:
    /// misses do not fill.
    pub fn store(&mut self, addr: LineAddr, value: u64) {
        self.stats.stores.incr();
        if let Some(line) = self.array.lookup_mut(addr) {
            line.value = value;
        }
    }

    /// Fills a line after an L2 response. Returns the evicted victim
    /// address, if any (clean — write-through needs no writeback).
    pub fn fill(&mut self, addr: LineAddr, value: u64) -> Option<LineAddr> {
        if let Some(line) = self.array.lookup_mut(addr) {
            line.value = value;
            return None;
        }
        self.array
            .insert(Line {
                addr,
                state: LineState::S,
                value,
            })
            .map(|victim| victim.addr)
    }

    /// The invalidation port: removes `addr` if present.
    pub fn invalidate(&mut self, addr: LineAddr) {
        if self.array.remove(addr).is_some() {
            self.stats.invalidations.incr();
        }
    }

    /// Whether `addr` is resident (inclusion checks in tests).
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.array.peek(addr).is_some()
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_through_updates_local_copy() {
        let mut l1 = L1Cache::new(1024, 2, 32);
        l1.fill(LineAddr(0x40), 1);
        l1.store(LineAddr(0x40), 2);
        assert_eq!(l1.load(LineAddr(0x40)), Some(2));
        assert_eq!(l1.stats.stores.get(), 1);
    }

    #[test]
    fn no_write_allocate() {
        let mut l1 = L1Cache::new(1024, 2, 32);
        l1.store(LineAddr(0x80), 9);
        assert!(!l1.contains(LineAddr(0x80)));
    }

    #[test]
    fn invalidation_port() {
        let mut l1 = L1Cache::new(1024, 2, 32);
        l1.fill(LineAddr(0x40), 1);
        l1.invalidate(LineAddr(0x40));
        assert!(!l1.contains(LineAddr(0x40)));
        assert_eq!(l1.stats.invalidations.get(), 1);
        // Invalidating an absent line is a no-op.
        l1.invalidate(LineAddr(0x40));
        assert_eq!(l1.stats.invalidations.get(), 1);
    }

    #[test]
    fn fill_reports_victim() {
        let mut l1 = L1Cache::new(64, 2, 32); // one set, two ways
        assert_eq!(l1.fill(LineAddr(0x00), 0), None);
        assert_eq!(l1.fill(LineAddr(0x40), 1), None);
        l1.load(LineAddr(0x00));
        let victim = l1.fill(LineAddr(0x80), 2);
        assert_eq!(victim, Some(LineAddr(0x40)));
        assert_eq!(l1.len(), 2);
        assert!(!l1.is_empty());
    }

    #[test]
    fn refill_same_line_updates_value() {
        let mut l1 = L1Cache::new(1024, 2, 32);
        l1.fill(LineAddr(0x40), 1);
        assert_eq!(l1.fill(LineAddr(0x40), 5), None);
        assert_eq!(l1.load(LineAddr(0x40)), Some(5));
    }

    #[test]
    fn hit_miss_statistics() {
        let mut l1 = L1Cache::new(1024, 2, 32);
        l1.load(LineAddr(0));
        l1.fill(LineAddr(0), 3);
        l1.load(LineAddr(0));
        assert_eq!(l1.stats.load_misses.get(), 1);
        assert_eq!(l1.stats.load_hits.get(), 1);
    }
}
