//! Set-associative cache arrays with LRU replacement.

use scorpio_coherence::{LineAddr, LineState};

/// One resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// The line address (full address, offset stripped).
    pub addr: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// Logical data value (stands in for the 32-byte contents).
    pub value: u64,
}

#[derive(Debug, Clone)]
struct Way {
    line: Line,
    last_use: u64,
}

/// A set-associative, LRU-replaced cache array.
///
/// Pure storage: coherence decisions live in the controllers. Addresses
/// are mapped by line address; `line_bytes` fixes the offset width.
///
/// # Examples
///
/// ```
/// use scorpio_mem::{CacheArray, Line};
/// use scorpio_coherence::{LineAddr, LineState};
///
/// let mut c = CacheArray::new(4, 2, 32);
/// assert!(c.lookup(LineAddr(0x40)).is_none());
/// let evicted = c.insert(Line { addr: LineAddr(0x40), state: LineState::S, value: 7 });
/// assert!(evicted.is_none());
/// assert_eq!(c.lookup(LineAddr(0x40)).unwrap().value, 7);
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<Way>>,
    ways: usize,
    line_bytes: u64,
    use_counter: u64,
}

impl CacheArray {
    /// An array with `sets` sets of `ways` ways and `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two and both counts are non-zero.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheArray {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            line_bytes,
            use_counter: 0,
        }
    }

    /// Sizes an array from a capacity budget: `capacity_bytes / line_bytes`
    /// lines at the given associativity (sets rounded down to a power of
    /// two).
    pub fn with_capacity(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        let lines = (capacity_bytes / line_bytes).max(1) as usize;
        let sets = (lines / ways).max(1);
        let sets = if sets.is_power_of_two() {
            sets
        } else {
            sets.next_power_of_two() / 2
        };
        CacheArray::new(sets.max(1), ways, line_bytes)
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        ((addr.0 / self.line_bytes) % self.sets.len() as u64) as usize
    }

    /// Looks up `addr`, updating LRU on hit.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<&Line> {
        self.use_counter += 1;
        let counter = self.use_counter;
        let set = self.set_index(addr);
        self.sets[set]
            .iter_mut()
            .find(|w| w.line.addr == addr)
            .map(|w| {
                w.last_use = counter;
                &w.line
            })
    }

    /// Looks up `addr` mutably, updating LRU on hit.
    pub fn lookup_mut(&mut self, addr: LineAddr) -> Option<&mut Line> {
        self.use_counter += 1;
        let counter = self.use_counter;
        let set = self.set_index(addr);
        self.sets[set]
            .iter_mut()
            .find(|w| w.line.addr == addr)
            .map(|w| {
                w.last_use = counter;
                &mut w.line
            })
    }

    /// Peeks without touching LRU (for snoops that miss).
    pub fn peek(&self, addr: LineAddr) -> Option<&Line> {
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .find(|w| w.line.addr == addr)
            .map(|w| &w.line)
    }

    /// Inserts `line`, returning the evicted victim if the set was full.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (callers must use
    /// [`CacheArray::lookup_mut`] for updates).
    pub fn insert(&mut self, line: Line) -> Option<Line> {
        self.use_counter += 1;
        let counter = self.use_counter;
        let set_idx = self.set_index(line.addr);
        let set = &mut self.sets[set_idx];
        assert!(
            !set.iter().any(|w| w.line.addr == line.addr),
            "line {} already resident",
            line.addr
        );
        if set.len() < self.ways {
            set.push(Way {
                line,
                last_use: counter,
            });
            return None;
        }
        let lru = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_use)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        let victim = std::mem::replace(
            &mut set[lru],
            Way {
                line,
                last_use: counter,
            },
        );
        Some(victim.line)
    }

    /// Removes `addr` from the array, returning the line if present.
    pub fn remove(&mut self, addr: LineAddr) -> Option<Line> {
        let set = self.set_index(addr);
        let pos = self.sets[set].iter().position(|w| w.line.addr == addr)?;
        Some(self.sets[set].swap_remove(pos).line)
    }

    /// Iterates over all resident lines.
    pub fn lines(&self) -> impl Iterator<Item = &Line> {
        self.sets.iter().flatten().map(|w| &w.line)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(k: u64, state: LineState, value: u64) -> Line {
        Line {
            addr: LineAddr(k * 32),
            state,
            value,
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = CacheArray::new(2, 2, 32);
        c.insert(line(1, LineState::S, 11));
        c.insert(line(2, LineState::M, 22));
        assert_eq!(c.lookup(LineAddr(32)).unwrap().value, 11);
        assert_eq!(c.lookup(LineAddr(64)).unwrap().state, LineState::M);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn evicts_lru_within_set() {
        let mut c = CacheArray::new(1, 2, 32);
        c.insert(line(1, LineState::S, 1));
        c.insert(line(2, LineState::S, 2));
        c.lookup(LineAddr(32)); // touch line 1
        let victim = c.insert(line(3, LineState::S, 3)).expect("eviction");
        assert_eq!(victim.addr, LineAddr(64));
        assert!(c.peek(LineAddr(32)).is_some());
        assert!(c.peek(LineAddr(64)).is_none());
    }

    #[test]
    fn sets_partition_addresses() {
        let mut c = CacheArray::new(2, 1, 32);
        // Lines 0 and 2 map to set 0; line 1 maps to set 1.
        c.insert(line(0, LineState::S, 0));
        c.insert(line(1, LineState::S, 1));
        let v = c
            .insert(line(2, LineState::S, 2))
            .expect("conflict eviction");
        assert_eq!(v.addr, LineAddr(0));
        assert!(c.peek(LineAddr(32)).is_some());
    }

    #[test]
    fn remove_and_mutate() {
        let mut c = CacheArray::new(1, 2, 32);
        c.insert(line(1, LineState::M, 5));
        c.lookup_mut(LineAddr(32)).unwrap().value = 6;
        assert_eq!(c.peek(LineAddr(32)).unwrap().value, 6);
        let removed = c.remove(LineAddr(32)).unwrap();
        assert_eq!(removed.value, 6);
        assert!(c.remove(LineAddr(32)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_sizing_matches_chip_l2() {
        // 128 KB, 4-way, 32 B lines = 4096 lines, 1024 sets.
        let c = CacheArray::with_capacity(128 * 1024, 4, 32);
        assert_eq!(c.capacity_lines(), 4096);
        assert_eq!(c.line_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut c = CacheArray::new(1, 2, 32);
        c.insert(line(1, LineState::S, 1));
        c.insert(line(1, LineState::S, 1));
    }
}
