//! Cache hierarchy and memory substrate for the SCORPIO reproduction:
//! set-associative arrays, write-through split L1s with invalidation ports,
//! the snoopy MOSI (+O_D) L2 controller with RSHRs, FID lists and a
//! writeback buffer, the region-tracker snoop filter, and the
//! ordered-stream memory controllers (Section 4 of the paper).
//!
//! # Examples
//!
//! A miss flowing through the L2 by hand (the full system wires these
//! queues to the NIC):
//!
//! ```
//! use scorpio_mem::{CoreOp, CoreReq, L2Config, L2Out, SnoopyL2};
//! use scorpio_coherence::MsgKind;
//! use scorpio_noc::{Endpoint, RouterId};
//! use scorpio_sim::Cycle;
//!
//! let mc = vec![Endpoint::mc(RouterId(0))];
//! let mut l2 = SnoopyL2::new(0, L2Config::chip(mc));
//! l2.try_core_req(CoreReq { op: CoreOp::Load, addr: 0x80, value: 0, token: 1,
//!                           enqueued: Cycle::ZERO, admitted: Cycle::ZERO });
//! let mut now = Cycle::ZERO;
//! // Let the request reach the outbox.
//! for _ in 0..32 {
//!     l2.tick(now);
//!     now = now.next();
//! }
//! let out = l2.pop_out().expect("miss issues an ordered request");
//! let req = match out { L2Out::OrderedRequest(m) => m, _ => panic!() };
//! assert_eq!(req.kind, MsgKind::GetS);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod l1;
mod l2;
mod mc;
mod region;

pub use array::{CacheArray, Line};
pub use l1::{L1Cache, L1Stats};
pub use l2::{
    CoreOp, CoreReq, CoreResp, L2Config, L2Out, L2Stats, MissRecord, MissSpan, OrderedSnoop,
    ServedBy, SnoopyL2,
};
pub use mc::{McConfig, McOut, McStats, MemoryController};
pub use region::{RegionTracker, RegionTrackerStats};
