//! The private, inclusive, snoopy MOSI L2 cache controller (Section 4.2).
//!
//! The controller consumes three input streams — core requests from the
//! AHB side, *globally ordered* snoops from the NIC, and unordered data
//! responses — and produces ordered coherence requests, unicast responses
//! and core replies. Key mechanisms reproduced from the paper:
//!
//! * **O_D state**: dirty data stays on chip across read sharing; memory is
//!   written only on eviction.
//! * **RSHR** (request status holding registers): bounded outstanding
//!   misses; each tagged with the "request entry ID" that responses and
//!   forwards match on.
//! * **FID lists**: snoops that hit a pending write are recorded, not
//!   blocked; the completed write forwards updated data to every recorded
//!   requester. The list closes at the first GETX (ownership moves on).
//! * **Writeback buffer**: evicted dirty lines keep answering snoops until
//!   their WbReq is globally ordered; a GETX ordered before the WbReq
//!   squashes it (the memory controller ignores the stale writeback).
//! * **Region tracker**: snoops to regions with no resident lines skip the
//!   tag array.
//! * **Pipelining switch**: models Figure 10's pipelined vs non-pipelined
//!   uncore (initiation interval 1 vs full occupancy per access).

use crate::array::{CacheArray, Line};
use crate::region::RegionTracker;
use scorpio_coherence::{
    fill_state, snoop_transition, CohMsg, FidList, FidPush, LineAddr, LineState, MsgKind,
};
use scorpio_noc::Endpoint;
use scorpio_sim::stats::{Accumulator, Counter, LogHistogram};
use scorpio_sim::{Cycle, Fifo};
use std::collections::VecDeque;

/// L2 configuration (defaults: the chip's 128 KB 4-way L2, 10-cycle access,
/// 2 RSHRs matching the core's two outstanding AHB transactions).
#[derive(Debug, Clone)]
pub struct L2Config {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles.
    pub latency: u64,
    /// Initiation interval 1 when true; full occupancy per access when
    /// false (Figure 10).
    pub pipelined: bool,
    /// Outstanding-miss registers.
    pub rshr_entries: usize,
    /// FID-list capacity per pending write.
    pub fid_capacity: usize,
    /// Writeback buffer entries.
    pub wb_entries: usize,
    /// Region-tracker entries (`None` disables snoop filtering).
    pub region_entries: Option<usize>,
    /// Input queue depths (core, snoop, response).
    pub queue_depth: usize,
    /// The memory-controller endpoints, for writeback routing
    /// (line-interleaved).
    pub mc_endpoints: Vec<Endpoint>,
}

impl L2Config {
    /// The chip configuration, given the memory-controller endpoints.
    pub fn chip(mc_endpoints: Vec<Endpoint>) -> Self {
        L2Config {
            capacity_bytes: 128 * 1024,
            ways: 4,
            line_bytes: 32,
            latency: 10,
            pipelined: true,
            rshr_entries: 2,
            fid_capacity: 4,
            wb_entries: 2,
            region_entries: Some(128),
            queue_depth: 4,
            mc_endpoints,
        }
    }

    /// The MC endpoint responsible for `addr`.
    ///
    /// # Panics
    ///
    /// Panics if no MC endpoints were configured.
    pub fn mc_for(&self, addr: LineAddr) -> Endpoint {
        assert!(!self.mc_endpoints.is_empty(), "no memory controllers");
        let idx = (addr.0 / self.line_bytes) as usize % self.mc_endpoints.len();
        self.mc_endpoints[idx]
    }
}

/// A core-side operation (post-L1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreOp {
    /// Read a line.
    Load,
    /// Write a line (write-through from the L1).
    Store,
    /// Atomic fetch-and-add (lock/barrier support, Section 4.3 tests).
    AtomicAdd,
}

/// A request from the core/L1 into the L2.
#[derive(Debug, Clone, Copy)]
pub struct CoreReq {
    /// Operation.
    pub op: CoreOp,
    /// Byte address (the L2 masks it to a line).
    pub addr: u64,
    /// Store/add operand.
    pub value: u64,
    /// Caller-chosen id echoed in the reply.
    pub token: u64,
    /// Arrival timestamp (service-latency accounting). Under open-loop
    /// injection this is the request's theoretical arrival cycle, so
    /// recorded latencies are sojourn times; closed-loop callers pass the
    /// issue cycle (equal to `admitted`).
    pub enqueued: Cycle,
    /// Cycle the request left the core's source queue and was handed to
    /// the L2. `admitted - enqueued` is the source-queue wait (0 in
    /// closed-loop mode).
    pub admitted: Cycle,
}

/// The L2's reply to the core.
#[derive(Debug, Clone, Copy)]
pub struct CoreResp {
    /// Echoed token.
    pub token: u64,
    /// Loaded value (loads/atomics) or the stored value.
    pub value: u64,
    /// The line this op touched (for L1 fills).
    pub addr: LineAddr,
    /// Whether the op hit in the L2.
    pub hit: bool,
    /// Whether the line is resident in the L2 after this op — `false` for
    /// fills discarded by a later-ordered GETX. The L1 must only fill when
    /// this is true (inclusion).
    pub installed: bool,
}

/// A globally ordered snoop delivered by the NIC.
#[derive(Debug, Clone, Copy)]
pub struct OrderedSnoop {
    /// Whether this is the L2's own request coming back in order.
    pub own: bool,
    /// The coherence request.
    pub msg: CohMsg,
}

/// Messages leaving the L2 toward the NIC.
#[derive(Debug, Clone, Copy)]
pub enum L2Out {
    /// A coherence request needing global ordering (GetS/GetX/WbReq).
    OrderedRequest(CohMsg),
    /// A unicast message; `data_sized` selects the multi-flit data format.
    Unicast {
        /// Destination endpoint.
        dest: Endpoint,
        /// The message.
        msg: CohMsg,
        /// Cache-line-sized (multi-flit) packet.
        data_sized: bool,
    },
}

/// Who supplied the data for a completed miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Another cache (on-chip transfer).
    Cache,
    /// A memory controller.
    Memory,
}

/// Completion record for one miss (latency-breakdown reporting).
#[derive(Debug, Clone, Copy)]
pub struct MissRecord {
    /// Cycles from enqueue to core reply.
    pub total: u64,
    /// Cycles from request issue to own ordered observation.
    pub ordering: u64,
    /// Cycles from request issue to data arrival.
    pub data_wait: u64,
    /// Who responded.
    pub served_by: ServedBy,
}

/// One completed coherence transaction's lifecycle, as absolute cycle
/// stamps (span recording — [`SnoopyL2::enable_spans`]).
///
/// The stamps are monotone (`enqueued ≤ admitted ≤ issue ≤ inject ≤
/// popped ≤ ordered ≤ retire`, `data ≤ retire`), so the seven phase
/// accessors partition the end-to-end latency exactly: their sum equals
/// [`MissSpan::total`], and `inject_wait + flight + commit` equals the
/// ordering-delay sample the scalar report records.
#[derive(Debug, Clone, Copy)]
pub struct MissSpan {
    /// The requesting tile.
    pub tile: u16,
    /// The missed line.
    pub addr: LineAddr,
    /// `GetS` or `GetX`.
    pub kind: MsgKind,
    /// Who supplied the data.
    pub served_by: ServedBy,
    /// The request arrived (open loop: its theoretical arrival cycle;
    /// closed loop: the issue cycle, making the source phase 0).
    pub enqueued: u64,
    /// The request left the core's source queue into the L2.
    pub admitted: u64,
    /// L2 allocated the RSHR and emitted the ordered request.
    pub issue: u64,
    /// The request left the L2 outbox into the interconnect layer.
    pub inject: u64,
    /// The own ordered observation left the NIC / reorder buffer.
    pub popped: u64,
    /// The L2 pipeline applied the own ordered observation.
    pub ordered: u64,
    /// The data response arrived (may precede `ordered`).
    pub data: u64,
    /// The miss completed and the core reply was enqueued.
    pub retire: u64,
}

impl MissSpan {
    /// Phase 0 — source wait: arrival → release from the source queue
    /// (0 for closed-loop traffic, where arrival and release coincide).
    pub fn source(&self) -> u64 {
        self.admitted - self.enqueued
    }

    /// Phase 1 — queueing: source-queue release → RSHR allocation.
    pub fn queue(&self) -> u64 {
        self.issue - self.admitted
    }

    /// Phase 2 — injection wait: RSHR allocation → network injection.
    pub fn inject_wait(&self) -> u64 {
        self.inject - self.issue
    }

    /// Phase 3 — flight: network injection → own ordered pop.
    pub fn flight(&self) -> u64 {
        self.popped - self.inject
    }

    /// Phase 4 — commit: own ordered pop → L2 applies the observation.
    pub fn commit(&self) -> u64 {
        self.ordered - self.popped
    }

    /// Phase 5 — data wait: ordering done → data arrival (0 when the
    /// data raced ahead of the ordered observation).
    pub fn data_wait(&self) -> u64 {
        self.data.max(self.ordered) - self.ordered
    }

    /// Phase 6 — fill: both prerequisites in hand → core reply.
    pub fn fill(&self) -> u64 {
        self.retire - self.data.max(self.ordered)
    }

    /// End-to-end latency; equals the sum of the seven phases and the
    /// service-latency sample the scalar stats record for this miss.
    pub fn total(&self) -> u64 {
        self.retire - self.enqueued
    }

    /// Ordering delay (`issue → ordered`); equals
    /// `inject_wait + flight + commit` and the ordering-delay sample the
    /// scalar stats record for this miss.
    pub fn ordering(&self) -> u64 {
        self.ordered - self.issue
    }
}

/// L2 statistics.
#[derive(Debug, Clone, Default)]
pub struct L2Stats {
    /// Core requests that hit with sufficient permission.
    pub hits: Counter,
    /// Core requests that missed (or needed an upgrade).
    pub misses: Counter,
    /// Remote snoops processed against the tag array.
    pub snoops: Counter,
    /// Snoops skipped by the region tracker.
    pub snoops_filtered: Counter,
    /// Data responses sent to other caches (cache-to-cache transfers).
    pub data_forwards: Counter,
    /// Snoops recorded in FID lists.
    pub fid_recorded: Counter,
    /// Snoops stalled on a full FID list.
    pub fid_stalls: Counter,
    /// Dirty evictions (writebacks issued).
    pub writebacks: Counter,
    /// Writebacks squashed by an earlier-ordered GETX.
    pub wb_squashed: Counter,
    /// Fills discarded because a later-ordered GETX already invalidated
    /// them.
    pub invalidated_fills: Counter,
    /// Service latency of every core request (enqueue → reply).
    pub service_latency: Accumulator,
    /// Latency of misses served by other caches.
    pub cache_served_latency: Accumulator,
    /// Latency of misses served by memory.
    pub memory_served_latency: Accumulator,
    /// Ordering delay (issue → own ordered observation).
    pub ordering_delay: Accumulator,
    /// Log-bucketed service-latency distribution; populated only when the
    /// observability layer enables histograms ([`L2Stats::enable_histograms`]).
    pub service_hist: Option<Box<LogHistogram>>,
    /// Log-bucketed ordering-delay distribution; same gating.
    pub ordering_hist: Option<Box<LogHistogram>>,
}

impl L2Stats {
    /// Installs the latency histograms so subsequent recordings populate
    /// them. A no-op for simulated behavior: histograms mirror the
    /// accumulators' inputs without touching any decision path.
    pub fn enable_histograms(&mut self) {
        self.service_hist = Some(Box::default());
        self.ordering_hist = Some(Box::default());
    }
}

#[derive(Debug, Clone)]
struct RshrEntry {
    addr: LineAddr,
    kind: MsgKind,
    op: CoreOp,
    token: u64,
    operand: u64,
    ordered: bool,
    data: Option<u64>,
    fids: FidList,
    invalidate_on_fill: bool,
    fill_blocked: bool,
    served_by: ServedBy,
    enqueued: Cycle,
    admitted: Cycle,
    t_issue: Cycle,
    t_inject: Option<Cycle>,
    t_popped: Option<Cycle>,
    t_ordered: Option<Cycle>,
    t_data: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct WbEntry {
    addr: LineAddr,
    value: u64,
    squashed: bool,
}

/// Per-class pipeline stages, mirroring the separate ACE channels: a snoop
/// stalled on a full FID list must never block the data responses that
/// complete the pending write (that would deadlock the forwarding chain).
#[derive(Debug, Default)]
struct Stages {
    resps: VecDeque<(Cycle, CohMsg)>,
    snoops: VecDeque<(Cycle, OrderedSnoop)>,
    cores: VecDeque<(Cycle, CoreReq)>,
}

impl Stages {
    fn len(&self) -> usize {
        self.resps.len() + self.snoops.len() + self.cores.len()
    }
}

/// The snoopy L2 cache controller for one tile.
#[derive(Debug)]
pub struct SnoopyL2 {
    tile: u16,
    cfg: L2Config,
    array: CacheArray,
    region: Option<RegionTracker>,
    rshr: Vec<Option<RshrEntry>>,
    wb_buf: Vec<WbEntry>,
    core_q: Fifo<CoreReq>,
    snoop_q: Fifo<OrderedSnoop>,
    resp_q: Fifo<CohMsg>,
    stage: Stages,
    outbox: VecDeque<L2Out>,
    core_resps: VecDeque<CoreResp>,
    l1_invalidations: VecDeque<LineAddr>,
    miss_records: VecDeque<MissRecord>,
    record_spans: bool,
    spans: Vec<MissSpan>,
    span_hits: LogHistogram,
    busy_until: Cycle,
    /// Statistics.
    pub stats: L2Stats,
}

impl SnoopyL2 {
    /// A controller for tile `tile` with configuration `cfg`.
    pub fn new(tile: u16, cfg: L2Config) -> Self {
        SnoopyL2 {
            tile,
            array: CacheArray::with_capacity(cfg.capacity_bytes, cfg.ways, cfg.line_bytes),
            region: cfg.region_entries.map(RegionTracker::new),
            rshr: vec![None; cfg.rshr_entries],
            wb_buf: Vec::with_capacity(cfg.wb_entries),
            core_q: Fifo::bounded(cfg.queue_depth),
            snoop_q: Fifo::bounded(cfg.queue_depth),
            resp_q: Fifo::bounded(cfg.queue_depth),
            stage: Stages::default(),
            outbox: VecDeque::new(),
            core_resps: VecDeque::new(),
            l1_invalidations: VecDeque::new(),
            miss_records: VecDeque::new(),
            record_spans: false,
            spans: Vec::new(),
            span_hits: LogHistogram::new(),
            busy_until: Cycle::ZERO,
            stats: L2Stats::default(),
            cfg,
        }
    }

    /// This tile's id.
    pub fn tile(&self) -> u16 {
        self.tile
    }

    /// The configuration.
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Offers a core request. Returns `false` (and leaves the caller to
    /// retry) when the input queue is full.
    pub fn try_core_req(&mut self, req: CoreReq) -> bool {
        self.core_q.push(req).is_ok()
    }

    /// Whether the snoop input queue can take another ordered request.
    pub fn snoop_ready(&self) -> bool {
        !self.snoop_q.is_full()
    }

    /// Delivers one globally ordered snoop (caller must check
    /// [`SnoopyL2::snoop_ready`]).
    ///
    /// # Panics
    ///
    /// Panics if the snoop queue is full.
    pub fn push_snoop(&mut self, snoop: OrderedSnoop) {
        self.snoop_q
            .push(snoop)
            .unwrap_or_else(|_| panic!("snoop queue overflow: check snoop_ready first"));
    }

    /// Whether the response input queue has room.
    pub fn resp_ready(&self) -> bool {
        !self.resp_q.is_full()
    }

    /// Delivers one unordered response (data).
    ///
    /// # Panics
    ///
    /// Panics if the response queue is full.
    pub fn push_resp(&mut self, msg: CohMsg) {
        self.resp_q
            .push(msg)
            .unwrap_or_else(|_| panic!("resp queue overflow: check resp_ready first"));
    }

    /// Next outgoing network message, if any (peek).
    pub fn peek_out(&self) -> Option<&L2Out> {
        self.outbox.front()
    }

    /// Consumes the outgoing message just peeked.
    pub fn pop_out(&mut self) -> Option<L2Out> {
        self.outbox.pop_front()
    }

    /// Next core reply, if any.
    pub fn pop_core_resp(&mut self) -> Option<CoreResp> {
        self.core_resps.pop_front()
    }

    /// Next L1 invalidation (inclusion), if any.
    pub fn pop_l1_invalidation(&mut self) -> Option<LineAddr> {
        self.l1_invalidations.pop_front()
    }

    /// Next completed-miss latency record, if any.
    pub fn pop_miss_record(&mut self) -> Option<MissRecord> {
        self.miss_records.pop_front()
    }

    /// Enables per-transaction lifecycle spans. Like the histograms, a
    /// no-op for simulated behavior: spans only mirror timestamps the
    /// controller already tracks.
    pub fn enable_spans(&mut self) {
        self.record_spans = true;
    }

    /// Stamps the network-injection cycle on RSHR entry `tag` (the cycle
    /// the ordered request left the L2 outbox). Called by the system at
    /// the inject site; a no-op unless spans are enabled.
    pub fn stamp_inject(&mut self, tag: u8, now: Cycle) {
        if !self.record_spans {
            return;
        }
        if let Some(entry) = self.rshr[tag as usize].as_mut() {
            entry.t_inject = Some(now);
        }
    }

    /// Stamps the own-ordered-pop cycle on RSHR entry `tag` (the cycle
    /// the own ordered observation left the NIC or reorder buffer toward
    /// the snoop queue). A no-op unless spans are enabled.
    pub fn stamp_popped(&mut self, tag: u8, now: Cycle) {
        if !self.record_spans {
            return;
        }
        if let Some(entry) = self.rshr[tag as usize].as_mut() {
            entry.t_popped = Some(now);
        }
    }

    /// The completed-transaction spans recorded so far, in retire order.
    pub fn spans(&self) -> &[MissSpan] {
        &self.spans
    }

    /// The hit-latency histogram spans record beside the miss spans, so
    /// span consumers can rebuild the full service-latency distribution
    /// (misses via spans + hits via this histogram).
    pub fn span_hits(&self) -> &LogHistogram {
        &self.span_hits
    }

    /// Whether the queues toward the core side are drained too: no
    /// completion or L1-inclusion invalidation waiting to be popped. An
    /// idle L2 can still hold these (a snoop's invalidation lands after
    /// the tile's pop loop ran), so the skip-idle-tiles engine checks both
    /// before letting a tile sleep.
    pub fn outputs_drained(&self) -> bool {
        self.core_resps.is_empty() && self.l1_invalidations.is_empty()
    }

    /// Whether the controller has no in-flight work (drained).
    pub fn is_idle(&self) -> bool {
        self.core_q.is_empty()
            && self.snoop_q.is_empty()
            && self.resp_q.is_empty()
            && self.stage.len() == 0
            && self.outbox.is_empty()
            && self.rshr.iter().all(Option::is_none)
            && self.wb_buf.is_empty()
    }

    /// One cycle: apply due staged items, retry blocked fills, accept one
    /// new input.
    pub fn tick(&mut self, now: Cycle) {
        self.apply_due(now);
        self.retry_blocked_fills(now);
        self.accept_one(now);
    }

    fn apply_due(&mut self, now: Cycle) {
        // Responses first: they complete pending writes and drain FIDs.
        while self.stage.resps.front().is_some_and(|(r, _)| *r <= now) {
            let (_, msg) = self.stage.resps.pop_front().expect("checked");
            self.apply_resp(msg, now);
        }
        // Snoops in global order; a FID-full stall blocks only this class.
        while self.stage.snoops.front().is_some_and(|(r, _)| *r <= now) {
            let (_, snoop) = self.stage.snoops.pop_front().expect("checked");
            if !self.apply_snoop(snoop, now) {
                self.stats.fid_stalls.incr();
                self.stage.snoops.push_front((now.next(), snoop));
                break;
            }
        }
        while self.stage.cores.front().is_some_and(|(r, _)| *r <= now) {
            let (_, req) = self.stage.cores.pop_front().expect("checked");
            self.apply_core(req, now);
        }
    }

    fn accept_one(&mut self, now: Cycle) {
        if !self.cfg.pipelined && now < self.busy_until {
            return;
        }
        let ready = now + self.cfg.latency;
        if !self.resp_q.is_empty() {
            let msg = self.resp_q.pop().expect("checked");
            self.stage.resps.push_back((ready, msg));
        } else if !self.snoop_q.is_empty() {
            let snoop = self.snoop_q.pop().expect("checked");
            self.stage.snoops.push_back((ready, snoop));
        } else if self.core_accept_ok() {
            let req = self.core_q.pop().expect("checked");
            self.stage.cores.push_back((ready, req));
        } else {
            return;
        }
        self.busy_until = now + self.cfg.latency;
    }

    /// Whether the head core request may enter the pipeline: needs a free
    /// RSHR (unless it could hit) and no conflicting pending miss or
    /// writeback on the same line.
    fn core_accept_ok(&mut self) -> bool {
        let Some(req) = self.core_q.front() else {
            return false;
        };
        let line = LineAddr::containing(req.addr, self.cfg.line_bytes);
        if self.rshr.iter().flatten().any(|e| e.addr == line) {
            return false;
        }
        if self.wb_buf.iter().any(|w| w.addr == line) {
            return false;
        }
        // Same-line requests still in the stage pipeline count too —
        // otherwise two RSHRs for one line can be allocated back to back.
        if self
            .stage
            .cores
            .iter()
            .any(|(_, r)| LineAddr::containing(r.addr, self.cfg.line_bytes) == line)
        {
            return false;
        }
        // A potential miss needs a free RSHR slot; hits do not. Being
        // conservative (requiring a slot even for hits) would deadlock a
        // two-outstanding core, so check the array without LRU update.
        let hit = self.array.peek(line).map(|l| {
            matches!(
                (req.op, l.state.can_write()),
                (CoreOp::Load, _) | (CoreOp::Store, true) | (CoreOp::AtomicAdd, true)
            ) && l.state.can_read()
        });
        if hit == Some(true) {
            return true;
        }
        self.rshr.iter().any(Option::is_none)
    }

    fn apply_resp(&mut self, msg: CohMsg, now: Cycle) {
        assert_eq!(msg.kind, MsgKind::Data, "L2 only receives data responses");
        let tag = msg.req_tag as usize;
        let entry = self.rshr[tag]
            .as_mut()
            .unwrap_or_else(|| panic!("data for free RSHR tag {tag}"));
        assert_eq!(entry.addr, msg.addr, "data for wrong line");
        assert!(
            entry.data.is_none(),
            "duplicate data response for {} (two responders)",
            msg.addr
        );
        entry.data = Some(msg.value);
        entry.t_data = Some(now);
        entry.served_by = if msg.sender.slot == scorpio_noc::LocalSlot::Mc {
            ServedBy::Memory
        } else {
            ServedBy::Cache
        };
        self.try_complete(tag, now);
    }

    /// Applies one ordered snoop; returns `false` to stall (FID list full).
    fn apply_snoop(&mut self, s: OrderedSnoop, now: Cycle) -> bool {
        if s.own {
            self.apply_own(s.msg, now);
            return true;
        }
        let addr = s.msg.addr;
        let kind = s.msg.kind;
        if kind == MsgKind::WbReq {
            // Other caches' writebacks never affect us.
            return true;
        }
        // Pending-miss interactions take precedence over the array.
        if let Some(tag) = self.find_rshr(addr) {
            let fid_cap = self.cfg.fid_capacity;
            let entry = self.rshr[tag]
                .as_mut()
                .expect("find_rshr returned live tag");
            if entry.ordered && entry.kind == MsgKind::GetX {
                // We own the line as of our position: record and forward
                // after our write completes.
                return match entry.fids.push(s.msg.requester, s.msg.req_tag, kind) {
                    FidPush::Recorded => {
                        self.stats.fid_recorded.incr();
                        let _ = fid_cap;
                        true
                    }
                    FidPush::Closed => true,
                    FidPush::Full => false,
                };
            }
            if entry.ordered && entry.kind == MsgKind::GetS && kind == MsgKind::GetX {
                // A write ordered after our read: the fill is stale on
                // arrival.
                entry.invalidate_on_fill = true;
            }
            // Not ordered yet: the snoop precedes us; fall through to the
            // array (e.g. invalidate our S copy under a pending upgrade).
        }
        // Writeback buffer still owns evicted dirty lines until ordered.
        if let Some(pos) = self
            .wb_buf
            .iter()
            .position(|w| w.addr == addr && !w.squashed)
        {
            let value = self.wb_buf[pos].value;
            match kind {
                MsgKind::GetS => {
                    self.send_data(s.msg, value);
                }
                MsgKind::GetX => {
                    self.send_data(s.msg, value);
                    self.wb_buf[pos].squashed = true;
                    self.stats.wb_squashed.incr();
                }
                _ => {}
            }
            return true;
        }
        // Region filter.
        let pending_here = self.find_rshr(addr).is_some();
        if let Some(region) = self.region.as_mut() {
            if !region.may_be_present(addr) && !pending_here {
                self.stats.snoops_filtered.incr();
                return true;
            }
        }
        self.stats.snoops.incr();
        let Some(line) = self.array.peek(addr).copied() else {
            return true;
        };
        let action = snoop_transition(line.state, kind);
        if action.respond_with_data {
            self.send_data(s.msg, line.value);
        }
        if action.next == LineState::I {
            self.drop_line(addr);
        } else if action.next != line.state {
            self.array
                .lookup_mut(addr)
                .expect("peeked line vanished")
                .state = action.next;
        }
        true
    }

    /// Our own ordered request came back around.
    fn apply_own(&mut self, msg: CohMsg, now: Cycle) {
        match msg.kind {
            MsgKind::GetS | MsgKind::GetX => {
                let tag = msg.req_tag as usize;
                let line = self.array.peek(msg.addr).copied();
                let entry = self.rshr[tag]
                    .as_mut()
                    .unwrap_or_else(|| panic!("own ordered request for free tag {tag}"));
                assert!(!entry.ordered, "request ordered twice");
                entry.ordered = true;
                entry.t_ordered = Some(now);
                // Owner upgrade: a GETX from the cache that already owns
                // the (dirty) line — a store to an O_D line — receives no
                // external response: the memory controller sees a
                // cache-owned line and every other cache is a mere sharer.
                // The owner self-supplies its own data.
                if entry.kind == MsgKind::GetX && entry.data.is_none() {
                    if let Some(line) = line {
                        if line.state.is_owner() {
                            entry.data = Some(line.value);
                            entry.t_data = Some(now);
                            entry.served_by = ServedBy::Cache;
                        }
                    }
                }
                let t_issue = entry.t_issue;
                self.stats.ordering_delay.record(now - t_issue);
                if let Some(h) = self.stats.ordering_hist.as_deref_mut() {
                    h.record(now - t_issue);
                }
                self.try_complete(tag, now);
            }
            MsgKind::WbReq => {
                let pos = self
                    .wb_buf
                    .iter()
                    .position(|w| w.addr == msg.addr)
                    .expect("own WbReq without writeback entry");
                let wb = self.wb_buf.remove(pos);
                if !wb.squashed {
                    let dest = self.cfg.mc_for(wb.addr);
                    let data = CohMsg::new(MsgKind::WbData, wb.addr, self.tile, 0, self.my_ep())
                        .with_value(wb.value);
                    self.outbox.push_back(L2Out::Unicast {
                        dest,
                        msg: data,
                        data_sized: true,
                    });
                }
            }
            other => panic!("unexpected own ordered message {other:?}"),
        }
    }

    fn apply_core(&mut self, req: CoreReq, now: Cycle) {
        let addr = LineAddr::containing(req.addr, self.cfg.line_bytes);
        if let Some(line) = self.array.lookup_mut(addr) {
            match req.op {
                CoreOp::Load if line.state.can_read() => {
                    let value = line.value;
                    self.finish_core(req, addr, value, true, now);
                    return;
                }
                CoreOp::Store if line.state.can_write() => {
                    line.value = req.value;
                    self.finish_core(req, addr, req.value, true, now);
                    return;
                }
                CoreOp::AtomicAdd if line.state.can_write() => {
                    let old = line.value;
                    line.value = old.wrapping_add(req.value);
                    self.finish_core(req, addr, old, true, now);
                    return;
                }
                _ => {}
            }
        }
        // Miss or upgrade: allocate an RSHR and issue the ordered request.
        // Re-check conflicts at apply time (state may have moved while the
        // request sat in the stage): retry next cycle instead of creating
        // a duplicate-line RSHR.
        if self.rshr.iter().flatten().any(|e| e.addr == addr)
            || self.wb_buf.iter().any(|w| w.addr == addr)
            || !self.rshr.iter().any(Option::is_none)
        {
            self.stage.cores.push_front((now.next(), req));
            return;
        }
        self.stats.misses.incr();
        let tag = self
            .rshr
            .iter()
            .position(Option::is_none)
            .expect("checked above");
        let kind = match req.op {
            CoreOp::Load => MsgKind::GetS,
            CoreOp::Store | CoreOp::AtomicAdd => MsgKind::GetX,
        };
        let msg = CohMsg::new(kind, addr, self.tile, tag as u8, self.my_ep());
        self.rshr[tag] = Some(RshrEntry {
            addr,
            kind,
            op: req.op,
            token: req.token,
            operand: req.value,
            ordered: false,
            data: None,
            fids: FidList::new(self.cfg.fid_capacity),
            invalidate_on_fill: false,
            fill_blocked: false,
            served_by: ServedBy::Memory,
            enqueued: req.enqueued,
            admitted: req.admitted,
            t_issue: now,
            t_inject: None,
            t_popped: None,
            t_ordered: None,
            t_data: None,
        });
        self.outbox.push_back(L2Out::OrderedRequest(msg));
    }

    fn finish_core(&mut self, req: CoreReq, addr: LineAddr, value: u64, hit: bool, now: Cycle) {
        if hit {
            self.stats.hits.incr();
        }
        self.stats.service_latency.record(now - req.enqueued);
        if let Some(h) = self.stats.service_hist.as_deref_mut() {
            h.record(now - req.enqueued);
        }
        if self.record_spans {
            self.span_hits.record(now - req.enqueued);
        }
        self.core_resps.push_back(CoreResp {
            token: req.token,
            value,
            addr,
            hit,
            installed: true,
        });
    }

    fn retry_blocked_fills(&mut self, now: Cycle) {
        for tag in 0..self.rshr.len() {
            if self.rshr[tag].as_ref().is_some_and(|e| e.fill_blocked) {
                self.try_complete(tag, now);
            }
        }
    }

    /// Completes a miss when both the ordered observation and the data have
    /// arrived.
    fn try_complete(&mut self, tag: usize, now: Cycle) {
        let ready = {
            let entry = self.rshr[tag].as_ref().expect("completing a free tag");
            entry.ordered && entry.data.is_some()
        };
        if !ready {
            return;
        }
        let entry = self.rshr[tag].as_ref().expect("checked").clone();
        let data_value = entry.data.expect("checked");

        // Compute the line's post-fill value and the core's reply value.
        let (core_value, line_value) = match entry.op {
            CoreOp::Load => (data_value, data_value),
            CoreOp::Store => (entry.operand, entry.operand),
            CoreOp::AtomicAdd => (data_value, data_value.wrapping_add(entry.operand)),
        };

        if entry.kind == MsgKind::GetS && entry.invalidate_on_fill {
            // The load still returns its (correctly ordered) value, but the
            // line is already stale: do not install it.
            self.stats.invalidated_fills.incr();
            self.complete_entry(tag, core_value, false, now);
            return;
        }

        // Install (or update) the line; may need a writeback slot.
        let needs_insert = self.array.peek(entry.addr).is_none();
        if needs_insert && !self.can_accept_victim(entry.addr) {
            self.rshr[tag].as_mut().expect("checked").fill_blocked = true;
            return;
        }
        let state = fill_state(entry.kind);
        if let Some(line) = self.array.lookup_mut(entry.addr) {
            line.state = state;
            line.value = line_value;
        } else {
            let victim = self.array.insert(Line {
                addr: entry.addr,
                state,
                value: line_value,
            });
            if let Some(region) = self.region.as_mut() {
                region.line_filled(entry.addr);
            }
            if let Some(victim) = victim {
                self.evict(victim);
            }
        }

        // Forward to everyone recorded while the write was pending.
        if entry.kind == MsgKind::GetX && !entry.fids.is_empty() {
            let final_value = self.array.peek(entry.addr).expect("just installed").value;
            for fid in entry.fids.entries() {
                let fwd = CohMsg::new(
                    MsgKind::Data,
                    entry.addr,
                    fid.sid,
                    fid.req_tag,
                    self.my_ep(),
                )
                .with_value(final_value);
                self.outbox.push_back(L2Out::Unicast {
                    dest: Endpoint::tile(scorpio_noc::RouterId(fid.sid)),
                    msg: fwd,
                    data_sized: true,
                });
                self.stats.data_forwards.incr();
            }
            if entry.fids.ends_in_getx() {
                self.drop_line(entry.addr);
            } else {
                // We answered reads: dirty data stays on chip, shared.
                self.array
                    .lookup_mut(entry.addr)
                    .expect("just installed")
                    .state = LineState::Od;
            }
        }

        let still_resident = self.array.peek(entry.addr).is_some();
        self.complete_entry(tag, core_value, still_resident, now);
    }

    fn complete_entry(&mut self, tag: usize, core_value: u64, installed: bool, now: Cycle) {
        let entry = self.rshr[tag].take().expect("completing a free tag");
        let total = now - entry.enqueued;
        self.stats.service_latency.record(total);
        if let Some(h) = self.stats.service_hist.as_deref_mut() {
            h.record(total);
        }
        let record = MissRecord {
            total,
            ordering: entry.t_ordered.map(|t| t - entry.t_issue).unwrap_or(0),
            data_wait: entry.t_data.map(|t| t - entry.t_issue).unwrap_or(0),
            served_by: entry.served_by,
        };
        match entry.served_by {
            ServedBy::Cache => self.stats.cache_served_latency.record(total),
            ServedBy::Memory => self.stats.memory_served_latency.record(total),
        }
        self.miss_records.push_back(record);
        if self.record_spans {
            self.spans.push(MissSpan {
                tile: self.tile,
                addr: entry.addr,
                kind: entry.kind,
                served_by: entry.served_by,
                enqueued: entry.enqueued.as_u64(),
                admitted: entry.admitted.as_u64(),
                issue: entry.t_issue.as_u64(),
                inject: entry.t_inject.expect("span missing inject stamp").as_u64(),
                popped: entry.t_popped.expect("span missing pop stamp").as_u64(),
                ordered: entry.t_ordered.expect("completed unordered").as_u64(),
                data: entry.t_data.expect("completed without data").as_u64(),
                retire: now.as_u64(),
            });
        }
        self.core_resps.push_back(CoreResp {
            token: entry.token,
            value: core_value,
            addr: entry.addr,
            hit: false,
            installed,
        });
    }

    /// Whether an insertion into `addr`'s set could be absorbed (the LRU
    /// victim, if dirty, needs a writeback-buffer slot).
    fn can_accept_victim(&mut self, _addr: LineAddr) -> bool {
        self.wb_buf.len() < self.cfg.wb_entries
    }

    fn evict(&mut self, victim: Line) {
        if let Some(region) = self.region.as_mut() {
            region.line_evicted(victim.addr);
        }
        self.l1_invalidations.push_back(victim.addr);
        if victim.state.is_owner() {
            self.stats.writebacks.incr();
            assert!(
                self.wb_buf.len() < self.cfg.wb_entries,
                "eviction without a writeback slot"
            );
            self.wb_buf.push(WbEntry {
                addr: victim.addr,
                value: victim.value,
                squashed: false,
            });
            let msg = CohMsg::new(MsgKind::WbReq, victim.addr, self.tile, 0, self.my_ep());
            self.outbox.push_back(L2Out::OrderedRequest(msg));
        }
    }

    /// Invalidates a resident line: array, region tracker and L1 inclusion.
    fn drop_line(&mut self, addr: LineAddr) {
        if self.array.remove(addr).is_some() {
            if let Some(region) = self.region.as_mut() {
                region.line_evicted(addr);
            }
            self.l1_invalidations.push_back(addr);
        }
    }

    fn send_data(&mut self, req: CohMsg, value: u64) {
        let reply = CohMsg::new(
            MsgKind::Data,
            req.addr,
            req.requester,
            req.req_tag,
            self.my_ep(),
        )
        .with_value(value);
        self.outbox.push_back(L2Out::Unicast {
            dest: Endpoint::tile(scorpio_noc::RouterId(req.requester)),
            msg: reply,
            data_sized: true,
        });
        self.stats.data_forwards.incr();
    }

    fn find_rshr(&self, addr: LineAddr) -> Option<usize> {
        self.rshr
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.addr == addr))
    }

    fn my_ep(&self) -> Endpoint {
        Endpoint::tile(scorpio_noc::RouterId(self.tile))
    }

    /// Renders internal state for deadlock debugging.
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let mut out = String::new();
        for (tag, e) in self.rshr.iter().enumerate() {
            if let Some(e) = e {
                out.push_str(&format!(
                    "  rshr[{tag}] addr={} kind={:?} ordered={} data={:?} blocked={} fids={} inval_on_fill={}\n",
                    e.addr, e.kind, e.ordered, e.data, e.fill_blocked, e.fids.entries().len(), e.invalidate_on_fill
                ));
            }
        }
        for w in &self.wb_buf {
            out.push_str(&format!("  wb addr={} squashed={}\n", w.addr, w.squashed));
        }
        out.push_str(&format!(
            "  q core={} snoop={} resp={} stage={} outbox={} core_resps={}\n",
            self.core_q.len(),
            self.snoop_q.len(),
            self.resp_q.len(),
            self.stage.len(),
            self.outbox.len(),
            self.core_resps.len()
        ));
        if let Some((ready, snoop)) = self.stage.snoops.front() {
            out.push_str(&format!("  stalled/next snoop ready={ready} {snoop:?}\n"));
        }
        out
    }

    /// The current state of `addr` in the tag array (tests/diagnostics).
    pub fn line_state(&self, addr: LineAddr) -> LineState {
        self.array
            .peek(addr)
            .map(|l| l.state)
            .unwrap_or(LineState::I)
    }

    /// The current value of `addr` if resident.
    pub fn line_value(&self, addr: LineAddr) -> Option<u64> {
        self.array.peek(addr).map(|l| l.value)
    }
}
