//! Memory controllers: ordered endpoints that serve requests exactly when
//! no cache owns the line.
//!
//! Each MC port consumes the same globally ordered request stream as every
//! tile (its NIC tracks ESIDs like any other). Ownership bits — the paper's
//! "directory cache (1 owner bit, 1 dirty bit)" — decide whether memory
//! responds; a finite [`DirectoryCache`] in front charges extra latency on
//! misses. The functional store additionally remembers *which* cache owns,
//! so stale writebacks (squashed by an earlier-ordered GETX) are ignored
//! (see DESIGN.md).

use crate::l2::OrderedSnoop;
use scorpio_coherence::{CohMsg, DirectoryCache, LineAddr, MsgKind, Owner, OwnershipStore};
use scorpio_noc::{Endpoint, RouterId};
use scorpio_sim::stats::{Accumulator, Counter};
use scorpio_sim::Cycle;
use std::collections::{HashMap, VecDeque};

/// Memory-controller configuration.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Fully pipelined DRAM access latency (the paper's RTL model: 90).
    pub dram_latency: u64,
    /// Directory-cache (ownership bits) access latency on a hit.
    pub dir_latency: u64,
    /// Extra penalty when the ownership entry missed the directory cache
    /// (fetched alongside the data from DRAM).
    pub dir_miss_penalty: u64,
    /// Directory-cache storage budget in bytes (Table 1: 128 KB total).
    pub dir_cache_bytes: usize,
    /// Bits per directory entry (owner + valid for SCORPIO/HT).
    pub dir_entry_bits: usize,
    /// Directory-cache associativity.
    pub dir_ways: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            dram_latency: 90,
            dir_latency: 10,
            dir_miss_penalty: 90,
            dir_cache_bytes: 32 * 1024, // 128 KB split over 4 MC ports
            dir_entry_bits: 2,
            dir_ways: 4,
        }
    }
}

/// MC statistics.
#[derive(Debug, Clone, Default)]
pub struct McStats {
    /// Requests this port was responsible for.
    pub requests_seen: Counter,
    /// Data responses served from memory.
    pub responses: Counter,
    /// Responses that had to wait for in-flight writeback data.
    pub wb_waits: Counter,
    /// Writebacks accepted.
    pub writebacks: Counter,
    /// Stale writebacks ignored.
    pub stale_writebacks: Counter,
    /// Directory-cache misses.
    pub dir_misses: Counter,
    /// Response latency (snoop observation → response sent).
    pub response_latency: Accumulator,
}

/// An outgoing data response.
#[derive(Debug, Clone, Copy)]
pub struct McOut {
    /// Destination tile endpoint.
    pub dest: Endpoint,
    /// The data message.
    pub msg: CohMsg,
}

#[derive(Debug, Clone, Copy)]
struct PendingResp {
    ready: Cycle,
    requester: u16,
    req_tag: u8,
    addr: LineAddr,
    issued: Cycle,
}

/// One memory-controller port.
#[derive(Debug)]
pub struct MemoryController {
    ep: Endpoint,
    /// This port's index among all MC ports and the total count
    /// (line-interleaved responsibility).
    mc_index: usize,
    mc_total: usize,
    line_bytes: u64,
    cfg: McConfig,
    store: OwnershipStore,
    dir_cache: DirectoryCache,
    /// Scheduled responses, kept sorted by readiness.
    pending: VecDeque<PendingResp>,
    /// Responses blocked on writeback data, per line.
    waiting_wb: HashMap<LineAddr, Vec<PendingResp>>,
    /// Writeback data that arrived before its (ordered) WbReq — the paper:
    /// "the writeback request and data may arrive separately and in any
    /// order". Keyed by line; value is (evictor, data).
    early_wb: HashMap<LineAddr, (u16, u64)>,
    /// Accepted WbReqs whose data has not arrived yet (survives an
    /// intervening GETX re-owning the line).
    awaiting_data: HashMap<LineAddr, u16>,
    outbox: VecDeque<McOut>,
    /// Statistics.
    pub stats: McStats,
}

impl MemoryController {
    /// A controller at endpoint `ep`, `mc_index` of `mc_total` ports.
    ///
    /// # Panics
    ///
    /// Panics if `mc_total` is zero or the index is out of range.
    pub fn new(
        ep: Endpoint,
        mc_index: usize,
        mc_total: usize,
        line_bytes: u64,
        cfg: McConfig,
    ) -> Self {
        assert!(mc_total > 0, "at least one MC port required");
        assert!(mc_index < mc_total, "MC index out of range");
        let dir_cache =
            DirectoryCache::with_budget(cfg.dir_cache_bytes, cfg.dir_entry_bits, cfg.dir_ways);
        MemoryController {
            ep,
            mc_index,
            mc_total,
            line_bytes,
            store: OwnershipStore::new(0),
            dir_cache,
            pending: VecDeque::new(),
            waiting_wb: HashMap::new(),
            early_wb: HashMap::new(),
            awaiting_data: HashMap::new(),
            outbox: VecDeque::new(),
            stats: McStats::default(),
            cfg,
        }
    }

    /// The endpoint this controller serves.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// Whether this port is responsible for `addr`.
    pub fn responsible_for(&self, addr: LineAddr) -> bool {
        (addr.0 / self.line_bytes) as usize % self.mc_total == self.mc_index
    }

    /// Consumes one globally ordered request from this port's NIC.
    pub fn snoop(&mut self, s: OrderedSnoop, now: Cycle) {
        let msg = s.msg;
        if !self.responsible_for(msg.addr) {
            return;
        }
        match msg.kind {
            MsgKind::GetS | MsgKind::GetX => {
                self.stats.requests_seen.incr();
                let dir_hit = self.dir_cache.access(msg.addr);
                if !dir_hit {
                    self.stats.dir_misses.incr();
                }
                let lat = self.cfg.dir_latency
                    + if dir_hit {
                        0
                    } else {
                        self.cfg.dir_miss_penalty
                    };
                let owner = self.store.owner(msg.addr);
                let resp = PendingResp {
                    ready: now + lat + self.cfg.dram_latency,
                    requester: msg.requester,
                    req_tag: msg.req_tag,
                    addr: msg.addr,
                    issued: now,
                };
                match owner {
                    Owner::Memory => self.pending.push_back(resp),
                    Owner::MemoryPendingWb { .. } => {
                        self.stats.wb_waits.incr();
                        self.waiting_wb.entry(msg.addr).or_default().push(resp);
                    }
                    Owner::Cache(_) => {
                        // The owning cache answers; memory stays silent.
                    }
                }
                if msg.kind == MsgKind::GetX {
                    // Ownership moves to the writer, whoever supplies data.
                    self.store.set_owner(msg.addr, Owner::Cache(msg.requester));
                }
            }
            MsgKind::WbReq => {
                if self.store.owner(msg.addr) == Owner::Cache(msg.requester) {
                    self.stats.writebacks.incr();
                    // The data may have raced ahead on the unordered
                    // network; if so the writeback completes immediately.
                    if let Some((from, value)) = self.early_wb.remove(&msg.addr) {
                        if from == msg.requester {
                            self.store.write_value(msg.addr, value);
                            self.store.set_owner(msg.addr, Owner::Memory);
                            self.release_waiters(msg.addr, now);
                            return;
                        }
                        self.early_wb.insert(msg.addr, (from, value));
                    }
                    self.awaiting_data.insert(msg.addr, msg.requester);
                    self.store.set_owner(
                        msg.addr,
                        Owner::MemoryPendingWb {
                            from: msg.requester,
                        },
                    );
                } else {
                    // An earlier-ordered GETX took the line; the evictor's
                    // writeback was squashed on its side too.
                    self.stats.stale_writebacks.incr();
                }
            }
            other => panic!("MC received unexpected ordered message {other:?}"),
        }
    }

    /// Accepts writeback data from the unordered network.
    pub fn wb_data(&mut self, msg: CohMsg, now: Cycle) {
        assert_eq!(msg.kind, MsgKind::WbData, "not writeback data");
        if !self.responsible_for(msg.addr) {
            return;
        }
        if self.awaiting_data.get(&msg.addr) == Some(&msg.requester) {
            self.awaiting_data.remove(&msg.addr);
            self.store.write_value(msg.addr, msg.value);
            // Only hand the line back to memory if no later GETX already
            // re-owned it.
            if self.store.owner(msg.addr)
                == (Owner::MemoryPendingWb {
                    from: msg.requester,
                })
            {
                self.store.set_owner(msg.addr, Owner::Memory);
            }
            self.release_waiters(msg.addr, now);
        } else {
            // Raced ahead of its ordered WbReq: hold until it arrives.
            self.early_wb.insert(msg.addr, (msg.requester, msg.value));
        }
    }

    fn release_waiters(&mut self, addr: LineAddr, now: Cycle) {
        if let Some(waiters) = self.waiting_wb.remove(&addr) {
            for mut w in waiters {
                w.ready = now + self.cfg.dram_latency;
                self.pending.push_back(w);
            }
        }
    }

    /// One cycle: release due responses into the outbox.
    pub fn tick(&mut self, now: Cycle) {
        let mut idx = 0;
        while idx < self.pending.len() {
            if self.pending[idx].ready <= now {
                let resp = self.pending.remove(idx).expect("index in range");
                let value = self.store.value(resp.addr);
                let msg = CohMsg::new(
                    MsgKind::Data,
                    resp.addr,
                    resp.requester,
                    resp.req_tag,
                    self.ep,
                )
                .with_value(value);
                self.stats.responses.incr();
                self.stats.response_latency.record(now - resp.issued);
                self.outbox.push_back(McOut {
                    dest: Endpoint::tile(RouterId(resp.requester)),
                    msg,
                });
            } else {
                idx += 1;
            }
        }
    }

    /// Next outgoing response, if any (peek).
    pub fn peek_out(&self) -> Option<&McOut> {
        self.outbox.front()
    }

    /// Consumes the outgoing response just peeked.
    pub fn pop_out(&mut self) -> Option<McOut> {
        self.outbox.pop_front()
    }

    /// Whether all queues are drained.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.waiting_wb.is_empty()
            && self.outbox.is_empty()
            && self.early_wb.is_empty()
    }

    /// The earliest cycle at which a scheduled DRAM access completes, if
    /// any. Between now and that cycle every [`MemoryController::tick`] is
    /// a no-op (ticking only releases due responses), so a controller
    /// whose remaining work is all scheduled — empty outbox, writebacks
    /// all event-driven — can sleep until this deadline. The queue is not
    /// kept sorted by readiness (writeback releases reschedule in place),
    /// hence the scan.
    pub fn next_deadline(&self) -> Option<Cycle> {
        self.pending.iter().map(|p| p.ready).min()
    }

    /// Direct read of memory's logical value (verification oracle).
    pub fn memory_value(&self, addr: LineAddr) -> u64 {
        self.store.value(addr)
    }

    /// Direct read of the tracked owner (verification oracle).
    pub fn owner(&self, addr: LineAddr) -> Owner {
        self.store.owner(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(Endpoint::mc(RouterId(0)), 0, 1, 32, McConfig::default())
    }

    fn gets(addr: u64, requester: u16, tag: u8) -> OrderedSnoop {
        OrderedSnoop {
            own: false,
            msg: CohMsg::new(
                MsgKind::GetS,
                LineAddr(addr),
                requester,
                tag,
                Endpoint::tile(RouterId(requester)),
            ),
        }
    }

    fn getx(addr: u64, requester: u16, tag: u8) -> OrderedSnoop {
        OrderedSnoop {
            own: false,
            msg: CohMsg::new(
                MsgKind::GetX,
                LineAddr(addr),
                requester,
                tag,
                Endpoint::tile(RouterId(requester)),
            ),
        }
    }

    fn run_until_out(m: &mut MemoryController, start: Cycle, max: u64) -> (McOut, Cycle) {
        let mut now = start;
        for _ in 0..max {
            m.tick(now);
            if let Some(out) = m.pop_out() {
                return (out, now);
            }
            now = now.next();
        }
        panic!("MC produced no response");
    }

    #[test]
    fn memory_serves_unowned_lines() {
        let mut m = mc();
        m.snoop(gets(0x40, 3, 1), Cycle::ZERO);
        let (out, at) = run_until_out(&mut m, Cycle::ZERO, 300);
        assert_eq!(out.dest, Endpoint::tile(RouterId(3)));
        assert_eq!(out.msg.req_tag, 1);
        assert_eq!(out.msg.kind, MsgKind::Data);
        // Cold access: dir miss penalty + dir latency + DRAM.
        assert!(at.as_u64() >= 90 + 10);
    }

    #[test]
    fn cache_owned_lines_are_silent() {
        let mut m = mc();
        m.snoop(getx(0x40, 2, 0), Cycle::ZERO);
        // First GETX: memory owns, so it responds AND transfers ownership.
        let _ = run_until_out(&mut m, Cycle::ZERO, 300);
        assert_eq!(m.owner(LineAddr(0x40)), Owner::Cache(2));
        // Second reader: owned by cache 2 → memory silent.
        m.snoop(gets(0x40, 5, 0), Cycle::new(500));
        for c in 500..900 {
            m.tick(Cycle::new(c));
        }
        assert!(m.pop_out().is_none());
    }

    #[test]
    fn writeback_returns_ownership_and_data() {
        let mut m = mc();
        m.snoop(getx(0x40, 2, 0), Cycle::ZERO);
        let _ = run_until_out(&mut m, Cycle::ZERO, 300);
        // Cache 2 evicts: WbReq then WbData.
        let wb = OrderedSnoop {
            own: false,
            msg: CohMsg::new(
                MsgKind::WbReq,
                LineAddr(0x40),
                2,
                0,
                Endpoint::tile(RouterId(2)),
            ),
        };
        m.snoop(wb, Cycle::new(400));
        assert_eq!(m.owner(LineAddr(0x40)), Owner::MemoryPendingWb { from: 2 });
        let data = CohMsg::new(
            MsgKind::WbData,
            LineAddr(0x40),
            2,
            0,
            Endpoint::tile(RouterId(2)),
        )
        .with_value(77);
        m.wb_data(data, Cycle::new(410));
        assert_eq!(m.owner(LineAddr(0x40)), Owner::Memory);
        assert_eq!(m.memory_value(LineAddr(0x40)), 77);
    }

    #[test]
    fn reads_during_pending_writeback_wait_for_data() {
        let mut m = mc();
        m.snoop(getx(0x40, 2, 0), Cycle::ZERO);
        let _ = run_until_out(&mut m, Cycle::ZERO, 300);
        let wb = OrderedSnoop {
            own: false,
            msg: CohMsg::new(
                MsgKind::WbReq,
                LineAddr(0x40),
                2,
                0,
                Endpoint::tile(RouterId(2)),
            ),
        };
        m.snoop(wb, Cycle::new(400));
        // A read arrives before the data: it must wait.
        m.snoop(gets(0x40, 7, 1), Cycle::new(401));
        for c in 401..800 {
            m.tick(Cycle::new(c));
        }
        assert!(m.pop_out().is_none(), "responded before writeback data");
        assert_eq!(m.stats.wb_waits.get(), 1);
        let data = CohMsg::new(
            MsgKind::WbData,
            LineAddr(0x40),
            2,
            0,
            Endpoint::tile(RouterId(2)),
        )
        .with_value(55);
        m.wb_data(data, Cycle::new(800));
        let (out, _) = run_until_out(&mut m, Cycle::new(801), 300);
        assert_eq!(out.msg.value, 55);
        assert_eq!(out.dest, Endpoint::tile(RouterId(7)));
    }

    #[test]
    fn stale_writeback_is_ignored() {
        let mut m = mc();
        // Tile 2 owns, then tile 4's GETX (ordered first) takes the line,
        // then tile 2's stale WbReq arrives.
        m.snoop(getx(0x40, 2, 0), Cycle::ZERO);
        let _ = run_until_out(&mut m, Cycle::ZERO, 300);
        m.snoop(getx(0x40, 4, 0), Cycle::new(400));
        assert_eq!(m.owner(LineAddr(0x40)), Owner::Cache(4));
        let wb = OrderedSnoop {
            own: false,
            msg: CohMsg::new(
                MsgKind::WbReq,
                LineAddr(0x40),
                2,
                0,
                Endpoint::tile(RouterId(2)),
            ),
        };
        m.snoop(wb, Cycle::new(410));
        assert_eq!(m.owner(LineAddr(0x40)), Owner::Cache(4));
        assert_eq!(m.stats.stale_writebacks.get(), 1);
    }

    #[test]
    fn responsibility_is_interleaved() {
        let m0 = MemoryController::new(Endpoint::mc(RouterId(0)), 0, 4, 32, McConfig::default());
        let m1 = MemoryController::new(Endpoint::mc(RouterId(5)), 1, 4, 32, McConfig::default());
        assert!(m0.responsible_for(LineAddr(0)));
        assert!(!m0.responsible_for(LineAddr(32)));
        assert!(m1.responsible_for(LineAddr(32)));
        // Requests outside our slice are ignored entirely.
        let mut m = m0;
        m.snoop(gets(32, 1, 0), Cycle::ZERO);
        for c in 0..300 {
            m.tick(Cycle::new(c));
        }
        assert!(m.pop_out().is_none());
        assert_eq!(m.stats.requests_seen.get(), 0);
    }

    #[test]
    fn getx_while_wb_pending_hands_old_data_to_new_owner() {
        let mut m = mc();
        m.snoop(getx(0x40, 2, 0), Cycle::ZERO);
        let _ = run_until_out(&mut m, Cycle::ZERO, 300);
        let wb = OrderedSnoop {
            own: false,
            msg: CohMsg::new(
                MsgKind::WbReq,
                LineAddr(0x40),
                2,
                0,
                Endpoint::tile(RouterId(2)),
            ),
        };
        m.snoop(wb, Cycle::new(400));
        // New writer ordered while the writeback data is in flight.
        m.snoop(getx(0x40, 9, 1), Cycle::new(405));
        assert_eq!(m.owner(LineAddr(0x40)), Owner::Cache(9));
        let data = CohMsg::new(
            MsgKind::WbData,
            LineAddr(0x40),
            2,
            0,
            Endpoint::tile(RouterId(2)),
        )
        .with_value(123);
        m.wb_data(data, Cycle::new(500));
        let (out, _) = run_until_out(&mut m, Cycle::new(501), 300);
        assert_eq!(out.dest, Endpoint::tile(RouterId(9)));
        assert_eq!(out.msg.value, 123);
        assert!(m.is_idle());
    }
}
