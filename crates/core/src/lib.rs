//! # SCORPIO
//!
//! A full-system, cycle-level reproduction of *SCORPIO: A 36-Core Research
//! Chip Demonstrating Snoopy Coherence on a Scalable Mesh NoC with
//! In-Network Ordering* (ISCA 2014).
//!
//! The crate assembles the substrates — the ordered mesh NoC
//! (`scorpio-noc`), the notification network (`scorpio-notify`), the
//! ordering NICs (`scorpio-nic`), the MOSI+O_D cache hierarchy
//! (`scorpio-mem`) and workloads (`scorpio-workloads`) — into a [`System`]
//! you configure with [`SystemConfig`] and drive to completion:
//!
//! ```
//! use scorpio::{System, SystemConfig};
//! use scorpio_workloads::{generate, WorkloadParams};
//!
//! // A 3×3 system running a shortened "barnes"-like workload.
//! let cfg = SystemConfig::square(3);
//! let params = WorkloadParams::by_name("barnes").unwrap().with_ops(30);
//! let traces = generate(&params, cfg.cores(), cfg.seed);
//! let mut sys = System::with_traces(cfg, traces);
//! let report = sys.run_to_completion();
//! assert_eq!(report.ops_completed, 30 * 9);
//! println!("{}", report.summary());
//! ```
//!
//! Baselines for the paper's comparisons (TokenB, INSO with expiry
//! windows) run on the *identical* caches and routers, differing only in
//! how the global request order is established — exactly the paper's
//! methodology for Figure 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod report;
mod system;
mod tile;

pub use config::{
    ObsLevel, OpenLoopConfig, Protocol, SystemConfig, DEFAULT_SOURCE_QUEUE_CAP, DEFAULT_TRACE_LIMIT,
};
pub use report::{
    span_json, EpWait, ObsReport, PlaneObs, SpanReport, SystemReport, WindowReport, WindowRow,
    OBS_SCHEMA_VERSION,
};
pub use scorpio_notify::NotifyScheme;
pub use scorpio_workloads::ArrivalProcess;
pub use system::System;
pub use tile::{CoreDriver, CoreKind};
