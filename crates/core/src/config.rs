//! Full-system configuration.

use scorpio_mem::{L2Config, McConfig};
use scorpio_nic::NicConfig;
use scorpio_noc::{CMesh, Endpoint, Mesh, NocConfig, Ring, Topology, Torus};
use scorpio_notify::NotifyScheme;
use scorpio_workloads::ArrivalProcess;
use std::fmt;
use std::num::NonZeroUsize;

/// Which coherence-ordering scheme the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// SCORPIO: snoopy MOSI over the ordered mesh (notification network +
    /// ESID delivery). The paper's contribution.
    Scorpio,
    /// TokenB idealisation (Figure 7): the same snoopy protocol and the
    /// same mesh, but ordering comes from a zero-cost global sequencer
    /// (the paper models TokenB without races/persistent requests, so its
    /// cost is delivery only).
    TokenB,
    /// INSO (Figure 7): per-source slot ordering with periodic expiry
    /// broadcasts; the expiry window is the knob the paper sweeps.
    Inso {
        /// Expiry window in cycles (20 / 40 / 80 in Figure 7).
        expiry_window: u64,
    },
    /// Distributed limited-pointer directory (LPD-D, Figure 6): requests
    /// indirect through a home tile whose directory cache stores *wide*
    /// entries (2 state bits + owner + pointer vector), so a fixed storage
    /// budget caches few lines and misses pay an off-chip penalty.
    LpdDir,
    /// Distributed HyperTransport-style directory (HT-D, Figure 6): the
    /// home is a pure ordering point with 2-bit entries that broadcasts
    /// every request — no sharer storage, but still one indirection.
    HtDir,
}

impl Protocol {
    /// Short name for reports.
    pub fn name(self) -> String {
        match self {
            Protocol::Scorpio => "SCORPIO".into(),
            Protocol::TokenB => "TokenB".into(),
            Protocol::Inso { expiry_window } => format!("INSO(exp={expiry_window})"),
            Protocol::LpdDir => "LPD-D".into(),
            Protocol::HtDir => "HT-D".into(),
        }
    }

    /// Whether this protocol indirects requests through home directories.
    pub fn uses_directory(self) -> bool {
        matches!(self, Protocol::LpdDir | Protocol::HtDir)
    }
}

/// Default cap on retained flit-trace events ([`SystemConfig::trace_limit`]).
pub const DEFAULT_TRACE_LIMIT: usize = 100_000;

/// Default bounded source-queue depth for open-loop injection
/// ([`OpenLoopConfig::queue_cap`]).
pub const DEFAULT_SOURCE_QUEUE_CAP: usize = 64;

/// Open-loop injection: requests are *released* by an arrival process at
/// a configured offered load instead of by the completion of the previous
/// operation, queueing in a bounded per-core source queue. `None` (the
/// default) keeps the historical closed-loop semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConfig {
    /// The arrival process shaping inter-arrival gaps.
    pub process: ArrivalProcess,
    /// Offered load in requests per 1000 cycles per core. `0` degenerates
    /// to the closed-loop trace (except under
    /// [`ArrivalProcess::Replay`], which carries its own schedule).
    pub load_millis: u32,
    /// Bounded source-queue depth; arrivals past a full queue are
    /// tail-dropped and counted in the report.
    pub queue_cap: usize,
}

impl OpenLoopConfig {
    /// Poisson arrivals at `load_millis` requests per 1000 cycles per
    /// core, with the default queue depth.
    pub fn poisson(load_millis: u32) -> OpenLoopConfig {
        OpenLoopConfig {
            process: ArrivalProcess::Poisson,
            load_millis,
            queue_cap: DEFAULT_SOURCE_QUEUE_CAP,
        }
    }

    /// Bursty (Markov-modulated on/off) arrivals at the same long-run
    /// offered load, with the default queue depth.
    pub fn bursty(load_millis: u32, on: u32, off: u32) -> OpenLoopConfig {
        OpenLoopConfig {
            process: ArrivalProcess::Bursty { on, off },
            load_millis,
            queue_cap: DEFAULT_SOURCE_QUEUE_CAP,
        }
    }

    /// Replays the trace's own think-time deltas as arrival times.
    pub fn replay() -> OpenLoopConfig {
        OpenLoopConfig {
            process: ArrivalProcess::Replay,
            load_millis: 0,
            queue_cap: DEFAULT_SOURCE_QUEUE_CAP,
        }
    }
}

/// How much the observability layer records during a run.
///
/// Purely additive instrumentation: every level produces identical
/// simulated behavior (the equivalence suite asserts it), and the default
/// [`ObsLevel::Off`] keeps the hot path free of any recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// No observability sinks installed (the pre-observability hot path
    /// plus one dormant branch per hook).
    #[default]
    Off,
    /// Latency histograms and the per-router/link/VC counter plane.
    Counters,
    /// Counters plus the deterministic flit-event trace (bounded by
    /// [`SystemConfig::trace_limit`]).
    Trace,
}

/// Configuration of a full SCORPIO system.
#[derive(Clone)]
pub struct SystemConfig {
    /// The delivery fabric (tiles + MC ports): a mesh, torus or ring.
    ///
    /// The field keeps its historical name: [`SystemConfig::stable_hash`]
    /// fingerprints the derived `Debug` rendering, `Topology` debug-prints
    /// as its inner struct, and together those keep every pre-topology
    /// mesh config hash — and the JSONL rows keyed on them — valid.
    pub mesh: Topology,
    /// Ordering scheme.
    pub protocol: Protocol,
    /// Main-network configuration.
    pub noc: NocConfig,
    /// NIC configuration.
    pub nic: NicConfig,
    /// Notification bits per core (Figure 8d: 1/2/3).
    pub notification_bits: u8,
    /// Extra cycles added to the minimum notification window (ablation:
    /// the chip uses the tight bound, 13 cycles on 6×6).
    pub notification_window_slack: u64,
    /// L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 configuration template (MC endpoints filled in automatically).
    pub l2: L2Config,
    /// Memory-controller configuration.
    pub mc: McConfig,
    /// Total directory-cache storage across all home tiles, in bytes
    /// (Section 5.1: 256 KB for the baseline comparisons).
    pub dir_total_bytes: usize,
    /// LPD sharer pointers per entry (Section 5.1: ~4 at 36 cores).
    pub lpd_pointers: usize,
    /// Outstanding accesses per core (1 = the AHB constraint; the paper's
    /// Figure 8d exploration raises it alongside the RSHR count).
    pub core_outstanding: usize,
    /// Safety limit for [`crate::System::run_to_completion`].
    pub max_cycles: u64,
    /// Workload seed.
    pub seed: u64,
    /// Parallel main-network planes (Section 5.3's "multiple main
    /// networks"): N address-interleaved copies of the delivery fabric,
    /// each with its own routers, VCs and per-plane ordering windows.
    /// `1` is the chip's single network.
    pub planes: NonZeroUsize,
    /// Plane-interleave granularity: `2^n` consecutive cache lines share a
    /// plane (0 = stripe line by line). Ignored with one plane.
    pub plane_stripe_lines_log2: u32,
    /// Notification aggregation scheme: the chip's flat diameter-bounded
    /// OR mesh (default), or hierarchical quad aggregation whose window is
    /// logarithmic in the grid side ([`NotifyScheme::Quad`]) — the
    /// kilocore window knob. Quad partitioning also defines the regions
    /// per-region event leaping tracks.
    pub notify: NotifyScheme,
    /// Observability level (histograms / counters / trace).
    pub obs: ObsLevel,
    /// Retained flit-trace events (per plane and in the merged stream);
    /// meaningful only at [`ObsLevel::Trace`].
    pub trace_limit: usize,
    /// Record per-coherence-transaction lifecycle spans (issue → inject →
    /// ordered commit → data → retire) for the paper-style per-phase
    /// latency breakdown. Independent of `obs`: spans live in the L2/RSHR
    /// layer, not the flit-level observer.
    pub spans: bool,
    /// Window length, in cycles, for epoch-bucketed time-series telemetry
    /// (throughput, latency percentiles, per-endpoint injection wait,
    /// buffer-occupancy integrals). `0` disables windowing entirely.
    pub window_cycles: u64,
    /// Open-loop injection (arrival-timed request release). `None` keeps
    /// the historical closed-loop trace semantics.
    pub open_loop: Option<OpenLoopConfig>,
}

/// Renders exactly as the derived `Debug` did before the plane axis
/// existed whenever the plane knobs hold their defaults (one plane,
/// line-granularity striping), appending the two plane fields otherwise.
/// [`SystemConfig::stable_hash`] fingerprints this rendering, so the
/// conditional keeps every pre-plane config hash — and the JSONL result
/// rows keyed on them — valid, exactly as `Topology`'s transparent `Debug`
/// does for the fabric axis.
impl fmt::Debug for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("SystemConfig");
        d.field("mesh", &self.mesh)
            .field("protocol", &self.protocol)
            .field("noc", &self.noc)
            .field("nic", &self.nic)
            .field("notification_bits", &self.notification_bits)
            .field("notification_window_slack", &self.notification_window_slack)
            .field("l1_bytes", &self.l1_bytes)
            .field("l1_ways", &self.l1_ways)
            .field("l2", &self.l2)
            .field("mc", &self.mc)
            .field("dir_total_bytes", &self.dir_total_bytes)
            .field("lpd_pointers", &self.lpd_pointers)
            .field("core_outstanding", &self.core_outstanding)
            .field("max_cycles", &self.max_cycles)
            .field("seed", &self.seed);
        if self.planes.get() != 1 || self.plane_stripe_lines_log2 != 0 {
            d.field("planes", &self.planes)
                .field("plane_stripe_lines_log2", &self.plane_stripe_lines_log2);
        }
        if self.notify != NotifyScheme::Flat {
            d.field("notify", &self.notify);
        }
        if self.obs != ObsLevel::Off || self.trace_limit != DEFAULT_TRACE_LIMIT {
            d.field("obs", &self.obs)
                .field("trace_limit", &self.trace_limit);
        }
        if self.spans {
            d.field("spans", &self.spans);
        }
        if self.window_cycles != 0 {
            d.field("window_cycles", &self.window_cycles);
        }
        if let Some(ol) = &self.open_loop {
            d.field("open_loop", ol);
        }
        d.finish()
    }
}

impl SystemConfig {
    /// The 36-core chip configuration (Table 1).
    pub fn chip() -> SystemConfig {
        let mesh = Mesh::scorpio_chip();
        SystemConfig::with_mesh(mesh)
    }

    /// A chip-like configuration over an arbitrary mesh (corner MCs).
    pub fn with_mesh(mesh: Mesh) -> SystemConfig {
        SystemConfig::with_topology(Topology::from(mesh))
    }

    /// A chip-like configuration over any delivery fabric. The L2's
    /// MC-interleaving endpoints follow the topology's MC placement.
    pub fn with_topology(topology: impl Into<Topology>) -> SystemConfig {
        let mesh: Topology = topology.into();
        let mc_eps: Vec<Endpoint> = mesh.mc_routers().iter().map(|&r| Endpoint::mc(r)).collect();
        SystemConfig {
            mesh,
            protocol: Protocol::Scorpio,
            noc: NocConfig::scorpio(),
            nic: NicConfig::default(),
            notification_bits: 1,
            notification_window_slack: 0,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l2: L2Config::chip(mc_eps),
            mc: McConfig::default(),
            dir_total_bytes: 256 * 1024,
            lpd_pointers: 4,
            core_outstanding: 1,
            max_cycles: 2_000_000,
            seed: 1,
            planes: NonZeroUsize::new(1).expect("1 is non-zero"),
            plane_stripe_lines_log2: 0,
            notify: NotifyScheme::Flat,
            obs: ObsLevel::Off,
            trace_limit: DEFAULT_TRACE_LIMIT,
            spans: false,
            window_cycles: 0,
            open_loop: None,
        }
    }

    /// A `k × k` system with corner memory controllers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn square(k: u16) -> SystemConfig {
        SystemConfig::with_mesh(Mesh::square_with_corner_mcs(k))
    }

    /// A `k × k` torus system with the MC ports on the same four routers
    /// as [`SystemConfig::square`], so mesh-vs-torus sweeps compare
    /// matched endpoint counts.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn torus(k: u16) -> SystemConfig {
        SystemConfig::with_topology(Torus::square_with_corner_mcs(k))
    }

    /// A ring system of `len` routers with `n_mcs` MC ports spread evenly
    /// — `SystemConfig::ring(k * k, 4)` matches the endpoint count of a
    /// `k × k` mesh with corner MCs.
    ///
    /// # Panics
    ///
    /// Panics if `len < 2` or `n_mcs` is zero or exceeds `len`.
    pub fn ring(len: u16, n_mcs: u16) -> SystemConfig {
        SystemConfig::with_topology(Ring::with_spread_mcs(len, n_mcs))
    }

    /// A concentrated-mesh system: a `cols × rows` router grid hosting
    /// `concentration` tiles per router, corner MCs —
    /// `SystemConfig::cmesh(4, 2, 2)` matches the core and endpoint count
    /// of `SystemConfig::square(4)` at diameter 4 instead of 6.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `concentration` is not `1..=4`.
    pub fn cmesh(cols: u16, rows: u16, concentration: u8) -> SystemConfig {
        SystemConfig::with_topology(CMesh::with_corner_mcs(cols, rows, concentration))
    }

    /// Number of cores (tiles). On a concentrated mesh this is
    /// `routers × concentration` — the tile count, not the router count.
    pub fn cores(&self) -> usize {
        self.mesh.tile_count()
    }

    /// Sets the protocol, builder-style.
    #[must_use]
    pub fn with_protocol(mut self, protocol: Protocol) -> SystemConfig {
        self.protocol = protocol;
        self
    }

    /// Replaces the mesh's MC placement with the proportional scheme
    /// ([`Mesh::square_with_proportional_mcs`]): one MC per 16 tiles,
    /// spread along the perimeter. The L2's MC-interleaving endpoints are
    /// rewired to match. Required for the large-mesh scaling scenarios,
    /// where four corner MCs cannot feed hundreds of cores.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is not square.
    #[must_use]
    pub fn with_proportional_mcs(mut self) -> SystemConfig {
        let Topology::Mesh(mesh) = &self.mesh else {
            panic!("proportional MC placement is defined for meshes only");
        };
        assert_eq!(
            mesh.cols(),
            mesh.rows(),
            "proportional MC placement needs a square mesh"
        );
        let mesh = Mesh::square_with_proportional_mcs(mesh.cols());
        self.l2.mc_endpoints = mesh.mc_routers().iter().map(|&r| Endpoint::mc(r)).collect();
        self.mesh = mesh.into();
        self
    }

    /// Sets the pipelining of the uncore (L2 + NIC), Figure 10.
    #[must_use]
    pub fn with_pipelined_uncore(mut self, pipelined: bool) -> SystemConfig {
        self.l2.pipelined = pipelined;
        self.nic.pipelined = pipelined;
        self
    }

    /// Sets the channel width in bytes (Figure 8a).
    #[must_use]
    pub fn with_channel_bytes(mut self, bytes: u32) -> SystemConfig {
        self.noc.channel_bytes = bytes;
        self
    }

    /// Sets the GO-REQ VC count (Figure 8b).
    #[must_use]
    pub fn with_goreq_vcs(mut self, vcs: u8) -> SystemConfig {
        self.noc.vnets[0].vcs = vcs;
        self
    }

    /// Sets the UO-RESP VC count (Figure 8c).
    #[must_use]
    pub fn with_uoresp_vcs(mut self, vcs: u8) -> SystemConfig {
        self.noc.vnets[1].vcs = vcs;
        self
    }

    /// Sets the notification bits per core (Figure 8d).
    #[must_use]
    pub fn with_notification_bits(mut self, bits: u8) -> SystemConfig {
        self.notification_bits = bits;
        self
    }

    /// Sets the per-core outstanding-miss budget (RSHRs and the core's
    /// in-flight access limit move together).
    #[must_use]
    pub fn with_outstanding(mut self, rshrs: usize) -> SystemConfig {
        self.l2.rshr_entries = rshrs;
        self.core_outstanding = rshrs;
        self
    }

    /// Sets the number of parallel main-network planes (Section 5.3).
    ///
    /// # Panics
    ///
    /// Panics if `planes` is zero.
    #[must_use]
    pub fn with_planes(mut self, planes: usize) -> SystemConfig {
        self.planes = NonZeroUsize::new(planes).expect("at least one plane");
        self
    }

    /// Sets the plane-interleave granularity: `2^n` consecutive lines per
    /// stripe.
    #[must_use]
    pub fn with_plane_stripe_lines_log2(mut self, n: u32) -> SystemConfig {
        self.plane_stripe_lines_log2 = n;
        self
    }

    /// Sets the notification aggregation scheme, builder-style.
    ///
    /// # Panics
    ///
    /// Panics on a quad fanout below 2.
    #[must_use]
    pub fn with_notify(mut self, scheme: NotifyScheme) -> SystemConfig {
        if let NotifyScheme::Quad { fanout } = scheme {
            assert!(fanout >= 2, "quad fanout must be at least 2");
        }
        self.notify = scheme;
        self
    }

    /// The notification window this configuration materializes: the
    /// scheme's minimum on the fabric plus the configured slack.
    pub fn notification_window(&self) -> u64 {
        self.notify.window_for(&self.mesh) + self.notification_window_slack
    }

    /// Sets the observability level, builder-style.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsLevel) -> SystemConfig {
        self.obs = obs;
        self
    }

    /// Caps the retained flit-trace events, builder-style.
    #[must_use]
    pub fn with_trace_limit(mut self, limit: usize) -> SystemConfig {
        self.trace_limit = limit;
        self
    }

    /// Enables per-transaction lifecycle spans, builder-style.
    #[must_use]
    pub fn with_spans(mut self, spans: bool) -> SystemConfig {
        self.spans = spans;
        self
    }

    /// Sets the telemetry window length in cycles (0 = off), builder-style.
    #[must_use]
    pub fn with_windows(mut self, window_cycles: u64) -> SystemConfig {
        self.window_cycles = window_cycles;
        self
    }

    /// Enables open-loop injection, builder-style. A zero-load Poisson or
    /// bursty config degenerates to the closed-loop trace at build time.
    #[must_use]
    pub fn with_open_loop(mut self, open_loop: OpenLoopConfig) -> SystemConfig {
        self.open_loop = Some(open_loop);
        self
    }

    /// The byte-address shift the plane steering function applies: the
    /// line-offset bits plus the configured stripe granularity.
    pub fn plane_interleave_log2(&self) -> u32 {
        self.l2.line_bytes.trailing_zeros() + self.plane_stripe_lines_log2
    }

    /// Short human-readable label: fabric geometry, protocol and seed
    /// (`"6x6/SCORPIO/seed1"`, `"torus6x6/…"`, `"ring36/…"` — mesh labels
    /// are unchanged from before the topology axis existed). Multi-plane
    /// systems append the plane count to the geometry (`"8x8+4pl"`); a
    /// quad notification scheme appends its tag (`"32x32+q2"`).
    pub fn label(&self) -> String {
        let planes = match self.planes.get() {
            1 => String::new(),
            n => format!("+{n}pl"),
        };
        let notify = match self.notify.label().as_str() {
            "" => String::new(),
            tag => format!("+{tag}"),
        };
        format!(
            "{}{planes}{notify}/{}/seed{}",
            self.mesh.label(),
            self.protocol.name(),
            self.seed
        )
    }

    /// A stable 64-bit fingerprint of the *entire* configuration.
    ///
    /// FNV-1a over the `Debug` rendering, so any knob change — protocol,
    /// mesh, VC counts, cache geometry, seed — produces a different hash.
    /// Used by the experiment harness to tag result rows so runs can be
    /// traced back to the exact configuration that produced them. Stable
    /// across processes and thread counts (unlike `DefaultHasher`, it does
    /// not depend on per-process state).
    pub fn stable_hash(&self) -> u64 {
        fnv1a(format!("{self:?}").as_bytes())
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_matches_table1() {
        let cfg = SystemConfig::chip();
        assert_eq!(cfg.cores(), 36);
        assert_eq!(cfg.noc.channel_bytes, 16);
        assert_eq!(cfg.l2.capacity_bytes, 128 * 1024);
        assert_eq!(cfg.l1_bytes, 16 * 1024);
        assert_eq!(cfg.l2.rshr_entries, 2);
        assert_eq!(cfg.notification_bits, 1);
        assert_eq!(cfg.l2.mc_endpoints.len(), 4);
        assert_eq!(cfg.protocol, Protocol::Scorpio);
    }

    #[test]
    fn builders_apply() {
        let cfg = SystemConfig::square(4)
            .with_channel_bytes(32)
            .with_goreq_vcs(6)
            .with_uoresp_vcs(4)
            .with_notification_bits(2)
            .with_outstanding(4)
            .with_pipelined_uncore(false)
            .with_protocol(Protocol::TokenB);
        assert_eq!(cfg.noc.channel_bytes, 32);
        assert_eq!(cfg.noc.vnets[0].vcs, 6);
        assert_eq!(cfg.noc.vnets[1].vcs, 4);
        assert_eq!(cfg.notification_bits, 2);
        assert_eq!(cfg.l2.rshr_entries, 4);
        assert!(!cfg.l2.pipelined);
        assert!(!cfg.nic.pipelined);
        assert_eq!(cfg.protocol, Protocol::TokenB);
    }

    #[test]
    fn label_and_hash_are_stable_and_discriminating() {
        let a = SystemConfig::square(4);
        assert_eq!(a.label(), "4x4/SCORPIO/seed1");
        assert_eq!(a.stable_hash(), SystemConfig::square(4).stable_hash());
        let b = SystemConfig::square(4).with_protocol(Protocol::TokenB);
        assert_ne!(a.stable_hash(), b.stable_hash());
        let mut c = SystemConfig::square(4);
        c.seed = 2;
        assert_ne!(a.stable_hash(), c.stable_hash());
        let d = SystemConfig::square(4).with_goreq_vcs(6);
        assert_ne!(a.stable_hash(), d.stable_hash());
    }

    // The hash fingerprints the Debug rendering, so *any* change to
    // SystemConfig's shape (or a nested config's) shifts every hash. That
    // is intended — the hash ties result rows to the exact configuration
    // semantics — but it must never happen silently: stored JSONL/CSV
    // results stop matching. If this assertion fails, you changed the
    // config's shape; update the constant and note the result-file break
    // in CHANGES.md.
    #[test]
    fn stable_hash_is_pinned() {
        assert_eq!(SystemConfig::square(4).stable_hash(), 0xbbb791b93ac0807b);
    }

    #[test]
    fn topology_axis_has_stable_labels_and_distinct_hashes() {
        let mesh = SystemConfig::square(4);
        let torus = SystemConfig::torus(4);
        let ring = SystemConfig::ring(16, 4);
        assert_eq!(mesh.label(), "4x4/SCORPIO/seed1");
        assert_eq!(torus.label(), "torus4x4/SCORPIO/seed1");
        assert_eq!(ring.label(), "ring16/SCORPIO/seed1");
        // Matched endpoint counts at the same k.
        assert_eq!(mesh.cores(), 16);
        assert_eq!(torus.cores(), 16);
        assert_eq!(ring.cores(), 16);
        assert_eq!(mesh.mesh.endpoint_count(), 20);
        assert_eq!(torus.mesh.endpoint_count(), 20);
        assert_eq!(ring.mesh.endpoint_count(), 20);
        // Every fabric fingerprints differently.
        assert_ne!(mesh.stable_hash(), torus.stable_hash());
        assert_ne!(mesh.stable_hash(), ring.stable_hash());
        assert_ne!(torus.stable_hash(), ring.stable_hash());
        // The L2's MC interleaving follows the fabric's MC placement.
        assert_eq!(ring.l2.mc_endpoints.len(), 4);
    }

    #[test]
    #[should_panic(expected = "meshes only")]
    fn proportional_mcs_reject_non_mesh_fabrics() {
        let _ = SystemConfig::torus(4).with_proportional_mcs();
    }

    #[test]
    fn plane_axis_is_hash_transparent_at_default_and_distinct_otherwise() {
        // One plane at line granularity renders (and hashes) exactly as
        // the pre-plane config did — this is what keeps stored JSONL rows
        // valid.
        let base = SystemConfig::square(4);
        assert_eq!(base.planes.get(), 1);
        assert!(!format!("{base:?}").contains("planes"));
        assert_eq!(base.stable_hash(), 0xbbb791b93ac0807b);
        // Non-default plane knobs fingerprint differently from the base
        // and from each other.
        let two = SystemConfig::square(4).with_planes(2);
        let four = SystemConfig::square(4).with_planes(4);
        let coarse = SystemConfig::square(4)
            .with_planes(2)
            .with_plane_stripe_lines_log2(3);
        assert!(format!("{two:?}").contains("planes: 2"));
        assert_ne!(base.stable_hash(), two.stable_hash());
        assert_ne!(two.stable_hash(), four.stable_hash());
        assert_ne!(two.stable_hash(), coarse.stable_hash());
        // Labels: planes join the geometry segment.
        assert_eq!(base.label(), "4x4/SCORPIO/seed1");
        assert_eq!(two.label(), "4x4+2pl/SCORPIO/seed1");
        // The steering shift covers the line-offset bits (32 B lines).
        assert_eq!(base.plane_interleave_log2(), 5);
        assert_eq!(coarse.plane_interleave_log2(), 8);
    }

    #[test]
    fn notify_axis_is_hash_transparent_at_default_and_distinct_otherwise() {
        // The flat scheme renders (and hashes) exactly as the pre-scheme
        // config did — pinned hashes and stored JSONL rows stay valid.
        let base = SystemConfig::square(4);
        assert_eq!(base.notify, NotifyScheme::Flat);
        assert!(!format!("{base:?}").contains("notify:"));
        assert_eq!(base.stable_hash(), 0xbbb791b93ac0807b);
        // Quad schemes fingerprint differently from the base and from each
        // other, and join the label's geometry segment.
        let q2 = SystemConfig::square(4).with_notify(NotifyScheme::Quad { fanout: 2 });
        let q4 = SystemConfig::square(4).with_notify(NotifyScheme::Quad { fanout: 4 });
        assert!(format!("{q2:?}").contains("notify: Quad"));
        assert_ne!(base.stable_hash(), q2.stable_hash());
        assert_ne!(q2.stable_hash(), q4.stable_hash());
        assert_eq!(base.label(), "4x4/SCORPIO/seed1");
        assert_eq!(q2.label(), "4x4+q2/SCORPIO/seed1");
        // The derived window: 4x4 mesh diameter 6 → flat 9; depth-2 quad
        // tree → 7; fanout 4 folds in one level → 5.
        assert_eq!(base.notification_window(), 9);
        assert_eq!(q2.notification_window(), 7);
        assert_eq!(q4.notification_window(), 5);
    }

    #[test]
    #[should_panic(expected = "quad fanout")]
    fn quad_fanout_below_two_panics() {
        let _ = SystemConfig::square(4).with_notify(NotifyScheme::Quad { fanout: 1 });
    }

    #[test]
    fn obs_axis_is_hash_transparent_at_default_and_distinct_otherwise() {
        // Observability off renders (and hashes) exactly as the
        // pre-observability config did, so pinned config hashes — and the
        // byte-identity of reports keyed on them — survive the new axis.
        let base = SystemConfig::square(4);
        assert_eq!(base.obs, ObsLevel::Off);
        assert!(!format!("{base:?}").contains("obs"));
        assert_eq!(base.stable_hash(), 0xbbb791b93ac0807b);
        // Non-default observability knobs fingerprint differently from the
        // base and from each other.
        let counters = SystemConfig::square(4).with_obs(ObsLevel::Counters);
        let trace = SystemConfig::square(4).with_obs(ObsLevel::Trace);
        let capped = SystemConfig::square(4)
            .with_obs(ObsLevel::Trace)
            .with_trace_limit(16);
        assert!(format!("{counters:?}").contains("obs: Counters"));
        assert_ne!(base.stable_hash(), counters.stable_hash());
        assert_ne!(counters.stable_hash(), trace.stable_hash());
        assert_ne!(trace.stable_hash(), capped.stable_hash());
        // Observability never changes the label: it alters what a run
        // records, not what it simulates.
        assert_eq!(trace.label(), base.label());
    }

    #[test]
    fn span_and_window_axes_are_hash_transparent_at_default_and_distinct_otherwise() {
        // Spans off and windows off render (and hash) exactly as the
        // pre-telemetry config did, so pinned config hashes survive.
        let base = SystemConfig::square(4);
        assert!(!base.spans);
        assert_eq!(base.window_cycles, 0);
        assert!(!format!("{base:?}").contains("spans"));
        assert!(!format!("{base:?}").contains("window_cycles"));
        assert_eq!(base.stable_hash(), 0xbbb791b93ac0807b);
        // Non-default knobs fingerprint differently from the base and from
        // each other.
        let spans = SystemConfig::square(4).with_spans(true);
        let win = SystemConfig::square(4).with_windows(1024);
        let win_small = SystemConfig::square(4).with_windows(256);
        assert!(format!("{spans:?}").contains("spans: true"));
        assert!(format!("{win:?}").contains("window_cycles: 1024"));
        assert_ne!(base.stable_hash(), spans.stable_hash());
        assert_ne!(base.stable_hash(), win.stable_hash());
        assert_ne!(win.stable_hash(), win_small.stable_hash());
        assert_ne!(spans.stable_hash(), win.stable_hash());
        // Like observability, telemetry never changes the label.
        assert_eq!(spans.label(), base.label());
        assert_eq!(win.label(), base.label());
    }

    #[test]
    fn open_loop_axis_is_hash_transparent_at_default_and_distinct_otherwise() {
        // Closed-loop configs render (and hash) exactly as before the
        // open-loop axis existed — pinned hashes and stored JSONL rows
        // keyed on them stay valid.
        let base = SystemConfig::square(4);
        assert!(base.open_loop.is_none());
        assert!(!format!("{base:?}").contains("open_loop"));
        assert_eq!(base.stable_hash(), 0xbbb791b93ac0807b);
        // Open-loop knobs fingerprint differently from the base and from
        // each other, across process, load and queue depth.
        let pois = SystemConfig::square(4).with_open_loop(OpenLoopConfig::poisson(40));
        let pois_hot = SystemConfig::square(4).with_open_loop(OpenLoopConfig::poisson(80));
        let burst = SystemConfig::square(4).with_open_loop(OpenLoopConfig::bursty(40, 50, 150));
        let replay = SystemConfig::square(4).with_open_loop(OpenLoopConfig::replay());
        let mut deep = OpenLoopConfig::poisson(40);
        deep.queue_cap = 256;
        let deep = SystemConfig::square(4).with_open_loop(deep);
        assert!(format!("{pois:?}").contains("open_loop"));
        assert_ne!(base.stable_hash(), pois.stable_hash());
        assert_ne!(pois.stable_hash(), pois_hot.stable_hash());
        assert_ne!(pois.stable_hash(), burst.stable_hash());
        assert_ne!(pois.stable_hash(), replay.stable_hash());
        assert_ne!(pois.stable_hash(), deep.stable_hash());
        // Injection mode never changes the label: the sink carries it in
        // dedicated columns instead.
        assert_eq!(pois.label(), base.label());
    }

    #[test]
    #[should_panic(expected = "at least one plane")]
    fn zero_planes_panics() {
        let _ = SystemConfig::square(4).with_planes(0);
    }

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::Scorpio.name(), "SCORPIO");
        assert_eq!(Protocol::Inso { expiry_window: 40 }.name(), "INSO(exp=40)");
        assert_eq!(Protocol::TokenB.name(), "TokenB");
        assert_eq!(Protocol::LpdDir.name(), "LPD-D");
        assert_eq!(Protocol::HtDir.name(), "HT-D");
        assert!(Protocol::LpdDir.uses_directory());
        assert!(!Protocol::Scorpio.uses_directory());
    }
}
