//! The assembled full system: cores + L1s + L2s + NICs + both networks +
//! memory controllers, under one of three ordering schemes.
//!
//! * [`Protocol::Scorpio`] — the paper's system: ordered GO-REQ deliveries
//!   via the notification network and ESID-gated NICs.
//! * [`Protocol::TokenB`] — same snoopy protocol and same mesh, ordering by
//!   a zero-cost global sequencer (the paper's race-free TokenB model).
//! * [`Protocol::Inso`] — per-source slots with expiry broadcasts.
//!
//! All three share the identical caches, memory controllers and router
//! fabric, exactly as the paper's methodology demands ("keeping all
//! conditions equal besides the ordered network").

use crate::config::{ObsLevel, Protocol, SystemConfig};
use crate::report::{
    EpWait, ObsReport, PlaneObs, SpanReport, SystemReport, WindowReport, WindowRow,
};
use crate::tile::{CoreDriver, CoreKind};
use scorpio_coherence::{
    home_tile, CohMsg, DirectoryCache, InsoReorderBuffer, InsoSlotAllocator, LpdEntry, MsgKind,
    SlotContent,
};
use scorpio_mem::{L2Out, MemoryController, MissSpan, OrderedSnoop, SnoopyL2};
use scorpio_nic::{Nic, NicMode};
use scorpio_noc::{
    merge_trace, Endpoint, LocalSlot, MultiNetwork, ObsConfig, SteerKey, TraceEvent, TraceKind,
    VnetId, WindowCell,
};
use scorpio_notify::{NotifyConfig, NotifyNetwork};
use scorpio_sim::stats::LogHistogram;
use scorpio_sim::{ActiveSet, Cycle};
use scorpio_workloads::Trace;
use std::collections::{BTreeMap, VecDeque};

/// A full SCORPIO (or baseline) system.
pub struct System {
    cfg: SystemConfig,
    /// The main network: one or more address-interleaved delivery planes
    /// behind one interface (`planes = 1` is the chip's single fabric).
    net: MultiNetwork<CohMsg>,
    notify: Option<NotifyNetwork>,
    /// NICs per endpoint (tiles first, then MC ports).
    nics: Vec<Nic<CohMsg>>,
    drivers: Vec<CoreDriver>,
    l2s: Vec<SnoopyL2>,
    mcs: Vec<MemoryController>,
    /// Unordered-mode reorder buffers per endpoint.
    reorders: Vec<InsoReorderBuffer<CohMsg>>,
    /// INSO slot allocators per tile.
    inso_alloc: Vec<InsoSlotAllocator>,
    /// TokenB global sequencer.
    oracle_seq: u64,
    /// Ordered request awaiting injection, per tile (slot already taken).
    pending_ordered: Vec<Option<CohMsg>>,
    /// Expiry broadcast awaiting injection, per tile.
    pending_expiry: Vec<Option<CohMsg>>,
    /// Data response popped from the NIC but not yet accepted by the L2.
    resp_hold: Vec<Option<CohMsg>>,
    /// Directory-home state per tile (LPD-D / HT-D).
    dir_homes: Vec<DirHome>,
    expiry_sent: u64,
    /// Stepped-count snapshot at the last completed op (deadlock watchdog).
    watchdog_steps: u64,
    watchdog_ops: u64,
    /// Cycles actually stepped (ticked or skipped one at a time); with the
    /// leap engine this lags [`System::cycle`] by the leaped spans.
    stepped: u64,
    /// Cycles skipped wholesale by the event-leaping clock.
    leaped: u64,
    /// When set, [`System::step`] may leap the clock straight to the next
    /// timed deadline whenever the whole machine is provably idle.
    leap: bool,
    // ---- Active-set engine state (see DESIGN.md, "wake/sleep protocol").
    /// Tiles/MCs with pending work; drained (in ascending order) each
    /// cycle so `tick_tiles`/`tick_mcs` only touch woken components.
    tile_active: ActiveSet,
    mc_active: ActiveSet,
    tile_scratch: Vec<u32>,
    mc_scratch: Vec<u32>,
    ep_scratch: Vec<u32>,
    /// Cached per-component completion state backing the incremental
    /// [`System::is_complete`]: a component's flag is refreshed whenever it
    /// is ticked, and a sleeping component cannot change it.
    tile_quiet: Vec<bool>,
    mc_quiet: Vec<bool>,
    tiles_pending: usize,
    mcs_pending: usize,
    /// Running ops total (drivers report transitions; the watchdog reads
    /// this instead of re-summing every driver every cycle).
    ops_cache: Vec<u64>,
    ops_total: u64,
    /// Last notification window the wake logic has seen.
    last_notify_window: Option<u64>,
    /// Timed wake-ups keyed by absolute deadline cycle and bucketed by
    /// notification region: tiles sleeping through a compute gap and MCs
    /// sleeping on a scheduled response. Values are *endpoint* indices —
    /// `v < cores` is tile `v`, anything above is MC `v - cores`. These
    /// deadlines are also what the event-leaping clock jumps to when the
    /// whole machine is idle.
    timed_wakes: RegionWakes,
    // ---- Per-region leap accounting (quad notification schemes).
    /// Leaf-quad count of the notification tree (1 under the flat scheme
    /// or for baselines without a notification network).
    regions: usize,
    /// Router index → leaf-quad region, copied from the notification tree
    /// so the delivery fabric's activity read-back shares its partition.
    region_of_router: Vec<u32>,
    /// Endpoint index (tiles then MCs) → leaf-quad region of its router.
    region_of_ep: Vec<u32>,
    /// Scratch bitset of regions seen active this stepped cycle.
    region_bits: Vec<u64>,
    /// Σ over stepped cycles of the active-region count (min 1): the
    /// per-region analogue of [`System::stepped_cycles`]. A region that
    /// provably had nothing woken in a stepped cycle leaps that cycle
    /// locally — maintained only under `leap` with `regions > 1`; read
    /// through [`System::region_cycles_stepped`], which falls back to
    /// `stepped × regions` when the accounting is off.
    region_cycles_stepped: u64,
    /// When set, tick every tile and MC each cycle and compute
    /// [`System::is_complete`] by full scan — the pre-refactor engine,
    /// kept as the equivalence/benchmark reference.
    always_scan: bool,
    // ---- Observability (all empty/zero unless `cfg.obs` enables it).
    /// System-layer trace events (ordered commits), one stream per plane
    /// so each stays sorted by [`TraceEvent::sort_key`] (the per-stream
    /// cap then preserves the exact merged prefix); merged with the
    /// network planes' streams by [`System::take_trace`].
    sys_trace: Vec<Vec<TraceEvent>>,
    /// Monotonic sequence for `sys_trace` (keeps advancing past the cap).
    sys_seq: u64,
    /// System-layer events discarded at the cap.
    sys_trace_dropped: u64,
    /// Core ops completed per telemetry window (epoch-indexed, grown on
    /// demand); maintained only when `cfg.window_cycles` is non-zero.
    win_ops: Vec<u64>,
}

impl System {
    /// Builds a system where every core runs the corresponding trace.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the core count.
    pub fn with_traces(cfg: SystemConfig, traces: Vec<Trace>) -> System {
        assert_eq!(traces.len(), cfg.cores(), "one trace per core");
        System::build(cfg, traces.into_iter().map(CoreKind::Trace).collect())
    }

    /// Builds a system where every core runs a reactive program.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the core count.
    pub fn with_programs(
        cfg: SystemConfig,
        programs: Vec<Box<dyn scorpio_workloads::CoreProgram + Send>>,
    ) -> System {
        assert_eq!(programs.len(), cfg.cores(), "one program per core");
        System::build(cfg, programs.into_iter().map(CoreKind::Program).collect())
    }

    fn build(mut cfg: SystemConfig, kinds: Vec<CoreKind>) -> System {
        let cores = cfg.cores();
        let scorpio = cfg.protocol == Protocol::Scorpio;
        // Baselines broadcast on an unordered request class.
        cfg.noc.vnets[0].ordered = scorpio;
        // Big sweeps don't need per-uid delivery tracking.
        cfg.noc.track_deliveries = false;

        let planes = cfg.planes;
        let mut net: MultiNetwork<CohMsg> = MultiNetwork::new(
            cfg.mesh.clone(),
            cfg.noc.clone(),
            planes,
            cfg.plane_interleave_log2(),
        );
        // Observability sinks are installed before the first cycle;
        // every level simulates identically (asserted by the obs
        // equivalence tests), the level only controls what is recorded.
        // Windowed telemetry needs a sink even at `ObsLevel::Off` (its
        // counters then stay disabled — only the window cells record).
        let base_obs = match cfg.obs {
            ObsLevel::Off => None,
            ObsLevel::Counters => Some(ObsConfig::counters_only()),
            ObsLevel::Trace => Some(ObsConfig::with_trace(cfg.trace_limit)),
        };
        net.set_observability(match (base_obs, cfg.window_cycles) {
            (obs, 0) => obs,
            (Some(obs), w) => Some(obs.with_windows(w)),
            (None, w) => Some(
                ObsConfig {
                    counters: false,
                    trace: false,
                    trace_limit: 0,
                    window_cycles: 0,
                }
                .with_windows(w),
            ),
        });
        let notify = scorpio.then(|| {
            // One notification fabric whose messages carry an independent
            // announcement word group per plane; the scheme picks flat
            // grid-diameter propagation or the hierarchical quad tree.
            let mut n = NotifyNetwork::with_scheme(
                &cfg.mesh,
                NotifyConfig {
                    cores,
                    bits_per_core: cfg.notification_bits,
                    window: cfg.notification_window(),
                },
                planes.get(),
                cfg.notify,
            );
            // Windowed telemetry wants every publish-tick timestamp,
            // including those inside empty-window leaps.
            n.set_publish_log(cfg.window_cycles != 0);
            n
        });
        let mode = if scorpio {
            NicMode::Ordered
        } else {
            NicMode::Unordered
        };
        // Home-directory slices for the baselines: the total budget is
        // split across tiles; LPD's wide entries cache far fewer lines
        // than HT's 2-bit entries in the same storage (Section 5.1).
        let entry_bits = match cfg.protocol {
            Protocol::LpdDir => LpdEntry::entry_bits(cores, cfg.lpd_pointers),
            _ => 2,
        };
        let slice_bytes = (cfg.dir_total_bytes / cores).max(64);
        let dir_homes: Vec<DirHome> = (0..cores)
            .map(|_| {
                DirHome::new(
                    slice_bytes,
                    entry_bits,
                    cfg.mc.dir_latency,
                    cfg.mc.dir_miss_penalty,
                )
            })
            .collect();
        let nic_cfg = cfg.nic.clone();
        let endpoints: Vec<Endpoint> = cfg.mesh.endpoints().collect();
        let nics: Vec<Nic<CohMsg>> = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| {
                // A tile's SID is its tile number — its dense endpoint
                // index (tiles come first), which on a concentrated mesh
                // differs from its router id.
                let sid = ep.slot.is_tile().then_some(scorpio_noc::Sid(i as u16));
                Nic::new(*ep, sid, mode, cores, planes.get(), nic_cfg.clone())
            })
            .collect();
        let drivers: Vec<CoreDriver> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, k)| {
                let mut d = CoreDriver::new(k, cfg.l1_bytes, cfg.l1_ways, cfg.l2.line_bytes);
                d.set_max_outstanding(cfg.core_outstanding);
                if let Some(ol) = &cfg.open_loop {
                    // Schedules are drawn serially here from (seed, core)
                    // lanes, so they are byte-identical for every engine
                    // and worker-thread count. A zero-load schedule is
                    // empty and the driver stays closed-loop.
                    d.set_open_loop(ol.process, ol.load_millis, ol.queue_cap, i as u64, cfg.seed);
                }
                d
            })
            .collect();
        let l2s: Vec<SnoopyL2> = (0..cores as u16)
            .map(|t| {
                let mut l2 = SnoopyL2::new(t, cfg.l2.clone());
                if cfg.obs != ObsLevel::Off {
                    l2.stats.enable_histograms();
                }
                if cfg.spans {
                    l2.enable_spans();
                }
                l2
            })
            .collect();
        let mc_total = cfg.mesh.mc_routers().len();
        let mcs: Vec<MemoryController> = cfg
            .mesh
            .mc_routers()
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                MemoryController::new(
                    Endpoint::mc(r),
                    i,
                    mc_total,
                    cfg.l2.line_bytes,
                    cfg.mc.clone(),
                )
            })
            .collect();
        let n_eps = endpoints.len();
        let n_mcs = mcs.len();
        // The per-region layer shares the notification tree's leaf-quad
        // partition; flat schemes and baselines collapse to one region.
        let (regions, region_of_router): (usize, Vec<u32>) = match &notify {
            Some(n) if n.regions() > 1 => (
                n.regions(),
                (0..cfg.mesh.router_count())
                    .map(|r| n.region_of_router(r))
                    .collect(),
            ),
            _ => (1, vec![0; cfg.mesh.router_count()]),
        };
        let region_of_ep: Vec<u32> = endpoints
            .iter()
            .map(|ep| region_of_router[ep.router.index()])
            .collect();
        let mut tile_active = ActiveSet::new(cores);
        tile_active.wake_all();
        let mut mc_active = ActiveSet::new(n_mcs);
        mc_active.wake_all();
        System {
            net,
            notify,
            nics,
            drivers,
            l2s,
            mcs,
            reorders: (0..n_eps).map(|_| InsoReorderBuffer::new()).collect(),
            inso_alloc: (0..cores)
                .map(|t| InsoSlotAllocator::new(t, cores))
                .collect(),
            oracle_seq: 0,
            pending_ordered: vec![None; cores],
            pending_expiry: vec![None; cores],
            resp_hold: vec![None; n_eps],
            dir_homes,
            expiry_sent: 0,
            watchdog_steps: 0,
            watchdog_ops: 0,
            stepped: 0,
            leaped: 0,
            leap: false,
            tile_active,
            mc_active,
            tile_scratch: Vec::new(),
            mc_scratch: Vec::new(),
            ep_scratch: Vec::new(),
            tile_quiet: vec![false; cores],
            mc_quiet: vec![false; n_mcs],
            tiles_pending: cores,
            mcs_pending: n_mcs,
            ops_cache: vec![0; cores],
            ops_total: 0,
            last_notify_window: None,
            timed_wakes: RegionWakes::new(regions, region_of_ep.clone()),
            regions,
            region_of_router,
            region_of_ep,
            region_bits: vec![0; regions.div_ceil(64)],
            region_cycles_stepped: 0,
            always_scan: false,
            sys_trace: vec![Vec::new(); cfg.planes.get()],
            sys_seq: 0,
            sys_trace_dropped: 0,
            win_ops: Vec::new(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Maps a coherence-layer destination to its delivery-fabric endpoint.
    ///
    /// The cache/memory layer addresses tiles by *tile index* (it encodes
    /// tile `t` as `Endpoint::tile(RouterId(t))` — requesters, FID owners
    /// and directory homes are all tile numbers); the fabric addresses
    /// them by (router, slot). On every unconcentrated fabric the two
    /// coincide; on a concentrated mesh tile `t` lives at router `t / c`,
    /// slot `t % c`. MC endpoints already carry physical router ids and
    /// pass through. This is the single logical→physical boundary — every
    /// unicast the system layer injects crosses it.
    fn physical_dest(&self, dest: Endpoint) -> Endpoint {
        match dest.slot {
            LocalSlot::Tile(k) => {
                debug_assert_eq!(k, 0, "coherence layer addresses tiles by index");
                self.cfg.mesh.tile_endpoint(dest.router.index())
            }
            LocalSlot::Mc => dest,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.net.cycle()
    }

    /// Selects the always-scan engine: probe every tile, MC, router and
    /// injection port each cycle, and compute [`System::is_complete`] by
    /// full scan, exactly as the pre-refactor engine did. The active-set
    /// engine (the default) is required to produce byte-identical
    /// [`SystemReport`]s — asserted by the engine-equivalence suite — so
    /// this switch exists to keep that claim testable and the speedup
    /// measurable. Call before the first cycle.
    pub fn set_always_scan(&mut self, scan: bool) {
        self.always_scan = scan;
        self.net.set_always_scan(scan);
    }

    /// Selects how routers route: compiled table lookups (default) or
    /// per-flit evaluation of the topology's coordinate spec — the
    /// reference engine the tables are compiled from. Semantics-neutral
    /// (asserted by the equivalence suite); exists so the table-lookup
    /// speedup stays measurable (`route-lookup` scenario). Call before the
    /// first cycle.
    pub fn set_table_routing(&mut self, tables: bool) {
        self.net.set_table_routing(tables);
    }

    /// Enables the event-leaping clock: when every component is provably
    /// asleep and the only future work is a known timed deadline (a compute
    /// gap or a scheduled memory response) or a notification window's
    /// publish tick, [`System::step`] advances the clock straight there
    /// instead of stepping empty cycles. Live windows no longer pin the
    /// clock: an announcer whose only obligation is its in-flight
    /// announcement sleeps (`Nic::can_sleep_leap`), and the window's OR
    /// state fast-forwards arithmetically to its publish tick
    /// (`NotifyNetwork::leap_horizon` / `advance`). Exact by construction
    /// — leaping requires the active sets empty and every plane quiescent,
    /// states in which a serial cycle is a provable no-op — and asserted
    /// byte-identical (reports *and* traces) by the equivalence matrix.
    /// Under a quad notification scheme the engine additionally keeps
    /// per-region stepped-cycle accounts ([`System::region_cycles_stepped`]).
    /// Off by default; incompatible with the always-scan reference engine
    /// (silently inert under it). Call before the first cycle.
    pub fn set_leap(&mut self, leap: bool) {
        self.leap = leap;
    }

    /// Selects the number of worker lanes for intra-run parallelism
    /// (`<= 1`, the default, is the single-thread engine). Parallelism is
    /// confined to the main network's compute phase behind a deterministic
    /// commit, so results are byte-identical for every worker count. Call
    /// before the first cycle.
    pub fn set_workers(&mut self, workers: usize) {
        self.net.set_workers(workers);
    }

    /// Cycles actually executed as steps. Without the leap engine this
    /// equals [`System::cycle`]; with it, `cycle - stepped_cycles` is the
    /// span covered by clock leaps.
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped
    }

    /// Number of per-region leap domains: the notification tree's leaf
    /// quads under a quad scheme, 1 under the flat scheme or for
    /// protocols without a notification network.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Σ over stepped cycles of the number of regions active that cycle
    /// (min 1). Dividing by [`System::regions`] gives the mean per-region
    /// stepped-cycle count, whose ratio to the runtime is the per-region
    /// leap ratio. Without per-region accounting (flat scheme, single
    /// region, or a non-leap engine) every region steps every stepped
    /// cycle, so this is `stepped_cycles × regions`.
    pub fn region_cycles_stepped(&self) -> u64 {
        if self.leap && self.regions > 1 {
            self.region_cycles_stepped
        } else {
            self.stepped * self.regions as u64
        }
    }

    /// Whether every core has finished and the machine is quiescent.
    ///
    /// The active-set engine answers from incrementally maintained
    /// counters (components report completion transitions as they tick);
    /// the always-scan engine performs the full scan the counters mirror.
    pub fn is_complete(&self) -> bool {
        if self.always_scan {
            self.drivers.iter().all(CoreDriver::is_done)
                && self.l2s.iter().all(SnoopyL2::is_idle)
                && self.mcs.iter().all(MemoryController::is_idle)
                && self.pending_ordered.iter().all(Option::is_none)
                && self.resp_hold.iter().all(Option::is_none)
                && self.dir_homes.iter().all(DirHome::is_idle)
        } else {
            self.tiles_pending == 0 && self.mcs_pending == 0
        }
    }

    /// Runs until completion (or `cfg.max_cycles`), returning the report.
    ///
    /// # Panics
    ///
    /// Panics if the system makes no progress for 50 000 cycles — the
    /// deadlock watchdog used by the verification suite.
    pub fn run_to_completion(&mut self) -> SystemReport {
        let max = self.cfg.max_cycles;
        while !self.is_complete() && self.cycle().as_u64() < max {
            self.step();
            // The ops total is maintained incrementally as drivers tick
            // (a sleeping driver is done and cannot complete ops). The
            // watchdog counts *steps* without progress, not raw cycles: a
            // clock leap over a >50k-cycle compute gap is progress-neutral
            // idleness, not a wedge (without the leap engine the two
            // measures coincide, every step being one cycle).
            if self.ops_total > self.watchdog_ops {
                self.watchdog_ops = self.ops_total;
                self.watchdog_steps = self.stepped;
            }
            assert!(
                self.stepped - self.watchdog_steps < 50_000,
                "system wedged: no op completed for 50k stepped cycles at {} ({} ops done)",
                self.cycle(),
                self.ops_total
            );
        }
        self.report()
    }

    /// One full system cycle. With the leap engine enabled and the whole
    /// machine provably idle, the clock first jumps to just before the
    /// next timed deadline, so this call may advance [`System::cycle`] by
    /// more than one.
    pub fn step(&mut self) {
        if self.leap {
            self.try_leap();
        }
        self.stepped += 1;
        let now = self.net.cycle();
        self.tick_tiles(now);
        self.tick_mcs(now);
        self.net.tick();
        self.net.commit();
        if let Some(n) = self.notify.as_mut() {
            n.tick();
        }
        self.apply_wakes();
        if self.leap && self.regions > 1 {
            self.account_region_activity();
        }
    }

    /// Per-region stepped-cycle accounting (quad schemes under the leap
    /// engine): after the cycle's ticks, OR together the regions of every
    /// component that was on a work list this cycle — drained tiles and
    /// MCs, plus the delivery fabric's drained routers and injection ports
    /// on every non-skipped plane — and charge one stepped region-cycle
    /// per active region (min 1, for pure bookkeeping cycles such as
    /// notification-window edges). Regions absent from the mask leap the
    /// cycle locally; they rejoin the global clock deterministically at
    /// their next timer fire, flit-delivery endpoint wake, or
    /// window-completion wake-all — the clock-join protocol (DESIGN.md
    /// §15). Pure accounting: the simulation itself is byte-identical with
    /// the accounting on or off.
    fn account_region_activity(&mut self) {
        let mut bits = std::mem::take(&mut self.region_bits);
        bits.iter_mut().for_each(|w| *w = 0);
        let cores = self.cfg.cores();
        for &t in &self.tile_scratch {
            let g = self.region_of_ep[t as usize];
            bits[g as usize / 64] |= 1 << (g % 64);
        }
        for &m in &self.mc_scratch {
            let g = self.region_of_ep[cores + m as usize];
            bits[g as usize / 64] |= 1 << (g % 64);
        }
        self.net
            .or_ticked_regions(&self.region_of_router, &self.region_of_ep, &mut bits);
        let active: u32 = bits.iter().map(|w| w.count_ones()).sum();
        self.region_cycles_stepped += u64::from(active.max(1));
        self.region_bits = bits;
    }

    /// The event leap: if nothing can happen until the earliest timed
    /// deadline `k`, advance the clock to `k - 1` and let the following
    /// normal step fire the wake exactly as the serial engine would (timed
    /// wakes with key `<= cycle` fire at the end of the step that reaches
    /// them, so the woken component ticks at cycle `k`).
    ///
    /// The notification network no longer has to be idle: a live window
    /// whose announcers are all asleep (see `Nic::can_sleep_leap`) bounds
    /// the jump instead, via [`NotifyNetwork::leap_horizon`] — the clock
    /// leaps straight to the window's publish tick (or to `k - 1`,
    /// whichever is earlier), and [`NotifyNetwork::advance`] fast-forwards
    /// the OR-tree state exactly (mid-window propagation over latched
    /// inputs is time-invariant). The remaining preconditions make the
    /// skipped span a provable no-op: both active sets empty (no tile or
    /// MC would tick) and every plane quiescent (its tick/commit collapses
    /// to a clock edge — the same argument the idle-plane skip rests on).
    fn try_leap(&mut self) {
        if self.always_scan || !self.tile_active.is_empty() || !self.mc_active.is_empty() {
            return;
        }
        let wake = self.timed_wakes.first_deadline();
        let horizon = self.notify.as_ref().and_then(NotifyNetwork::leap_horizon);
        let target = match (wake, horizon) {
            (Some(k), Some(h)) => (k - 1).min(h),
            (Some(k), None) => k - 1,
            (None, Some(h)) => h,
            (None, None) => return,
        };
        let now = self.net.cycle().as_u64();
        // Never leap past the run bound: the serial engine would have
        // stopped stepping at max_cycles with the deadline still pending.
        let target = target.min(self.cfg.max_cycles.saturating_sub(1));
        if target <= now {
            return;
        }
        if !self.net.is_quiescent() {
            return;
        }
        let delta = target - now;
        self.net.leap(delta);
        if let Some(n) = self.notify.as_mut() {
            n.advance(delta);
        }
        self.leaped += delta;
    }

    /// Post-cycle wake propagation (active-set engine): endpoints whose
    /// ejection buffers received flits wake their tile/MC, and a completed
    /// notification window carrying announcements (or a stop bit) wakes
    /// everyone — every NIC must observe it.
    fn apply_wakes(&mut self) {
        if self.always_scan {
            return;
        }
        // Fire due timed wakes (gap and MC-response deadlines) for the
        // next cycle. The region buckets drain in region order, not global
        // deadline order — harmless, since waking an active set is
        // order-independent (it drains sorted).
        let next = self.net.cycle().as_u64();
        let cores = self.cfg.cores();
        let mut eps = std::mem::take(&mut self.ep_scratch);
        self.timed_wakes.pop_due(next, &mut eps);
        for &v in &eps {
            let v = v as usize;
            if v < cores {
                self.tile_active.wake(v);
            } else {
                self.mc_active.wake(v - cores);
            }
        }
        self.net.take_woken_endpoints(&mut eps);
        for &ep in &eps {
            let ep = ep as usize;
            if ep < cores {
                self.tile_active.wake(ep);
            } else {
                self.mc_active.wake(ep - cores);
            }
        }
        self.ep_scratch = eps;
        if let Some(n) = &self.notify {
            if let Some((w, msg)) = n.latest() {
                if self.last_notify_window != Some(w) {
                    self.last_notify_window = Some(w);
                    // is_empty() is false for stop-bit windows too, so this
                    // single check covers both wake triggers.
                    if !msg.is_empty() {
                        self.tile_active.wake_all();
                        self.mc_active.wake_all();
                    }
                }
            }
        }
    }

    fn tick_tiles(&mut self, now: Cycle) {
        let mut list = std::mem::take(&mut self.tile_scratch);
        self.tile_active
            .drain_sorted_or_all(self.always_scan, &mut list);
        for &t in &list {
            self.tick_tile(t as usize, now);
        }
        self.tile_scratch = list;
    }

    fn tick_tile(&mut self, t: usize, now: Cycle) {
        // L2 → core completions, then inclusion invalidations.
        while let Some(resp) = self.l2s[t].pop_core_resp() {
            self.drivers[t].complete(now, resp);
        }
        while let Some(addr) = self.l2s[t].pop_l1_invalidation() {
            self.drivers[t].l1_mut().invalidate(addr);
        }
        // Ordered deliveries into the snoop queue.
        match self.cfg.protocol {
            Protocol::Scorpio => {
                while self.l2s[t].snoop_ready() {
                    let Some(d) = self.nics[t].pop_ordered() else {
                        break;
                    };
                    self.trace_commit(now, t, d.sid, d.own, d.payload.steer_key());
                    if self.cfg.spans
                        && d.own
                        && matches!(d.payload.kind, MsgKind::GetS | MsgKind::GetX)
                    {
                        self.l2s[t].stamp_popped(d.payload.req_tag, now);
                    }
                    self.l2s[t].push_snoop(OrderedSnoop {
                        own: d.own,
                        msg: d.payload,
                    });
                }
                self.drain_data_packets(t, now);
            }
            _ => {
                self.drain_unordered_packets(t, now);
                while self.l2s[t].snoop_ready() {
                    match self.reorders[t].pop_ready() {
                        Some(Some(msg)) => {
                            let own = msg.requester as usize == t;
                            if self.cfg.spans
                                && own
                                && matches!(msg.kind, MsgKind::GetS | MsgKind::GetX)
                            {
                                self.l2s[t].stamp_popped(msg.req_tag, now);
                            }
                            self.l2s[t].push_snoop(OrderedSnoop { own, msg });
                        }
                        Some(None) => {} // expired slot
                        None => break,
                    }
                }
            }
        }
        // Held data response, then L2 outbox → NIC.
        self.push_held_resp(t);
        self.forward_l2_out(t, now);
        // INSO: idle tiles must expire slots.
        if let Protocol::Inso { expiry_window } = self.cfg.protocol {
            self.inso_expiry(t, now, expiry_window);
        }
        // Directory baselines: the home slice orders and rebroadcasts.
        if self.cfg.protocol.uses_directory() {
            self.tick_dir_home(t, now);
        }
        // Core issues; L2 and NIC advance.
        self.drivers[t].tick(now, &mut self.l2s[t]);
        self.l2s[t].tick(now);
        let notify = self.notify.as_mut();
        self.nics[t].tick(now, &mut self.net, notify);
        // Report this tile's completion transition and ops progress, then
        // decide whether it may sleep. `drained` is the tile-local state
        // shared by both predicates: the completion counter adds "core
        // done", the sleep check adds the wake-protocol conditions.
        let drained = self.l2s[t].is_idle()
            && self.pending_ordered[t].is_none()
            && self.resp_hold[t].is_none()
            && self.dir_homes[t].is_idle();
        let quiet = drained && self.drivers[t].is_done();
        if quiet != self.tile_quiet[t] {
            self.tile_quiet[t] = quiet;
            if quiet {
                self.tiles_pending -= 1;
            } else {
                self.tiles_pending += 1;
            }
        }
        let ops = self.drivers[t].ops_done;
        let ops_delta = ops - self.ops_cache[t];
        self.ops_total += ops_delta;
        self.ops_cache[t] = ops;
        if self.cfg.window_cycles != 0 && ops_delta != 0 {
            let idx = (now.as_u64() / self.cfg.window_cycles) as usize;
            if self.win_ops.len() <= idx {
                self.win_ops.resize(idx + 1, 0);
            }
            self.win_ops[idx] += ops_delta;
        }
        if !self.always_scan {
            // Sleep only when every obligation other than the core itself
            // is gone; any future work must then arrive as an ejected
            // flit or a notification window, both of which wake the tile.
            // Under the leap engine the NIC predicate relaxes: a tile
            // whose only obligation is an in-flight announcement sleeps
            // too (its window's publication wakes everyone), which is what
            // lets the clock leap through live windows. INSO tiles never
            // sleep: slot expiry is wall-clock driven.
            let nic_asleep = if self.leap {
                self.nics[t].can_sleep_leap()
            } else {
                self.nics[t].can_sleep()
            };
            let rest_asleep = drained
                && !matches!(self.cfg.protocol, Protocol::Inso { .. })
                && self.pending_expiry[t].is_none()
                && self.l2s[t].outputs_drained()
                && nic_asleep
                && self.reorders[t].buffered() == 0
                && !self.net.eject_occupied(t);
            if !rest_asleep {
                self.tile_active.wake(t);
            } else if !self.drivers[t].is_done() {
                // The core still has work: sleep through its compute gap
                // with a timed wake-up, or keep ticking if it is active.
                match self.drivers[t].next_wake(now) {
                    Some(wake) => self.timed_wakes.push(wake.as_u64(), t as u32),
                    None => self.tile_active.wake(t),
                }
            }
        }
    }

    fn tick_mcs(&mut self, now: Cycle) {
        let mut list = std::mem::take(&mut self.mc_scratch);
        self.mc_active
            .drain_sorted_or_all(self.always_scan, &mut list);
        for &m in &list {
            self.tick_mc(m as usize, now);
        }
        self.mc_scratch = list;
    }

    fn tick_mc(&mut self, m: usize, now: Cycle) {
        let cores = self.cfg.cores();
        let ep_idx = cores + m;
        match self.cfg.protocol {
            Protocol::Scorpio => {
                while let Some(d) = self.nics[ep_idx].pop_ordered() {
                    self.trace_commit(now, ep_idx, d.sid, d.own, d.payload.steer_key());
                    self.mcs[m].snoop(
                        OrderedSnoop {
                            own: false,
                            msg: d.payload,
                        },
                        now,
                    );
                }
                while let Some(pkt) = self.nics[ep_idx].pop_packet() {
                    assert_eq!(pkt.payload.kind, MsgKind::WbData);
                    self.mcs[m].wb_data(pkt.payload, now);
                }
            }
            _ => {
                while let Some(pkt) = self.nics[ep_idx].pop_packet() {
                    let msg = pkt.payload;
                    match msg.kind {
                        MsgKind::WbData => self.mcs[m].wb_data(msg, now),
                        MsgKind::InsoExpire => {
                            self.reorders[ep_idx].insert(msg.value, SlotContent::Expired);
                        }
                        k if k.is_ordered_request() => {
                            self.reorders[ep_idx].insert(msg.value, SlotContent::Request(msg));
                        }
                        other => panic!("MC received {other:?}"),
                    }
                }
                while let Some(ready) = self.reorders[ep_idx].pop_ready() {
                    if let Some(msg) = ready {
                        self.mcs[m].snoop(OrderedSnoop { own: false, msg }, now);
                    }
                }
            }
        }
        self.mcs[m].tick(now);
        while let Some(out) = self.mcs[m].peek_out() {
            let dest = self.physical_dest(out.dest);
            let msg = out.msg;
            let flits = self.cfg.noc.data_flits();
            match self.nics[ep_idx].try_send_unicast(
                VnetId::UO_RESP,
                dest,
                flits,
                msg,
                &mut self.net,
            ) {
                Ok(()) => {
                    self.mcs[m].pop_out();
                }
                Err(_) => break,
            }
        }
        let notify = self.notify.as_mut();
        self.nics[ep_idx].tick(now, &mut self.net, notify);
        // Completion transition and sleep decision, mirroring tick_tile.
        let quiet = self.mcs[m].is_idle();
        if quiet != self.mc_quiet[m] {
            self.mc_quiet[m] = quiet;
            if quiet {
                self.mcs_pending -= 1;
            } else {
                self.mcs_pending += 1;
            }
        }
        if !self.always_scan {
            // Unlike a tile, an MC with in-flight DRAM accesses can still
            // sleep: its only self-driven observable is releasing a
            // response at a *known* cycle, so it parks on a timed wake at
            // the earliest such deadline. Everything else that could need
            // a tick arrives as an ejected flit, which wakes the endpoint.
            let nic_asleep = if self.leap {
                self.nics[ep_idx].can_sleep_leap()
            } else {
                self.nics[ep_idx].can_sleep()
            };
            let rest_asleep = nic_asleep
                && self.reorders[ep_idx].buffered() == 0
                && !self.net.eject_occupied(ep_idx)
                && self.mcs[m].peek_out().is_none();
            if !rest_asleep {
                self.mc_active.wake(m);
            } else if let Some(ready) = self.mcs[m].next_deadline() {
                self.timed_wakes.push(ready.as_u64(), ep_idx as u32);
            }
        }
    }

    /// SCORPIO mode: unordered packets are data (or writeback data routed
    /// here by mistake — asserted against).
    fn drain_data_packets(&mut self, t: usize, _now: Cycle) {
        while self.resp_hold[t].is_none() {
            let Some(pkt) = self.nics[t].pop_packet() else {
                break;
            };
            let msg = pkt.payload;
            assert_eq!(msg.kind, MsgKind::Data, "tile received {:?}", msg.kind);
            if self.l2s[t].resp_ready() {
                self.l2s[t].push_resp(msg);
            } else {
                self.resp_hold[t] = Some(msg);
            }
        }
    }

    /// Baseline modes: packets carry requests (to reorder), expiries, data.
    fn drain_unordered_packets(&mut self, t: usize, _now: Cycle) {
        while self.resp_hold[t].is_none() {
            let Some(pkt) = self.nics[t].pop_packet() else {
                break;
            };
            let msg = pkt.payload;
            match msg.kind {
                MsgKind::Data => {
                    if self.l2s[t].resp_ready() {
                        self.l2s[t].push_resp(msg);
                    } else {
                        self.resp_hold[t] = Some(msg);
                    }
                }
                MsgKind::InsoExpire => {
                    self.reorders[t].insert(msg.value, SlotContent::Expired);
                }
                MsgKind::DirGetS | MsgKind::DirGetX | MsgKind::DirPut => {
                    // We are the home for this line: order after the
                    // directory-cache access.
                    self.dir_homes[t].accept(msg, _now);
                }
                k if k.is_ordered_request() => {
                    self.reorders[t].insert(msg.value, SlotContent::Request(msg));
                }
                other => panic!("tile received {other:?}"),
            }
        }
    }

    fn push_held_resp(&mut self, t: usize) {
        if let Some(msg) = self.resp_hold[t].take() {
            if self.l2s[t].resp_ready() {
                self.l2s[t].push_resp(msg);
            } else {
                self.resp_hold[t] = Some(msg);
            }
        }
    }

    /// Moves L2 output messages into the NIC, respecting backpressure.
    fn forward_l2_out(&mut self, t: usize, now: Cycle) {
        // A previously slot-stamped ordered request retries first.
        if let Some(msg) = self.pending_ordered[t].take() {
            match self.nics[t].try_send_broadcast(VnetId(0), msg, &mut self.net) {
                Ok(()) => {}
                Err(_) => {
                    self.pending_ordered[t] = Some(msg);
                    return;
                }
            }
        }
        while let Some(out) = self.l2s[t].peek_out().copied() {
            // Span stamp for every ordered-request pop below: the cycle the
            // request leaves the L2 outbox toward the interconnect layer.
            // WbReq is excluded — it has no RSHR entry, and its tag could
            // alias a live one.
            let span_tag = match out {
                L2Out::OrderedRequest(m)
                    if self.cfg.spans && matches!(m.kind, MsgKind::GetS | MsgKind::GetX) =>
                {
                    Some(m.req_tag)
                }
                _ => None,
            };
            let stamp = |l2: &mut SnoopyL2| {
                if let Some(tag) = span_tag {
                    l2.stamp_inject(tag, now);
                }
            };
            match out {
                L2Out::OrderedRequest(msg) => match self.cfg.protocol {
                    Protocol::LpdDir | Protocol::HtDir => {
                        let home = home_tile(msg.addr, self.cfg.cores()) as usize;
                        let dir_kind = match msg.kind {
                            MsgKind::GetS => MsgKind::DirGetS,
                            MsgKind::GetX => MsgKind::DirGetX,
                            MsgKind::WbReq => MsgKind::DirPut,
                            other => panic!("unexpected ordered kind {other:?}"),
                        };
                        let mut dir_msg = msg;
                        dir_msg.kind = dir_kind;
                        if home == t {
                            // Local home: no network hop for the request.
                            self.l2s[t].pop_out();
                            stamp(&mut self.l2s[t]);
                            self.dir_homes[t].accept(dir_msg, now);
                        } else {
                            let dest = self.cfg.mesh.tile_endpoint(home);
                            if self.nics[t]
                                .try_send_unicast(VnetId(0), dest, 1, dir_msg, &mut self.net)
                                .is_err()
                            {
                                break;
                            }
                            self.l2s[t].pop_out();
                            stamp(&mut self.l2s[t]);
                        }
                    }
                    Protocol::Scorpio => {
                        if self.nics[t]
                            .try_send_request(msg, now, &mut self.net)
                            .is_err()
                        {
                            break;
                        }
                        self.l2s[t].pop_out();
                        stamp(&mut self.l2s[t]);
                    }
                    Protocol::TokenB => {
                        let slot = self.oracle_seq;
                        self.oracle_seq += 1;
                        let stamped = msg.with_value(slot);
                        self.l2s[t].pop_out();
                        stamp(&mut self.l2s[t]);
                        self.reorders[t].insert(slot, SlotContent::Request(stamped));
                        if self.nics[t]
                            .try_send_broadcast(VnetId(0), stamped, &mut self.net)
                            .is_err()
                        {
                            self.pending_ordered[t] = Some(stamped);
                            break;
                        }
                    }
                    Protocol::Inso { .. } => {
                        let slot = self.inso_alloc[t].take_slot(now);
                        let stamped = msg.with_value(slot);
                        self.l2s[t].pop_out();
                        stamp(&mut self.l2s[t]);
                        self.reorders[t].insert(slot, SlotContent::Request(stamped));
                        if self.nics[t]
                            .try_send_broadcast(VnetId(0), stamped, &mut self.net)
                            .is_err()
                        {
                            self.pending_ordered[t] = Some(stamped);
                            break;
                        }
                    }
                },
                L2Out::Unicast {
                    dest,
                    msg,
                    data_sized,
                } => {
                    let flits = if data_sized {
                        self.cfg.noc.data_flits()
                    } else {
                        1
                    };
                    let dest = self.physical_dest(dest);
                    if self.nics[t]
                        .try_send_unicast(VnetId::UO_RESP, dest, flits, msg, &mut self.net)
                        .is_err()
                    {
                        break;
                    }
                    self.l2s[t].pop_out();
                }
            }
        }
    }

    fn inso_expiry(&mut self, t: usize, now: Cycle, window: u64) {
        // Retry an unsent expiry first.
        if let Some(msg) = self.pending_expiry[t].take() {
            if self.nics[t]
                .try_send_broadcast(VnetId(0), msg, &mut self.net)
                .is_err()
            {
                self.pending_expiry[t] = Some(msg);
            }
            return;
        }
        // Do not expire while a request is waiting to inject (its slot is
        // already allocated and must stay in sequence).
        if self.pending_ordered[t].is_some() {
            return;
        }
        // Pace expiry against consumption: racing more than a couple of
        // rounds ahead of what this node has released floods the network
        // with expiries faster than they can deliver (livelock).
        let lead_bound = 2 * self.cfg.cores() as u64;
        if self.inso_alloc[t].peek_next_slot() > self.reorders[t].next_slot() + lead_bound {
            return;
        }
        if let Some(slot) = self.inso_alloc[t].maybe_expire(now, window) {
            let me = Endpoint::tile(scorpio_noc::RouterId(t as u16));
            let msg = scorpio_coherence::CohMsg::new(
                MsgKind::InsoExpire,
                scorpio_coherence::LineAddr(0),
                t as u16,
                0,
                me,
            )
            .with_value(slot);
            self.reorders[t].insert(slot, SlotContent::Expired);
            self.expiry_sent += 1;
            if self.nics[t]
                .try_send_broadcast(VnetId(0), msg, &mut self.net)
                .is_err()
            {
                self.pending_expiry[t] = Some(msg);
            }
        }
    }

    /// Home-directory pipeline: ordered requests leave as broadcasts once
    /// the directory access completes.
    fn tick_dir_home(&mut self, t: usize, now: Cycle) {
        // Retry a broadcast that could not inject.
        if let Some(msg) = self.dir_homes[t].pending_bcast.take() {
            if self.nics[t]
                .try_send_broadcast(VnetId(0), msg, &mut self.net)
                .is_err()
            {
                self.dir_homes[t].pending_bcast = Some(msg);
                return;
            }
        }
        while let Some(mut msg) = self.dir_homes[t].pop_ready(now) {
            // Back to the snoopy kind, stamped with the global slot.
            msg.kind = match msg.kind {
                MsgKind::DirGetS => MsgKind::GetS,
                MsgKind::DirGetX => MsgKind::GetX,
                MsgKind::DirPut => MsgKind::WbReq,
                other => panic!("home ordered {other:?}"),
            };
            let slot = self.oracle_seq;
            self.oracle_seq += 1;
            let stamped = msg.with_value(slot);
            // The broadcast skips the home tile itself: insert locally.
            self.reorders[t].insert(slot, SlotContent::Request(stamped));
            if self.nics[t]
                .try_send_broadcast(VnetId(0), stamped, &mut self.net)
                .is_err()
            {
                self.dir_homes[t].pending_bcast = Some(stamped);
                break;
            }
        }
    }

    /// Records a system-layer ordered-commit trace event: endpoint `ep`
    /// consumed the SID-`sid` ordered broadcast from its NIC (`own` marks
    /// the requester's own observation). `key` is the payload's steering
    /// key — the event is filed under the plane the request travelled on.
    fn trace_commit(&mut self, now: Cycle, ep: usize, sid: scorpio_noc::Sid, own: bool, key: u64) {
        if self.cfg.obs != ObsLevel::Trace {
            return;
        }
        let seq = self.sys_seq;
        self.sys_seq += 1;
        let plane = self.net.plane_of(key);
        if self.sys_trace[plane].len() >= self.cfg.trace_limit {
            self.sys_trace_dropped += 1;
            return;
        }
        self.sys_trace[plane].push(TraceEvent {
            cycle: now.as_u64(),
            plane: plane as u16,
            src: 1,
            seq,
            kind: TraceKind::OrderedCommit,
            uid: u64::from(sid.0),
            vnet: 0,
            node: ep as u32,
            port: 0,
            vc: 0,
            aux: u64::from(own),
        });
    }

    /// Per-stream trace totals: events currently retained across every
    /// network plane and the system layer, and events already dropped at
    /// the per-stream caps.
    fn trace_totals(&self) -> (usize, u64) {
        let mut kept = 0;
        let mut dropped = self.sys_trace_dropped;
        for p in 0..self.cfg.planes.get() {
            kept += self.sys_trace[p].len();
            if let Some(o) = self.net.obs(p) {
                kept += o.events().len();
                dropped += o.dropped();
            }
        }
        (kept, dropped)
    }

    /// Drains the run's flit-event trace: every plane's network stream
    /// plus the system layer's ordered-commit streams, merged into one
    /// deterministically ordered list (ascending [`TraceEvent::sort_key`])
    /// capped at `cfg.trace_limit`. The second value counts events beyond
    /// the cap. Returns an empty trace unless `cfg.obs` is
    /// [`ObsLevel::Trace`].
    pub fn take_trace(&mut self) -> (Vec<TraceEvent>, u64) {
        let (kept, mut dropped) = self.trace_totals();
        let mut streams: Vec<Vec<TraceEvent>> = Vec::new();
        self.net.take_trace(&mut streams);
        for s in &mut self.sys_trace {
            streams.push(std::mem::take(s));
        }
        self.sys_trace_dropped = 0;
        let merged = merge_trace(streams, self.cfg.trace_limit);
        dropped += (kept - merged.len()) as u64;
        (merged, dropped)
    }

    /// The run's transaction spans, merged across tiles into retire order
    /// (stable sort, tiles visited in index order, so ties keep tile
    /// order — a deterministic, engine-invariant key), capped at
    /// `cfg.trace_limit`. The second value counts spans beyond the cap.
    /// Empty unless `cfg.spans` is set.
    pub fn span_records(&self) -> (Vec<MissSpan>, u64) {
        let mut all: Vec<MissSpan> = Vec::new();
        for l2 in &self.l2s {
            all.extend_from_slice(l2.spans());
        }
        all.sort_by_key(|s| s.retire);
        let total = all.len();
        all.truncate(self.cfg.trace_limit);
        let dropped = (total - all.len()) as u64;
        (all, dropped)
    }

    /// The run's merged windowed-telemetry rows — every plane's epoch
    /// cells folded together, plus core-op progress and notification
    /// publish ticks. Empty unless `cfg.window_cycles` is non-zero.
    pub fn window_rows(&self) -> Vec<WindowRow> {
        self.window_data().0
    }

    /// Builds the window rows and their summary in one pass.
    fn window_data(&self) -> (Vec<WindowRow>, WindowReport) {
        let w = self.cfg.window_cycles;
        let mut report = WindowReport {
            window_cycles: w,
            ..WindowReport::default()
        };
        if w == 0 {
            return (Vec::new(), report);
        }
        // Fold the planes' epoch cells together; epochs one plane never
        // touched merge as zero.
        let mut cells: Vec<WindowCell> = Vec::new();
        for p in 0..self.cfg.planes.get() {
            let Some(o) = self.net.obs(p) else { continue };
            if cells.len() < o.windows().len() {
                cells.resize_with(o.windows().len(), || WindowCell::new(0));
            }
            for (a, b) in cells.iter_mut().zip(o.windows()) {
                a.merge(b);
            }
        }
        // Notification publish ticks, bucketed by epoch.
        let mut publishes: Vec<u64> = Vec::new();
        if let Some(n) = &self.notify {
            for &c in n.publish_log() {
                let idx = (c / w) as usize;
                if publishes.len() <= idx {
                    publishes.resize(idx + 1, 0);
                }
                publishes[idx] += 1;
            }
        }
        let count = cells.len().max(self.win_ops.len()).max(publishes.len());
        let mut rows = Vec::with_capacity(count);
        for i in 0..count {
            let mut row = WindowRow {
                window: i as u64,
                start: i as u64 * w,
                cycles: w,
                ops: self.win_ops.get(i).copied().unwrap_or(0),
                publishes: publishes.get(i).copied().unwrap_or(0),
                ..WindowRow::default()
            };
            if let Some(c) = cells.get(i) {
                row.injected = c.injected;
                row.ejected = c.ejected;
                row.latency = c.latency.clone();
                row.wait_count = c.wait_count;
                row.wait_sum = c.wait_sum;
                row.wait_max = c.wait_max;
                row.buffer_integral = c.buffer_integral;
                for (ep, &(cnt, sum)) in c.ep_wait.iter().enumerate() {
                    if cnt == 0 {
                        continue;
                    }
                    let cand = EpWait {
                        ep: ep as u32,
                        window: i as u64,
                        count: cnt,
                        sum,
                    };
                    let beats_max = match &row.ep_wait_max {
                        None => true,
                        Some(b) => wait_mean_gt(sum, cnt, b.sum, b.count),
                    };
                    if beats_max {
                        row.ep_wait_max = Some(cand);
                    }
                    let beats_min = match &row.ep_wait_min {
                        None => true,
                        Some(b) => wait_mean_gt(b.sum, b.count, sum, cnt),
                    };
                    if beats_min {
                        row.ep_wait_min = Some(cand);
                    }
                }
            }
            // Fold the row extremes into the run-level starvation signal
            // (strict comparisons keep the earliest window / lowest
            // endpoint on ties — deterministic).
            if let Some(m) = &row.ep_wait_max {
                let take = match &report.max_wait {
                    None => true,
                    Some(b) => wait_mean_gt(m.sum, m.count, b.sum, b.count),
                };
                if take {
                    report.max_wait = Some(*m);
                }
            }
            if let Some(m) = &row.ep_wait_min {
                let take = match &report.min_wait {
                    None => true,
                    Some(b) => wait_mean_gt(b.sum, b.count, m.sum, m.count),
                };
                if take {
                    report.min_wait = Some(*m);
                }
            }
            rows.push(row);
        }
        // Warmup/steady-state split: the prefix before the first window
        // whose completed-op count reaches half the peak window's.
        let peak = rows.iter().map(|r| r.ops).max().unwrap_or(0);
        let warmup = if peak == 0 {
            0
        } else {
            rows.iter().position(|r| r.ops * 2 >= peak).unwrap_or(0)
        };
        report.count = rows.len() as u64;
        report.warmup = warmup as u64;
        for r in &rows[warmup..] {
            report.steady_ops += r.ops;
            report.steady_ejected += r.ejected;
        }
        (rows, report)
    }

    /// Assembles the observability annex: latency histograms merged
    /// across planes and L2s, per-plane counter snapshots, and the trace
    /// totals [`System::take_trace`] will report.
    fn obs_report(&self) -> Box<ObsReport> {
        let mut o = Box::new(ObsReport::default());
        o.vnet_latency = self
            .cfg
            .noc
            .vnets
            .iter()
            .map(|v| (v.name.to_string(), LogHistogram::default()))
            .collect();
        let endpoints: Vec<Endpoint> = self.cfg.mesh.endpoints().collect();
        // Concentration positions 0..tile_slots, then one MC bucket.
        let tile_slots = endpoints
            .iter()
            .filter_map(|e| match e.slot {
                LocalSlot::Tile(k) => Some(k as usize + 1),
                LocalSlot::Mc => None,
            })
            .max()
            .unwrap_or(1);
        o.inject_wait_slots = vec![LogHistogram::default(); tile_slots + 1];
        for p in 0..self.cfg.planes.get() {
            let Some(n) = self.net.obs(p) else { continue };
            o.packet_latency.merge(&n.packet_latency);
            for (dst, src) in o.vnet_latency.iter_mut().zip(&n.vnet_latency) {
                dst.1.merge(src);
            }
            for (i, h) in n.inject_wait.iter().enumerate() {
                o.inject_wait.merge(h);
                let slot = match endpoints[i].slot {
                    LocalSlot::Tile(k) => k as usize,
                    LocalSlot::Mc => tile_slots,
                };
                o.inject_wait_slots[slot].merge(h);
            }
            o.planes.push(PlaneObs {
                link_flits: n.link_flits.iter().sum(),
                links_used: n.link_flits.iter().filter(|&&c| c > 0).count() as u64,
                max_link_flits: n.link_flits.iter().copied().max().unwrap_or(0),
                buffer_integral: n.buffer_integral,
                stall_sa_i: n.stall_sa_i,
                stall_sa_ii: n.stall_sa_o,
                stall_vc_alloc: n.stall_vc_alloc,
                stall_credit: n.stall_credit,
                vc_buffered: n.vc_buffered.clone(),
            });
        }
        for l2 in &self.l2s {
            if let Some(h) = &l2.stats.service_hist {
                o.l2_service.merge(h);
            }
            if let Some(h) = &l2.stats.ordering_hist {
                o.ordering_delay.merge(h);
            }
        }
        let (kept, dropped) = self.trace_totals();
        let merged_kept = kept.min(self.cfg.trace_limit);
        o.trace_kept = merged_kept as u64;
        o.trace_dropped = dropped + (kept - merged_kept) as u64;
        if self.cfg.spans {
            let mut sp = SpanReport::default();
            for l2 in &self.l2s {
                for s in l2.spans() {
                    sp.fold(s);
                }
                sp.hit.merge(l2.span_hits());
            }
            // The phase histograms above fold every span; only the
            // record stream itself is capped.
            sp.dropped = sp.count.saturating_sub(self.cfg.trace_limit as u64);
            o.spans = Some(sp);
        }
        if self.cfg.window_cycles != 0 {
            o.windows = Some(self.window_data().1);
        }
        o
    }

    /// Builds the aggregate report for the run so far.
    pub fn report(&self) -> SystemReport {
        let mut r = SystemReport {
            protocol: self.cfg.protocol.name(),
            cores: self.cfg.cores(),
            runtime_cycles: self
                .drivers
                .iter()
                .map(|d| d.finished_at.unwrap_or(self.net.cycle()).as_u64())
                .max()
                .unwrap_or(0),
            ..SystemReport::default()
        };
        for d in &self.drivers {
            r.ops_completed += d.ops_done;
            r.l1_hits += d.l1_hits;
            r.source_dropped += d.src_dropped;
        }
        for l2 in &self.l2s {
            r.l2_hits += l2.stats.hits.get();
            r.l2_misses += l2.stats.misses.get();
            r.l2_service_latency.merge(&l2.stats.service_latency);
            r.cache_served.merge(&l2.stats.cache_served_latency);
            r.memory_served.merge(&l2.stats.memory_served_latency);
            r.ordering_delay.merge(&l2.stats.ordering_delay);
            r.data_forwards += l2.stats.data_forwards.get();
            r.snoops_filtered += l2.stats.snoops_filtered.get();
            r.snoops_looked_up += l2.stats.snoops.get();
            r.writebacks += l2.stats.writebacks.get();
            r.writebacks_squashed += l2.stats.wb_squashed.get();
        }
        for mc in &self.mcs {
            r.memory_responses += mc.stats.responses.get();
        }
        let ns = self.net.stats();
        r.bypassed_flits = ns.bypassed_flits;
        r.buffered_flits = ns.buffered_flits;
        r.packets_injected = ns.injected_packets.get();
        r.packet_latency = ns.packet_latency;
        if let Some(n) = &self.notify {
            r.notify_windows = n.windows_completed.get();
            r.notify_nonempty = n.nonempty_windows.get();
        }
        r.stop_windows = self.nics.iter().map(|n| n.stats.stop_windows.get()).sum();
        r.expiry_messages = self.expiry_sent;
        for h in &self.dir_homes {
            r.dir_accesses += h.dir.hits() + h.dir.misses();
            r.dir_misses += h.dir.misses();
        }
        if self.cfg.obs != ObsLevel::Off || self.cfg.spans || self.cfg.window_cycles != 0 {
            r.obs = Some(self.obs_report());
        }
        r
    }

    /// Direct access to a tile's L2 (verification).
    pub fn l2(&self, tile: usize) -> &SnoopyL2 {
        &self.l2s[tile]
    }

    /// Direct access to a memory controller (verification).
    pub fn mc(&self, idx: usize) -> &MemoryController {
        &self.mcs[idx]
    }

    /// Prints internal state for deadlock debugging.
    #[doc(hidden)]
    pub fn debug_dump(&self) {
        println!(
            "cycle {}  net last progress {}",
            self.cycle(),
            self.net.last_progress()
        );
        for (t, l2) in self.l2s.iter().enumerate() {
            println!(
                "tile {t}: driver done={} ops={} l2 idle={} esid={:?} nic backlog={} ordered_backlog={}",
                self.drivers[t].is_done(),
                self.drivers[t].ops_done,
                l2.is_idle(),
                self.nics[t].current_esid(),
                self.net.inject_backlog(self.nics[t].endpoint()),
                self.nics[t].ordering_backlog(),
            );
            println!("        nic counters {:?}", self.nics[t].debug_counters());
            print!("{}", self.l2s[t].debug_state());
        }
        if let Some(n) = &self.notify {
            println!(
                "notify: windows={} nonempty={} latest={:?}",
                n.windows_completed.get(),
                n.nonempty_windows.get(),
                n.latest().map(|(w, m)| (w, m.total(), m.stop()))
            );
        }
        if self.cfg.protocol != Protocol::Scorpio {
            for (i, rb) in self.reorders.iter().enumerate() {
                println!(
                    "rb {i}: next_slot={} buffered={} pending_ordered={:?} pending_expiry={:?} slots_used={:?}",
                    rb.next_slot(),
                    rb.buffered(),
                    self.pending_ordered.get(i).map(|p| p.map(|m| m.value)),
                    self.pending_expiry.get(i).map(|p| p.map(|m| m.value)),
                    self.inso_alloc.get(i).map(|a| a.slots_used()),
                );
            }
        }
        for (m, mc) in self.mcs.iter().enumerate() {
            let idx = self.cfg.cores() + m;
            println!(
                "mc {m}: idle={} esid={:?} backlog={}",
                mc.is_idle(),
                self.nics[idx].current_esid(),
                self.nics[idx].ordering_backlog()
            );
        }
        print!("{}", self.net.debug_dump());
    }

    /// The last value each core observed would require driver access; the
    /// verification tests read memory through fresh loads instead.
    pub fn cores_done(&self) -> usize {
        self.drivers.iter().filter(|d| d.is_done()).count()
    }
}

/// `a_sum / a_count > b_sum / b_count`, exactly, via cross-multiplication
/// in u128 — windowed wait means are compared without ever dividing, so
/// the starvation extremes are bit-stable across platforms.
fn wait_mean_gt(a_sum: u64, a_count: u64, b_sum: u64, b_count: u64) -> bool {
    u128::from(a_sum) * u128::from(b_count) > u128::from(b_sum) * u128::from(a_count)
}

/// Timed wake-ups bucketed by notification region (leaf quad of the
/// hierarchical notification tree; one bucket under the flat scheme).
/// Each bucket is the same deadline-keyed map the engine always used, so
/// a region's earliest local deadline is one `first_key_value` away —
/// that is what lets a quiescent quad's clock leap independently of a
/// bursting neighbour. A cached global minimum keeps the per-cycle due
/// check O(1) on the (dominant) nothing-due path.
struct RegionWakes {
    per: Vec<BTreeMap<u64, Vec<u32>>>,
    /// Endpoint index (tiles then MCs) → region bucket.
    region_of_ep: Vec<u32>,
    /// Earliest deadline across every bucket; `u64::MAX` when empty.
    min_deadline: u64,
}

impl RegionWakes {
    fn new(regions: usize, region_of_ep: Vec<u32>) -> RegionWakes {
        RegionWakes {
            per: vec![BTreeMap::new(); regions.max(1)],
            region_of_ep,
            min_deadline: u64::MAX,
        }
    }

    /// Parks endpoint `ep` until `deadline` in its region's bucket.
    fn push(&mut self, deadline: u64, ep: u32) {
        self.min_deadline = self.min_deadline.min(deadline);
        self.per[self.region_of_ep[ep as usize] as usize]
            .entry(deadline)
            .or_default()
            .push(ep);
    }

    /// The earliest pending deadline across all regions — the machine-wide
    /// leap target.
    fn first_deadline(&self) -> Option<u64> {
        (self.min_deadline != u64::MAX).then_some(self.min_deadline)
    }

    /// Clears `out`, then moves every endpoint whose deadline is `<= now`
    /// into it. Buckets drain in region order rather than global deadline
    /// order; the caller wakes active sets, for which order is
    /// indifferent.
    fn pop_due(&mut self, now: u64, out: &mut Vec<u32>) {
        out.clear();
        if self.min_deadline > now {
            return;
        }
        let mut min = u64::MAX;
        for m in &mut self.per {
            while let Some(entry) = m.first_entry() {
                if *entry.key() > now {
                    break;
                }
                out.extend(entry.remove());
            }
            if let Some((&k, _)) = m.first_key_value() {
                min = min.min(k);
            }
        }
        self.min_deadline = min;
    }
}

/// One tile's slice of the distributed directory for the LPD-D / HT-D
/// baselines: a latency pipeline in front of the global sequencer. The
/// entry width (set by the protocol) determines how many lines the slice
/// caches, which is the paper's LPD-vs-HT distinction.
struct DirHome {
    dir: DirectoryCache,
    latency: u64,
    miss_penalty: u64,
    stage: VecDeque<(Cycle, CohMsg)>,
    pending_bcast: Option<CohMsg>,
}

impl DirHome {
    fn new(slice_bytes: usize, entry_bits: usize, latency: u64, miss_penalty: u64) -> DirHome {
        DirHome {
            dir: DirectoryCache::with_budget(slice_bytes, entry_bits, 4),
            latency,
            miss_penalty,
            stage: VecDeque::new(),
            pending_bcast: None,
        }
    }

    /// Accepts a request: the directory access starts now; the request is
    /// ready for ordering after the (hit- or miss-) latency.
    fn accept(&mut self, msg: CohMsg, now: Cycle) {
        let hit = self.dir.access(msg.addr);
        let lat = self.latency + if hit { 0 } else { self.miss_penalty };
        // Serialization at the home: a request cannot overtake the one in
        // front of it (the paper's "Req Ordering" component).
        let ready = self
            .stage
            .back()
            .map(|(r, _)| (*r).max(now) + self.latency)
            .unwrap_or(now + lat)
            .max(now + lat);
        self.stage.push_back((ready, msg));
    }

    fn pop_ready(&mut self, now: Cycle) -> Option<CohMsg> {
        if self.pending_bcast.is_some() {
            return None;
        }
        if self.stage.front().is_some_and(|(r, _)| *r <= now) {
            return self.stage.pop_front().map(|(_, m)| m);
        }
        None
    }

    fn is_idle(&self) -> bool {
        self.stage.is_empty() && self.pending_bcast.is_none()
    }
}
