//! The per-tile core driver: an in-order core with a write-through L1,
//! executing a trace or a reactive program against the L2 (Section 4.1).
//!
//! The AHB constraint is modelled faithfully: a single outstanding data
//! transaction — the core blocks on every L2 access (loads that miss the
//! L1, all stores, all atomics).

use std::collections::VecDeque;

use scorpio_coherence::LineAddr;
use scorpio_mem::{CoreOp, CoreReq, CoreResp, L1Cache, SnoopyL2};
use scorpio_sim::Cycle;
use scorpio_workloads::{
    arrival_schedule, ArrivalProcess, CoreProgram, Trace, TraceOp, TraceRecord,
};

/// What drives this core.
pub enum CoreKind {
    /// A fixed memory trace (the paper's trace-driven RTL methodology).
    Trace(Trace),
    /// A reactive program (locks/barriers, Section 4.3 regressions).
    Program(Box<dyn CoreProgram + Send>),
}

impl std::fmt::Debug for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreKind::Trace(t) => write!(f, "Trace({} ops)", t.len()),
            CoreKind::Program(_) => f.write_str("Program"),
        }
    }
}

/// The in-order core + L1 driver for one tile.
#[derive(Debug)]
pub struct CoreDriver {
    kind: CoreKind,
    l1: L1Cache,
    line_bytes: u64,
    /// Trace position.
    pc: usize,
    /// First cycle the charged compute gap allows the next issue. Stored
    /// as an absolute deadline rather than a countdown so an idle tile can
    /// sleep through the gap: once charged, the countdown can never pause
    /// (nothing issues mid-gap, so `outstanding` cannot grow), which makes
    /// the deadline exactly equivalent to decrementing every cycle.
    gap_until: Cycle,
    gap_charged: bool,
    /// In-flight (token, op, addr) tuples; capacity = `max_outstanding`.
    outstanding: Vec<(u64, TraceOp)>,
    max_outstanding: usize,
    last_value: Option<u64>,
    token_counter: u64,
    /// Open-loop arrival schedule (absolute cycles, one per trace record).
    /// Empty in closed-loop mode — the only mode switch.
    arrivals: Vec<u64>,
    /// Next unadmitted index into `arrivals`.
    arrival_next: usize,
    /// Bounded source queue of admitted-but-unissued `(arrival, record)`
    /// pairs. Records are pulled from the trace at admission time so a
    /// tail-drop discards exactly the op whose arrival overflowed.
    src_queue: VecDeque<(u64, TraceRecord)>,
    src_cap: usize,
    /// Arrivals tail-dropped because the source queue was full.
    pub src_dropped: u64,
    done: bool,
    /// Cycle the driver finished all its work.
    pub finished_at: Option<Cycle>,
    /// Completed operations.
    pub ops_done: u64,
    /// L1 hits that completed without touching the L2.
    pub l1_hits: u64,
}

impl CoreDriver {
    /// A driver over `kind` with a fresh L1 and one outstanding access
    /// (the AHB constraint). Use [`CoreDriver::set_max_outstanding`] for
    /// the paper's aggressive-core explorations (Figure 8d).
    pub fn new(kind: CoreKind, l1_bytes: u64, l1_ways: usize, line_bytes: u64) -> CoreDriver {
        CoreDriver {
            kind,
            l1: L1Cache::new(l1_bytes, l1_ways, line_bytes),
            line_bytes,
            pc: 0,
            gap_until: Cycle::ZERO,
            gap_charged: false,
            outstanding: Vec::new(),
            max_outstanding: 1,
            last_value: None,
            token_counter: 0,
            arrivals: Vec::new(),
            arrival_next: 0,
            src_queue: VecDeque::new(),
            src_cap: 0,
            src_dropped: 0,
            done: false,
            finished_at: None,
            ops_done: 0,
            l1_hits: 0,
        }
    }

    /// Raises the outstanding-access budget (trace cores only: reactive
    /// programs are value-dependent and stay at 1).
    pub fn set_max_outstanding(&mut self, n: usize) {
        if matches!(self.kind, CoreKind::Trace(_)) {
            self.max_outstanding = n.max(1);
        }
    }

    /// Switches a trace core to open-loop injection: record `i` is
    /// *released* at the arrival cycle the process draws for it (rather
    /// than by the completion of record `i-1`), queueing in a bounded
    /// source queue of `cap` entries while the core is busy. The compute
    /// gaps recorded in the trace become the Replay process's arrival
    /// deltas and are otherwise not charged. A zero-load schedule is
    /// empty and the driver keeps closed-loop semantics — the degenerate
    /// case *is* the closed-loop trace. No-op for program cores.
    pub fn set_open_loop(
        &mut self,
        process: ArrivalProcess,
        load_millis: u32,
        cap: usize,
        core: u64,
        seed: u64,
    ) {
        if let CoreKind::Trace(trace) = &self.kind {
            self.arrivals = arrival_schedule(process, load_millis, trace, core, seed);
            self.arrival_next = 0;
            self.src_cap = cap.max(1);
            self.src_queue = VecDeque::with_capacity(self.src_cap.min(1024));
        }
    }

    /// Whether this driver releases requests by arrival time.
    pub fn is_open_loop(&self) -> bool {
        !self.arrivals.is_empty()
    }

    /// Whether all work is complete (and nothing is in flight).
    pub fn is_done(&self) -> bool {
        self.done && self.outstanding.is_empty()
    }

    /// The L1, for inclusion-driven invalidations.
    pub fn l1_mut(&mut self) -> &mut L1Cache {
        &mut self.l1
    }

    /// The first future cycle at which ticking this driver can have any
    /// effect, when that is knowable: the driver is mid-gap with nothing
    /// in flight, so every tick before the deadline is a no-op by
    /// construction. `None` means "tick me every cycle".
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        if self.is_open_loop() {
            // Sleep only when truly idle: nothing admitted, nothing in
            // flight, next arrival strictly in the future. The deadline
            // feeds the system's timed-wake heap, which also bounds how
            // far the leap engine may jump — a leap can never skip a
            // pending arrival.
            if !self.done && self.src_queue.is_empty() && self.outstanding.is_empty() {
                return self
                    .arrivals
                    .get(self.arrival_next)
                    .map(|&a| Cycle::from(a))
                    .filter(|&a| now < a);
            }
            return None;
        }
        (!self.done && self.outstanding.is_empty() && now < self.gap_until)
            .then_some(self.gap_until)
    }

    /// One cycle: consume a completion, or issue the next operation.
    /// Completions arrive via [`CoreDriver::complete`]; this only issues.
    pub fn tick(&mut self, now: Cycle, l2: &mut SnoopyL2) {
        if self.is_open_loop() {
            return self.tick_open(now, l2);
        }
        if self.done || self.outstanding.len() >= self.max_outstanding {
            return;
        }
        if now < self.gap_until {
            return;
        }
        let Some((op, addr, value)) = self.next_op(now) else {
            return;
        };
        // L1 first.
        let line = LineAddr::containing(addr, self.line_bytes);
        match op {
            TraceOp::Load => {
                if let Some(v) = self.l1.load(line) {
                    self.l1_hits += 1;
                    self.op_completed(now, v);
                    return;
                }
            }
            TraceOp::Store => {
                // Write-through: update the local copy and send to the L2.
                self.l1.store(line, value);
            }
            TraceOp::AtomicAdd => {
                // The L2 performs the RMW; the L1 copy becomes stale.
                self.l1.invalidate(line);
            }
        }
        let core_op = match op {
            TraceOp::Load => CoreOp::Load,
            TraceOp::Store => CoreOp::Store,
            TraceOp::AtomicAdd => CoreOp::AtomicAdd,
        };
        self.token_counter += 1;
        let token = self.token_counter;
        let accepted = l2.try_core_req(CoreReq {
            op: core_op,
            addr,
            value,
            token,
            enqueued: now,
            admitted: now,
        });
        if accepted {
            self.outstanding.push((token, op));
        } else {
            // L2 busy: retry the same op next cycle.
            self.rewind();
        }
    }

    /// One open-loop cycle: admit every arrival whose deadline has
    /// passed (tail-dropping at the queue cap — the trace record is
    /// consumed either way, so later drops discard exactly the right
    /// ops), then issue at most one queued request, matching the
    /// closed-loop issue width.
    fn tick_open(&mut self, now: Cycle, l2: &mut SnoopyL2) {
        while let Some(&a) = self.arrivals.get(self.arrival_next) {
            if now < Cycle::from(a) {
                break;
            }
            let rec = match &self.kind {
                CoreKind::Trace(t) => t.records()[self.arrival_next],
                CoreKind::Program(_) => unreachable!("open loop is trace-only"),
            };
            self.arrival_next += 1;
            if self.src_queue.len() >= self.src_cap {
                self.src_dropped += 1;
            } else {
                self.src_queue.push_back((a, rec));
            }
        }
        if self.arrival_next >= self.arrivals.len() && self.src_queue.is_empty() {
            self.mark_done(now);
        }
        if self.done || self.outstanding.len() >= self.max_outstanding {
            return;
        }
        let Some(&(arrival, rec)) = self.src_queue.front() else {
            return;
        };
        let line = LineAddr::containing(rec.addr, self.line_bytes);
        match rec.op {
            TraceOp::Load => {
                if let Some(v) = self.l1.load(line) {
                    self.l1_hits += 1;
                    self.src_queue.pop_front();
                    self.op_completed(now, v);
                    return;
                }
            }
            TraceOp::Store => self.l1.store(line, rec.value),
            TraceOp::AtomicAdd => self.l1.invalidate(line),
        }
        let core_op = match rec.op {
            TraceOp::Load => CoreOp::Load,
            TraceOp::Store => CoreOp::Store,
            TraceOp::AtomicAdd => CoreOp::AtomicAdd,
        };
        let token = self.token_counter + 1;
        let accepted = l2.try_core_req(CoreReq {
            op: core_op,
            addr: rec.addr,
            value: rec.value,
            token,
            enqueued: Cycle::from(arrival),
            admitted: now,
        });
        if accepted {
            self.token_counter = token;
            self.src_queue.pop_front();
            self.outstanding.push((token, rec.op));
        }
        // Rejected: the pair stays at the queue front and retries next
        // cycle. The L1 store/invalidate side effects above are
        // idempotent, the same property the closed-loop rewind relies on.
    }

    /// Delivers an L2 completion to this core.
    pub fn complete(&mut self, now: Cycle, resp: CoreResp) {
        let pos = self
            .outstanding
            .iter()
            .position(|(t, _)| *t == resp.token)
            .expect("completion without a matching outstanding op");
        let (_, op) = self.outstanding.remove(pos);
        if op == TraceOp::Load && resp.installed {
            // Fill the L1 with the loaded line (only when the L2 kept it:
            // inclusion).
            self.l1.fill(resp.addr, resp.value);
        }
        self.op_completed(now, resp.value);
    }

    fn op_completed(&mut self, now: Cycle, value: u64) {
        self.ops_done += 1;
        self.last_value = Some(value);
        if self.done && self.outstanding.is_empty() {
            self.finished_at.get_or_insert(now);
        }
    }

    /// Produces the next operation, advancing the program/trace. For trace
    /// records with a compute gap, the gap is charged first (as the
    /// absolute `gap_until` deadline) and the op issues once it passes.
    fn next_op(&mut self, now: Cycle) -> Option<(TraceOp, u64, u64)> {
        match &mut self.kind {
            CoreKind::Trace(trace) => {
                if self.pc >= trace.len() {
                    self.mark_done(now);
                    return None;
                }
                let rec = trace.records()[self.pc];
                if rec.gap > 0 && !self.gap_charged {
                    self.gap_charged = true;
                    // The charging tick issues nothing, then `gap` idle
                    // ticks pass: next issue at `now + gap + 1`, exactly
                    // the old per-cycle countdown's schedule.
                    self.gap_until = now + rec.gap as u64 + 1;
                    return None;
                }
                self.gap_charged = false;
                self.pc += 1;
                Some((rec.op, rec.addr, rec.value))
            }
            CoreKind::Program(prog) => match prog.next(self.last_value) {
                Some(op) => Some((op.op, op.addr, op.value)),
                None => {
                    self.mark_done(now);
                    None
                }
            },
        }
    }

    fn rewind(&mut self) {
        match &mut self.kind {
            CoreKind::Trace(_) => {
                // Re-issue the same record next cycle (gap already paid).
                self.pc -= 1;
                self.gap_charged = true;
                self.token_counter -= 1;
            }
            CoreKind::Program(_) => {
                // With one outstanding op per core and queue depth > 1 the
                // L2 never rejects; reaching here is a sizing bug.
                panic!("L2 rejected a program op; size the L2 queue >= 1");
            }
        }
    }

    fn mark_done(&mut self, now: Cycle) {
        if !self.done {
            self.done = true;
            if self.outstanding.is_empty() {
                self.finished_at.get_or_insert(now);
            }
        }
    }
}
