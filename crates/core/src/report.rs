//! End-of-run reporting: the numbers the paper's figures are built from.

use scorpio_mem::MissSpan;
use scorpio_sim::stats::{Accumulator, LogHistogram};

/// Version of the `"obs"` JSON annex schema, emitted as its first key so
/// downstream parsers can evolve without sniffing for the presence of
/// individual keys. History: 1 = PR 6 (histograms, counter planes, trace
/// totals); 2 = PR 9 (explicit `schema_version`, histogram `sum` fields,
/// `spans` and `windows` sub-annexes); 3 = this version (open-loop
/// injection: the `source` span phase and the `admitted` span stamp).
pub const OBS_SCHEMA_VERSION: u32 = 3;

/// One delivery plane's counter snapshot (observability layer).
#[derive(Debug, Clone, Default)]
pub struct PlaneObs {
    /// Total flit crossings summed over every (router, output port) link.
    pub link_flits: u64,
    /// Links that carried at least one flit.
    pub links_used: u64,
    /// Crossings on the busiest single link.
    pub max_link_flits: u64,
    /// Buffer-occupancy integral: resident packets summed over ticked
    /// routers and cycles (packet-cycles).
    pub buffer_integral: u64,
    /// Switch-allocation stage-I losses (another VC won the input port).
    pub stall_sa_i: u64,
    /// Switch-allocation stage-II losses (another input won the output).
    pub stall_sa_ii: u64,
    /// Head-flit cycles blocked in VC allocation.
    pub stall_vc_alloc: u64,
    /// Body-flit cycles blocked on downstream credits.
    pub stall_credit: u64,
    /// Flits buffered per VC, flattened vnet-major (GO-REQ VCs first).
    pub vc_buffered: Vec<u64>,
}

impl PlaneObs {
    fn to_json(&self) -> String {
        let vcs: Vec<String> = self.vc_buffered.iter().map(u64::to_string).collect();
        format!(
            r#"{{"link_flits":{},"links_used":{},"max_link_flits":{},"buffer_integral":{},"stalls":{{"sa_i":{},"sa_ii":{},"vc_alloc":{},"credit":{}}},"vc_buffered":[{}]}}"#,
            self.link_flits,
            self.links_used,
            self.max_link_flits,
            self.buffer_integral,
            self.stall_sa_i,
            self.stall_sa_ii,
            self.stall_vc_alloc,
            self.stall_credit,
            vcs.join(","),
        )
    }
}

/// Observability annex of a [`SystemReport`]: log-bucketed latency
/// histograms per message class plus the per-plane counter snapshots.
/// Present only when the run enabled observability
/// ([`crate::config::ObsLevel`]), so reports with it off stay
/// byte-identical to pre-observability output.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// End-to-end packet latency, all classes, merged over planes.
    pub packet_latency: LogHistogram,
    /// Packet latency split per virtual network (message class).
    pub vnet_latency: Vec<(String, LogHistogram)>,
    /// L2 service latency (enqueue → reply).
    pub l2_service: LogHistogram,
    /// Ordering delay (issue → own ordered observation).
    pub ordering_delay: LogHistogram,
    /// Injection wait (queue entry → head-flit VC grant), all endpoints.
    pub inject_wait: LogHistogram,
    /// Injection wait split per tile slot (concentration position; the
    /// final entry is the MC ports).
    pub inject_wait_slots: Vec<LogHistogram>,
    /// Per-plane counters (one entry per delivery plane).
    pub planes: Vec<PlaneObs>,
    /// Flit-trace events retained / dropped at the cap (zero when the
    /// level stops at counters).
    pub trace_kept: u64,
    /// Events beyond the cap.
    pub trace_dropped: u64,
    /// Per-phase transaction-span breakdown; present only when the run
    /// recorded spans ([`crate::config::SystemConfig::spans`]).
    pub spans: Option<SpanReport>,
    /// Windowed-telemetry summary; present only when the run bucketed
    /// windows ([`crate::config::SystemConfig::window_cycles`]).
    pub windows: Option<WindowReport>,
}

/// The per-phase latency breakdown built from every recorded
/// [`MissSpan`] (before any stream cap): seven phase histograms that
/// partition each miss's end-to-end latency, the whole-miss totals, and
/// the hit latencies needed to rebuild the full L2 service distribution.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// Spans recorded (equals the number of completed misses).
    pub count: u64,
    /// Spans beyond the stream cap — dropped from the JSONL stream only;
    /// the histograms here always cover every span.
    pub dropped: u64,
    /// Phase 0: arrival → release from the bounded source queue (always
    /// 0 in closed-loop runs, where arrival and release coincide).
    pub source: LogHistogram,
    /// Phase 1: source-queue release → RSHR allocation.
    pub queue: LogHistogram,
    /// Phase 2: RSHR allocation → network injection.
    pub inject: LogHistogram,
    /// Phase 3: network injection → own ordered pop.
    pub flight: LogHistogram,
    /// Phase 4: own ordered pop → L2 applies the observation.
    pub commit: LogHistogram,
    /// Phase 5: ordering done → data arrival (0 if data raced ahead).
    pub data: LogHistogram,
    /// Phase 6: both prerequisites in hand → core reply.
    pub fill: LogHistogram,
    /// End-to-end miss latency (the sum of the seven phases, per span).
    pub total: LogHistogram,
    /// Hit latencies (spans only cover misses; hits + totals rebuild the
    /// full service-latency distribution).
    pub hit: LogHistogram,
}

impl SpanReport {
    /// The JSONL schema names of the seven phases, in breakdown order.
    pub const PHASE_NAMES: [&'static str; 7] = [
        "source", "queue", "inject", "flight", "commit", "data", "fill",
    ];

    /// Folds one span into the phase histograms.
    pub fn fold(&mut self, s: &MissSpan) {
        self.count += 1;
        self.source.record(s.source());
        self.queue.record(s.queue());
        self.inject.record(s.inject_wait());
        self.flight.record(s.flight());
        self.commit.record(s.commit());
        self.data.record(s.data_wait());
        self.fill.record(s.fill());
        self.total.record(s.total());
    }

    fn to_json(&self) -> String {
        format!(
            r#"{{"count":{},"dropped":{},"source":{},"queue":{},"inject":{},"flight":{},"commit":{},"data":{},"fill":{},"total":{},"hit":{}}}"#,
            self.count,
            self.dropped,
            hist_json(&self.source),
            hist_json(&self.queue),
            hist_json(&self.inject),
            hist_json(&self.flight),
            hist_json(&self.commit),
            hist_json(&self.data),
            hist_json(&self.fill),
            hist_json(&self.total),
            hist_json(&self.hit),
        )
    }
}

/// One endpoint's injection-wait aggregate within one window — the
/// windowed starvation signal (`sum / count` is its mean wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpWait {
    /// Endpoint index (injection-port order; MC ports last).
    pub ep: u32,
    /// Window (epoch) index.
    pub window: u64,
    /// Waits granted in the window.
    pub count: u64,
    /// Their sum, in cycles.
    pub sum: u64,
}

impl EpWait {
    fn to_json(self) -> String {
        format!(
            r#"{{"ep":{},"window":{},"count":{},"sum":{}}}"#,
            self.ep, self.window, self.count, self.sum
        )
    }
}

/// Windowed-telemetry summary: window geometry, the warmup/steady-state
/// split, and the per-endpoint windowed-wait extremes.
#[derive(Debug, Clone, Default)]
pub struct WindowReport {
    /// Window length in cycles.
    pub window_cycles: u64,
    /// Number of windows (epochs) the run covered.
    pub count: u64,
    /// Windows classified as warmup: the prefix before the first window
    /// whose completed-op count reaches half the peak window's.
    pub warmup: u64,
    /// Ops completed in steady-state (post-warmup) windows.
    pub steady_ops: u64,
    /// Packets ejected in steady-state windows.
    pub steady_ejected: u64,
    /// The (endpoint, window) cell with the highest mean injection wait.
    pub max_wait: Option<EpWait>,
    /// The cell with the lowest mean wait (among cells with samples).
    pub min_wait: Option<EpWait>,
}

impl WindowReport {
    fn to_json(&self) -> String {
        let opt = |e: &Option<EpWait>| e.map_or_else(|| "null".into(), EpWait::to_json);
        format!(
            r#"{{"window_cycles":{},"count":{},"warmup":{},"steady_ops":{},"steady_ejected":{},"max_wait":{},"min_wait":{}}}"#,
            self.window_cycles,
            self.count,
            self.warmup,
            self.steady_ops,
            self.steady_ejected,
            opt(&self.max_wait),
            opt(&self.min_wait),
        )
    }
}

/// One window's merged (all-plane) telemetry, as emitted to the
/// `--windows` JSONL stream and summarized into [`WindowReport`].
#[derive(Debug, Clone, Default)]
pub struct WindowRow {
    /// Window (epoch) index.
    pub window: u64,
    /// First cycle of the window (`window * cycles`).
    pub start: u64,
    /// Window length in cycles.
    pub cycles: u64,
    /// Packets injected (all planes).
    pub injected: u64,
    /// Packets ejected.
    pub ejected: u64,
    /// Packet latency of this window's ejections.
    pub latency: LogHistogram,
    /// Injection waits granted: count, sum, and single largest.
    pub wait_count: u64,
    /// Sum of the waits.
    pub wait_sum: u64,
    /// Largest single wait.
    pub wait_max: u64,
    /// Packet-cycles resident in input VCs.
    pub buffer_integral: u64,
    /// Core memory operations completed.
    pub ops: u64,
    /// Notification-window publish ticks that fell in this window.
    pub publishes: u64,
    /// The endpoint with the highest mean wait this window.
    pub ep_wait_max: Option<EpWait>,
    /// The endpoint with the lowest mean wait (among those with waits).
    pub ep_wait_min: Option<EpWait>,
}

impl WindowRow {
    /// Renders the row as one JSON object (no trailing newline), same
    /// byte-stability contract as [`SystemReport::to_json`].
    pub fn json_body(&self) -> String {
        let opt = |e: &Option<EpWait>| e.map_or_else(|| "null".into(), EpWait::to_json);
        format!(
            r#"{{"window":{},"start":{},"cycles":{},"injected":{},"ejected":{},"latency":{},"wait":{{"count":{},"sum":{},"max":{}}},"buffer_integral":{},"ops":{},"publishes":{},"ep_wait_max":{},"ep_wait_min":{}}}"#,
            self.window,
            self.start,
            self.cycles,
            self.injected,
            self.ejected,
            hist_json(&self.latency),
            self.wait_count,
            self.wait_sum,
            self.wait_max,
            self.buffer_integral,
            self.ops,
            self.publishes,
            opt(&self.ep_wait_max),
            opt(&self.ep_wait_min),
        )
    }
}

/// Renders one transaction span as a JSON object (no trailing newline):
/// the absolute stamps plus the derived seven-phase breakdown, which
/// sums to `retire - enqueued` exactly.
pub fn span_json(s: &MissSpan) -> String {
    format!(
        r#"{{"tile":{},"addr":{},"kind":{:?},"served_by":{:?},"enqueued":{},"admitted":{},"issue":{},"inject":{},"popped":{},"ordered":{},"data":{},"retire":{},"phases":{{"source":{},"queue":{},"inject":{},"flight":{},"commit":{},"data":{},"fill":{}}}}}"#,
        s.tile,
        s.addr.0,
        format!("{:?}", s.kind),
        format!("{:?}", s.served_by),
        s.enqueued,
        s.admitted,
        s.issue,
        s.inject,
        s.popped,
        s.ordered,
        s.data,
        s.retire,
        s.source(),
        s.queue(),
        s.inject_wait(),
        s.flight(),
        s.commit(),
        s.data_wait(),
        s.fill(),
    )
}

/// Renders a log histogram as JSON: count, p50/p95/p99/p999 and max (all
/// `null` when empty), plus the sparse `[bucket_index, count]` pairs. An
/// index `k` covers samples in `[2^(k-1), 2^k - 1]` (bucket 0 holds zero).
fn hist_json(h: &LogHistogram) -> String {
    let p = |f: f64| {
        h.percentile(f)
            .map_or_else(|| "null".into(), |v| v.to_string())
    };
    let mut b = String::new();
    for (i, (idx, c)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            b.push(',');
        }
        b.push_str(&format!("[{idx},{c}]"));
    }
    format!(
        r#"{{"count":{},"sum":{},"p50":{},"p95":{},"p99":{},"p999":{},"max":{},"buckets":[{}]}}"#,
        h.count(),
        h.sum(),
        p(0.50),
        p(0.95),
        p(0.99),
        p(0.999),
        h.max()
            .map_or_else(|| "null".into(), |v: u64| v.to_string()),
        b,
    )
}

impl ObsReport {
    /// Serializes the annex as one JSON object (same byte-stability
    /// contract as [`SystemReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        s.push_str(&format!(r#""schema_version":{OBS_SCHEMA_VERSION},"#));
        s.push_str(&format!(
            r#""packet_latency":{},"#,
            hist_json(&self.packet_latency)
        ));
        s.push_str(r#""classes":{"#);
        for (i, (name, h)) in self.vnet_latency.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(r#"{name:?}:{}"#, hist_json(h)));
        }
        s.push_str("},");
        s.push_str(&format!(r#""l2_service":{},"#, hist_json(&self.l2_service)));
        s.push_str(&format!(
            r#""ordering_delay":{},"#,
            hist_json(&self.ordering_delay)
        ));
        s.push_str(&format!(
            r#""inject_wait":{},"#,
            hist_json(&self.inject_wait)
        ));
        s.push_str(r#""inject_wait_slots":["#);
        for (i, h) in self.inject_wait_slots.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&hist_json(h));
        }
        s.push_str("],");
        s.push_str(r#""planes":["#);
        for (i, p) in self.planes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&p.to_json());
        }
        s.push_str("],");
        s.push_str(&format!(
            r#""trace":{{"kept":{},"dropped":{}}}"#,
            self.trace_kept, self.trace_dropped
        ));
        if let Some(sp) = &self.spans {
            s.push_str(&format!(r#","spans":{}"#, sp.to_json()));
        }
        if let Some(w) = &self.windows {
            s.push_str(&format!(r#","windows":{}"#, w.to_json()));
        }
        s.push('}');
        s
    }
}

/// Aggregated results of one full-system run.
#[derive(Debug, Clone, Default)]
pub struct SystemReport {
    /// Protocol name.
    pub protocol: String,
    /// Cores in the system.
    pub cores: usize,
    /// Cycles until every core finished its work ("runtime").
    pub runtime_cycles: u64,
    /// Memory operations completed across all cores.
    pub ops_completed: u64,
    /// L1 hits (no L2 access).
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (coherence transactions).
    pub l2_misses: u64,
    /// Average L2 service latency over all core requests (the paper's
    /// "average L2 service latency": hits, misses, queueing).
    pub l2_service_latency: Accumulator,
    /// Miss latency when another cache supplied the data.
    pub cache_served: Accumulator,
    /// Miss latency when memory supplied the data.
    pub memory_served: Accumulator,
    /// Request ordering delay (issue → own ordered observation).
    pub ordering_delay: Accumulator,
    /// Cache-to-cache data forwards.
    pub data_forwards: u64,
    /// Memory responses.
    pub memory_responses: u64,
    /// Snoops filtered by region trackers.
    pub snoops_filtered: u64,
    /// Snoops that looked up L2 tags.
    pub snoops_looked_up: u64,
    /// Writebacks (and how many were squashed by races).
    pub writebacks: u64,
    /// Squashed writebacks.
    pub writebacks_squashed: u64,
    /// Flits that bypassed (single-cycle router traversals).
    pub bypassed_flits: u64,
    /// Flits that buffered.
    pub buffered_flits: u64,
    /// Packets injected into the main network.
    pub packets_injected: u64,
    /// Average packet latency in the main network.
    pub packet_latency: Accumulator,
    /// Notification windows completed / carrying announcements (SCORPIO).
    pub notify_windows: u64,
    /// Non-empty notification windows.
    pub notify_nonempty: u64,
    /// Stop-bit windows observed.
    pub stop_windows: u64,
    /// INSO expiry broadcasts sent (baseline cost).
    pub expiry_messages: u64,
    /// Directory-home accesses (LPD-D / HT-D).
    pub dir_accesses: u64,
    /// Directory-cache misses at the homes.
    pub dir_misses: u64,
    /// Open-loop arrivals tail-dropped at full source queues (0 in
    /// closed-loop runs, and omitted from the JSON when 0 so closed-loop
    /// reports stay byte-identical to pre-open-loop output).
    pub source_dropped: u64,
    /// Observability annex — histograms, counter planes and trace totals.
    /// `None` (and absent from the JSON) unless the run enabled
    /// observability, keeping default reports byte-identical to
    /// pre-observability output.
    pub obs: Option<Box<ObsReport>>,
}

impl SystemReport {
    /// Fraction of misses served by other caches (the paper reports ~90%).
    pub fn cache_served_fraction(&self) -> f64 {
        let total = self.cache_served.count() + self.memory_served.count();
        if total == 0 {
            0.0
        } else {
            self.cache_served.count() as f64 / total as f64
        }
    }

    /// Bypass rate of the main network.
    pub fn bypass_rate(&self) -> f64 {
        let total = self.bypassed_flits + self.buffered_flits;
        if total == 0 {
            0.0
        } else {
            self.bypassed_flits as f64 / total as f64
        }
    }

    /// Serializes the report as a single JSON object.
    ///
    /// Hand-rolled (the build environment is offline, so no serde), with a
    /// fixed key order and shortest-roundtrip float formatting: the output
    /// is **byte-identical** for equal reports, which is what the harness's
    /// determinism guarantee — same (scenario, seed) ⇒ same bytes,
    /// regardless of worker count — rests on.
    pub fn to_json(&self) -> String {
        let acc = |a: &Accumulator| {
            format!(
                r#"{{"count":{},"sum":{},"mean":{:?},"min":{},"max":{}}}"#,
                a.count(),
                a.sum(),
                a.mean(),
                a.min().map_or("null".into(), |v| v.to_string()),
                a.max().map_or("null".into(), |v| v.to_string()),
            )
        };
        let mut s = String::with_capacity(1024);
        s.push('{');
        s.push_str(&format!(r#""protocol":{:?},"#, self.protocol));
        s.push_str(&format!(r#""cores":{},"#, self.cores));
        s.push_str(&format!(r#""runtime_cycles":{},"#, self.runtime_cycles));
        s.push_str(&format!(r#""ops_completed":{},"#, self.ops_completed));
        s.push_str(&format!(r#""l1_hits":{},"#, self.l1_hits));
        s.push_str(&format!(r#""l2_hits":{},"#, self.l2_hits));
        s.push_str(&format!(r#""l2_misses":{},"#, self.l2_misses));
        s.push_str(&format!(
            r#""l2_service_latency":{},"#,
            acc(&self.l2_service_latency)
        ));
        s.push_str(&format!(r#""cache_served":{},"#, acc(&self.cache_served)));
        s.push_str(&format!(r#""memory_served":{},"#, acc(&self.memory_served)));
        s.push_str(&format!(
            r#""ordering_delay":{},"#,
            acc(&self.ordering_delay)
        ));
        s.push_str(&format!(r#""data_forwards":{},"#, self.data_forwards));
        s.push_str(&format!(r#""memory_responses":{},"#, self.memory_responses));
        s.push_str(&format!(r#""snoops_filtered":{},"#, self.snoops_filtered));
        s.push_str(&format!(r#""snoops_looked_up":{},"#, self.snoops_looked_up));
        s.push_str(&format!(r#""writebacks":{},"#, self.writebacks));
        s.push_str(&format!(
            r#""writebacks_squashed":{},"#,
            self.writebacks_squashed
        ));
        s.push_str(&format!(r#""bypassed_flits":{},"#, self.bypassed_flits));
        s.push_str(&format!(r#""buffered_flits":{},"#, self.buffered_flits));
        s.push_str(&format!(r#""packets_injected":{},"#, self.packets_injected));
        s.push_str(&format!(
            r#""packet_latency":{},"#,
            acc(&self.packet_latency)
        ));
        s.push_str(&format!(r#""notify_windows":{},"#, self.notify_windows));
        s.push_str(&format!(r#""notify_nonempty":{},"#, self.notify_nonempty));
        s.push_str(&format!(r#""stop_windows":{},"#, self.stop_windows));
        s.push_str(&format!(r#""expiry_messages":{},"#, self.expiry_messages));
        s.push_str(&format!(r#""dir_accesses":{},"#, self.dir_accesses));
        s.push_str(&format!(r#""dir_misses":{}"#, self.dir_misses));
        if self.source_dropped > 0 {
            s.push_str(&format!(r#","source_dropped":{}"#, self.source_dropped));
        }
        if let Some(o) = &self.obs {
            s.push_str(r#","obs":"#);
            s.push_str(&o.to_json());
        }
        s.push('}');
        s
    }

    /// Column names matching [`SystemReport::csv_row`], comma-joined.
    pub fn csv_header() -> &'static str {
        "protocol,cores,runtime_cycles,ops_completed,l1_hits,l2_hits,l2_misses,\
         l2_service_mean,cache_served_mean,memory_served_mean,ordering_mean,\
         packet_latency_mean,data_forwards,memory_responses,snoops_filtered,\
         snoops_looked_up,writebacks,writebacks_squashed,bypassed_flits,\
         buffered_flits,packets_injected,notify_windows,notify_nonempty,\
         stop_windows,expiry_messages,dir_accesses,dir_misses,source_dropped"
    }

    /// The report's scalar columns as one CSV row (see
    /// [`SystemReport::csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:?},{:?},{:?},{:?},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.protocol,
            self.cores,
            self.runtime_cycles,
            self.ops_completed,
            self.l1_hits,
            self.l2_hits,
            self.l2_misses,
            self.l2_service_latency.mean(),
            self.cache_served.mean(),
            self.memory_served.mean(),
            self.ordering_delay.mean(),
            self.packet_latency.mean(),
            self.data_forwards,
            self.memory_responses,
            self.snoops_filtered,
            self.snoops_looked_up,
            self.writebacks,
            self.writebacks_squashed,
            self.bypassed_flits,
            self.buffered_flits,
            self.packets_injected,
            self.notify_windows,
            self.notify_nonempty,
            self.stop_windows,
            self.expiry_messages,
            self.dir_accesses,
            self.dir_misses,
            self.source_dropped,
        )
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{:>14}: runtime={:>8} ops={:>7} L2 svc={:>7.1} cyc  cache-served={:>5.1}% \
             (c2c {:>6.1} / mem {:>6.1} cyc)  ordering={:>5.1} cyc  bypass={:>5.1}%",
            self.protocol,
            self.runtime_cycles,
            self.ops_completed,
            self.l2_service_latency.mean(),
            100.0 * self.cache_served_fraction(),
            self.cache_served.mean(),
            self.memory_served.mean(),
            self.ordering_delay.mean(),
            100.0 * self.bypass_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_empty() {
        let r = SystemReport::default();
        assert_eq!(r.cache_served_fraction(), 0.0);
        assert_eq!(r.bypass_rate(), 0.0);
        assert!(r.summary().contains("runtime"));
    }

    #[test]
    fn json_is_wellformed_and_deterministic() {
        let mut r = SystemReport {
            protocol: "SCORPIO".into(),
            cores: 16,
            runtime_cycles: 1234,
            ..SystemReport::default()
        };
        r.l2_service_latency.record(10);
        r.l2_service_latency.record(21);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""protocol":"SCORPIO""#));
        assert!(j.contains(r#""runtime_cycles":1234"#));
        assert!(j.contains(
            r#""l2_service_latency":{"count":2,"sum":31,"mean":15.5,"min":10,"max":21}"#
        ));
        // Empty accumulators serialize min/max as null, not a panic.
        assert!(
            j.contains(r#""packet_latency":{"count":0,"sum":0,"mean":0.0,"min":null,"max":null}"#)
        );
        assert_eq!(j, r.clone().to_json(), "serialization must be stable");
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_cols = SystemReport::csv_header().split(',').count();
        let row_cols = SystemReport::default().csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 28);
    }

    #[test]
    fn source_dropped_is_json_transparent_at_zero() {
        // Closed-loop reports (source_dropped == 0) must serialize
        // byte-identically to pre-open-loop output.
        let mut r = SystemReport::default();
        assert!(!r.to_json().contains("source_dropped"));
        r.source_dropped = 3;
        assert!(r.to_json().contains(r#""source_dropped":3"#));
    }

    #[test]
    fn obs_annex_is_absent_by_default_and_renders_when_present() {
        let mut r = SystemReport::default();
        assert!(!r.to_json().contains(r#""obs""#));
        let mut o = ObsReport::default();
        o.packet_latency.record(5);
        o.packet_latency.record(9);
        o.vnet_latency
            .push(("GO-REQ".into(), LogHistogram::default()));
        o.planes.push(PlaneObs {
            link_flits: 7,
            links_used: 3,
            max_link_flits: 4,
            ..PlaneObs::default()
        });
        r.obs = Some(Box::new(o));
        let j = r.to_json();
        // The annex leads with its schema version.
        assert!(j.contains(&format!(
            r#""obs":{{"schema_version":{OBS_SCHEMA_VERSION},"#
        )));
        // 5 → bucket 3 ([4,7]), 9 → bucket 4 ([8,15]); p50 = edge(3) = 7.
        assert!(j.contains(
            r#""packet_latency":{"count":2,"sum":14,"p50":7,"p95":15,"p99":15,"p999":15,"max":9,"buckets":[[3,1],[4,1]]}"#
        ));
        // Empty histograms render null percentiles, not a panic.
        assert!(j.contains(r#""GO-REQ":{"count":0,"sum":0,"p50":null,"p95":null,"p99":null,"p999":null,"max":null,"buckets":[]}"#));
        assert!(j.contains(r#""link_flits":7,"links_used":3,"max_link_flits":4"#));
        assert!(j.contains(r#""trace":{"kept":0,"dropped":0}"#));
        // Span and window sub-annexes are absent unless their recorders
        // ran.
        assert!(!j.contains(r#""spans""#));
        assert!(!j.contains(r#""windows""#));
        assert!(j.ends_with('}'));
        assert_eq!(j, r.clone().to_json(), "serialization must be stable");
    }

    #[test]
    fn span_and_window_annexes_render() {
        let mut r = SystemReport::default();
        let mut o = ObsReport::default();
        let span = MissSpan {
            tile: 3,
            addr: scorpio_coherence::LineAddr(64),
            kind: scorpio_coherence::MsgKind::GetS,
            served_by: scorpio_mem::ServedBy::Cache,
            enqueued: 10,
            admitted: 11,
            issue: 12,
            inject: 13,
            popped: 20,
            ordered: 22,
            data: 18,
            retire: 25,
        };
        let mut sp = SpanReport::default();
        sp.fold(&span);
        // Phases partition the end-to-end latency.
        assert_eq!(
            span.source()
                + span.queue()
                + span.inject_wait()
                + span.flight()
                + span.commit()
                + span.data_wait()
                + span.fill(),
            span.total()
        );
        assert_eq!(span.ordering(), 10);
        o.spans = Some(sp);
        o.windows = Some(WindowReport {
            window_cycles: 1024,
            count: 2,
            warmup: 1,
            steady_ops: 40,
            steady_ejected: 9,
            max_wait: Some(EpWait {
                ep: 7,
                window: 1,
                count: 2,
                sum: 10,
            }),
            min_wait: None,
        });
        r.obs = Some(Box::new(o));
        let j = r.to_json();
        assert!(j.contains(r#""spans":{"count":1,"dropped":0,"source":{"count":1,"sum":1,"#));
        assert!(j.contains(
            r#""windows":{"window_cycles":1024,"count":2,"warmup":1,"steady_ops":40,"steady_ejected":9,"max_wait":{"ep":7,"window":1,"count":2,"sum":10},"min_wait":null}"#
        ));
        // The span JSONL row carries stamps and the derived phases.
        let body = span_json(&span);
        assert_eq!(
            body,
            r#"{"tile":3,"addr":64,"kind":"GetS","served_by":"Cache","enqueued":10,"admitted":11,"issue":12,"inject":13,"popped":20,"ordered":22,"data":18,"retire":25,"phases":{"source":1,"queue":1,"inject":1,"flight":7,"commit":2,"data":0,"fill":3}}"#
        );
        // And the window JSONL row schema.
        let row = WindowRow {
            window: 1,
            start: 1024,
            cycles: 1024,
            injected: 4,
            ejected: 3,
            ops: 5,
            publishes: 2,
            ..WindowRow::default()
        };
        assert!(row.json_body().starts_with(
            r#"{"window":1,"start":1024,"cycles":1024,"injected":4,"ejected":3,"latency":{"count":0,"sum":0,"#
        ));
        assert!(row
            .json_body()
            .ends_with(r#""ops":5,"publishes":2,"ep_wait_max":null,"ep_wait_min":null}"#));
    }

    #[test]
    fn fractions_compute() {
        let mut r = SystemReport::default();
        r.cache_served.record(10);
        r.cache_served.record(20);
        r.memory_served.record(100);
        r.bypassed_flits = 3;
        r.buffered_flits = 1;
        assert!((r.cache_served_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.bypass_rate() - 0.75).abs() < 1e-9);
    }
}
