//! End-of-run reporting: the numbers the paper's figures are built from.

use scorpio_sim::stats::Accumulator;

/// Aggregated results of one full-system run.
#[derive(Debug, Clone, Default)]
pub struct SystemReport {
    /// Protocol name.
    pub protocol: String,
    /// Cores in the system.
    pub cores: usize,
    /// Cycles until every core finished its work ("runtime").
    pub runtime_cycles: u64,
    /// Memory operations completed across all cores.
    pub ops_completed: u64,
    /// L1 hits (no L2 access).
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (coherence transactions).
    pub l2_misses: u64,
    /// Average L2 service latency over all core requests (the paper's
    /// "average L2 service latency": hits, misses, queueing).
    pub l2_service_latency: Accumulator,
    /// Miss latency when another cache supplied the data.
    pub cache_served: Accumulator,
    /// Miss latency when memory supplied the data.
    pub memory_served: Accumulator,
    /// Request ordering delay (issue → own ordered observation).
    pub ordering_delay: Accumulator,
    /// Cache-to-cache data forwards.
    pub data_forwards: u64,
    /// Memory responses.
    pub memory_responses: u64,
    /// Snoops filtered by region trackers.
    pub snoops_filtered: u64,
    /// Snoops that looked up L2 tags.
    pub snoops_looked_up: u64,
    /// Writebacks (and how many were squashed by races).
    pub writebacks: u64,
    /// Squashed writebacks.
    pub writebacks_squashed: u64,
    /// Flits that bypassed (single-cycle router traversals).
    pub bypassed_flits: u64,
    /// Flits that buffered.
    pub buffered_flits: u64,
    /// Packets injected into the main network.
    pub packets_injected: u64,
    /// Average packet latency in the main network.
    pub packet_latency: Accumulator,
    /// Notification windows completed / carrying announcements (SCORPIO).
    pub notify_windows: u64,
    /// Non-empty notification windows.
    pub notify_nonempty: u64,
    /// Stop-bit windows observed.
    pub stop_windows: u64,
    /// INSO expiry broadcasts sent (baseline cost).
    pub expiry_messages: u64,
    /// Directory-home accesses (LPD-D / HT-D).
    pub dir_accesses: u64,
    /// Directory-cache misses at the homes.
    pub dir_misses: u64,
}

impl SystemReport {
    /// Fraction of misses served by other caches (the paper reports ~90%).
    pub fn cache_served_fraction(&self) -> f64 {
        let total = self.cache_served.count() + self.memory_served.count();
        if total == 0 {
            0.0
        } else {
            self.cache_served.count() as f64 / total as f64
        }
    }

    /// Bypass rate of the main network.
    pub fn bypass_rate(&self) -> f64 {
        let total = self.bypassed_flits + self.buffered_flits;
        if total == 0 {
            0.0
        } else {
            self.bypassed_flits as f64 / total as f64
        }
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{:>14}: runtime={:>8} ops={:>7} L2 svc={:>7.1} cyc  cache-served={:>5.1}% \
             (c2c {:>6.1} / mem {:>6.1} cyc)  ordering={:>5.1} cyc  bypass={:>5.1}%",
            self.protocol,
            self.runtime_cycles,
            self.ops_completed,
            self.l2_service_latency.mean(),
            100.0 * self.cache_served_fraction(),
            self.cache_served.mean(),
            self.memory_served.mean(),
            self.ordering_delay.mean(),
            100.0 * self.bypass_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_empty() {
        let r = SystemReport::default();
        assert_eq!(r.cache_served_fraction(), 0.0);
        assert_eq!(r.bypass_rate(), 0.0);
        assert!(r.summary().contains("runtime"));
    }

    #[test]
    fn fractions_compute() {
        let mut r = SystemReport::default();
        r.cache_served.record(10);
        r.cache_served.record(20);
        r.memory_served.record(100);
        r.bypassed_flits = 3;
        r.buffered_flits = 1;
        assert!((r.cache_served_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.bypass_rate() - 0.75).abs() < 1e-9);
    }
}
