//! Bounded FIFO queues with occupancy accounting.

use std::collections::VecDeque;
use std::fmt;

/// Error returned by [`Fifo::push`] when the queue is full.
///
/// Carries the rejected item back to the caller so nothing is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: fmt::Debug> std::error::Error for PushError<T> {}

/// A bounded first-in/first-out queue.
///
/// Models the finite buffers found throughout the SCORPIO design: NIC input
/// queues, notification tracker queues, L2 snoop queues, memory controller
/// request queues. Pushing into a full queue fails with [`PushError`]
/// (hardware would deassert *ready*), and high-watermark occupancy is
/// tracked for statistics.
///
/// # Examples
///
/// ```
/// use scorpio_sim::Fifo;
///
/// let mut q: Fifo<&str> = Fifo::bounded(1);
/// q.push("a").unwrap();
/// assert!(q.push("b").is_err());
/// assert_eq!(q.pop(), Some("a"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_watermark: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO that can hold at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-entry buffer cannot exist in
    /// hardware and would deadlock any protocol using it.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            high_watermark: 0,
        }
    }

    /// Appends an item at the back.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying the item if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        if self.items.len() == self.capacity {
            return Err(PushError(item));
        }
        self.items.push_back(item);
        self.high_watermark = self.high_watermark.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the front item, or `None` if empty.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// A reference to the front item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// A mutable reference to the front item without removing it.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed (for buffer-sizing statistics).
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Iterates over queued items from front to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

impl<'a, T> IntoIterator for &'a Fifo<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo() {
        let mut q = Fifo::bounded(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_into_full_returns_item() {
        let mut q = Fifo::bounded(1);
        q.push("x").unwrap();
        let err = q.push("y").unwrap_err();
        assert_eq!(err.0, "y");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn occupancy_accounting() {
        let mut q = Fifo::bounded(4);
        assert!(q.is_empty());
        assert_eq!(q.free_slots(), 4);
        q.push(0).unwrap();
        q.push(0).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.free_slots(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut q = Fifo::bounded(2);
        q.push(10).unwrap();
        assert_eq!(q.front(), Some(&10));
        assert_eq!(q.len(), 1);
        *q.front_mut().unwrap() = 11;
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::bounded(0);
    }

    #[test]
    fn iterates_front_to_back() {
        let mut q = Fifo::bounded(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![1, 2]);
    }

    #[test]
    fn push_error_displays() {
        let e = PushError(1u8);
        assert_eq!(e.to_string(), "fifo is full");
    }
}
