//! Deterministic random number generation for reproducible simulations.

/// A deterministic, seedable random-number generator.
///
/// Every stochastic choice in the simulator (synthetic workload addresses,
/// traffic patterns, jitter) flows through a `SimRng` so that a run is fully
/// reproducible from its seed. Internally this is xoshiro256++ seeded via
/// SplitMix64 — a small, dependency-free generator with well-studied
/// statistical quality — behind a small API so the algorithm is not part of
/// this crate's public contract.
///
/// # Examples
///
/// ```
/// use scorpio_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range_u64(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator, e.g. one per core.
    ///
    /// The child stream is decorrelated from the parent by mixing the lane
    /// index into a fresh seed.
    pub fn split(&mut self, lane: u64) -> SimRng {
        let mixed = self
            .next_u64()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        SimRng::seed_from(mixed)
    }

    /// The next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        // Debiased multiply-shift (Lemire): uniform without modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be non-zero");
        self.gen_range_u64(bound as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be decorrelated");
    }

    #[test]
    fn split_lanes_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.split(0);
        let mut c2 = parent2.split(0);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed_from(9);
        let mut parent4 = SimRng::seed_from(9);
        let mut d1 = parent3.split(1);
        let mut d2 = parent4.split(2);
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.gen_range_u64(17) < 17);
            assert!(rng.gen_range_usize(5) < 5);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range_usize(8)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i} = {b}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::seed_from(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn zero_bound_panics() {
        let mut rng = SimRng::seed_from(0);
        let _ = rng.gen_range_u64(0);
    }
}
