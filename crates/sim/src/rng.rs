//! Deterministic random number generation for reproducible simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable random-number generator.
///
/// Every stochastic choice in the simulator (synthetic workload addresses,
/// traffic patterns, jitter) flows through a `SimRng` so that a run is fully
/// reproducible from its seed. Wraps [`rand::rngs::SmallRng`] behind a small
/// API so the `rand` version is not part of this crate's public contract.
///
/// # Examples
///
/// ```
/// use scorpio_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range_u64(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per core.
    ///
    /// The child stream is decorrelated from the parent by mixing the lane
    /// index into a fresh seed.
    pub fn split(&mut self, lane: u64) -> SimRng {
        let mixed = self
            .next_u64()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        SimRng::seed_from(mixed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        self.inner.gen_range(0..bound)
    }

    /// A uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be non-zero");
        self.inner.gen_range(0..bound)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be decorrelated");
    }

    #[test]
    fn split_lanes_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.split(0);
        let mut c2 = parent2.split(0);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed_from(9);
        let mut parent4 = SimRng::seed_from(9);
        let mut d1 = parent3.split(1);
        let mut d2 = parent4.split(2);
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.gen_range_u64(17) < 17);
            assert!(rng.gen_range_usize(5) < 5);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::seed_from(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn zero_bound_panics() {
        let mut rng = SimRng::seed_from(0);
        let _ = rng.gen_range_u64(0);
    }
}
