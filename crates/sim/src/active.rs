//! The active-set primitive behind the skip-idle-work simulation engine.
//!
//! An [`ActiveSet`] tracks which components of a fixed-size population have
//! pending work this cycle: a dense bitset provides O(1) duplicate-free
//! [`ActiveSet::wake`], and a dirty list keeps draining proportional to the
//! number of *woken* members rather than the population size. Draining
//! yields members in ascending index order, so an engine that replaces a
//! full `for i in 0..n` probe loop with a drained active set visits the
//! same components in the same order — the property the byte-identical
//! equivalence guarantee between the always-scan and active-set engines
//! rests on.
//!
//! # Examples
//!
//! ```
//! use scorpio_sim::ActiveSet;
//!
//! let mut set = ActiveSet::new(8);
//! set.wake(5);
//! set.wake(2);
//! set.wake(5); // duplicate: ignored
//! let mut scratch = Vec::new();
//! set.drain_sorted(&mut scratch);
//! assert_eq!(scratch, vec![2, 5]);
//! assert!(set.is_empty());
//! ```

/// A set of active component indices over a fixed population `0..len`.
///
/// Members are woken by index; draining visits them in ascending order and
/// empties the set. Waking during an iteration over the drained list (the
/// usual "component stays busy, re-arm for next cycle" pattern) is fine:
/// the drained list is a separate buffer owned by the caller.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    /// Dense membership bitset, one bit per component.
    bits: Vec<u64>,
    /// Indices woken since the last drain (duplicate-free via `bits`).
    dirty: Vec<u32>,
    len: usize,
}

impl ActiveSet {
    /// An empty set over the population `0..len`.
    pub fn new(len: usize) -> ActiveSet {
        ActiveSet {
            bits: vec![0; len.div_ceil(64)],
            dirty: Vec::new(),
            len,
        }
    }

    /// Population size this set covers.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Number of distinct members currently woken.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// Whether no member is woken.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Whether member `idx` is currently woken.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn is_active(&self, idx: usize) -> bool {
        assert!(idx < self.len, "index {idx} out of range");
        self.bits[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Wakes member `idx`; waking an already-active member is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn wake(&mut self, idx: usize) {
        assert!(idx < self.len, "index {idx} out of range");
        let (word, mask) = (idx / 64, 1u64 << (idx % 64));
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.dirty.push(idx as u32);
        }
    }

    /// Wakes every member of the population.
    pub fn wake_all(&mut self) {
        for idx in 0..self.len {
            self.wake(idx);
        }
    }

    /// Empties the set into `out` (cleared first) in ascending index
    /// order. Cost is O(woken · log woken), independent of the population.
    pub fn drain_sorted(&mut self, out: &mut Vec<u32>) {
        out.clear();
        out.append(&mut self.dirty);
        out.sort_unstable();
        for &idx in out.iter() {
            self.bits[idx as usize / 64] &= !(1 << (idx % 64));
        }
    }

    /// The scan-or-drain work list shared by every engine loop: with
    /// `all` set (always-scan mode) fills `out` with the whole population
    /// in order and clears the set; otherwise drains the woken members via
    /// [`ActiveSet::drain_sorted`]. Factored here so the always-scan and
    /// active-set engines cannot drift apart at individual call sites.
    pub fn drain_sorted_or_all(&mut self, all: bool, out: &mut Vec<u32>) {
        if all {
            out.clear();
            out.extend(0..self.len as u32);
            self.clear();
        } else {
            self.drain_sorted(out);
        }
    }

    /// Removes every member without reporting them.
    pub fn clear(&mut self) {
        for &idx in &self.dirty {
            self.bits[idx as usize / 64] &= !(1 << (idx % 64));
        }
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_is_duplicate_free_and_drain_is_sorted() {
        let mut s = ActiveSet::new(100);
        for idx in [99, 0, 42, 0, 99, 7] {
            s.wake(idx);
        }
        assert_eq!(s.len(), 4);
        assert!(s.is_active(42));
        assert!(!s.is_active(41));
        let mut out = Vec::new();
        s.drain_sorted(&mut out);
        assert_eq!(out, vec![0, 7, 42, 99]);
        assert!(s.is_empty());
        assert!(!s.is_active(99));
    }

    #[test]
    fn drain_clears_and_allows_rewake() {
        let mut s = ActiveSet::new(10);
        s.wake(3);
        let mut out = Vec::new();
        s.drain_sorted(&mut out);
        assert_eq!(out, vec![3]);
        // Re-waking after a drain works (the bit was cleared).
        s.wake(3);
        s.wake(4);
        s.drain_sorted(&mut out);
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn wake_all_covers_population() {
        let mut s = ActiveSet::new(65);
        s.wake_all();
        assert_eq!(s.len(), 65);
        let mut out = Vec::new();
        s.drain_sorted(&mut out);
        assert_eq!(out.len(), 65);
        assert_eq!(out[0], 0);
        assert_eq!(out[64], 64);
    }

    #[test]
    fn drain_or_all_covers_both_engines() {
        let mut s = ActiveSet::new(5);
        s.wake(3);
        let mut out = Vec::new();
        // Scan mode: the whole population, and the woken bit is cleared.
        s.drain_sorted_or_all(true, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
        // Active mode: just the woken members.
        s.wake(4);
        s.wake(1);
        s.drain_sorted_or_all(false, &mut out);
        assert_eq!(out, vec![1, 4]);
    }

    #[test]
    fn clear_discards_members() {
        let mut s = ActiveSet::new(8);
        s.wake(1);
        s.wake(6);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.is_active(1));
        let mut out = vec![123];
        s.drain_sorted(&mut out);
        assert!(out.is_empty(), "drain clears the output buffer");
    }

    #[test]
    fn zero_capacity_set_is_inert() {
        let mut s = ActiveSet::new(0);
        assert_eq!(s.capacity(), 0);
        assert!(s.is_empty());
        let mut out = Vec::new();
        s.drain_sorted(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_wake_panics() {
        ActiveSet::new(4).wake(4);
    }
}
