//! Counters, latency accumulators and histograms.
//!
//! Every module in the simulator reports through these types so that the
//! experiment harness can print uniform tables. All statistics are plain
//! data: cloning a stats struct snapshots it.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use scorpio_sim::stats::Counter;
///
/// let mut flits = Counter::new();
/// flits.add(3);
/// flits.incr();
/// assert_eq!(flits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Accumulates samples and reports count / mean / min / max.
///
/// Used for every latency figure in the evaluation (network latency, L2
/// service latency, ordering delay, ...).
///
/// # Examples
///
/// ```
/// use scorpio_sim::stats::Accumulator;
///
/// let mut lat = Accumulator::new();
/// lat.record(10);
/// lat.record(20);
/// assert_eq!(lat.count(), 2);
/// assert_eq!(lat.mean(), 15.0);
/// assert_eq!(lat.min(), Some(10));
/// assert_eq!(lat.max(), Some(20));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accumulator {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.2} min={} max={}",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// A histogram with fixed-width buckets and an overflow bucket.
///
/// # Examples
///
/// ```
/// use scorpio_sim::stats::Histogram;
///
/// let mut h = Histogram::new(10, 5); // 5 buckets of width 10
/// h.record(3);
/// h.record(12);
/// h.record(999); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be non-zero");
        assert!(buckets > 0, "bucket count must be non-zero");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (sample / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `idx` (`idx * width ..= idx * width + width - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Number of buckets (excluding the overflow bucket).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket width this histogram was built with.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Folds another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different shapes.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width differs"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count differs"
        );
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.overflow += other.overflow;
    }

    /// The smallest value `v` such that at least `fraction` of samples are
    /// `<= v` (bucket-granular; returns upper bucket edge). `None` if
    /// empty. Samples in the overflow bucket report `u64::MAX` — the
    /// histogram no longer knows their magnitude, only that they exceeded
    /// the last bucket.
    pub fn percentile(&self, fraction: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        // At least one sample must be covered even for fraction 0.0 —
        // otherwise an empty first bucket's edge would be reported.
        let target = ((fraction.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if count > 0 && seen >= target {
                return Some((idx as u64 + 1) * self.bucket_width - 1);
            }
        }
        Some(u64::MAX)
    }
}

/// A histogram with power-of-two (logarithmic) buckets covering all of
/// `u64` — no overflow bucket, no width to choose.
///
/// Bucket 0 holds the sample `0`; bucket `k ≥ 1` holds samples in
/// `[2^(k-1), 2^k - 1]`. Latency distributions span orders of magnitude
/// (a bypassed single-hop flit vs. a congested cross-chip data packet),
/// which fixed-width buckets cannot cover without either losing the low
/// end or overflowing the high end.
///
/// # Examples
///
/// ```
/// use scorpio_sim::stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.record(0); // bucket 0
/// h.record(5); // bucket 3: [4, 7]
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.percentile(1.0), Some(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// One bucket per possible bit-length, plus bucket 0 for the value 0.
    buckets: [u64; 65],
    count: u64,
    max: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            max: 0,
            sum: 0,
        }
    }

    /// The bucket index a sample falls into: its bit length (0 for 0).
    #[inline]
    pub fn bucket_of(sample: u64) -> usize {
        (64 - sample.leading_zeros()) as usize
    }

    /// The largest value bucket `idx` holds: `2^idx - 1` (0 for bucket 0).
    ///
    /// # Panics
    ///
    /// Panics if `idx > 64`.
    pub fn bucket_edge(idx: usize) -> u64 {
        assert!(idx <= 64, "log bucket index out of range");
        if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.buckets[Self::bucket_of(sample)] += 1;
        self.count += 1;
        self.max = self.max.max(sample);
        // Saturating: pathological samples (e.g. `u64::MAX` probes in
        // tests) must not poison the whole histogram with a panic.
        self.sum = self.sum.saturating_add(sample);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples — lets readers reconcile bucket-granular
    /// percentiles against the scalar means the report already carries.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest sample recorded, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Count in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 64`.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// The non-empty buckets, in ascending order, as `(index, count)` —
    /// the sparse form the report renderer emits.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The smallest bucket edge `v` such that at least `fraction` of
    /// samples are `<= v`. `None` if empty. Bucket-granular: the true
    /// percentile lies within the returned bucket.
    pub fn percentile(&self, fraction: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((fraction.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if count > 0 && seen >= target {
                return Some(Self::bucket_edge(idx));
            }
        }
        unreachable!("count > 0 guarantees a non-empty bucket is reached")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), None);
        a.record(5);
        a.record(1);
        a.record(9);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(9));
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 15);
        assert!((a.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(1);
        a.record(3);
        let mut b = Accumulator::new();
        b.record(10);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(10));
        assert_eq!(a.min(), Some(1));

        let mut empty = Accumulator::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 3);
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);
    }

    #[test]
    fn accumulator_display() {
        let mut a = Accumulator::new();
        assert_eq!(a.to_string(), "n=0");
        a.record(4);
        assert!(a.to_string().contains("mean=4.00"));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(5, 2); // [0,5), [5,10), overflow
        h.record(0);
        h.record(4);
        h.record(5);
        h.record(10);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(10, 10);
        for v in [1, 2, 3, 50, 95] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), Some(9)); // 3 of 5 in first bucket
        assert_eq!(h.percentile(1.0), Some(99));
        assert_eq!(Histogram::new(1, 1).percentile(0.5), None);
    }

    #[test]
    fn histogram_percentile_edge_cases() {
        // Empty histogram: no percentile at any fraction.
        let empty = Histogram::new(10, 4);
        assert_eq!(empty.percentile(0.0), None);
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(empty.percentile(1.0), None);
        // fraction 0.0 still covers one sample — it must not report the
        // empty first bucket's edge.
        let mut h = Histogram::new(10, 4);
        h.record(25);
        assert_eq!(h.percentile(0.0), Some(29));
        assert_eq!(h.percentile(1.0), Some(29));
        // Out-of-range fractions clamp.
        assert_eq!(h.percentile(-3.0), Some(29));
        assert_eq!(h.percentile(7.0), Some(29));
        // Samples past the last bucket saturate to u64::MAX: the
        // histogram no longer knows their magnitude.
        let mut o = Histogram::new(10, 2);
        o.record(5);
        o.record(500);
        assert_eq!(o.percentile(0.5), Some(9));
        assert_eq!(o.percentile(1.0), Some(u64::MAX));
        let mut all_over = Histogram::new(10, 2);
        all_over.record(500);
        assert_eq!(all_over.percentile(0.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(5, 2);
        a.record(1);
        a.record(11);
        let mut b = Histogram::new(5, 2);
        b.record(2);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.bucket_count(0), 2);
        assert_eq!(a.bucket_count(1), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "bucket width differs")]
    fn histogram_merge_shape_mismatch_panics() {
        let mut a = Histogram::new(5, 2);
        a.merge(&Histogram::new(10, 2));
    }

    #[test]
    fn log_histogram_bucketing() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(255), 8);
        assert_eq!(LogHistogram::bucket_of(256), 9);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_edge(0), 0);
        assert_eq!(LogHistogram::bucket_edge(3), 7);
        assert_eq!(LogHistogram::bucket_edge(64), u64::MAX);
        let mut h = LogHistogram::new();
        for v in [0, 1, 3, 100, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(7), 1);
        assert_eq!(h.bucket_count(64), 1);
        let sparse: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(sparse, vec![(0, 1), (1, 1), (2, 1), (7, 1), (64, 1)]);
    }

    #[test]
    fn log_histogram_percentiles_and_merge() {
        let empty = LogHistogram::new();
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(empty.max(), None);
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4: [8, 15]
        }
        h.record(1000); // bucket 10: [512, 1023]
        assert_eq!(h.percentile(0.0), Some(15));
        assert_eq!(h.percentile(0.5), Some(15));
        assert_eq!(h.percentile(0.99), Some(15));
        assert_eq!(h.percentile(0.999), Some(1023));
        assert_eq!(h.percentile(1.0), Some(1023));
        let mut other = LogHistogram::new();
        other.record(2000);
        h.merge(&other);
        assert_eq!(h.count(), 101);
        assert_eq!(h.max(), Some(2000));
        assert_eq!(h.percentile(1.0), Some(2047));
    }

    #[test]
    #[should_panic(expected = "bucket width must be non-zero")]
    fn zero_width_panics() {
        let _ = Histogram::new(0, 1);
    }
}
