//! Two-phase registers for synchronous-hardware modelling.

/// A single-entry register with separate *stage* and *commit* phases.
///
/// During a cycle every component writes its outputs with [`Latch::stage`];
/// after all components have ticked, a global commit step calls
/// [`Latch::commit`] on every latch, making staged values visible. This is
/// exactly a D flip-flop: consumers always observe the value produced in the
/// *previous* cycle, regardless of the order components are ticked in.
///
/// # Examples
///
/// ```
/// use scorpio_sim::Latch;
///
/// let mut l: Latch<u8> = Latch::empty();
/// l.stage(1);
/// assert_eq!(l.current(), None);
/// l.commit();
/// assert_eq!(l.current(), Some(&1));
/// // Nothing staged this cycle: commit clears the register.
/// l.commit();
/// assert_eq!(l.current(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Latch<T> {
    current: Option<T>,
    staged: Option<T>,
}

impl<T> Latch<T> {
    /// Creates an empty latch: nothing visible, nothing staged.
    pub fn empty() -> Self {
        Latch {
            current: None,
            staged: None,
        }
    }

    /// Stages `value` to become visible after the next [`commit`].
    ///
    /// Staging twice in one cycle indicates a modelling bug (two drivers on
    /// one wire), so this panics in that case.
    ///
    /// # Panics
    ///
    /// Panics if a value is already staged this cycle.
    ///
    /// [`commit`]: Latch::commit
    pub fn stage(&mut self, value: T) {
        assert!(
            self.staged.is_none(),
            "latch staged twice in one cycle (two drivers on one wire)"
        );
        self.staged = Some(value);
    }

    /// Whether a value has been staged this cycle.
    pub fn is_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// The value visible this cycle, if any.
    pub fn current(&self) -> Option<&T> {
        self.current.as_ref()
    }

    /// Removes and returns the visible value, leaving the latch empty for
    /// this cycle (the staged value is unaffected).
    pub fn take(&mut self) -> Option<T> {
        self.current.take()
    }

    /// Clock edge: the staged value (or emptiness) becomes visible.
    pub fn commit(&mut self) {
        self.current = self.staged.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_value_becomes_visible_on_commit() {
        let mut l = Latch::empty();
        l.stage(5);
        assert!(l.is_staged());
        assert_eq!(l.current(), None);
        l.commit();
        assert_eq!(l.current(), Some(&5));
        assert!(!l.is_staged());
    }

    #[test]
    fn commit_without_stage_clears() {
        let mut l = Latch::empty();
        l.stage(1);
        l.commit();
        l.commit();
        assert_eq!(l.current(), None);
    }

    #[test]
    fn take_consumes_current_only() {
        let mut l = Latch::empty();
        l.stage(1);
        l.commit();
        l.stage(2);
        assert_eq!(l.take(), Some(1));
        assert_eq!(l.take(), None);
        l.commit();
        assert_eq!(l.current(), Some(&2));
    }

    #[test]
    #[should_panic(expected = "two drivers")]
    fn double_stage_panics() {
        let mut l = Latch::empty();
        l.stage(1);
        l.stage(2);
    }

    #[test]
    fn default_is_empty() {
        let l: Latch<u8> = Latch::default();
        assert_eq!(l.current(), None);
        assert!(!l.is_staged());
    }
}
