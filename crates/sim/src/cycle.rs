//! Strongly-typed cycle counter.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles.
///
/// `Cycle` is a newtype over `u64` so that cycle values cannot be confused
/// with other integers (flit counts, node ids, ...). Subtraction saturates
/// at zero — latencies are never negative.
///
/// # Examples
///
/// ```
/// use scorpio_sim::Cycle;
///
/// let start = Cycle::new(10);
/// let end = start + 5;
/// assert_eq!(end - start, 5);
/// assert_eq!(start - end, 0); // saturating
/// assert_eq!(end.as_u64(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero — the beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The cycle immediately after this one.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Cycle(self.0 + 1)
    }

    /// Whether this cycle is a multiple of `period`.
    ///
    /// Used for time-window boundaries in the notification network.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[inline]
    pub const fn is_multiple_of(self, period: u64) -> bool {
        assert!(period > 0, "period must be non-zero");
        self.0.is_multiple_of(period)
    }

    /// Saturating distance from `earlier` to `self`, in cycles.
    #[inline]
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Saturating subtraction: a latency can never be negative.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn next_advances_by_one() {
        assert_eq!(Cycle::new(41).next(), Cycle::new(42));
    }

    #[test]
    fn add_and_add_assign() {
        let mut c = Cycle::new(5);
        c += 3;
        assert_eq!(c, Cycle::new(8));
        assert_eq!(c + 2, Cycle::new(10));
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Cycle::new(3) - Cycle::new(10), 0);
        assert_eq!(Cycle::new(10) - Cycle::new(3), 7);
    }

    #[test]
    fn since_mirrors_sub() {
        assert_eq!(Cycle::new(10).since(Cycle::new(4)), 6);
        assert_eq!(Cycle::new(4).since(Cycle::new(10)), 0);
    }

    #[test]
    fn multiples_detect_window_boundaries() {
        assert!(Cycle::new(0).is_multiple_of(13));
        assert!(Cycle::new(26).is_multiple_of(13));
        assert!(!Cycle::new(27).is_multiple_of(13));
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_panics() {
        let _ = Cycle::new(1).is_multiple_of(0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(9).to_string(), "cycle 9");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert!(Cycle::new(2) <= Cycle::new(2));
    }
}
