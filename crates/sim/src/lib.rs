//! Cycle-level simulation kernel for the SCORPIO reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`Cycle`] — a strongly-typed cycle counter,
//! * [`SimRng`] — a deterministic, seedable random-number generator,
//! * [`stats`] — counters, latency accumulators and histograms,
//! * [`Fifo`] — bounded FIFO queues with occupancy accounting,
//! * [`Latch`] — two-phase (compute/commit) registers used to model
//!   synchronous hardware without tick-order artifacts,
//! * [`ActiveSet`] — the wake/sleep bookkeeping the skip-idle-work
//!   simulation engines are built on.
//!
//! The SCORPIO simulator is *cycle driven*: each component exposes a
//! per-cycle `tick` and all cross-component communication goes through
//! [`Latch`]es or staged queues so that every component observes the state
//! produced in the previous cycle, exactly like flip-flop based hardware.
//!
//! # Examples
//!
//! ```
//! use scorpio_sim::{Cycle, Fifo, Latch};
//!
//! let mut clock = Cycle::ZERO;
//! let mut wire: Latch<u32> = Latch::empty();
//! wire.stage(7);
//! assert!(wire.current().is_none()); // not visible until commit
//! wire.commit();
//! clock = clock.next();
//! assert_eq!(wire.current(), Some(&7));
//!
//! let mut q: Fifo<u32> = Fifo::bounded(2);
//! q.push(1).unwrap();
//! assert_eq!(q.pop(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod cycle;
mod fifo;
mod latch;
mod rng;
pub mod stats;

pub use active::ActiveSet;
pub use cycle::Cycle;
pub use fifo::{Fifo, PushError};
pub use latch::Latch;
pub use rng::SimRng;
