//! Analytical area and power models of the SCORPIO chip (Section 5.4).
//!
//! Calibrated to the published tile breakdowns (Figure 9), the chip feature
//! summary (Table 1) and the multicore comparison (Table 2). The model also
//! encodes the design-exploration costs quoted in Section 5.2 (e.g. 6 VCs
//! cost 15% more area and 12% more power than 4) so ablation benches can
//! trade performance against silicon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod tables;

pub use breakdown::{
    chip_power_watts, energy_per_message_scale, energy_per_message_scale_c, link_length_scale,
    link_length_scale_c, network_area_scale, network_area_scale_c, network_power_scale,
    network_power_scale_c, notification_tree_depth, notification_tree_nodes,
    notification_tree_window, notification_width_bits, notification_width_bits_planes,
    router_area_scale, router_area_scale_topo, router_area_scale_topo_c, router_power_scale,
    router_power_scale_topo, router_power_scale_topo_c, router_radix, router_radix_c,
    tile_area_breakdown, tile_power_breakdown, Component, Share,
};
pub use tables::{chip_feature_table, processor_comparison_table};
