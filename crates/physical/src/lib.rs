//! Analytical area and power models of the SCORPIO chip (Section 5.4).
//!
//! Calibrated to the published tile breakdowns (Figure 9), the chip feature
//! summary (Table 1) and the multicore comparison (Table 2). The model also
//! encodes the design-exploration costs quoted in Section 5.2 (e.g. 6 VCs
//! cost 15% more area and 12% more power than 4) so ablation benches can
//! trade performance against silicon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod tables;

pub use breakdown::{
    chip_power_watts, notification_width_bits, router_area_scale, router_power_scale,
    tile_area_breakdown, tile_power_breakdown, Component, Share,
};
pub use tables::{chip_feature_table, processor_comparison_table};
