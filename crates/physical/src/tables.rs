//! Table 1 (chip features) and Table 2 (processor comparison) as data.

/// The chip feature summary of Table 1 as (feature, value) rows.
pub fn chip_feature_table() -> Vec<(&'static str, String)> {
    vec![
        ("Process", "IBM 45 nm SOI".into()),
        ("Dimension", "11 × 13 mm²".into()),
        ("Transistor count", "600 M".into()),
        ("Frequency", "833 MHz (1 GHz post-synthesis)".into()),
        ("Power", "28.8 W".into()),
        ("Core", "Dual-issue, in-order, 10-stage pipeline".into()),
        ("ISA", "32-bit Power Architecture".into()),
        ("L1 cache", "Private split 4-way write-through 16 KB I/D".into()),
        ("L2 cache", "Private inclusive 4-way 128 KB".into()),
        ("Line size", "32 B".into()),
        ("Coherence protocol", "MOSI (O: forward state)".into()),
        ("Directory cache", "128 KB (1 owner bit, 1 dirty bit)".into()),
        ("Snoop filter", "Region tracker (4 KB regions, 128 entries)".into()),
        ("NoC topology", "6×6 mesh".into()),
        (
            "Channel width",
            "137 bits (ctrl packets 1 flit, data packets 3 flits)".into(),
        ),
        (
            "Virtual networks",
            "GO-REQ: 4 VCs × 1 buffer; UO-RESP: 2 VCs × 3 buffers".into(),
        ),
        (
            "Router",
            "XY, cut-through, multicast, lookahead bypassing; 3-stage (1 with bypass) + 1-stage link".into(),
        ),
        (
            "Notification network",
            "36 bits wide, bufferless, 13-cycle window, max 4 pending".into(),
        ),
        ("Memory controllers", "2 × dual-port DDR2 + PHY".into()),
    ]
}

/// One column of Table 2.
#[derive(Debug, Clone)]
pub struct ProcessorColumn {
    /// Processor name.
    pub name: &'static str,
    /// Core count (as shipped).
    pub cores: &'static str,
    /// Consistency model.
    pub consistency: &'static str,
    /// Coherence scheme.
    pub coherence: &'static str,
    /// Interconnect fabric.
    pub interconnect: &'static str,
}

/// Table 2: multicore processor comparison.
pub fn processor_comparison_table() -> Vec<ProcessorColumn> {
    vec![
        ProcessorColumn {
            name: "Intel Core i7",
            cores: "4–8",
            consistency: "Processor",
            coherence: "Snoopy",
            interconnect: "Point-to-point (QPI)",
        },
        ProcessorColumn {
            name: "AMD Opteron",
            cores: "4–16",
            consistency: "Processor",
            coherence: "Broadcast-based directory (HT)",
            interconnect: "Point-to-point (HyperTransport)",
        },
        ProcessorColumn {
            name: "TILE64",
            cores: "64",
            consistency: "Relaxed",
            coherence: "Directory",
            interconnect: "5 8×8 meshes",
        },
        ProcessorColumn {
            name: "Oracle T5",
            cores: "16",
            consistency: "Relaxed",
            coherence: "Directory",
            interconnect: "8×9 crossbar",
        },
        ProcessorColumn {
            name: "Intel Xeon E7",
            cores: "6–10",
            consistency: "Processor",
            coherence: "Snoopy",
            interconnect: "Ring",
        },
        ProcessorColumn {
            name: "SCORPIO",
            cores: "36",
            consistency: "Sequential consistency",
            coherence: "Snoopy",
            interconnect: "6×6 mesh",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_table_has_key_rows() {
        let t = chip_feature_table();
        assert!(t.len() >= 15);
        let get = |k: &str| {
            t.iter()
                .find(|(f, _)| *f == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing row {k}"))
        };
        assert!(get("Power").contains("28.8"));
        assert!(get("NoC topology").contains("6×6"));
        assert!(get("Coherence protocol").contains("MOSI"));
        assert!(get("Notification network").contains("13-cycle"));
    }

    #[test]
    fn comparison_ends_with_scorpio() {
        let t = processor_comparison_table();
        assert_eq!(t.len(), 6);
        let s = t.last().unwrap();
        assert_eq!(s.name, "SCORPIO");
        assert_eq!(s.coherence, "Snoopy");
        assert_eq!(s.consistency, "Sequential consistency");
        // SCORPIO is the only mesh-based snoopy machine in the table.
        assert!(t
            .iter()
            .filter(|c| c.coherence == "Snoopy" && c.interconnect.contains("mesh"))
            .all(|c| c.name == "SCORPIO"));
    }
}
