//! Tile area/power breakdowns (Figure 9) and scaling rules (Section 5.2).

/// A tile component in the breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Core logic (with L1 control).
    Core,
    /// L1 data cache arrays.
    L1Data,
    /// L1 instruction cache arrays.
    L1Inst,
    /// L2 cache controller.
    L2Controller,
    /// L2 data/tag arrays.
    L2Array,
    /// Request-status holding registers.
    Rshr,
    /// AHB + ACE interface logic.
    AhbAce,
    /// Region tracker (snoop filter).
    RegionTracker,
    /// On-chip L2 tester.
    L2Tester,
    /// NIC + main-network router (+ notification router).
    NicRouter,
    /// Everything else.
    Other,
}

/// One slice of a breakdown: component and its share in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Share {
    /// The component.
    pub component: Component,
    /// Percentage of the tile total.
    pub percent: f64,
}

/// The tile *power* breakdown of Figure 9a (percent of tile power; the
/// paper: core+L1 ≈ 62%, L2 ≈ 18%, NIC+router ≈ 19%).
pub fn tile_power_breakdown() -> Vec<Share> {
    vec![
        Share {
            component: Component::Core,
            percent: 54.0,
        },
        Share {
            component: Component::L1Data,
            percent: 4.0,
        },
        Share {
            component: Component::L1Inst,
            percent: 4.0,
        },
        Share {
            component: Component::L2Controller,
            percent: 2.0,
        },
        Share {
            component: Component::L2Array,
            percent: 7.0,
        },
        Share {
            component: Component::Rshr,
            percent: 4.0,
        },
        Share {
            component: Component::AhbAce,
            percent: 2.0,
        },
        Share {
            component: Component::RegionTracker,
            percent: 0.5,
        },
        Share {
            component: Component::L2Tester,
            percent: 2.0,
        },
        Share {
            component: Component::NicRouter,
            percent: 19.0,
        },
        Share {
            component: Component::Other,
            percent: 1.5,
        },
    ]
}

/// The tile *area* breakdown of Figure 9b (caches ≈ 46%, NIC+router 10%).
pub fn tile_area_breakdown() -> Vec<Share> {
    vec![
        Share {
            component: Component::Core,
            percent: 32.0,
        },
        Share {
            component: Component::L1Data,
            percent: 6.0,
        },
        Share {
            component: Component::L1Inst,
            percent: 6.0,
        },
        Share {
            component: Component::L2Controller,
            percent: 2.0,
        },
        Share {
            component: Component::L2Array,
            percent: 34.0,
        },
        Share {
            component: Component::Rshr,
            percent: 4.0,
        },
        Share {
            component: Component::AhbAce,
            percent: 4.0,
        },
        Share {
            component: Component::RegionTracker,
            percent: 0.5,
        },
        Share {
            component: Component::L2Tester,
            percent: 2.0,
        },
        Share {
            component: Component::NicRouter,
            percent: 10.0,
        },
        Share {
            component: Component::Other,
            percent: -0.5,
        },
    ]
}

/// Whole-chip power estimate in watts, scaled linearly with tile count
/// from the 36-tile, 28.8 W chip (768 mW per tile).
///
/// # Examples
///
/// ```
/// use scorpio_physical::chip_power_watts;
/// assert!((chip_power_watts(36) - 28.8).abs() < 1e-6);
/// ```
pub fn chip_power_watts(tiles: usize) -> f64 {
    0.8 * tiles as f64
}

/// Router+NIC area relative to the 4-VC GO-REQ baseline, from the
/// post-synthesis evaluation in Section 5.2 ("4 VCs is 15% more area
/// efficient ... than 6 VCs") with linear interpolation per VC.
pub fn router_area_scale(goreq_vcs: u8) -> f64 {
    1.0 + (goreq_vcs as f64 - 4.0) * (0.15 / 2.0)
}

/// Router+NIC power relative to the 4-VC baseline ("consumes 12% less
/// power than 6 VCs").
pub fn router_power_scale(goreq_vcs: u8) -> f64 {
    1.0 + (goreq_vcs as f64 - 4.0) * (0.12 / 2.0)
}

/// Notification-network data width: m bits per core plus the stop bit;
/// O(m·N) scaling discussed in Section 5.2.
pub fn notification_width_bits(cores: usize, bits_per_core: u8) -> usize {
    cores * bits_per_core as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_breakdown_sums_to_100() {
        let total: f64 = tile_power_breakdown().iter().map(|s| s.percent).sum();
        assert!((total - 100.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn area_breakdown_sums_to_100() {
        let total: f64 = tile_area_breakdown().iter().map(|s| s.percent).sum();
        assert!((total - 100.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn paper_aggregates_hold() {
        let p = tile_power_breakdown();
        let pct = |c: Component| p.iter().find(|s| s.component == c).unwrap().percent;
        // Core + L1s ≈ 62% of tile power.
        assert!(
            (pct(Component::Core) + pct(Component::L1Data) + pct(Component::L1Inst) - 62.0).abs()
                < 1.0
        );
        // NIC + router ≈ 19%.
        assert!((pct(Component::NicRouter) - 19.0).abs() < 0.5);

        let a = tile_area_breakdown();
        let apct = |c: Component| a.iter().find(|s| s.component == c).unwrap().percent;
        // Caches ≈ 46% of tile area (L1s + L2 array).
        assert!(
            (apct(Component::L1Data) + apct(Component::L1Inst) + apct(Component::L2Array) - 46.0)
                .abs()
                < 1.0
        );
        assert!((apct(Component::NicRouter) - 10.0).abs() < 0.5);
    }

    #[test]
    fn chip_power_matches_table1() {
        assert!((chip_power_watts(36) - 28.8).abs() < 1e-9);
        assert!(chip_power_watts(64) > chip_power_watts(36));
    }

    #[test]
    fn vc_scaling_matches_section_5_2() {
        assert!((router_area_scale(4) - 1.0).abs() < 1e-9);
        assert!((router_area_scale(6) - 1.15).abs() < 1e-9);
        assert!((router_power_scale(6) - 1.12).abs() < 1e-9);
        assert!(router_area_scale(2) < 1.0);
    }

    #[test]
    fn notification_widths() {
        assert_eq!(notification_width_bits(36, 1), 37);
        assert_eq!(notification_width_bits(36, 2), 73);
        assert_eq!(notification_width_bits(100, 3), 301);
    }
}
