//! Tile area/power breakdowns (Figure 9) and scaling rules (Section 5.2).

/// A tile component in the breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Core logic (with L1 control).
    Core,
    /// L1 data cache arrays.
    L1Data,
    /// L1 instruction cache arrays.
    L1Inst,
    /// L2 cache controller.
    L2Controller,
    /// L2 data/tag arrays.
    L2Array,
    /// Request-status holding registers.
    Rshr,
    /// AHB + ACE interface logic.
    AhbAce,
    /// Region tracker (snoop filter).
    RegionTracker,
    /// On-chip L2 tester.
    L2Tester,
    /// NIC + main-network router (+ notification router).
    NicRouter,
    /// Everything else.
    Other,
}

/// One slice of a breakdown: component and its share in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Share {
    /// The component.
    pub component: Component,
    /// Percentage of the tile total.
    pub percent: f64,
}

/// The tile *power* breakdown of Figure 9a (percent of tile power; the
/// paper: core+L1 ≈ 62%, L2 ≈ 18%, NIC+router ≈ 19%).
pub fn tile_power_breakdown() -> Vec<Share> {
    vec![
        Share {
            component: Component::Core,
            percent: 54.0,
        },
        Share {
            component: Component::L1Data,
            percent: 4.0,
        },
        Share {
            component: Component::L1Inst,
            percent: 4.0,
        },
        Share {
            component: Component::L2Controller,
            percent: 2.0,
        },
        Share {
            component: Component::L2Array,
            percent: 7.0,
        },
        Share {
            component: Component::Rshr,
            percent: 4.0,
        },
        Share {
            component: Component::AhbAce,
            percent: 2.0,
        },
        Share {
            component: Component::RegionTracker,
            percent: 0.5,
        },
        Share {
            component: Component::L2Tester,
            percent: 2.0,
        },
        Share {
            component: Component::NicRouter,
            percent: 19.0,
        },
        Share {
            component: Component::Other,
            percent: 1.5,
        },
    ]
}

/// The tile *area* breakdown of Figure 9b (caches ≈ 46%, NIC+router 10%).
pub fn tile_area_breakdown() -> Vec<Share> {
    vec![
        Share {
            component: Component::Core,
            percent: 32.0,
        },
        Share {
            component: Component::L1Data,
            percent: 6.0,
        },
        Share {
            component: Component::L1Inst,
            percent: 6.0,
        },
        Share {
            component: Component::L2Controller,
            percent: 2.0,
        },
        Share {
            component: Component::L2Array,
            percent: 34.0,
        },
        Share {
            component: Component::Rshr,
            percent: 4.0,
        },
        Share {
            component: Component::AhbAce,
            percent: 4.0,
        },
        Share {
            component: Component::RegionTracker,
            percent: 0.5,
        },
        Share {
            component: Component::L2Tester,
            percent: 2.0,
        },
        Share {
            component: Component::NicRouter,
            percent: 10.0,
        },
        Share {
            component: Component::Other,
            percent: -0.5,
        },
    ]
}

/// Whole-chip power estimate in watts, scaled linearly with tile count
/// from the 36-tile, 28.8 W chip (768 mW per tile).
///
/// # Examples
///
/// ```
/// use scorpio_physical::chip_power_watts;
/// assert!((chip_power_watts(36) - 28.8).abs() < 1e-6);
/// ```
pub fn chip_power_watts(tiles: usize) -> f64 {
    0.8 * tiles as f64
}

/// Router+NIC area relative to the 4-VC GO-REQ baseline, from the
/// post-synthesis evaluation in Section 5.2 ("4 VCs is 15% more area
/// efficient ... than 6 VCs") with linear interpolation per VC.
pub fn router_area_scale(goreq_vcs: u8) -> f64 {
    1.0 + (goreq_vcs as f64 - 4.0) * (0.15 / 2.0)
}

/// Router+NIC power relative to the 4-VC baseline ("consumes 12% less
/// power than 6 VCs").
pub fn router_power_scale(goreq_vcs: u8) -> f64 {
    1.0 + (goreq_vcs as f64 - 4.0) * (0.12 / 2.0)
}

/// The main-network port count of one router on `fabric` (`"mesh"`,
/// `"torus"`, `"ring"` or `"cmesh"`) hosting `concentration` local tile
/// attachments: four mesh directions (two on a ring) plus one local port
/// per tile. The chip's 5-port mesh router (`concentration == 1`) is the
/// baseline the area/power shares of Figure 9 were synthesized for; a
/// concentration-4 CMesh router switches 8 ports.
///
/// This is the single radix derivation the physical model uses — the
/// concentration comes from `Topology::tiles_per_router`, the same source
/// the delivery fabric and notification window are built from, so the
/// wire model can never disagree with the topology about router shape.
///
/// # Panics
///
/// Panics on an unknown fabric name or zero concentration.
pub fn router_radix_c(fabric: &str, concentration: usize) -> usize {
    assert!(concentration > 0, "at least one tile per router");
    match fabric {
        "mesh" | "torus" | "cmesh" => 4 + concentration,
        "ring" => 2 + concentration,
        other => panic!("unknown fabric {other:?}"),
    }
}

/// [`router_radix_c`] at the chip's one-tile-per-router concentration.
///
/// # Panics
///
/// Panics on an unknown fabric name.
pub fn router_radix(fabric: &str) -> usize {
    router_radix_c(fabric, 1)
}

/// Average link-length scale of `fabric` at `concentration` tiles per
/// router, relative to the mesh's nearest-neighbour links. A folded torus
/// keeps every physical link equal but twice the mesh hop length (the
/// standard folding layout for the wraparound links); a ring laid out as
/// a folded loop likewise pays ~2×. Concentrating `c` tiles behind one
/// router stretches each inter-router link across a `√c × √c` tile block,
/// so wire length grows with `√c`. Link energy scales linearly with wire
/// length.
///
/// # Panics
///
/// Panics on an unknown fabric name or zero concentration.
pub fn link_length_scale_c(fabric: &str, concentration: usize) -> f64 {
    assert!(concentration > 0, "at least one tile per router");
    let base = match fabric {
        "mesh" | "cmesh" => 1.0,
        "torus" | "ring" => 2.0,
        other => panic!("unknown fabric {other:?}"),
    };
    base * (concentration as f64).sqrt()
}

/// [`link_length_scale_c`] at concentration 1.
///
/// # Panics
///
/// Panics on an unknown fabric name.
pub fn link_length_scale(fabric: &str) -> f64 {
    link_length_scale_c(fabric, 1)
}

/// Router+NIC area relative to the chip's 4-VC *mesh* router, corrected
/// for the fabric's router radix: crossbar area grows with the square of
/// the port count, buffers/allocators linearly, modeled here as the mean
/// of the two. A 3-port ring router is therefore markedly smaller than
/// the 5-port mesh router at the same VC count, and a concentration-4
/// CMesh router markedly larger.
pub fn router_area_scale_topo_c(goreq_vcs: u8, fabric: &str, concentration: usize) -> f64 {
    let r = router_radix_c(fabric, concentration) as f64 / router_radix("mesh") as f64;
    router_area_scale(goreq_vcs) * (r * r + r) / 2.0
}

/// [`router_area_scale_topo_c`] at concentration 1.
pub fn router_area_scale_topo(goreq_vcs: u8, fabric: &str) -> f64 {
    router_area_scale_topo_c(goreq_vcs, fabric, 1)
}

/// Router+NIC power relative to the chip's 4-VC mesh router, corrected
/// for router radix (switching energy follows the same crossbar/buffer
/// split as [`router_area_scale_topo_c`]) and for the fabric's link
/// length (link drivers are ~40% of router+link power on the chip's
/// nearest-neighbour links).
pub fn router_power_scale_topo_c(goreq_vcs: u8, fabric: &str, concentration: usize) -> f64 {
    let r = router_radix_c(fabric, concentration) as f64 / router_radix("mesh") as f64;
    let switching = router_power_scale(goreq_vcs) * (r * r + r) / 2.0;
    const LINK_FRACTION: f64 = 0.4;
    switching * (1.0 - LINK_FRACTION)
        + switching * LINK_FRACTION * link_length_scale_c(fabric, concentration)
}

/// [`router_power_scale_topo_c`] at concentration 1.
pub fn router_power_scale_topo(goreq_vcs: u8, fabric: &str) -> f64 {
    router_power_scale_topo_c(goreq_vcs, fabric, 1)
}

/// Total main-network area relative to the chip's single-plane 4-VC mesh
/// *at the same tile count*: replicating the network multiplies routers
/// and links per plane, while concentrating divides the router count by
/// `concentration` — so a bigger router is paid for out of fewer routers.
/// At concentration 2 the per-router area rises ~1.3× but only half the
/// routers exist, a net win the `cmesh` sweeps report.
pub fn network_area_scale_c(
    goreq_vcs: u8,
    fabric: &str,
    planes: usize,
    concentration: usize,
) -> f64 {
    assert!(planes > 0, "at least one plane");
    planes as f64 * router_area_scale_topo_c(goreq_vcs, fabric, concentration)
        / concentration as f64
}

/// [`network_area_scale_c`] at concentration 1.
pub fn network_area_scale(goreq_vcs: u8, fabric: &str, planes: usize) -> f64 {
    network_area_scale_c(goreq_vcs, fabric, planes, 1)
}

/// Total main-network power budget relative to the chip's single-plane
/// 4-VC mesh at the same tile count (see [`network_area_scale_c`] for the
/// router-count normalization). Idle planes clock-gate nothing in this
/// model — the honest upper bound for the replication cost the `planes`
/// sweeps report.
pub fn network_power_scale_c(
    goreq_vcs: u8,
    fabric: &str,
    planes: usize,
    concentration: usize,
) -> f64 {
    assert!(planes > 0, "at least one plane");
    planes as f64 * router_power_scale_topo_c(goreq_vcs, fabric, concentration)
        / concentration as f64
}

/// [`network_power_scale_c`] at concentration 1.
pub fn network_power_scale(goreq_vcs: u8, fabric: &str, planes: usize) -> f64 {
    network_power_scale_c(goreq_vcs, fabric, planes, 1)
}

/// Relative network energy per delivered message: the scaled network
/// power integrated over the run, divided by the messages it delivered.
/// Reported (not just cycles) by the multi-plane, topology and cmesh
/// sweeps so "more planes", "better topology" and "more concentration"
/// compare on energy terms; only ratios between configurations are
/// meaningful.
///
/// Returns 0 when no messages were delivered.
pub fn energy_per_message_scale_c(
    goreq_vcs: u8,
    fabric: &str,
    planes: usize,
    concentration: usize,
    runtime_cycles: u64,
    messages: u64,
) -> f64 {
    if messages == 0 {
        return 0.0;
    }
    network_power_scale_c(goreq_vcs, fabric, planes, concentration) * runtime_cycles as f64
        / messages as f64
}

/// [`energy_per_message_scale_c`] at concentration 1.
pub fn energy_per_message_scale(
    goreq_vcs: u8,
    fabric: &str,
    planes: usize,
    runtime_cycles: u64,
    messages: u64,
) -> f64 {
    energy_per_message_scale_c(goreq_vcs, fabric, planes, 1, runtime_cycles, messages)
}

/// Notification-network data width: m bits per core plus the stop bit,
/// times the number of main-network planes (each plane carries its own
/// word group); O(m·N·planes) scaling discussed in Section 5.2.
pub fn notification_width_bits(cores: usize, bits_per_core: u8) -> usize {
    notification_width_bits_planes(cores, bits_per_core, 1)
}

/// [`notification_width_bits`] for a multi-plane network.
pub fn notification_width_bits_planes(cores: usize, bits_per_core: u8, planes: usize) -> usize {
    planes * (cores * bits_per_core as usize + 1)
}

/// Depth of the hierarchical (quad-tree) notification aggregator over a
/// `cols × rows` router grid with the given fanout: the number of times
/// each grid dimension is divided by `fanout` (rounding up) before a
/// single root quad covers the machine. The flat bufferless network is
/// depth 0.
pub fn notification_tree_depth(cols: usize, rows: usize, fanout: usize) -> usize {
    assert!(fanout >= 2, "a tree needs fanout >= 2");
    let (mut c, mut r, mut depth) = (cols.max(1), rows.max(1), 0);
    while c > 1 || r > 1 {
        c = c.div_ceil(fanout);
        r = r.div_ceil(fanout);
        depth += 1;
    }
    depth
}

/// Notification window of the quad-tree aggregator: one up-sweep plus one
/// down-sweep of the tree (2·depth propagation cycles) plus the same
/// 3-cycle latch/merge/publish overhead the flat network pays. At 32×32
/// with fanout 2 this is 13 cycles against the flat network's 65
/// (diameter 62 + 3) — O(log N) against O(√N).
pub fn notification_tree_window(cols: usize, rows: usize, fanout: usize) -> usize {
    2 * notification_tree_depth(cols, rows, fanout) + 3
}

/// Aggregate-node count of the quad-tree: one OR node per quad per level
/// above the leaves. Each node is pure combinational OR logic over
/// [`notification_width_bits_planes`] wires, so tree cost scales with
/// this count times the flat network's per-hop width.
pub fn notification_tree_nodes(cols: usize, rows: usize, fanout: usize) -> usize {
    assert!(fanout >= 2, "a tree needs fanout >= 2");
    let (mut c, mut r, mut nodes) = (cols.max(1), rows.max(1), 0);
    while c > 1 || r > 1 {
        c = c.div_ceil(fanout);
        r = r.div_ceil(fanout);
        nodes += c * r;
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_breakdown_sums_to_100() {
        let total: f64 = tile_power_breakdown().iter().map(|s| s.percent).sum();
        assert!((total - 100.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn area_breakdown_sums_to_100() {
        let total: f64 = tile_area_breakdown().iter().map(|s| s.percent).sum();
        assert!((total - 100.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn paper_aggregates_hold() {
        let p = tile_power_breakdown();
        let pct = |c: Component| p.iter().find(|s| s.component == c).unwrap().percent;
        // Core + L1s ≈ 62% of tile power.
        assert!(
            (pct(Component::Core) + pct(Component::L1Data) + pct(Component::L1Inst) - 62.0).abs()
                < 1.0
        );
        // NIC + router ≈ 19%.
        assert!((pct(Component::NicRouter) - 19.0).abs() < 0.5);

        let a = tile_area_breakdown();
        let apct = |c: Component| a.iter().find(|s| s.component == c).unwrap().percent;
        // Caches ≈ 46% of tile area (L1s + L2 array).
        assert!(
            (apct(Component::L1Data) + apct(Component::L1Inst) + apct(Component::L2Array) - 46.0)
                .abs()
                < 1.0
        );
        assert!((apct(Component::NicRouter) - 10.0).abs() < 0.5);
    }

    #[test]
    fn chip_power_matches_table1() {
        assert!((chip_power_watts(36) - 28.8).abs() < 1e-9);
        assert!(chip_power_watts(64) > chip_power_watts(36));
    }

    #[test]
    fn vc_scaling_matches_section_5_2() {
        assert!((router_area_scale(4) - 1.0).abs() < 1e-9);
        assert!((router_area_scale(6) - 1.15).abs() < 1e-9);
        assert!((router_power_scale(6) - 1.12).abs() < 1e-9);
        assert!(router_area_scale(2) < 1.0);
    }

    #[test]
    fn notification_widths() {
        assert_eq!(notification_width_bits(36, 1), 37);
        assert_eq!(notification_width_bits(36, 2), 73);
        assert_eq!(notification_width_bits(100, 3), 301);
        // Planes multiply the whole word group (counts + stop).
        assert_eq!(notification_width_bits_planes(36, 1, 1), 37);
        assert_eq!(notification_width_bits_planes(36, 1, 4), 148);
    }

    #[test]
    fn topology_corrections_track_radix_and_wire_length() {
        // The mesh baseline is exactly the VC-only scale.
        assert!((router_area_scale_topo(4, "mesh") - 1.0).abs() < 1e-9);
        assert!((router_power_scale_topo(4, "mesh") - 1.0).abs() < 1e-9);
        // A torus router has mesh radix but 2x links: more power, equal
        // area.
        assert!((router_area_scale_topo(4, "torus") - 1.0).abs() < 1e-9);
        let torus_p = router_power_scale_topo(4, "torus");
        assert!(torus_p > 1.0 && torus_p < 2.0, "torus power {torus_p}");
        // A 3-port ring router is smaller than the 5-port mesh router
        // despite its longer folded links.
        assert!(router_area_scale_topo(4, "ring") < 1.0);
        // VC scaling still applies on every fabric.
        assert!(router_area_scale_topo(6, "torus") > router_area_scale_topo(4, "torus"));
    }

    #[test]
    fn plane_scaling_is_linear_and_energy_per_message_divides_out() {
        assert!((network_area_scale(4, "mesh", 1) - 1.0).abs() < 1e-9);
        assert!((network_area_scale(4, "mesh", 4) - 4.0).abs() < 1e-9);
        assert!((network_power_scale(4, "mesh", 2) - 2.0).abs() < 1e-9);
        // 4 planes at 1/3 the runtime: energy per message worsens by 4/3
        // if message counts match.
        let e1 = energy_per_message_scale(4, "mesh", 1, 3000, 100);
        let e4 = energy_per_message_scale(4, "mesh", 4, 1000, 100);
        assert!((e4 / e1 - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(energy_per_message_scale(4, "mesh", 1, 100, 0), 0.0);
    }

    #[test]
    fn notification_tree_shrinks_the_window_logarithmically() {
        // 32×32: flat diameter is 62 (window 65); the fanout-2 tree is
        // depth 5 (window 13), fanout 4 depth 3 (window 9).
        assert_eq!(notification_tree_depth(32, 32, 2), 5);
        assert_eq!(notification_tree_window(32, 32, 2), 13);
        assert_eq!(notification_tree_depth(32, 32, 4), 3);
        assert_eq!(notification_tree_window(32, 32, 4), 9);
        // 6×6 (the paper's 36-core chip): depth 3 at fanout 2.
        assert_eq!(notification_tree_depth(6, 6, 2), 3);
        // Non-square grids round each dimension up independently.
        assert_eq!(notification_tree_depth(8, 2, 2), 3);
        // A 1×1 grid needs no tree at all.
        assert_eq!(notification_tree_depth(1, 1, 2), 0);
        assert_eq!(notification_tree_window(1, 1, 2), 3);
    }

    #[test]
    fn notification_tree_node_count_is_geometric() {
        // 4×4 fanout 2: 2×2 + 1×1 = 5 aggregate nodes.
        assert_eq!(notification_tree_nodes(4, 4, 2), 5);
        // 32×32 fanout 2: 256 + 64 + 16 + 4 + 1 = 341 — about a third of
        // the 1024 leaf latches, so the tree adds O(N/3) OR nodes.
        assert_eq!(notification_tree_nodes(32, 32, 2), 341);
        // Wider fanout trades depth for per-node fan-in: fewer nodes.
        assert_eq!(notification_tree_nodes(32, 32, 4), 64 + 4 + 1);
        assert_eq!(notification_tree_nodes(1, 1, 2), 0);
    }

    #[test]
    #[should_panic(expected = "unknown fabric")]
    fn unknown_fabric_panics() {
        let _ = router_radix("hypercube");
    }

    #[test]
    fn concentration_scaling_trades_radix_for_router_count() {
        // A c=1 cmesh is the mesh baseline exactly.
        assert_eq!(router_radix_c("cmesh", 1), 5);
        assert!((router_area_scale_topo_c(4, "cmesh", 1) - 1.0).abs() < 1e-9);
        assert!((network_power_scale_c(4, "cmesh", 1, 1) - 1.0).abs() < 1e-9);
        // Radix grows with concentration; the ring keeps its 2-port base.
        assert_eq!(router_radix_c("cmesh", 4), 8);
        assert_eq!(router_radix_c("ring", 4), 6);
        // Per-router cost rises with concentration...
        assert!(router_area_scale_topo_c(4, "cmesh", 2) > router_area_scale_topo_c(4, "cmesh", 1));
        // ...but the *network* (same tile count, 1/c the routers) shrinks:
        // concentration is a net area win at every supported c.
        let a1 = network_area_scale_c(4, "cmesh", 1, 1);
        let a2 = network_area_scale_c(4, "cmesh", 1, 2);
        let a4 = network_area_scale_c(4, "cmesh", 1, 4);
        assert!(a2 < a1, "c=2 network area {a2} not below c=1 {a1}");
        assert!(a4 < a2, "c=4 network area {a4} not below c=2 {a2}");
        // Wires stretch with sqrt(c).
        assert!((link_length_scale_c("cmesh", 4) - 2.0).abs() < 1e-9);
        assert!((link_length_scale_c("torus", 1) - 2.0).abs() < 1e-9);
        // Power: bigger switch vs fewer routers and longer wires — still
        // below the unconcentrated mesh at c=2.
        assert!(network_power_scale_c(4, "cmesh", 1, 2) < 1.0);
        // Plane replication composes multiplicatively.
        let two_planes = network_power_scale_c(4, "cmesh", 2, 2);
        assert!((two_planes - 2.0 * network_power_scale_c(4, "cmesh", 1, 2)).abs() < 1e-9);
    }
}
