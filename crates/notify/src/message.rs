//! Notification messages: per-core request counts plus the stop bit.

use std::fmt;

/// A notification message (Section 3.3).
///
/// Encodes, for every core, how many coherence requests that core wants
/// ordered this time window, using `bits_per_core` bits per core (so counts
/// saturate at `2^bits - 1`), plus a *stop* bit used for tracker-queue flow
/// control. Messages merge with a bitwise OR: since only core `i` ever sets
/// field `i`, OR-merging never corrupts a count.
///
/// # Examples
///
/// ```
/// use scorpio_notify::NotifyMsg;
///
/// let mut a = NotifyMsg::new(4, 2);
/// a.set_count(0, 3);
/// let mut b = NotifyMsg::new(4, 2);
/// b.set_count(2, 1);
/// b.set_stop(true);
/// a.merge_from(&b);
/// assert_eq!(a.count(0), 3);
/// assert_eq!(a.count(2), 1);
/// assert!(a.stop());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifyMsg {
    /// Count fields bit-packed into words, `bits_per_core` bits per lane
    /// (lane `i` at bit offset `i * bits_per_core`). Lanes never straddle
    /// a word only when `64 % bits_per_core == 0`; to keep the code
    /// general, a lane is read/written via a 128-bit window instead.
    /// Packing matters: the notification mesh ORs `O(routers)` of these
    /// every propagation cycle, so merges must be word-wide, not per-core.
    words: Vec<u64>,
    cores: usize,
    bits_per_core: u8,
    stop: bool,
}

impl NotifyMsg {
    /// An all-zero message for `cores` cores at `bits_per_core` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_core` is 0 or greater than 7.
    pub fn new(cores: usize, bits_per_core: u8) -> Self {
        assert!(
            (1..=7).contains(&bits_per_core),
            "bits per core must be in 1..=7"
        );
        let bits = cores * bits_per_core as usize;
        NotifyMsg {
            words: vec![0; bits.div_ceil(64) + 1],
            cores,
            bits_per_core,
            stop: false,
        }
    }

    /// Number of cores (bit-field lanes).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The saturation limit: largest count one core can announce.
    pub fn max_count(&self) -> u8 {
        (1u16 << self.bits_per_core) as u8 - 1
    }

    /// Sets core `core`'s announced request count, saturating at
    /// [`NotifyMsg::max_count`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_count(&mut self, core: usize, count: u8) {
        assert!(core < self.cores, "core {core} out of range");
        let value = count.min(self.max_count()) as u128;
        let bit = core * self.bits_per_core as usize;
        let (word, off) = (bit / 64, bit % 64);
        // Read-modify-write a 128-bit window so a lane may straddle words
        // (the `+ 1` spare word in `new` keeps the high read in bounds).
        let mut window = self.words[word] as u128 | (self.words[word + 1] as u128) << 64;
        window &= !((self.max_count() as u128) << off);
        window |= value << off;
        self.words[word] = window as u64;
        self.words[word + 1] = (window >> 64) as u64;
    }

    /// Core `core`'s announced request count.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn count(&self, core: usize) -> u8 {
        assert!(core < self.cores, "core {core} out of range");
        let bit = core * self.bits_per_core as usize;
        let (word, off) = (bit / 64, bit % 64);
        let window = self.words[word] as u128 | (self.words[word + 1] as u128) << 64;
        ((window >> off) as u8) & self.max_count()
    }

    /// The stop bit (a NIC's tracker queue is full; everyone must ignore
    /// this window and resend).
    pub fn stop(&self) -> bool {
        self.stop
    }

    /// Sets the stop bit.
    pub fn set_stop(&mut self, stop: bool) {
        self.stop = stop;
    }

    /// Bitwise-OR merge, the notification router's only operation.
    ///
    /// # Panics
    ///
    /// Panics if the two messages have different shapes.
    pub fn merge_from(&mut self, other: &NotifyMsg) {
        assert_eq!(self.cores, other.cores, "core count mismatch");
        assert_eq!(
            self.bits_per_core, other.bits_per_core,
            "bits-per-core mismatch"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.stop |= other.stop;
    }

    /// Overwrites this message with `other`'s contents, reusing storage.
    ///
    /// # Panics
    ///
    /// Panics if the two messages have different shapes.
    pub fn copy_from(&mut self, other: &NotifyMsg) {
        assert_eq!(self.cores, other.cores, "core count mismatch");
        assert_eq!(
            self.bits_per_core, other.bits_per_core,
            "bits-per-core mismatch"
        );
        self.words.copy_from_slice(&other.words);
        self.stop = other.stop;
    }

    /// Whether no core announced anything and the stop bit is clear.
    pub fn is_empty(&self) -> bool {
        !self.stop && self.words.iter().all(|&w| w == 0)
    }

    /// Resets to all-zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.stop = false;
    }

    /// Iterates over `(core, count)` pairs with non-zero counts.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        (0..self.cores)
            .map(|i| (i, self.count(i)))
            .filter(|&(_, c)| c > 0)
    }

    /// Total announced requests across all cores.
    pub fn total(&self) -> u32 {
        if self.bits_per_core == 1 {
            self.words.iter().map(|w| w.count_ones()).sum()
        } else {
            (0..self.cores).map(|i| self.count(i) as u32).sum()
        }
    }

    /// The wire width of this message in bits (Table 1: 36 bits for the
    /// chip's 1-bit-per-core network, plus the stop bit).
    pub fn width_bits(&self) -> usize {
        self.cores * self.bits_per_core as usize + 1
    }
}

impl fmt::Display for NotifyMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "notify[")?;
        let mut first = true;
        for (core, count) in self.nonzero() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{core}:{count}")?;
            first = false;
        }
        if self.stop {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "STOP")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_saturate_at_field_width() {
        let mut m = NotifyMsg::new(4, 1);
        assert_eq!(m.max_count(), 1);
        m.set_count(0, 5);
        assert_eq!(m.count(0), 1);

        let mut m2 = NotifyMsg::new(4, 2);
        assert_eq!(m2.max_count(), 3);
        m2.set_count(1, 200);
        assert_eq!(m2.count(1), 3);

        let m3 = NotifyMsg::new(4, 3);
        assert_eq!(m3.max_count(), 7);
    }

    #[test]
    fn merge_is_or() {
        let mut a = NotifyMsg::new(8, 2);
        a.set_count(0, 2);
        let mut b = NotifyMsg::new(8, 2);
        b.set_count(7, 3);
        a.merge_from(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(7), 3);
        assert_eq!(a.total(), 5);
        assert!(!a.stop());
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = NotifyMsg::new(4, 2);
        a.set_count(1, 3);
        let mut b = NotifyMsg::new(4, 2);
        b.set_count(2, 1);
        b.set_stop(true);

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);

        let mut aa = ab.clone();
        aa.merge_from(&ab);
        assert_eq!(aa, ab);
    }

    #[test]
    fn empty_and_clear() {
        let mut m = NotifyMsg::new(3, 1);
        assert!(m.is_empty());
        m.set_count(2, 1);
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        m.set_stop(true);
        assert!(!m.is_empty(), "stop bit makes the message non-empty");
    }

    #[test]
    fn nonzero_iteration() {
        let mut m = NotifyMsg::new(5, 2);
        m.set_count(1, 2);
        m.set_count(4, 1);
        let pairs: Vec<_> = m.nonzero().collect();
        assert_eq!(pairs, vec![(1, 2), (4, 1)]);
    }

    #[test]
    fn chip_width_is_37_bits() {
        // 36 cores × 1 bit + stop.
        let m = NotifyMsg::new(36, 1);
        assert_eq!(m.width_bits(), 37);
    }

    #[test]
    fn display_shows_contents() {
        let mut m = NotifyMsg::new(4, 2);
        m.set_count(3, 2);
        m.set_stop(true);
        assert_eq!(m.to_string(), "notify[3:2 STOP]");
        assert_eq!(NotifyMsg::new(2, 1).to_string(), "notify[]");
    }

    #[test]
    #[should_panic(expected = "bits per core")]
    fn zero_bits_panics() {
        let _ = NotifyMsg::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn merge_shape_mismatch_panics() {
        let mut a = NotifyMsg::new(4, 1);
        let b = NotifyMsg::new(5, 1);
        a.merge_from(&b);
    }
}
