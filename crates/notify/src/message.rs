//! Notification messages: per-core request counts plus the stop bit.

use std::fmt;

/// A notification message (Section 3.3).
///
/// Encodes, for every core, how many coherence requests that core wants
/// ordered this time window, using `bits_per_core` bits per core (so counts
/// saturate at `2^bits - 1`), plus a *stop* bit used for tracker-queue flow
/// control. Messages merge with a bitwise OR: since only core `i` ever sets
/// field `i`, OR-merging never corrupts a count.
///
/// With a multi-plane main network ([`scorpio_noc::MultiNetwork`]'s
/// address-interleaved fabrics) the message carries one independent word
/// group — counts *and* stop bit — per plane, so each plane converges its
/// own ordering windows without any cross-plane coupling. Single-plane
/// messages ([`NotifyMsg::new`]) behave exactly as before the plane axis
/// existed; the plane-indexed accessors with plane 0 are the same fields.
///
/// # Examples
///
/// ```
/// use scorpio_notify::NotifyMsg;
///
/// let mut a = NotifyMsg::new(4, 2);
/// a.set_count(0, 3);
/// let mut b = NotifyMsg::new(4, 2);
/// b.set_count(2, 1);
/// b.set_stop(true);
/// a.merge_from(&b);
/// assert_eq!(a.count(0), 3);
/// assert_eq!(a.count(2), 1);
/// assert!(a.stop());
/// ```
///
/// [`scorpio_noc::MultiNetwork`]: ../scorpio_noc/struct.MultiNetwork.html
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifyMsg {
    /// Count fields bit-packed into words, `bits_per_core` bits per lane;
    /// lane `(plane, core)` sits at bit offset
    /// `(plane * cores + core) * bits_per_core`. Lanes never straddle a
    /// word only when `64 % bits_per_core == 0`; to keep the code
    /// general, a lane is read/written via a 128-bit window instead.
    /// Packing matters: the notification mesh ORs `O(routers)` of these
    /// every propagation cycle, so merges must be word-wide, not per-core.
    words: Vec<u64>,
    cores: usize,
    bits_per_core: u8,
    planes: usize,
    /// Per-plane stop bits (bit `p` = plane `p`'s stop).
    stop: u64,
}

impl NotifyMsg {
    /// An all-zero single-plane message for `cores` cores at
    /// `bits_per_core` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_core` is 0 or greater than 7.
    pub fn new(cores: usize, bits_per_core: u8) -> Self {
        NotifyMsg::with_planes(cores, bits_per_core, 1)
    }

    /// An all-zero message carrying one announcement word group per plane.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_core` is 0 or greater than 7, or `planes` is 0
    /// or greater than 64 (the stop bits pack into one word).
    pub fn with_planes(cores: usize, bits_per_core: u8, planes: usize) -> Self {
        assert!(
            (1..=7).contains(&bits_per_core),
            "bits per core must be in 1..=7"
        );
        assert!((1..=64).contains(&planes), "planes must be in 1..=64");
        let bits = planes * cores * bits_per_core as usize;
        NotifyMsg {
            words: vec![0; bits.div_ceil(64) + 1],
            cores,
            bits_per_core,
            planes,
            stop: 0,
        }
    }

    /// Number of cores (bit-field lanes per plane).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of main-network planes this message announces for.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// The saturation limit: largest count one core can announce.
    pub fn max_count(&self) -> u8 {
        (1u16 << self.bits_per_core) as u8 - 1
    }

    /// Sets core `core`'s announced request count on plane 0, saturating
    /// at [`NotifyMsg::max_count`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_count(&mut self, core: usize, count: u8) {
        self.set_count_in(0, core, count);
    }

    /// Sets core `core`'s announced request count for plane `plane`,
    /// saturating at [`NotifyMsg::max_count`].
    ///
    /// # Panics
    ///
    /// Panics if `plane` or `core` is out of range.
    pub fn set_count_in(&mut self, plane: usize, core: usize, count: u8) {
        assert!(plane < self.planes, "plane {plane} out of range");
        assert!(core < self.cores, "core {core} out of range");
        let value = count.min(self.max_count()) as u128;
        let bit = (plane * self.cores + core) * self.bits_per_core as usize;
        let (word, off) = (bit / 64, bit % 64);
        // Read-modify-write a 128-bit window so a lane may straddle words
        // (the `+ 1` spare word in `with_planes` keeps the high read in
        // bounds).
        let mut window = self.words[word] as u128 | (self.words[word + 1] as u128) << 64;
        window &= !((self.max_count() as u128) << off);
        window |= value << off;
        self.words[word] = window as u64;
        self.words[word + 1] = (window >> 64) as u64;
    }

    /// Core `core`'s announced request count on plane 0.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn count(&self, core: usize) -> u8 {
        self.count_in(0, core)
    }

    /// Core `core`'s announced request count for plane `plane`.
    ///
    /// # Panics
    ///
    /// Panics if `plane` or `core` is out of range.
    pub fn count_in(&self, plane: usize, core: usize) -> u8 {
        assert!(plane < self.planes, "plane {plane} out of range");
        assert!(core < self.cores, "core {core} out of range");
        let bit = (plane * self.cores + core) * self.bits_per_core as usize;
        let (word, off) = (bit / 64, bit % 64);
        let window = self.words[word] as u128 | (self.words[word + 1] as u128) << 64;
        ((window >> off) as u8) & self.max_count()
    }

    /// Plane 0's stop bit (a NIC's tracker queue is full; everyone must
    /// ignore that plane's word group this window and resend).
    pub fn stop(&self) -> bool {
        self.stop_in(0)
    }

    /// Plane `plane`'s stop bit.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn stop_in(&self, plane: usize) -> bool {
        assert!(plane < self.planes, "plane {plane} out of range");
        self.stop & (1 << plane) != 0
    }

    /// Sets plane 0's stop bit.
    pub fn set_stop(&mut self, stop: bool) {
        self.set_stop_in(0, stop);
    }

    /// Sets plane `plane`'s stop bit.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn set_stop_in(&mut self, plane: usize, stop: bool) {
        assert!(plane < self.planes, "plane {plane} out of range");
        if stop {
            self.stop |= 1 << plane;
        } else {
            self.stop &= !(1 << plane);
        }
    }

    /// Bitwise-OR merge, the notification router's only operation.
    ///
    /// # Panics
    ///
    /// Panics if the two messages have different shapes.
    pub fn merge_from(&mut self, other: &NotifyMsg) {
        assert_eq!(self.cores, other.cores, "core count mismatch");
        assert_eq!(
            self.bits_per_core, other.bits_per_core,
            "bits-per-core mismatch"
        );
        assert_eq!(self.planes, other.planes, "plane count mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.stop |= other.stop;
    }

    /// Bitwise-OR merge restricted to the planes set in `mask` (bit `p` =
    /// plane `p`): only the words overlapping a live plane's lane range are
    /// ORed, so an idle plane's word group costs nothing per merge. Exact
    /// whenever every plane *not* in `mask` is all-zero in `other` — which
    /// is precisely the case the notification network's per-window
    /// live-plane tracking guarantees — because a boundary word shared with
    /// a masked-out plane then only contributes zero bits. A mask covering
    /// every plane delegates to the plain word-wide [`NotifyMsg::merge_from`].
    ///
    /// # Panics
    ///
    /// Panics if the two messages have different shapes.
    pub fn merge_from_planes(&mut self, other: &NotifyMsg, mask: u64) {
        let full = if self.planes == 64 {
            u64::MAX
        } else {
            (1u64 << self.planes) - 1
        };
        let mask = mask & full;
        if mask == full {
            return self.merge_from(other);
        }
        assert_eq!(self.cores, other.cores, "core count mismatch");
        assert_eq!(
            self.bits_per_core, other.bits_per_core,
            "bits-per-core mismatch"
        );
        assert_eq!(self.planes, other.planes, "plane count mismatch");
        let lane_bits = self.cores * self.bits_per_core as usize;
        if lane_bits > 0 {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                m &= m - 1;
                let lo = p * lane_bits / 64;
                let hi = ((p + 1) * lane_bits - 1) / 64;
                for w in lo..=hi {
                    self.words[w] |= other.words[w];
                }
            }
        }
        self.stop |= other.stop & mask;
    }

    /// Overwrites this message with `other`'s contents, reusing storage.
    ///
    /// # Panics
    ///
    /// Panics if the two messages have different shapes.
    pub fn copy_from(&mut self, other: &NotifyMsg) {
        assert_eq!(self.cores, other.cores, "core count mismatch");
        assert_eq!(
            self.bits_per_core, other.bits_per_core,
            "bits-per-core mismatch"
        );
        assert_eq!(self.planes, other.planes, "plane count mismatch");
        self.words.copy_from_slice(&other.words);
        self.stop = other.stop;
    }

    /// Whether no core announced anything on any plane and every stop bit
    /// is clear.
    pub fn is_empty(&self) -> bool {
        self.stop == 0 && self.words.iter().all(|&w| w == 0)
    }

    /// Resets to all-zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.stop = 0;
    }

    /// Iterates over plane 0's `(core, count)` pairs with non-zero counts.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.nonzero_in(0)
    }

    /// Iterates over plane `plane`'s `(core, count)` pairs with non-zero
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn nonzero_in(&self, plane: usize) -> impl Iterator<Item = (usize, u8)> + '_ {
        assert!(plane < self.planes, "plane {plane} out of range");
        (0..self.cores)
            .map(move |i| (i, self.count_in(plane, i)))
            .filter(|&(_, c)| c > 0)
    }

    /// Total announced requests across all cores and all planes.
    pub fn total(&self) -> u32 {
        if self.bits_per_core == 1 {
            self.words.iter().map(|w| w.count_ones()).sum()
        } else {
            (0..self.planes).map(|p| self.total_in(p)).sum()
        }
    }

    /// Total announced requests across all cores for plane `plane`.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn total_in(&self, plane: usize) -> u32 {
        assert!(plane < self.planes, "plane {plane} out of range");
        (0..self.cores)
            .map(|i| self.count_in(plane, i) as u32)
            .sum()
    }

    /// The wire width of this message in bits (Table 1: 36 bits for the
    /// chip's 1-bit-per-core network, plus the stop bit; a multi-plane
    /// network multiplies the word group — counts and stop — per plane).
    pub fn width_bits(&self) -> usize {
        self.planes * (self.cores * self.bits_per_core as usize + 1)
    }
}

impl fmt::Display for NotifyMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "notify[")?;
        let mut first = true;
        for plane in 0..self.planes {
            for (core, count) in self.nonzero_in(plane) {
                if !first {
                    write!(f, " ")?;
                }
                if self.planes > 1 {
                    write!(f, "p{plane}/")?;
                }
                write!(f, "{core}:{count}")?;
                first = false;
            }
            if self.stop_in(plane) {
                if !first {
                    write!(f, " ")?;
                }
                if self.planes > 1 {
                    write!(f, "p{plane}/")?;
                }
                write!(f, "STOP")?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_saturate_at_field_width() {
        let mut m = NotifyMsg::new(4, 1);
        assert_eq!(m.max_count(), 1);
        m.set_count(0, 5);
        assert_eq!(m.count(0), 1);

        let mut m2 = NotifyMsg::new(4, 2);
        assert_eq!(m2.max_count(), 3);
        m2.set_count(1, 200);
        assert_eq!(m2.count(1), 3);

        let m3 = NotifyMsg::new(4, 3);
        assert_eq!(m3.max_count(), 7);
    }

    #[test]
    fn merge_is_or() {
        let mut a = NotifyMsg::new(8, 2);
        a.set_count(0, 2);
        let mut b = NotifyMsg::new(8, 2);
        b.set_count(7, 3);
        a.merge_from(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(7), 3);
        assert_eq!(a.total(), 5);
        assert!(!a.stop());
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = NotifyMsg::new(4, 2);
        a.set_count(1, 3);
        let mut b = NotifyMsg::new(4, 2);
        b.set_count(2, 1);
        b.set_stop(true);

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);

        let mut aa = ab.clone();
        aa.merge_from(&ab);
        assert_eq!(aa, ab);
    }

    #[test]
    fn empty_and_clear() {
        let mut m = NotifyMsg::new(3, 1);
        assert!(m.is_empty());
        m.set_count(2, 1);
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        m.set_stop(true);
        assert!(!m.is_empty(), "stop bit makes the message non-empty");
    }

    #[test]
    fn nonzero_iteration() {
        let mut m = NotifyMsg::new(5, 2);
        m.set_count(1, 2);
        m.set_count(4, 1);
        let pairs: Vec<_> = m.nonzero().collect();
        assert_eq!(pairs, vec![(1, 2), (4, 1)]);
    }

    #[test]
    fn chip_width_is_37_bits() {
        // 36 cores × 1 bit + stop.
        let m = NotifyMsg::new(36, 1);
        assert_eq!(m.width_bits(), 37);
    }

    #[test]
    fn display_shows_contents() {
        let mut m = NotifyMsg::new(4, 2);
        m.set_count(3, 2);
        m.set_stop(true);
        assert_eq!(m.to_string(), "notify[3:2 STOP]");
        assert_eq!(NotifyMsg::new(2, 1).to_string(), "notify[]");
    }

    #[test]
    fn planes_have_independent_lanes_and_stop_bits() {
        let mut m = NotifyMsg::with_planes(8, 2, 3);
        assert_eq!(m.planes(), 3);
        m.set_count_in(0, 7, 2);
        m.set_count_in(1, 7, 3);
        m.set_count_in(2, 0, 1);
        m.set_stop_in(1, true);
        // No crosstalk between plane word groups.
        assert_eq!(m.count_in(0, 7), 2);
        assert_eq!(m.count_in(1, 7), 3);
        assert_eq!(m.count_in(2, 7), 0);
        assert_eq!(m.count_in(2, 0), 1);
        assert!(!m.stop_in(0) && m.stop_in(1) && !m.stop_in(2));
        assert_eq!(m.total_in(0), 2);
        assert_eq!(m.total_in(1), 3);
        assert_eq!(m.total(), 6);
        let pairs: Vec<_> = m.nonzero_in(1).collect();
        assert_eq!(pairs, vec![(7, 3)]);
        // Merge keeps planes independent.
        let mut o = NotifyMsg::with_planes(8, 2, 3);
        o.set_count_in(2, 4, 1);
        m.merge_from(&o);
        assert_eq!(m.count_in(2, 4), 1);
        assert_eq!(m.count_in(0, 4), 0);
        // Width: 3 planes x (8 cores x 2 bits + stop).
        assert_eq!(m.width_bits(), 3 * 17);
        assert_eq!(m.to_string(), "notify[p0/7:2 p1/7:3 p1/STOP p2/0:1 p2/4:1]");
    }

    #[test]
    fn single_plane_one_bit_totals_use_popcount() {
        // bits_per_core == 1 takes the popcount shortcut; with planes it
        // must still count every plane's lanes.
        let mut m = NotifyMsg::with_planes(36, 1, 2);
        m.set_count_in(0, 35, 1);
        m.set_count_in(1, 0, 1);
        m.set_count_in(1, 35, 1);
        assert_eq!(m.total(), 3);
        assert_eq!(m.total_in(0), 1);
        assert_eq!(m.total_in(1), 2);
    }

    #[test]
    fn plane_masked_merge_matches_full_merge_on_live_planes() {
        // Lanes of 3-bit counts straddle word boundaries at 8 cores ×
        // several planes, exercising the shared-boundary-word path.
        let mut base = NotifyMsg::with_planes(8, 3, 5);
        base.set_count_in(0, 1, 2);
        let mut other = NotifyMsg::with_planes(8, 3, 5);
        other.set_count_in(0, 7, 5);
        other.set_count_in(2, 0, 3);
        other.set_count_in(2, 7, 1);
        other.set_stop_in(2, true);
        // Planes 1, 3, 4 are all-zero in `other` — the exactness
        // precondition — so merging with mask {0, 2} must equal the full
        // merge.
        let mut masked = base.clone();
        masked.merge_from_planes(&other, 0b00101);
        let mut full = base.clone();
        full.merge_from(&other);
        assert_eq!(masked, full);
        // A full mask delegates to the word-wide merge.
        let mut all = base.clone();
        all.merge_from_planes(&other, u64::MAX);
        assert_eq!(all, full);
        // An empty mask merges nothing.
        let mut none = base.clone();
        none.merge_from_planes(&other, 0);
        assert_eq!(none, base);
    }

    #[test]
    #[should_panic(expected = "bits per core")]
    fn zero_bits_panics() {
        let _ = NotifyMsg::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "planes must be in")]
    fn zero_planes_panics() {
        let _ = NotifyMsg::with_planes(4, 1, 0);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn merge_shape_mismatch_panics() {
        let mut a = NotifyMsg::new(4, 1);
        let b = NotifyMsg::new(5, 1);
        a.merge_from(&b);
    }
}
