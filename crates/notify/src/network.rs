//! The bufferless bitwise-OR notification network (Figure 3).
//!
//! Each "router" is nothing but OR gates and latches: every cycle it merges
//! the messages latched by its neighbours with its own and latches the
//! result. Because merging never blocks, the network is contention-free and
//! its latency is bounded by the *topology diameter* — the notification
//! fabric mirrors whatever delivery fabric the main network runs on (mesh,
//! torus or ring), so low-diameter fabrics get proportionally shorter time
//! windows. Nodes inject only at window boundaries; by construction every
//! node holds the identical merged message at the end of the window, which
//! is the property global ordering rests on (asserted in debug builds).

use crate::message::NotifyMsg;
use scorpio_noc::{Mesh, Port, RouterId, Topology};
use scorpio_sim::stats::Counter;
use scorpio_sim::Cycle;

/// Configuration of the notification network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifyConfig {
    /// Number of cores (== tiles == bit-field lanes).
    pub cores: usize,
    /// Bits per core: how many requests one core can announce per window
    /// (Section 3.3, "multiple requests per notification message").
    pub bits_per_core: u8,
    /// Time-window length in cycles; must exceed the topology diameter.
    pub window: u64,
}

impl NotifyConfig {
    /// The chip configuration for `mesh`: 1 bit per core, window from
    /// [`Mesh::notification_window`] (13 cycles on the 6×6 chip).
    pub fn for_mesh(mesh: &Mesh) -> Self {
        NotifyConfig::for_topology(&Topology::from(mesh))
    }

    /// The configuration for any delivery fabric: 1 bit per core, window
    /// from [`Topology::notification_window`] (diameter-derived, so a
    /// torus — or a concentrated mesh, whose *router grid* is what bounds
    /// propagation — gets a tighter window than the mesh of the same core
    /// count).
    pub fn for_topology(topo: &Topology) -> Self {
        NotifyConfig {
            cores: topo.tile_count(),
            bits_per_core: 1,
            window: topo.notification_window(),
        }
    }
}

/// The notification network state.
///
/// Drive it with one [`NotifyNetwork::tick`] per system cycle. NICs stage
/// injections with [`NotifyNetwork::stage_injection`] (latched at the next
/// window start) and read finished windows via [`NotifyNetwork::latest`].
///
/// # Examples
///
/// ```
/// use scorpio_noc::Mesh;
/// use scorpio_notify::{NotifyConfig, NotifyNetwork};
///
/// let mesh = Mesh::scorpio_chip();
/// let mut nn = NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh));
/// nn.stage_injection(7, 1, false);
/// for _ in 0..13 {
///     nn.tick();
/// }
/// let (window, msg) = nn.latest().expect("window 0 completed");
/// assert_eq!(window, 0);
/// assert_eq!(msg.count(7), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NotifyNetwork {
    cfg: NotifyConfig,
    /// Flattened neighbour lists (`adj[adj_idx[r]..adj_idx[r + 1]]`), one
    /// entry per physical link of the underlying topology — the OR-gate
    /// fan-in of each notification router.
    adj: Vec<u32>,
    adj_idx: Vec<u32>,
    /// The notification router each core's bit lane injects at — on a
    /// concentrated fabric several cores share one router (`tile_router[i]
    /// == i / c`); everywhere else it is the identity.
    tile_router: Vec<u32>,
    cycle: Cycle,
    /// Number of main-network planes the message word groups announce for.
    planes: usize,
    /// Latched value per router.
    acc: Vec<NotifyMsg>,
    scratch: Vec<NotifyMsg>,
    /// Contributions waiting for the next window start, one lane per
    /// (plane, core) pair (lane `p * cores + c`).
    pending: Vec<(u8, bool)>,
    /// Lanes with a staged contribution (indices into `pending`); lets a
    /// window start skip the all-lanes latch scan when nothing is staged.
    pending_dirty: Vec<usize>,
    /// Whether the window in flight carries anything. An all-zero window
    /// needs no propagation: OR-merging zeros is the identity, so every
    /// step — and the all-routers scan it implies — can be skipped without
    /// changing a single latch value.
    live: bool,
    /// Topology diameter: propagation converges after this many steps,
    /// after which further OR steps merge equal values and are skipped too.
    diameter: u64,
    /// The merged message of the last completed window.
    latest: Option<(u64, NotifyMsg)>,
    /// Completed windows so far.
    pub windows_completed: Counter,
    /// Completed windows that carried at least one announcement.
    pub nonempty_windows: Counter,
}

impl NotifyNetwork {
    /// Builds the notification network mirroring `fabric` — a [`Mesh`]
    /// (pass `&mesh` exactly as before the topology axis existed), a
    /// torus, a ring, or a [`Topology`].
    ///
    /// # Panics
    ///
    /// Panics if the window is too short for worst-case propagation across
    /// the fabric, or if `cores` does not match its router count.
    pub fn new(fabric: impl Into<Topology>, cfg: NotifyConfig) -> Self {
        NotifyNetwork::with_planes(fabric, cfg, 1)
    }

    /// Builds a notification network whose messages carry one independent
    /// announcement word group per main-network plane — the multi-plane
    /// configuration. One physical OR-tree fabric propagates all planes'
    /// words together (they are just wider messages); each plane's
    /// ordering windows converge independently.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NotifyNetwork::new`], or if
    /// `planes` is 0 or greater than 64.
    pub fn with_planes(fabric: impl Into<Topology>, cfg: NotifyConfig, planes: usize) -> Self {
        let topo: Topology = fabric.into();
        let diameter = topo.diameter() as u64;
        assert!(
            cfg.window > diameter,
            "window {} cannot cover topology diameter {}",
            cfg.window,
            diameter
        );
        assert_eq!(cfg.cores, topo.tile_count(), "one bit-lane per tile");
        let tile_router: Vec<u32> = (0..cfg.cores)
            .map(|i| topo.tile_endpoint(i).router.0 as u32)
            .collect();
        // Flatten the neighbour lists: the OR-propagation step visits them
        // in router order, and a router's merge order is irrelevant (OR is
        // commutative), so mesh behavior is bit-identical to the old
        // hard-coded 4-neighbourhood loop.
        let mut adj = Vec::new();
        let mut adj_idx = Vec::with_capacity(topo.router_count() + 1);
        adj_idx.push(0u32);
        for r in topo.routers() {
            for port in [Port::North, Port::South, Port::East, Port::West] {
                if let Some(n) = topo.neighbor(r, port) {
                    // A 2-wide torus dimension wires both ports to the
                    // same neighbour; merging it twice is the identity,
                    // but dedup keeps the gate count honest.
                    if !adj[adj_idx[r.index()] as usize..].contains(&(n.0 as u32)) {
                        adj.push(n.0 as u32);
                    }
                }
            }
            adj_idx.push(adj.len() as u32);
        }
        let blank = NotifyMsg::with_planes(cfg.cores, cfg.bits_per_core, planes);
        NotifyNetwork {
            adj,
            adj_idx,
            tile_router,
            cycle: Cycle::ZERO,
            planes,
            acc: vec![blank.clone(); topo.router_count()],
            scratch: vec![blank; topo.router_count()],
            pending: vec![(0, false); planes * cfg.cores],
            pending_dirty: Vec::new(),
            live: false,
            diameter,
            latest: None,
            windows_completed: Counter::new(),
            nonempty_windows: Counter::new(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NotifyConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Whether `cycle` is a window-start boundary.
    pub fn is_window_start(&self, cycle: Cycle) -> bool {
        cycle.is_multiple_of(self.cfg.window)
    }

    /// Number of main-network planes the messages announce for.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Stages core `core`'s plane-0 announcement for the next window
    /// start: `count` requests (saturating) and optionally the stop bit.
    /// Staging twice before a window start merges (max/OR semantics).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn stage_injection(&mut self, core: usize, count: u8, stop: bool) {
        self.stage_injection_in(0, core, count, stop);
    }

    /// Stages core `core`'s announcement for plane `plane` at the next
    /// window start (see [`NotifyNetwork::stage_injection`]).
    ///
    /// # Panics
    ///
    /// Panics if `plane` or `core` is out of range.
    pub fn stage_injection_in(&mut self, plane: usize, core: usize, count: u8, stop: bool) {
        assert!(plane < self.planes, "plane {plane} out of range");
        assert!(core < self.cfg.cores, "core {core} out of range");
        let max = (1u16 << self.cfg.bits_per_core) as u8 - 1;
        let lane = plane * self.cfg.cores + core;
        let entry = &mut self.pending[lane];
        if *entry == (0, false) && (count > 0 || stop) {
            self.pending_dirty.push(lane);
        }
        entry.0 = entry.0.max(count.min(max));
        entry.1 |= stop;
    }

    /// The merged message of the most recently completed window, with its
    /// index. `None` until the first window completes.
    pub fn latest(&self) -> Option<(u64, &NotifyMsg)> {
        self.latest.as_ref().map(|(w, m)| (*w, m))
    }

    /// The value currently latched at `router` (for inspection/tests).
    pub fn latched_at(&self, router: RouterId) -> &NotifyMsg {
        &self.acc[router.index()]
    }

    /// Advances one cycle: window-start injection, one OR-propagation step,
    /// and window-end completion.
    ///
    /// Two exact shortcuts keep an idle notification mesh O(1) per cycle:
    /// a window nobody injected into stays all-zero (OR with zero is the
    /// identity), and a live window stops propagating once every router
    /// provably holds the global OR — after `diameter` steps — since
    /// merging equal values changes nothing. Neither shortcut alters any
    /// latch value a NIC could observe.
    pub fn tick(&mut self) {
        let w = self.cfg.window;
        let in_window = self.cycle.as_u64() % w;

        if in_window == 0 {
            // Window start: latch pending contributions as fresh values.
            // Only a live window leaves nonzero latches to clear, and only
            // staged cores latch anything.
            if self.live {
                for msg in self.acc.iter_mut() {
                    msg.clear();
                }
                self.live = false;
            }
            for k in 0..self.pending_dirty.len() {
                let lane = self.pending_dirty[k];
                let (plane, core) = (lane / self.cfg.cores, lane % self.cfg.cores);
                let (count, stop) = std::mem::take(&mut self.pending[lane]);
                // Latch at the router hosting this core's tile; the lane
                // inside the message stays the core number.
                let msg = &mut self.acc[self.tile_router[core] as usize];
                if count > 0 {
                    msg.set_count_in(plane, core, count);
                }
                if stop {
                    msg.set_stop_in(plane, true);
                }
                self.live = true;
            }
            self.pending_dirty.clear();
        } else if self.live && in_window <= self.diameter {
            // One propagation step: each router ORs its neighbours' latched
            // values into its own (two-phase via scratch, buffers reused).
            // Neighbour sets come from the precomputed adjacency of the
            // underlying topology, so the same loop serves mesh, torus and
            // ring fabrics.
            for idx in 0..self.acc.len() {
                self.scratch[idx].copy_from(&self.acc[idx]);
                let merged = &mut self.scratch[idx];
                let (lo, hi) = (self.adj_idx[idx] as usize, self.adj_idx[idx + 1] as usize);
                for &nb in &self.adj[lo..hi] {
                    merged.merge_from(&self.acc[nb as usize]);
                }
            }
            std::mem::swap(&mut self.acc, &mut self.scratch);
        }

        if in_window == w - 1 {
            // Window end: every node now holds the global OR.
            debug_assert!(
                self.acc.iter().all(|m| *m == self.acc[0]),
                "notification network failed to converge within the window"
            );
            let window_index = self.cycle.as_u64() / w;
            self.windows_completed.incr();
            if self.live {
                self.nonempty_windows.incr();
            }
            match &mut self.latest {
                Some((idx, msg)) => {
                    *idx = window_index;
                    msg.copy_from(&self.acc[0]);
                }
                None => self.latest = Some((window_index, self.acc[0].clone())),
            }
        }
        self.cycle = self.cycle.next();
    }

    /// The port fan-in of a notification router (for the physical model):
    /// 4 neighbour inputs + local, merged by five OR gates per Figure 3.
    /// (Concentration does not add gates: co-hosted cores share the local
    /// input, their contributions having been ORed at the latch.)
    pub fn router_or_gate_count() -> usize {
        5
    }

    /// Whether every remaining tick is a pure window-bookkeeping no-op:
    /// nothing is staged for the next window and the window in flight (if
    /// any) carries nothing. Note that `live` stays set from a window's
    /// end until the *next* window-start tick clears the latches, so a
    /// network is idle-leapable at the earliest one cycle into the window
    /// after its last live one.
    pub fn is_idle(&self) -> bool {
        !self.live && self.pending_dirty.is_empty()
    }

    /// Advances `delta` cycles at once, reproducing exactly what `delta`
    /// consecutive [`NotifyNetwork::tick`] calls would do on an idle
    /// network: every window boundary crossed completes an empty window
    /// (counted, and published as the blank `latest` message with the
    /// right window index — `acc[0]` is all-zero whenever the network is
    /// idle). Latches, liveness and staging are untouched.
    ///
    /// # Panics
    ///
    /// Debug-asserts [`NotifyNetwork::is_idle`]; leaping a live network
    /// would skip real propagation steps.
    pub fn advance_idle(&mut self, delta: u64) {
        debug_assert!(self.is_idle(), "idle-advance on a live notify network");
        let w = self.cfg.window;
        let start = self.cycle.as_u64();
        let end = start + delta;
        // Cycles c in [start, end) with c % w == w - 1 complete a window.
        let completed = end / w - start / w;
        if completed > 0 {
            self.windows_completed.add(completed);
            let window_index = end / w - 1;
            match &mut self.latest {
                Some((idx, msg)) => {
                    *idx = window_index;
                    msg.copy_from(&self.acc[0]);
                }
                None => self.latest = Some((window_index, self.acc[0].clone())),
            }
        }
        self.cycle += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(k: u16) -> NotifyNetwork {
        let mesh = Mesh::new(k, k, &[]);
        NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh))
    }

    #[test]
    fn chip_window_is_13() {
        let mesh = Mesh::scorpio_chip();
        let cfg = NotifyConfig::for_mesh(&mesh);
        assert_eq!(cfg.window, 13);
        assert_eq!(cfg.cores, 36);
        assert_eq!(cfg.bits_per_core, 1);
    }

    #[test]
    fn single_injection_reaches_all_nodes() {
        let mut nn = net(6);
        nn.stage_injection(0, 1, false);
        for _ in 0..13 {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 0);
        assert_eq!(msg.count(0), 1);
        assert_eq!(msg.total(), 1);
        // Every router's latch agrees.
        for r in 0..36u16 {
            assert_eq!(nn.latched_at(RouterId(r)).count(0), 1);
        }
    }

    #[test]
    fn corner_to_corner_injections_converge() {
        let mut nn = net(6);
        nn.stage_injection(0, 1, false);
        nn.stage_injection(35, 1, false);
        for _ in 0..13 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.count(0), 1);
        assert_eq!(msg.count(35), 1);
        assert_eq!(msg.total(), 2);
    }

    #[test]
    fn mid_window_injection_waits_for_next_window() {
        let mut nn = net(4); // window 9
        for _ in 0..3 {
            nn.tick();
        }
        nn.stage_injection(5, 1, false);
        for _ in 3..9 {
            nn.tick();
        }
        let (w0, msg0) = nn.latest().unwrap();
        assert_eq!(w0, 0);
        assert!(msg0.is_empty(), "mid-window injection leaked into window 0");
        for _ in 0..9 {
            nn.tick();
        }
        let (w1, msg1) = nn.latest().unwrap();
        assert_eq!(w1, 1);
        assert_eq!(msg1.count(5), 1);
    }

    #[test]
    fn stop_bit_propagates() {
        let mut nn = net(4);
        nn.stage_injection(3, 0, true);
        nn.stage_injection(7, 1, false);
        for _ in 0..9 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert!(msg.stop());
        assert_eq!(msg.count(7), 1);
    }

    #[test]
    fn multi_bit_counts_survive_merging() {
        let mesh = Mesh::new(4, 4, &[]);
        let mut nn = NotifyNetwork::new(
            &mesh,
            NotifyConfig {
                cores: 16,
                bits_per_core: 2,
                window: mesh.notification_window(),
            },
        );
        nn.stage_injection(2, 3, false);
        nn.stage_injection(9, 2, false);
        nn.stage_injection(9, 1, false); // merges to max(2,1)=2
        for _ in 0..9 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.count(2), 3);
        assert_eq!(msg.count(9), 2);
    }

    #[test]
    fn empty_windows_complete_too() {
        let mut nn = net(4);
        for _ in 0..27 {
            nn.tick();
        }
        assert_eq!(nn.windows_completed.get(), 3);
        assert_eq!(nn.nonempty_windows.get(), 0);
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 2);
        assert!(msg.is_empty());
    }

    /// `advance_idle(d)` must leave the network in exactly the state `d`
    /// ticks would — from any in-window offset, across any number of
    /// window boundaries, before and after live traffic.
    #[test]
    fn advance_idle_matches_ticked_reference() {
        for warmup in [0u64, 1, 3, 8, 9] {
            for delta in [1u64, 2, 8, 9, 10, 26, 27, 40] {
                let mut ticked = net(4); // window 9
                let mut leaped = net(4);
                for _ in 0..warmup {
                    ticked.tick();
                    leaped.tick();
                }
                assert!(leaped.is_idle());
                for _ in 0..delta {
                    ticked.tick();
                }
                leaped.advance_idle(delta);
                assert_eq!(
                    ticked.windows_completed.get(),
                    leaped.windows_completed.get()
                );
                assert_eq!(ticked.nonempty_windows.get(), leaped.nonempty_windows.get());
                assert_eq!(
                    ticked.latest().map(|(w, m)| (w, m.clone())),
                    leaped.latest().map(|(w, m)| (w, m.clone())),
                    "latest diverged at warmup {warmup} delta {delta}"
                );
                // Subsequent live traffic behaves identically.
                ticked.stage_injection(5, 1, false);
                leaped.stage_injection(5, 1, false);
                for _ in 0..18 {
                    ticked.tick();
                    leaped.tick();
                }
                assert_eq!(
                    ticked.latest().map(|(w, m)| (w, m.clone())),
                    leaped.latest().map(|(w, m)| (w, m.clone()))
                );
            }
        }
    }

    /// A network is not idle-leapable between a live window's end and the
    /// next window start (the latch clear has not happened yet).
    #[test]
    fn live_window_blocks_idle_until_next_window_start() {
        let mut nn = net(4); // window 9
        nn.stage_injection(0, 1, false);
        assert!(!nn.is_idle(), "staged injection blocks leaping");
        for _ in 0..9 {
            nn.tick();
        }
        assert!(!nn.is_idle(), "live flag persists past the window end");
        nn.tick(); // window-start tick clears the latches
        assert!(nn.is_idle());
    }

    #[test]
    fn rectangular_mesh_converges() {
        let mesh = Mesh::new(8, 2, &[]);
        let mut nn = NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh));
        nn.stage_injection(0, 1, false);
        nn.stage_injection(15, 1, false);
        let w = mesh.notification_window();
        for _ in 0..w {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.total(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot cover topology diameter")]
    fn too_short_window_panics() {
        let mesh = Mesh::new(6, 6, &[]);
        let _ = NotifyNetwork::new(
            &mesh,
            NotifyConfig {
                cores: 36,
                bits_per_core: 1,
                window: 5,
            },
        );
    }

    #[test]
    fn torus_window_is_tighter_and_converges() {
        use scorpio_noc::{Topology, Torus};
        let topo: Topology = Torus::square_with_corner_mcs(6).into();
        let cfg = NotifyConfig::for_topology(&topo);
        // Torus diameter 6 vs mesh 10: window 9 vs the chip's 13.
        assert_eq!(cfg.window, 9);
        let mut nn = NotifyNetwork::new(&topo, cfg);
        nn.stage_injection(0, 1, false);
        nn.stage_injection(35, 1, false);
        for _ in 0..9 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.total(), 2);
        for r in 0..36u16 {
            assert_eq!(nn.latched_at(RouterId(r)).count(0), 1);
        }
    }

    #[test]
    fn ring_converges_within_its_half_circumference_window() {
        use scorpio_noc::{Ring, Topology};
        let topo: Topology = Ring::with_spread_mcs(16, 4).into();
        let cfg = NotifyConfig::for_topology(&topo);
        assert_eq!(cfg.window, 8 + 3);
        let mut nn = NotifyNetwork::new(&topo, cfg.clone());
        nn.stage_injection(0, 1, false);
        nn.stage_injection(8, 1, false); // antipodal
        for _ in 0..cfg.window {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.total(), 2);
    }

    #[test]
    fn two_wide_torus_dimension_dedups_or_inputs() {
        use scorpio_noc::Torus;
        // cols = 2: East and West reach the same neighbour; the OR fan-in
        // must still converge (merging a value twice is the identity).
        let t = Torus::new(2, 4, &[]);
        let cfg = NotifyConfig::for_topology(&(&t).into());
        let mut nn = NotifyNetwork::new(&t, cfg);
        nn.stage_injection(7, 1, false);
        for _ in 0..nn.config().window {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.count(7), 1);
    }

    #[test]
    fn or_gate_count_matches_figure3() {
        assert_eq!(NotifyNetwork::router_or_gate_count(), 5);
    }

    #[test]
    fn cmesh_lanes_share_routers_and_converge_in_the_smaller_window() {
        use scorpio_noc::{CMesh, Topology};
        // 16 cores as a 4x2 router grid x 2 tiles: diameter 4, window 7 —
        // tighter than the 4x4 mesh's 9 at the same core count.
        let topo: Topology = CMesh::with_corner_mcs(4, 2, 2).into();
        let cfg = NotifyConfig::for_topology(&topo);
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.window, 7);
        let mut nn = NotifyNetwork::new(&topo, cfg.clone());
        // Cores 0 and 1 share router 0; core 15 sits at router 7.
        nn.stage_injection(0, 1, false);
        nn.stage_injection(1, 1, false);
        nn.stage_injection(15, 0, true);
        for _ in 0..cfg.window {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 0);
        assert_eq!(msg.count(0), 1);
        assert_eq!(msg.count(1), 1);
        assert_eq!(msg.total(), 2);
        assert!(msg.stop());
        // Every *router* latched the identical merged word.
        for r in 0..8u16 {
            assert_eq!(nn.latched_at(RouterId(r)).total(), 2);
        }
    }

    #[test]
    fn per_plane_words_converge_independently() {
        let mesh = Mesh::new(4, 4, &[]);
        let mut nn = NotifyNetwork::with_planes(&mesh, NotifyConfig::for_mesh(&mesh), 3);
        assert_eq!(nn.planes(), 3);
        // Same core announces on two planes; another core stops plane 2.
        nn.stage_injection_in(0, 5, 1, false);
        nn.stage_injection_in(1, 5, 1, false);
        nn.stage_injection_in(2, 9, 0, true);
        for _ in 0..9 {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 0);
        assert_eq!(msg.count_in(0, 5), 1);
        assert_eq!(msg.count_in(1, 5), 1);
        assert_eq!(msg.count_in(2, 5), 0);
        assert!(!msg.stop_in(0) && !msg.stop_in(1) && msg.stop_in(2));
        // Every router latched the identical merged multi-plane word.
        for r in 0..16u16 {
            assert_eq!(nn.latched_at(RouterId(r)).count_in(1, 5), 1);
        }
    }
}
