//! The bufferless bitwise-OR notification network (Figure 3).
//!
//! Each "router" is nothing but OR gates and latches: every cycle it merges
//! the messages latched by its neighbours with its own and latches the
//! result. Because merging never blocks, the network is contention-free and
//! its latency is bounded by the *topology diameter* — the notification
//! fabric mirrors whatever delivery fabric the main network runs on (mesh,
//! torus or ring), so low-diameter fabrics get proportionally shorter time
//! windows. Nodes inject only at window boundaries; by construction every
//! node holds the identical merged message at the end of the window, which
//! is the property global ordering rests on (asserted in debug builds).

use crate::message::NotifyMsg;
use scorpio_noc::{Mesh, Port, RouterId, Topology};
use scorpio_sim::stats::Counter;
use scorpio_sim::Cycle;

/// Configuration of the notification network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifyConfig {
    /// Number of cores (== tiles == bit-field lanes).
    pub cores: usize,
    /// Bits per core: how many requests one core can announce per window
    /// (Section 3.3, "multiple requests per notification message").
    pub bits_per_core: u8,
    /// Time-window length in cycles; must exceed the topology diameter.
    pub window: u64,
}

impl NotifyConfig {
    /// The chip configuration for `mesh`: 1 bit per core, window from
    /// [`Mesh::notification_window`] (13 cycles on the 6×6 chip).
    pub fn for_mesh(mesh: &Mesh) -> Self {
        NotifyConfig::for_topology(&Topology::from(mesh))
    }

    /// The configuration for any delivery fabric: 1 bit per core, window
    /// from [`Topology::notification_window`] (diameter-derived, so a
    /// torus — or a concentrated mesh, whose *router grid* is what bounds
    /// propagation — gets a tighter window than the mesh of the same core
    /// count).
    pub fn for_topology(topo: &Topology) -> Self {
        NotifyConfig {
            cores: topo.tile_count(),
            bits_per_core: 1,
            window: topo.notification_window(),
        }
    }
}

/// How announcement words reach every node within a window: the flat
/// diameter-bounded OR mesh of the chip (Figure 3), or hierarchical
/// aggregation over a quad tree whose propagation cost tracks the tree
/// *depth* instead of the grid diameter — the Epiphany-V scaling move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NotifyScheme {
    /// The chip's flat OR mesh: one propagation step per neighbour hop,
    /// window `diameter + 3`.
    #[default]
    Flat,
    /// Recursive quad partitioning of the router grid: each `fanout ×
    /// fanout` block of level-`ℓ` nodes folds its announcement words into
    /// one level-`ℓ+1` aggregate, up to a single root and back down, so
    /// the window is `2 · depth + 3` — logarithmic in the grid side. At
    /// 32×32, window 13 (fanout 2) or 9 (fanout 4) instead of the flat 67.
    Quad {
        /// Side of the square block folded per tree level (≥ 2).
        fanout: u8,
    },
}

/// Number of quad-tree levels above the leaves for a `cols × rows` router
/// grid at `fanout`: repeatedly divide (ceiling) both sides by the fanout
/// until a single node covers the grid. A 1×1 grid needs no tree.
fn quad_depth(cols: u16, rows: u16, fanout: u8) -> u64 {
    let f = fanout as u32;
    let (mut c, mut r) = (cols as u32, rows as u32);
    let mut depth = 0;
    while c > 1 || r > 1 {
        c = c.div_ceil(f);
        r = r.div_ceil(f);
        depth += 1;
    }
    depth
}

impl NotifyScheme {
    /// Cycles one window spends propagating announcements: the topology
    /// diameter (flat) or one up plus one down pass over the tree (quad).
    pub fn propagation_cycles(self, topo: &Topology) -> u64 {
        match self {
            NotifyScheme::Flat => topo.diameter() as u64,
            NotifyScheme::Quad { fanout } => {
                assert!(fanout >= 2, "quad fanout must be at least 2");
                let (cols, rows) = topo.router_grid();
                2 * quad_depth(cols, rows, fanout)
            }
        }
    }

    /// The notification window this scheme needs on `topo`: propagation
    /// cycles plus the same fixed merge margin the flat window uses, so
    /// `Flat` reproduces [`Topology::notification_window`] exactly.
    pub fn window_for(self, topo: &Topology) -> u64 {
        self.propagation_cycles(topo) + 3
    }

    /// Short label for config/scenario rows: `""` (flat — keeps every
    /// pre-scheme key byte-stable) or `"q<fanout>"`.
    pub fn label(self) -> String {
        match self {
            NotifyScheme::Flat => String::new(),
            NotifyScheme::Quad { fanout } => format!("q{fanout}"),
        }
    }
}

/// The aggregation tree of the quad scheme. Level 0 is the router grid
/// itself (the `acc` latches); level `ℓ + 1` holds one aggregate word per
/// `fanout × fanout` block of level-`ℓ` nodes. A live window runs `depth`
/// up-steps (each clearing its target level, then OR-folding children into
/// parents) followed by `depth` down-steps (each child ORs its parent's
/// aggregate back in), after which every leaf holds the global OR — the
/// same convergence contract the flat mesh meets after `diameter` steps.
#[derive(Debug, Clone)]
struct QuadTree {
    /// `parent[l][i]`: index at level `l + 1` of node `i` at level `l`
    /// (`l` ranges over `0..depth`).
    parent: Vec<Vec<u32>>,
    /// `levels[l - 1]`: aggregate words of level `l` (`l` in `1..=depth`).
    levels: Vec<Vec<NotifyMsg>>,
    /// Tree height above the leaves.
    depth: u64,
}

impl QuadTree {
    /// Builds the tree over a `cols × rows` grid of routers indexed
    /// `y * cols + x`, with `blank` as the all-zero aggregate prototype.
    fn new(cols: u16, rows: u16, fanout: u8, blank: &NotifyMsg) -> QuadTree {
        let f = fanout as u32;
        let mut parent = Vec::new();
        let mut levels = Vec::new();
        let (mut c, mut r) = (cols as u32, rows as u32);
        while c > 1 || r > 1 {
            let (pc, pr) = (c.div_ceil(f), r.div_ceil(f));
            let mut map = Vec::with_capacity((c * r) as usize);
            for y in 0..r {
                for x in 0..c {
                    map.push((y / f) * pc + (x / f));
                }
            }
            parent.push(map);
            levels.push(vec![blank.clone(); (pc * pr) as usize]);
            (c, r) = (pc, pr);
        }
        let depth = levels.len() as u64;
        QuadTree {
            parent,
            levels,
            depth,
        }
    }

    /// Runs propagation step `t` (1-based within the window) for a live
    /// window: steps `1..=depth` fold upward, steps `depth+1..=2·depth`
    /// broadcast downward. `acc` is the leaf level; `mask` restricts the
    /// merges to the window's live planes.
    fn step(&mut self, t: u64, acc: &mut [NotifyMsg], mask: u64) {
        let d = self.depth;
        debug_assert!((1..=2 * d).contains(&t), "quad step {t} out of range");
        if t <= d {
            // Up: recompute level t from level t − 1. Clearing the target
            // level first makes stale aggregates from earlier windows
            // irrelevant — each live window rebuilds the levels it uses.
            let l = (t - 1) as usize;
            if l == 0 {
                for m in self.levels[0].iter_mut() {
                    m.clear();
                }
                for (i, src) in acc.iter().enumerate() {
                    self.levels[0][self.parent[0][i] as usize].merge_from_planes(src, mask);
                }
            } else {
                let (lo, hi) = self.levels.split_at_mut(l);
                let (src, dst) = (&lo[l - 1], &mut hi[0]);
                for m in dst.iter_mut() {
                    m.clear();
                }
                for (i, s) in src.iter().enumerate() {
                    dst[self.parent[l][i] as usize].merge_from_planes(s, mask);
                }
            }
        } else {
            // Down: level (depth − s) merges its parent's aggregate, which
            // already holds the global OR of everything latched this
            // window.
            let l = (d - (t - d)) as usize;
            if l == 0 {
                let src = &self.levels[0];
                for (i, m) in acc.iter_mut().enumerate() {
                    m.merge_from_planes(&src[self.parent[0][i] as usize], mask);
                }
            } else {
                let (lo, hi) = self.levels.split_at_mut(l);
                let (dst, src) = (&mut lo[l - 1], &hi[0]);
                for (i, m) in dst.iter_mut().enumerate() {
                    m.merge_from_planes(&src[self.parent[l][i] as usize], mask);
                }
            }
        }
    }
}

/// The notification network state.
///
/// Drive it with one [`NotifyNetwork::tick`] per system cycle. NICs stage
/// injections with [`NotifyNetwork::stage_injection`] (latched at the next
/// window start) and read finished windows via [`NotifyNetwork::latest`].
///
/// # Examples
///
/// ```
/// use scorpio_noc::Mesh;
/// use scorpio_notify::{NotifyConfig, NotifyNetwork};
///
/// let mesh = Mesh::scorpio_chip();
/// let mut nn = NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh));
/// nn.stage_injection(7, 1, false);
/// for _ in 0..13 {
///     nn.tick();
/// }
/// let (window, msg) = nn.latest().expect("window 0 completed");
/// assert_eq!(window, 0);
/// assert_eq!(msg.count(7), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NotifyNetwork {
    cfg: NotifyConfig,
    /// Flattened neighbour lists (`adj[adj_idx[r]..adj_idx[r + 1]]`), one
    /// entry per physical link of the underlying topology — the OR-gate
    /// fan-in of each notification router.
    adj: Vec<u32>,
    adj_idx: Vec<u32>,
    /// The notification router each core's bit lane injects at — on a
    /// concentrated fabric several cores share one router (`tile_router[i]
    /// == i / c`); everywhere else it is the identity.
    tile_router: Vec<u32>,
    cycle: Cycle,
    /// Number of main-network planes the message word groups announce for.
    planes: usize,
    /// Latched value per router.
    acc: Vec<NotifyMsg>,
    scratch: Vec<NotifyMsg>,
    /// Contributions waiting for the next window start, one lane per
    /// (plane, core) pair (lane `p * cores + c`).
    pending: Vec<(u8, bool)>,
    /// Lanes with a staged contribution (indices into `pending`); lets a
    /// window start skip the all-lanes latch scan when nothing is staged.
    pending_dirty: Vec<usize>,
    /// Which planes the window in flight carries announcements for (bit
    /// `p` = plane `p`). An all-zero window needs no propagation, and a
    /// window live on a subset of planes merges only those planes' word
    /// groups — OR-merging an idle plane's all-zero group is the identity,
    /// so skipping it changes no latch value.
    live_planes: u64,
    /// Propagation steps per window: the topology diameter (flat) or
    /// `2 × tree depth` (quad). Convergence is reached after this many
    /// steps, after which further OR steps merge equal values and are
    /// skipped too.
    prop_cycles: u64,
    /// The aggregation scheme in use.
    scheme: NotifyScheme,
    /// The aggregation tree (quad scheme only).
    tree: Option<QuadTree>,
    /// Leaf-quad index of each router (`parent[0]` of the tree); a flat
    /// network is one region. This is the region map per-region event
    /// leaping keys its quiescence tracking on.
    region_of_router: Vec<u32>,
    /// Number of leaf quads (1 when flat).
    regions: usize,
    /// The merged message of the last completed window.
    latest: Option<(u64, NotifyMsg)>,
    /// Publish-tick cycles, recorded when enabled ([`NotifyNetwork::set_publish_log`]).
    /// Lives here rather than in the system layer because a single
    /// empty-window advance can complete several windows at once — an
    /// external observer polling `latest` would only see the last.
    publish_log: Option<Vec<u64>>,
    /// Completed windows so far.
    pub windows_completed: Counter,
    /// Completed windows that carried at least one announcement.
    pub nonempty_windows: Counter,
}

impl NotifyNetwork {
    /// Builds the notification network mirroring `fabric` — a [`Mesh`]
    /// (pass `&mesh` exactly as before the topology axis existed), a
    /// torus, a ring, or a [`Topology`].
    ///
    /// # Panics
    ///
    /// Panics if the window is too short for worst-case propagation across
    /// the fabric, or if `cores` does not match its router count.
    pub fn new(fabric: impl Into<Topology>, cfg: NotifyConfig) -> Self {
        NotifyNetwork::with_planes(fabric, cfg, 1)
    }

    /// Builds a notification network whose messages carry one independent
    /// announcement word group per main-network plane — the multi-plane
    /// configuration. One physical OR-tree fabric propagates all planes'
    /// words together (they are just wider messages); each plane's
    /// ordering windows converge independently.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NotifyNetwork::new`], or if
    /// `planes` is 0 or greater than 64.
    pub fn with_planes(fabric: impl Into<Topology>, cfg: NotifyConfig, planes: usize) -> Self {
        NotifyNetwork::with_scheme(fabric, cfg, planes, NotifyScheme::Flat)
    }

    /// Builds a notification network using `scheme` for in-window
    /// propagation: [`NotifyScheme::Flat`] reproduces the chip's OR mesh
    /// bit-for-bit, [`NotifyScheme::Quad`] aggregates hierarchically so
    /// `cfg.window` may be as short as `2 · tree depth + 3`
    /// ([`NotifyScheme::window_for`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NotifyNetwork::with_planes`],
    /// or if the window is too short for the scheme's propagation cycles,
    /// or on a quad fanout below 2.
    pub fn with_scheme(
        fabric: impl Into<Topology>,
        cfg: NotifyConfig,
        planes: usize,
        scheme: NotifyScheme,
    ) -> Self {
        let topo: Topology = fabric.into();
        let prop_cycles = scheme.propagation_cycles(&topo);
        match scheme {
            NotifyScheme::Flat => assert!(
                cfg.window > prop_cycles,
                "window {} cannot cover topology diameter {}",
                cfg.window,
                prop_cycles
            ),
            NotifyScheme::Quad { .. } => assert!(
                cfg.window > prop_cycles,
                "window {} cannot cover the quad tree's {} up/down steps",
                cfg.window,
                prop_cycles
            ),
        }
        assert_eq!(cfg.cores, topo.tile_count(), "one bit-lane per tile");
        let tile_router: Vec<u32> = (0..cfg.cores)
            .map(|i| topo.tile_endpoint(i).router.0 as u32)
            .collect();
        // Flatten the neighbour lists: the OR-propagation step visits them
        // in router order, and a router's merge order is irrelevant (OR is
        // commutative), so mesh behavior is bit-identical to the old
        // hard-coded 4-neighbourhood loop.
        let mut adj = Vec::new();
        let mut adj_idx = Vec::with_capacity(topo.router_count() + 1);
        adj_idx.push(0u32);
        for r in topo.routers() {
            for port in [Port::North, Port::South, Port::East, Port::West] {
                if let Some(n) = topo.neighbor(r, port) {
                    // A 2-wide torus dimension wires both ports to the
                    // same neighbour; merging it twice is the identity,
                    // but dedup keeps the gate count honest.
                    if !adj[adj_idx[r.index()] as usize..].contains(&(n.0 as u32)) {
                        adj.push(n.0 as u32);
                    }
                }
            }
            adj_idx.push(adj.len() as u32);
        }
        let blank = NotifyMsg::with_planes(cfg.cores, cfg.bits_per_core, planes);
        let tree = match scheme {
            NotifyScheme::Flat => None,
            NotifyScheme::Quad { fanout } => {
                let (cols, rows) = topo.router_grid();
                Some(QuadTree::new(cols, rows, fanout, &blank))
            }
        };
        let (region_of_router, regions) = match &tree {
            Some(t) if t.depth > 0 => (t.parent[0].clone(), t.levels[0].len()),
            _ => (vec![0; topo.router_count()], 1),
        };
        NotifyNetwork {
            adj,
            adj_idx,
            tile_router,
            cycle: Cycle::ZERO,
            planes,
            acc: vec![blank.clone(); topo.router_count()],
            scratch: vec![blank; topo.router_count()],
            pending: vec![(0, false); planes * cfg.cores],
            pending_dirty: Vec::new(),
            live_planes: 0,
            prop_cycles,
            scheme,
            tree,
            region_of_router,
            regions,
            latest: None,
            publish_log: None,
            windows_completed: Counter::new(),
            nonempty_windows: Counter::new(),
            cfg,
        }
    }

    /// Enables (or disables) recording of every publish-tick cycle —
    /// the windowed-telemetry timestamps. Purely observational: the log
    /// is written, never read, by the network itself.
    pub fn set_publish_log(&mut self, on: bool) {
        self.publish_log = on.then(Vec::new);
    }

    /// The recorded publish-tick cycles (empty unless enabled).
    pub fn publish_log(&self) -> &[u64] {
        self.publish_log.as_deref().unwrap_or(&[])
    }

    /// The configuration in use.
    pub fn config(&self) -> &NotifyConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Whether `cycle` is a window-start boundary.
    pub fn is_window_start(&self, cycle: Cycle) -> bool {
        cycle.is_multiple_of(self.cfg.window)
    }

    /// Number of main-network planes the messages announce for.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// The propagation scheme in use.
    pub fn scheme(&self) -> NotifyScheme {
        self.scheme
    }

    /// Number of leaf quads of the aggregation tree — the regions
    /// per-region event leaping tracks quiescence over. 1 on a flat
    /// network (the whole machine is one region).
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The leaf-quad index of router `r` (always 0 when [`NotifyNetwork::regions`]
    /// is 1).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn region_of_router(&self, r: usize) -> u32 {
        self.region_of_router[r]
    }

    /// Whether the window in flight carries any announcement.
    fn live(&self) -> bool {
        self.live_planes != 0
    }

    /// Stages core `core`'s plane-0 announcement for the next window
    /// start: `count` requests (saturating) and optionally the stop bit.
    /// Staging twice before a window start merges (max/OR semantics).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn stage_injection(&mut self, core: usize, count: u8, stop: bool) {
        self.stage_injection_in(0, core, count, stop);
    }

    /// Stages core `core`'s announcement for plane `plane` at the next
    /// window start (see [`NotifyNetwork::stage_injection`]).
    ///
    /// # Panics
    ///
    /// Panics if `plane` or `core` is out of range.
    pub fn stage_injection_in(&mut self, plane: usize, core: usize, count: u8, stop: bool) {
        assert!(plane < self.planes, "plane {plane} out of range");
        assert!(core < self.cfg.cores, "core {core} out of range");
        let max = (1u16 << self.cfg.bits_per_core) as u8 - 1;
        let lane = plane * self.cfg.cores + core;
        let entry = &mut self.pending[lane];
        if *entry == (0, false) && (count > 0 || stop) {
            self.pending_dirty.push(lane);
        }
        entry.0 = entry.0.max(count.min(max));
        entry.1 |= stop;
    }

    /// The merged message of the most recently completed window, with its
    /// index. `None` until the first window completes.
    pub fn latest(&self) -> Option<(u64, &NotifyMsg)> {
        self.latest.as_ref().map(|(w, m)| (*w, m))
    }

    /// The value currently latched at `router` (for inspection/tests).
    pub fn latched_at(&self, router: RouterId) -> &NotifyMsg {
        &self.acc[router.index()]
    }

    /// Advances one cycle: window-start injection, one OR-propagation step,
    /// and window-end completion.
    ///
    /// Two exact shortcuts keep an idle notification mesh O(1) per cycle:
    /// a window nobody injected into stays all-zero (OR with zero is the
    /// identity), and a live window stops propagating once every router
    /// provably holds the global OR — after `diameter` steps — since
    /// merging equal values changes nothing. Neither shortcut alters any
    /// latch value a NIC could observe.
    pub fn tick(&mut self) {
        let w = self.cfg.window;
        let in_window = self.cycle.as_u64() % w;

        if in_window == 0 {
            // Window start: latch pending contributions as fresh values.
            // Only a live window leaves nonzero latches to clear, and only
            // staged cores latch anything.
            if self.live() {
                for msg in self.acc.iter_mut() {
                    msg.clear();
                }
                self.live_planes = 0;
            }
            for k in 0..self.pending_dirty.len() {
                let lane = self.pending_dirty[k];
                let (plane, core) = (lane / self.cfg.cores, lane % self.cfg.cores);
                let (count, stop) = std::mem::take(&mut self.pending[lane]);
                // Latch at the router hosting this core's tile; the lane
                // inside the message stays the core number.
                let msg = &mut self.acc[self.tile_router[core] as usize];
                if count > 0 {
                    msg.set_count_in(plane, core, count);
                }
                if stop {
                    msg.set_stop_in(plane, true);
                }
                self.live_planes |= 1 << plane;
            }
            self.pending_dirty.clear();
        } else if self.live() && in_window <= self.prop_cycles {
            let mask = self.live_planes;
            match &mut self.tree {
                // One flat propagation step: each router ORs its
                // neighbours' latched values into its own (two-phase via
                // scratch, buffers reused). Neighbour sets come from the
                // precomputed adjacency of the underlying topology, so the
                // same loop serves mesh, torus and ring fabrics. Only live
                // planes' word groups are merged — an idle plane's group
                // is all-zero everywhere, so skipping it is exact.
                None => {
                    for idx in 0..self.acc.len() {
                        self.scratch[idx].copy_from(&self.acc[idx]);
                        let merged = &mut self.scratch[idx];
                        let (lo, hi) = (self.adj_idx[idx] as usize, self.adj_idx[idx + 1] as usize);
                        for &nb in &self.adj[lo..hi] {
                            merged.merge_from_planes(&self.acc[nb as usize], mask);
                        }
                    }
                    std::mem::swap(&mut self.acc, &mut self.scratch);
                }
                // One quad-tree step: up-fold for the first `depth` steps,
                // down-broadcast for the next `depth`.
                Some(tree) => tree.step(in_window, &mut self.acc, mask),
            }
        }

        if in_window == w - 1 {
            // Window end: every node now holds the global OR.
            debug_assert!(
                self.acc.iter().all(|m| *m == self.acc[0]),
                "notification network failed to converge within the window"
            );
            let window_index = self.cycle.as_u64() / w;
            if let Some(log) = &mut self.publish_log {
                log.push(self.cycle.as_u64());
            }
            self.windows_completed.incr();
            if self.live() {
                self.nonempty_windows.incr();
            }
            match &mut self.latest {
                Some((idx, msg)) => {
                    *idx = window_index;
                    msg.copy_from(&self.acc[0]);
                }
                None => self.latest = Some((window_index, self.acc[0].clone())),
            }
        }
        self.cycle = self.cycle.next();
    }

    /// The port fan-in of a notification router (for the physical model):
    /// 4 neighbour inputs + local, merged by five OR gates per Figure 3.
    /// (Concentration does not add gates: co-hosted cores share the local
    /// input, their contributions having been ORed at the latch.)
    pub fn router_or_gate_count() -> usize {
        5
    }

    /// Whether every remaining tick is a pure window-bookkeeping no-op:
    /// nothing is staged for the next window and the window in flight (if
    /// any) carries nothing. Note that `live` stays set from a window's
    /// end until the *next* window-start tick clears the latches, so a
    /// network is idle-leapable at the earliest one cycle into the window
    /// after its last live one.
    pub fn is_idle(&self) -> bool {
        !self.live() && self.pending_dirty.is_empty()
    }

    /// Advances `delta` cycles at once, reproducing exactly what `delta`
    /// consecutive [`NotifyNetwork::tick`] calls would do on an idle
    /// network: every window boundary crossed completes an empty window
    /// (counted, and published as the blank `latest` message with the
    /// right window index — `acc[0]` is all-zero whenever the network is
    /// idle). Latches, liveness and staging are untouched.
    ///
    /// # Panics
    ///
    /// Debug-asserts [`NotifyNetwork::is_idle`]; leaping a live network
    /// would skip real propagation steps.
    pub fn advance_idle(&mut self, delta: u64) {
        debug_assert!(self.is_idle(), "idle-advance on a live notify network");
        self.advance_empty(delta);
    }

    /// The idle-advance body, shared with [`NotifyNetwork::advance`]
    /// (which also admits staged-but-unlatched contributions, provided no
    /// window start is crossed).
    fn advance_empty(&mut self, delta: u64) {
        let w = self.cfg.window;
        let start = self.cycle.as_u64();
        let end = start + delta;
        // Cycles c in [start, end) with c % w == w - 1 complete a window.
        let completed = end / w - start / w;
        if let Some(log) = &mut self.publish_log {
            // The first publish tick at or after `start`.
            let mut c = start + (w - 1 - start % w);
            while c < end {
                log.push(c);
                c += w;
            }
        }
        if completed > 0 {
            self.windows_completed.add(completed);
            let window_index = end / w - 1;
            match &mut self.latest {
                Some((idx, msg)) => {
                    *idx = window_index;
                    msg.copy_from(&self.acc[0]);
                }
                None => self.latest = Some((window_index, self.acc[0].clone())),
            }
        }
        self.cycle += delta;
    }

    /// The farthest cycle the event-leaping clock may advance this network
    /// *to* (the tick at the returned cycle still executes normally), or
    /// `None` when nothing constrains the leap:
    ///
    /// * A live window's horizon is its publish tick (`window start +
    ///   window − 1`): the intermediate propagation steps are replaced
    ///   exactly by [`NotifyNetwork::advance`], but the publish tick — the
    ///   only tick a NIC can observe, via [`NotifyNetwork::latest`] — must
    ///   execute, because it wakes every endpoint.
    /// * Staged-but-unlatched contributions bound the leap at the next
    ///   window-start tick, which must execute to latch them.
    /// * A cycle sitting exactly on a window start whose latch/clear has
    ///   not run yet returns `Some(now)` — no leap at all.
    ///
    /// A `None` horizon means every future tick is empty-window
    /// bookkeeping, which [`NotifyNetwork::advance`] reproduces for any
    /// distance.
    pub fn leap_horizon(&self) -> Option<u64> {
        let w = self.cfg.window;
        let now = self.cycle.as_u64();
        if self.live() {
            if now.is_multiple_of(w) {
                // The window-start clear (and possibly a relatch) must run.
                Some(now)
            } else {
                Some(now - now % w + w - 1)
            }
        } else if !self.pending_dirty.is_empty() {
            if now.is_multiple_of(w) {
                Some(now)
            } else {
                Some(now - now % w + w)
            }
        } else {
            None
        }
    }

    /// Advances `delta` cycles at once from any state the event-leaping
    /// clock is allowed to leap over — the caller must not advance past
    /// [`NotifyNetwork::leap_horizon`]. On an idle network this is
    /// [`NotifyNetwork::advance_idle`]; on a live window it replaces the
    /// skipped propagation steps by setting every node to the global OR
    /// directly, which is exact: propagation only spreads latched bits, so
    /// the OR over all latches is invariant from the latch tick onward and
    /// equals the value the publish tick would have converged to.
    ///
    /// # Panics
    ///
    /// Debug-asserts the horizon contract: a live advance must stay inside
    /// the current window (end ≤ publish tick), a staged-pending advance
    /// must not cross the next window start.
    pub fn advance(&mut self, delta: u64) {
        let w = self.cfg.window;
        let start = self.cycle.as_u64();
        if self.live() {
            debug_assert!(
                !start.is_multiple_of(w),
                "cannot leap over a window-start tick"
            );
            debug_assert!(
                start + delta < start - start % w + w,
                "live advance of {delta} from {start} overruns the publish tick"
            );
            // Fold the global OR into acc[0], then fan it back out to every
            // node — leaves and tree levels alike — so any remaining
            // stepped propagation (and the publish-tick convergence
            // assert) sees the converged state.
            for i in 1..self.acc.len() {
                let (head, tail) = self.acc.split_at_mut(i);
                head[0].merge_from(&tail[0]);
            }
            for i in 1..self.acc.len() {
                let (head, tail) = self.acc.split_at_mut(i);
                tail[0].copy_from(&head[0]);
            }
            if let Some(tree) = &mut self.tree {
                for level in tree.levels.iter_mut() {
                    for m in level.iter_mut() {
                        m.copy_from(&self.acc[0]);
                    }
                }
            }
            self.cycle += delta;
        } else {
            debug_assert!(
                self.pending_dirty.is_empty() || {
                    let next_start = if start.is_multiple_of(w) {
                        start
                    } else {
                        start - start % w + w
                    };
                    start + delta <= next_start
                },
                "advance of {delta} from {start} crosses a latch tick with staged contributions"
            );
            self.advance_empty(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(k: u16) -> NotifyNetwork {
        let mesh = Mesh::new(k, k, &[]);
        NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh))
    }

    #[test]
    fn chip_window_is_13() {
        let mesh = Mesh::scorpio_chip();
        let cfg = NotifyConfig::for_mesh(&mesh);
        assert_eq!(cfg.window, 13);
        assert_eq!(cfg.cores, 36);
        assert_eq!(cfg.bits_per_core, 1);
    }

    #[test]
    fn single_injection_reaches_all_nodes() {
        let mut nn = net(6);
        nn.stage_injection(0, 1, false);
        for _ in 0..13 {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 0);
        assert_eq!(msg.count(0), 1);
        assert_eq!(msg.total(), 1);
        // Every router's latch agrees.
        for r in 0..36u16 {
            assert_eq!(nn.latched_at(RouterId(r)).count(0), 1);
        }
    }

    #[test]
    fn corner_to_corner_injections_converge() {
        let mut nn = net(6);
        nn.stage_injection(0, 1, false);
        nn.stage_injection(35, 1, false);
        for _ in 0..13 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.count(0), 1);
        assert_eq!(msg.count(35), 1);
        assert_eq!(msg.total(), 2);
    }

    #[test]
    fn mid_window_injection_waits_for_next_window() {
        let mut nn = net(4); // window 9
        for _ in 0..3 {
            nn.tick();
        }
        nn.stage_injection(5, 1, false);
        for _ in 3..9 {
            nn.tick();
        }
        let (w0, msg0) = nn.latest().unwrap();
        assert_eq!(w0, 0);
        assert!(msg0.is_empty(), "mid-window injection leaked into window 0");
        for _ in 0..9 {
            nn.tick();
        }
        let (w1, msg1) = nn.latest().unwrap();
        assert_eq!(w1, 1);
        assert_eq!(msg1.count(5), 1);
    }

    #[test]
    fn stop_bit_propagates() {
        let mut nn = net(4);
        nn.stage_injection(3, 0, true);
        nn.stage_injection(7, 1, false);
        for _ in 0..9 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert!(msg.stop());
        assert_eq!(msg.count(7), 1);
    }

    #[test]
    fn multi_bit_counts_survive_merging() {
        let mesh = Mesh::new(4, 4, &[]);
        let mut nn = NotifyNetwork::new(
            &mesh,
            NotifyConfig {
                cores: 16,
                bits_per_core: 2,
                window: mesh.notification_window(),
            },
        );
        nn.stage_injection(2, 3, false);
        nn.stage_injection(9, 2, false);
        nn.stage_injection(9, 1, false); // merges to max(2,1)=2
        for _ in 0..9 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.count(2), 3);
        assert_eq!(msg.count(9), 2);
    }

    #[test]
    fn empty_windows_complete_too() {
        let mut nn = net(4);
        for _ in 0..27 {
            nn.tick();
        }
        assert_eq!(nn.windows_completed.get(), 3);
        assert_eq!(nn.nonempty_windows.get(), 0);
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 2);
        assert!(msg.is_empty());
    }

    /// `advance_idle(d)` must leave the network in exactly the state `d`
    /// ticks would — from any in-window offset, across any number of
    /// window boundaries, before and after live traffic.
    #[test]
    fn advance_idle_matches_ticked_reference() {
        for warmup in [0u64, 1, 3, 8, 9] {
            for delta in [1u64, 2, 8, 9, 10, 26, 27, 40] {
                let mut ticked = net(4); // window 9
                let mut leaped = net(4);
                for _ in 0..warmup {
                    ticked.tick();
                    leaped.tick();
                }
                assert!(leaped.is_idle());
                for _ in 0..delta {
                    ticked.tick();
                }
                leaped.advance_idle(delta);
                assert_eq!(
                    ticked.windows_completed.get(),
                    leaped.windows_completed.get()
                );
                assert_eq!(ticked.nonempty_windows.get(), leaped.nonempty_windows.get());
                assert_eq!(
                    ticked.latest().map(|(w, m)| (w, m.clone())),
                    leaped.latest().map(|(w, m)| (w, m.clone())),
                    "latest diverged at warmup {warmup} delta {delta}"
                );
                // Subsequent live traffic behaves identically.
                ticked.stage_injection(5, 1, false);
                leaped.stage_injection(5, 1, false);
                for _ in 0..18 {
                    ticked.tick();
                    leaped.tick();
                }
                assert_eq!(
                    ticked.latest().map(|(w, m)| (w, m.clone())),
                    leaped.latest().map(|(w, m)| (w, m.clone()))
                );
            }
        }
    }

    /// A network is not idle-leapable between a live window's end and the
    /// next window start (the latch clear has not happened yet).
    #[test]
    fn live_window_blocks_idle_until_next_window_start() {
        let mut nn = net(4); // window 9
        nn.stage_injection(0, 1, false);
        assert!(!nn.is_idle(), "staged injection blocks leaping");
        for _ in 0..9 {
            nn.tick();
        }
        assert!(!nn.is_idle(), "live flag persists past the window end");
        nn.tick(); // window-start tick clears the latches
        assert!(nn.is_idle());
    }

    #[test]
    fn rectangular_mesh_converges() {
        let mesh = Mesh::new(8, 2, &[]);
        let mut nn = NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh));
        nn.stage_injection(0, 1, false);
        nn.stage_injection(15, 1, false);
        let w = mesh.notification_window();
        for _ in 0..w {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.total(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot cover topology diameter")]
    fn too_short_window_panics() {
        let mesh = Mesh::new(6, 6, &[]);
        let _ = NotifyNetwork::new(
            &mesh,
            NotifyConfig {
                cores: 36,
                bits_per_core: 1,
                window: 5,
            },
        );
    }

    #[test]
    fn torus_window_is_tighter_and_converges() {
        use scorpio_noc::{Topology, Torus};
        let topo: Topology = Torus::square_with_corner_mcs(6).into();
        let cfg = NotifyConfig::for_topology(&topo);
        // Torus diameter 6 vs mesh 10: window 9 vs the chip's 13.
        assert_eq!(cfg.window, 9);
        let mut nn = NotifyNetwork::new(&topo, cfg);
        nn.stage_injection(0, 1, false);
        nn.stage_injection(35, 1, false);
        for _ in 0..9 {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.total(), 2);
        for r in 0..36u16 {
            assert_eq!(nn.latched_at(RouterId(r)).count(0), 1);
        }
    }

    #[test]
    fn ring_converges_within_its_half_circumference_window() {
        use scorpio_noc::{Ring, Topology};
        let topo: Topology = Ring::with_spread_mcs(16, 4).into();
        let cfg = NotifyConfig::for_topology(&topo);
        assert_eq!(cfg.window, 8 + 3);
        let mut nn = NotifyNetwork::new(&topo, cfg.clone());
        nn.stage_injection(0, 1, false);
        nn.stage_injection(8, 1, false); // antipodal
        for _ in 0..cfg.window {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.total(), 2);
    }

    #[test]
    fn two_wide_torus_dimension_dedups_or_inputs() {
        use scorpio_noc::Torus;
        // cols = 2: East and West reach the same neighbour; the OR fan-in
        // must still converge (merging a value twice is the identity).
        let t = Torus::new(2, 4, &[]);
        let cfg = NotifyConfig::for_topology(&(&t).into());
        let mut nn = NotifyNetwork::new(&t, cfg);
        nn.stage_injection(7, 1, false);
        for _ in 0..nn.config().window {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.count(7), 1);
    }

    #[test]
    fn or_gate_count_matches_figure3() {
        assert_eq!(NotifyNetwork::router_or_gate_count(), 5);
    }

    #[test]
    fn cmesh_lanes_share_routers_and_converge_in_the_smaller_window() {
        use scorpio_noc::{CMesh, Topology};
        // 16 cores as a 4x2 router grid x 2 tiles: diameter 4, window 7 —
        // tighter than the 4x4 mesh's 9 at the same core count.
        let topo: Topology = CMesh::with_corner_mcs(4, 2, 2).into();
        let cfg = NotifyConfig::for_topology(&topo);
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.window, 7);
        let mut nn = NotifyNetwork::new(&topo, cfg.clone());
        // Cores 0 and 1 share router 0; core 15 sits at router 7.
        nn.stage_injection(0, 1, false);
        nn.stage_injection(1, 1, false);
        nn.stage_injection(15, 0, true);
        for _ in 0..cfg.window {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 0);
        assert_eq!(msg.count(0), 1);
        assert_eq!(msg.count(1), 1);
        assert_eq!(msg.total(), 2);
        assert!(msg.stop());
        // Every *router* latched the identical merged word.
        for r in 0..8u16 {
            assert_eq!(nn.latched_at(RouterId(r)).total(), 2);
        }
    }

    #[test]
    fn quad_window_depths_match_the_derivation() {
        // 32×32: fanout 2 folds 32→16→8→4→2→1 (depth 5, window 13 — the
        // chip's own window at 28× the core count); fanout 4 folds
        // 32→8→2→1 (depth 3, window 9). Both beat the ≤ 20 target and the
        // flat 67 by far.
        let m32: Topology = Mesh::new(32, 32, &[]).into();
        assert_eq!(m32.notification_window(), 65);
        assert_eq!(NotifyScheme::Quad { fanout: 2 }.window_for(&m32), 13);
        assert_eq!(NotifyScheme::Quad { fanout: 4 }.window_for(&m32), 9);
        // Non-square and degenerate grids.
        let m8x2: Topology = Mesh::new(8, 2, &[]).into();
        assert_eq!(NotifyScheme::Quad { fanout: 2 }.window_for(&m8x2), 9);
        let m1x1: Topology = Mesh::new(1, 1, &[]).into();
        assert_eq!(NotifyScheme::Quad { fanout: 2 }.window_for(&m1x1), 3);
        // Flat reproduces the topology window exactly.
        assert_eq!(
            NotifyScheme::Flat.window_for(&m32),
            m32.notification_window()
        );
        assert_eq!(NotifyScheme::Flat.label(), "");
        assert_eq!(NotifyScheme::Quad { fanout: 4 }.label(), "q4");
    }

    fn quad_net(cols: u16, rows: u16, fanout: u8, planes: usize) -> NotifyNetwork {
        let mesh = Mesh::new(cols, rows, &[]);
        let topo: Topology = (&mesh).into();
        let scheme = NotifyScheme::Quad { fanout };
        let cfg = NotifyConfig {
            cores: topo.tile_count(),
            bits_per_core: 1,
            window: scheme.window_for(&topo),
        };
        NotifyNetwork::with_scheme(&mesh, cfg, planes, scheme)
    }

    #[test]
    fn quad_corner_injections_converge_in_the_log_window() {
        let mut nn = quad_net(8, 8, 2, 1); // depth 3, window 9 (flat: 17)
        assert_eq!(nn.config().window, 9);
        nn.stage_injection(0, 1, false);
        nn.stage_injection(63, 1, false);
        for _ in 0..9 {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 0);
        assert_eq!(msg.count(0), 1);
        assert_eq!(msg.count(63), 1);
        assert_eq!(msg.total(), 2);
        for r in 0..64u16 {
            assert_eq!(nn.latched_at(RouterId(r)).total(), 2);
        }
    }

    #[test]
    fn quad_regions_partition_the_grid_into_leaf_quads() {
        let nn = quad_net(8, 8, 4, 1);
        // 8×8 at fanout 4 → 2×2 leaf quads of 4×4 routers.
        assert_eq!(nn.regions(), 4);
        assert_eq!(nn.region_of_router(0), 0); // (0,0)
        assert_eq!(nn.region_of_router(7), 1); // (7,0)
        assert_eq!(nn.region_of_router(8 * 7), 2); // (0,7)
        assert_eq!(nn.region_of_router(8 * 7 + 7), 3); // (7,7)
                                                       // A flat network is a single region.
        let flat = net(4);
        assert_eq!(flat.regions(), 1);
        assert_eq!(flat.region_of_router(13), 0);
    }

    /// Satellite proptest (hand-rolled off SimRng — the workspace carries
    /// no external crates): for random announcement patterns over random
    /// non-square grids, the quad window's published merge must equal the
    /// flat window's, plane for plane, stop bits included.
    #[test]
    fn quad_published_merge_equals_flat_for_random_patterns() {
        use scorpio_sim::SimRng;
        let mut rng = SimRng::seed_from(0x5c0_2b10);
        for trial in 0..60 {
            let cols = 1 + rng.gen_range_usize(9) as u16;
            let rows = 1 + rng.gen_range_usize(9) as u16;
            let fanout = if rng.chance(0.5) { 2 } else { 4 };
            let planes = if rng.chance(0.5) { 1 } else { 4 };
            let mesh = Mesh::new(cols, rows, &[]);
            let topo: Topology = (&mesh).into();
            let cores = topo.tile_count();
            let scheme = NotifyScheme::Quad { fanout };
            let mut flat =
                NotifyNetwork::with_planes(&mesh, NotifyConfig::for_topology(&topo), planes);
            let mut quad = NotifyNetwork::with_scheme(
                &mesh,
                NotifyConfig {
                    cores,
                    bits_per_core: 1,
                    window: scheme.window_for(&topo),
                },
                planes,
                scheme,
            );
            // Two windows of random announcements (the second exercises
            // latch clearing over stale tree levels).
            for _ in 0..2 {
                for core in 0..cores {
                    for plane in 0..planes {
                        if rng.chance(0.2) {
                            let stop = rng.chance(0.1);
                            flat.stage_injection_in(plane, core, 1, stop);
                            quad.stage_injection_in(plane, core, 1, stop);
                        }
                    }
                }
                for _ in 0..flat.config().window {
                    flat.tick();
                }
                for _ in 0..quad.config().window {
                    quad.tick();
                }
                let (fw, fm) = flat.latest().unwrap();
                let (qw, qm) = quad.latest().unwrap();
                assert_eq!(fw, qw);
                assert_eq!(
                    fm, qm,
                    "flat/quad merge diverged: trial {trial}, \
                     {cols}x{rows} fanout {fanout} planes {planes}"
                );
            }
        }
    }

    /// `advance` must reproduce ticked execution from any leapable point of
    /// a live window — including straight to the publish tick — for both
    /// schemes.
    #[test]
    fn live_advance_matches_ticked_reference() {
        for quad in [false, true] {
            let make = || {
                if quad {
                    quad_net(4, 4, 2, 1) // depth 2, window 7
                } else {
                    net(4) // window 9
                }
            };
            let w = make().config().window;
            // Latch a window, then from each in-window offset leap every
            // admissible distance and compare against stepping.
            for offset in 1..w {
                let horizon = w - 1;
                for target in offset..=horizon {
                    let mut ticked = make();
                    let mut leaped = make();
                    for nn in [&mut ticked, &mut leaped] {
                        nn.stage_injection(0, 1, false);
                        nn.stage_injection(5, 1, true);
                        for _ in 0..offset {
                            nn.tick();
                        }
                    }
                    assert_eq!(leaped.leap_horizon(), Some(horizon));
                    let delta = target - offset;
                    if delta > 0 {
                        leaped.advance(delta);
                        for _ in 0..delta {
                            ticked.tick();
                        }
                    }
                    // Finish the window plus one more either way.
                    for _ in 0..(w - target) + w {
                        ticked.tick();
                        leaped.tick();
                    }
                    assert_eq!(
                        ticked.latest().map(|(i, m)| (i, m.clone())),
                        leaped.latest().map(|(i, m)| (i, m.clone())),
                        "diverged at offset {offset} target {target} quad {quad}"
                    );
                    assert_eq!(
                        ticked.windows_completed.get(),
                        leaped.windows_completed.get()
                    );
                    assert_eq!(ticked.nonempty_windows.get(), leaped.nonempty_windows.get());
                }
            }
        }
    }

    #[test]
    fn leap_horizon_tracks_window_state() {
        let mut nn = net(4); // window 9
        assert_eq!(nn.leap_horizon(), None, "idle network is unconstrained");
        nn.stage_injection(3, 1, false);
        assert_eq!(
            nn.leap_horizon(),
            Some(0),
            "staged at a window start: the latch tick must run now"
        );
        nn.tick();
        assert_eq!(nn.leap_horizon(), Some(8), "live window leaps to publish");
        for _ in 1..9 {
            nn.tick();
        }
        // Past the publish tick `live` persists until the next
        // window-start tick, which must execute to clear the latches.
        assert_eq!(nn.leap_horizon(), Some(9));
        nn.tick();
        assert_eq!(nn.leap_horizon(), None);
        // Staged mid-window: horizon is the next window start.
        nn.tick();
        nn.stage_injection(4, 1, false);
        assert_eq!(nn.leap_horizon(), Some(18));
        nn.advance(7); // up to the latch tick exactly
        assert_eq!(nn.cycle().as_u64(), 18);
        for _ in 0..9 {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 2);
        assert_eq!(msg.count(4), 1);
    }

    #[test]
    fn quad_multi_plane_idle_planes_skip_word_groups_exactly() {
        // 4 planes, only planes 0 and 2 live: published merge must match a
        // reference where every plane is merged unconditionally (the
        // pre-mask behavior), i.e. masking is invisible.
        let mut nn = quad_net(6, 3, 2, 4);
        nn.stage_injection_in(0, 0, 1, false);
        nn.stage_injection_in(2, 17, 1, true);
        for _ in 0..nn.config().window {
            nn.tick();
        }
        let (_, msg) = nn.latest().unwrap();
        assert_eq!(msg.count_in(0, 0), 1);
        assert_eq!(msg.count_in(2, 17), 1);
        assert!(!msg.stop_in(0) && msg.stop_in(2));
        assert_eq!(msg.total(), 2);
    }

    #[test]
    fn per_plane_words_converge_independently() {
        let mesh = Mesh::new(4, 4, &[]);
        let mut nn = NotifyNetwork::with_planes(&mesh, NotifyConfig::for_mesh(&mesh), 3);
        assert_eq!(nn.planes(), 3);
        // Same core announces on two planes; another core stops plane 2.
        nn.stage_injection_in(0, 5, 1, false);
        nn.stage_injection_in(1, 5, 1, false);
        nn.stage_injection_in(2, 9, 0, true);
        for _ in 0..9 {
            nn.tick();
        }
        let (w, msg) = nn.latest().unwrap();
        assert_eq!(w, 0);
        assert_eq!(msg.count_in(0, 5), 1);
        assert_eq!(msg.count_in(1, 5), 1);
        assert_eq!(msg.count_in(2, 5), 0);
        assert!(!msg.stop_in(0) && !msg.stop_in(1) && msg.stop_in(2));
        // Every router latched the identical merged multi-plane word.
        for r in 0..16u16 {
            assert_eq!(nn.latched_at(RouterId(r)).count_in(1, 5), 1);
        }
    }
}
