//! The SCORPIO notification network (Section 3.3): an ultra-lightweight
//! bufferless mesh of OR gates and latches that gives every node the same
//! view of "which cores want requests ordered this window", within a fixed
//! latency bound.
//!
//! Combined with a consistent ordering rule at every NIC (the rotating
//! priority arbiter in `scorpio-nic`), this yields a *distributed* global
//! order without a centralized ordering point — the paper's key idea of
//! decoupling message **ordering** (this network) from message **delivery**
//! (the main network in `scorpio-noc`).
//!
//! # Examples
//!
//! ```
//! use scorpio_noc::Mesh;
//! use scorpio_notify::{NotifyConfig, NotifyNetwork};
//!
//! let mesh = Mesh::scorpio_chip();
//! let mut nn = NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh));
//! // Cores 3 and 30 announce one request each.
//! nn.stage_injection(3, 1, false);
//! nn.stage_injection(30, 1, false);
//! for _ in 0..13 {
//!     nn.tick(); // one full time window
//! }
//! let (_, merged) = nn.latest().unwrap();
//! assert_eq!(merged.count(3), 1);
//! assert_eq!(merged.count(30), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod message;
mod network;

pub use message::NotifyMsg;
pub use network::{NotifyConfig, NotifyNetwork, NotifyScheme};
