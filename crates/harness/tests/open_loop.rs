//! Open-loop injection guarantees. The arrival generators are simulation
//! inputs, so they inherit every determinism bar the closed-loop traces
//! already clear: byte-identical reports *and* flit traces across all six
//! engines and every executor thread count, a zero-load knob that
//! degenerates to the closed-loop machine exactly, and an event-leaping
//! clock that never jumps past a pending arrival deadline.

use scorpio::{ArrivalProcess, ObsLevel};
use scorpio_harness::exec::{run_grid, run_spec, run_spec_opts, ExecOptions};
use scorpio_harness::registry;
use scorpio_harness::sink::{self, SinkOptions};
use scorpio_harness::{Engine, Fabric, Knob, RunSpec};

/// The mesh SCORPIO cell of `latency-curve-small` carrying `variant`.
fn curve_cell(variant: &str) -> RunSpec {
    registry::by_name("latency-curve-small")
        .expect("registered")
        .grid
        .enumerate()
        .into_iter()
        .find(|s| {
            s.protocol == scorpio::Protocol::Scorpio
                && s.fabric == Fabric::Mesh
                && s.variant.label == variant
        })
        .unwrap_or_else(|| panic!("the mesh SCORPIO {variant} cell exists"))
}

/// Offered load 0 is the closed loop: the schedule is empty, the tile
/// never switches to the source-queue path, and the report — spans,
/// runtime, everything — is byte-identical to the run without the knob.
/// Only the configuration fingerprint moves (the knob is still a
/// different machine description).
#[test]
fn zero_load_open_loop_degenerates_to_the_closed_loop() {
    let fig7 = registry::by_name("fig7-small").expect("registered");
    let closed = fig7
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.protocol == scorpio::Protocol::Scorpio)
        .expect("a SCORPIO cell exists");
    let mut open = closed.clone();
    open.variant.label = format!("{}+pois-0", open.variant.label);
    open.variant.knobs.push(Knob::OpenLoad {
        process: ArrivalProcess::Poisson,
        millis: 0,
    });
    let a = run_spec_opts(&closed, 10, Some(ObsLevel::Trace), Some(4096));
    let b = run_spec_opts(&open, 10, Some(ObsLevel::Trace), Some(4096));
    assert_eq!(
        a.report.to_json(),
        b.report.to_json(),
        "zero-load open loop diverged from the closed loop"
    );
    assert_eq!(a.trace, b.trace);
    assert_ne!(
        a.config_hash, b.config_hash,
        "the knob must stay hash-visible"
    );
}

/// The trace-input path: `ArrivalProcess::Replay` turns the trace's own
/// think-time deltas into absolute arrival times, so the whole workload
/// still completes — every op arrives and none is dropped at the
/// closed-loop-paced offered load — and the run is engine-invariant
/// like every other open-loop cell.
#[test]
fn replay_arrivals_complete_the_full_trace() {
    let fig7 = registry::by_name("fig7-small").expect("registered");
    let mut spec = fig7
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.protocol == scorpio::Protocol::Scorpio)
        .expect("a SCORPIO cell exists");
    spec.variant.label = format!("{}+replay", spec.variant.label);
    spec.variant.knobs.push(Knob::OpenLoad {
        process: ArrivalProcess::Replay,
        millis: 0,
    });
    let ops = 10;
    let base = run_spec(&spec, ops);
    let cores = spec.config().cores() as u64;
    assert_eq!(base.report.ops_completed, ops as u64 * cores);
    assert_eq!(base.report.source_dropped, 0);
    let mut scan_spec = spec.clone();
    scan_spec.engine = Engine::AlwaysScan;
    let scan = run_spec(&scan_spec, ops);
    assert_eq!(base.report.to_json(), scan.report.to_json());
}

/// The equivalence matrix gains open-loop rows: under Poisson and bursty
/// arrivals, all six engines must produce byte-identical reports AND
/// merged flit traces. The leap/parallel/turbo rows are the interesting
/// ones — arrival deadlines reach the timed-wake heap, so the leaping
/// clock stops at them like any other event.
#[test]
fn open_loop_reports_and_traces_are_byte_identical_across_six_engines() {
    for variant in ["pois-12", "burst-20"] {
        let spec = curve_cell(variant);
        assert_eq!(spec.engine, Engine::ActiveSet);
        let base = run_spec_opts(&spec, 8, Some(ObsLevel::Trace), Some(2048));
        let json = base.report.to_json();
        assert!(base.report.ops_completed > 0);
        for engine in [
            Engine::AlwaysScan,
            Engine::CoordRoute,
            Engine::Leap,
            Engine::Parallel,
            Engine::Turbo,
        ] {
            let mut other_spec = spec.clone();
            other_spec.engine = engine;
            let other = run_spec_opts(&other_spec, 8, Some(ObsLevel::Trace), Some(2048));
            assert_eq!(
                json,
                other.report.to_json(),
                "report divergence at {variant} vs {engine:?}"
            );
            assert_eq!(
                base.trace, other.trace,
                "trace divergence at {variant} vs {engine:?}"
            );
            assert_eq!(base.trace_dropped, other.trace_dropped);
            assert_eq!(base.config_hash, other.config_hash);
        }
    }
}

/// `harness run latency-curve-small --threads N` emits byte-identical
/// JSONL and CSV — spans, windows and histograms included — for every
/// worker count. (The SCORPIO half of the grid keeps the test tractable;
/// both arrival processes and both fabrics are in it.)
#[test]
fn open_loop_sweep_is_thread_count_invariant() {
    let mut scenario = registry::by_name("latency-curve-small").expect("registered");
    scenario.grid.protocols.truncate(1);
    let mk = |threads| ExecOptions {
        threads,
        ops_per_core: 8,
        spans: true,
        window_cycles: Some(256),
        ..ExecOptions::default()
    };
    let sink_opts = SinkOptions {
        include_hist: true,
        include_spans: true,
        include_windows: true,
        ..SinkOptions::default()
    };
    let serial = run_grid(&scenario.grid, &mk(1));
    assert_eq!(serial.len(), 2 * 6, "2 fabrics x (5 loads + 1 burst)");
    let base_json = sink::jsonl("latency-curve-small", &serial, sink_opts);
    let base_csv = sink::csv("latency-curve-small", &serial, sink_opts);
    // The open-loop columns actually render.
    assert!(base_json.contains(r#""arrival":"pois-12","load_millis":12"#));
    assert!(base_csv.contains(",burst-20,20,"));
    for threads in [2, 8] {
        let parallel = run_grid(&scenario.grid, &mk(threads));
        assert_eq!(
            base_json,
            sink::jsonl("latency-curve-small", &parallel, sink_opts),
            "JSONL changed at {threads} threads"
        );
        assert_eq!(
            base_csv,
            sink::csv("latency-curve-small", &parallel, sink_opts),
            "CSV changed at {threads} threads"
        );
    }
}

/// The regression the arrival deadlines exist to prevent: on a sparse
/// schedule the leaping clock must wake *at* each pending arrival, not
/// beyond it. Equal reports and traces against the stepped baseline
/// prove no deadline was jumped; the stepped-cycle count proves the leap
/// actually crossed the idle gaps rather than never firing.
#[test]
fn leap_never_jumps_an_arrival_deadline() {
    // A 2x2 machine at 1 request/1000 cycles/core: combined inter-
    // arrival gaps average ~250 cycles against transactions an order of
    // magnitude shorter, so the fabric drains fully between arrivals
    // and the leap has real gaps to cross.
    let mut spec = curve_cell("pois-2");
    spec.mesh_side = 2;
    for k in spec.variant.knobs.iter_mut() {
        if let Knob::OpenLoad { millis, .. } = k {
            *millis = 1;
        }
    }
    spec.variant.label = "pois-1".into();
    let stepped = run_spec_opts(&spec, 12, Some(ObsLevel::Trace), Some(2048));
    let mut leap_spec = spec.clone();
    leap_spec.engine = Engine::Leap;
    let leaped = run_spec_opts(&leap_spec, 12, Some(ObsLevel::Trace), Some(2048));
    assert_eq!(
        stepped.report.to_json(),
        leaped.report.to_json(),
        "the leaping clock changed an open-loop run"
    );
    assert_eq!(stepped.trace, leaped.trace);
    assert!(
        leaped.stepped_cycles < stepped.stepped_cycles / 2,
        "the leap never fired ({} of {} cycles stepped)",
        leaped.stepped_cycles,
        stepped.stepped_cycles
    );
}

/// The p99 sojourn of the full ladder on one curve, keyed by load.
fn p99_ladder(specs: &[RunSpec], ops: usize) -> Vec<(u32, u64, f64)> {
    let mut ladder: Vec<(u32, u64, f64)> = specs
        .iter()
        .map(|s| {
            let r = run_spec(s, ops);
            let sp = r
                .report
                .obs
                .as_deref()
                .and_then(|o| o.spans.as_ref())
                .expect("span annex present");
            let mean = sp.total.sum() as f64 / sp.total.count().max(1) as f64;
            let (_, load) = s.open_load().unwrap();
            (load, sp.total.percentile(0.99).unwrap_or(0), mean)
        })
        .collect();
    ladder.sort_by_key(|&(load, ..)| load);
    ladder
}

/// The acceptance sweep: on the 8x8 mesh under both SCORPIO and the
/// LPD-D baseline, mean sojourn rises monotonically with offered load
/// and the top of the ladder clears the knee detector's 3x-baseline p99
/// bar. On the concentrated mesh the knee arrives no later (two tiles
/// share each injection port), and the per-slot injection-wait spread
/// widens past it. Heavy: a full Poisson ladder at real op counts — CI
/// runs it under `--release --ignored` with the other benchmarks.
#[test]
#[ignore = "heavy: run explicitly with --release (CI throughput job)"]
fn latency_curve_ramps_monotonically_to_a_detected_knee() {
    let scenario = registry::by_name("latency-curve-small").expect("registered");
    let specs = scenario.grid.enumerate();
    let poisson = |fabric: Fabric, proto: scorpio::Protocol| -> Vec<RunSpec> {
        specs
            .iter()
            .filter(|s| {
                s.fabric == fabric
                    && s.protocol == proto
                    && matches!(s.open_load(), Some((ArrivalProcess::Poisson, _)))
            })
            .cloned()
            .collect()
    };
    let knee_of = |ladder: &[(u32, u64, f64)]| -> Option<u32> {
        let base = ladder.first()?.1;
        ladder
            .iter()
            .find(|&&(_, p99, _)| p99 > 3 * base)
            .map(|&(load, ..)| load)
    };
    let mut mesh_knee = None;
    for proto in [scorpio::Protocol::Scorpio, scorpio::Protocol::LpdDir] {
        let ladder = p99_ladder(&poisson(Fabric::Mesh, proto), 60);
        assert_eq!(ladder.len(), 5);
        for pair in ladder.windows(2) {
            assert!(
                pair[1].2 >= pair[0].2,
                "{proto:?}: mean sojourn fell from load {} to {} ({:.1} -> {:.1})",
                pair[0].0,
                pair[1].0,
                pair[0].2,
                pair[1].2
            );
        }
        let knee = knee_of(&ladder);
        assert!(
            knee.is_some(),
            "{proto:?}: no knee on the mesh ladder: {ladder:?}"
        );
        if proto == scorpio::Protocol::Scorpio {
            mesh_knee = knee;
        }
    }
    // Concentration halves the injection bandwidth per router port, so
    // the SCORPIO knee must not move later — and the per-slot fairness
    // spread must widen between the bottom and the top of the ladder.
    let cmesh_specs = poisson(Fabric::CMesh(2), scorpio::Protocol::Scorpio);
    let cmesh = p99_ladder(&cmesh_specs, 60);
    let cmesh_knee = knee_of(&cmesh).expect("no knee on the cmesh ladder");
    assert!(
        cmesh_knee <= mesh_knee.unwrap(),
        "concentration moved the knee later ({cmesh_knee} > {:?})",
        mesh_knee
    );
    // The fairness surface: every tile slot of the concentrated mesh has
    // a populated per-slot inject-wait histogram (plus the MC bucket),
    // and the windowed per-endpoint wait extremes — the max/min cells
    // the render prints per slot — spread further apart at the top of
    // the ladder than at the bottom.
    let wait_spread = |spec: &RunSpec| -> f64 {
        let r = run_spec(spec, 60);
        let obs = r.report.obs.as_deref().expect("obs annex present");
        assert_eq!(obs.inject_wait_slots.len(), 3, "2 tile slots + MC");
        for (i, h) in obs.inject_wait_slots.iter().enumerate() {
            assert!(h.count() > 0, "inject-wait slot {i} never recorded");
        }
        let w = obs.windows.as_ref().expect("window report present");
        let mean = |e: &Option<scorpio::EpWait>| {
            e.as_ref()
                .map_or(0.0, |m| m.sum as f64 / m.count.max(1) as f64)
        };
        mean(&w.max_wait) - mean(&w.min_wait)
    };
    let bottom = cmesh_specs
        .iter()
        .min_by_key(|s| s.open_load().unwrap().1)
        .unwrap();
    let top = cmesh_specs
        .iter()
        .max_by_key(|s| s.open_load().unwrap().1)
        .unwrap();
    let low = wait_spread(bottom);
    let high = wait_spread(top);
    assert!(
        high > low,
        "windowed per-endpoint wait spread did not widen past the knee \
         ({low:.2} at the bottom vs {high:.2} at the top)"
    );
}
