//! The harness's central guarantee: a sweep's serialized results depend
//! only on (scenario, seeds, ops-per-core) — never on worker count,
//! scheduling, or completion order.

use scorpio_harness::exec::{run_grid, run_spec_custom, ExecOptions};
use scorpio_harness::registry;
use scorpio_harness::sink::{self, SinkOptions};
use scorpio_harness::Engine;
use std::collections::HashSet;

fn opts(threads: usize) -> ExecOptions {
    ExecOptions {
        threads,
        ops_per_core: 10,
        ..ExecOptions::default()
    }
}

/// `harness run fig7 --threads N` must emit byte-identical JSON and CSV
/// for every `N` — the acceptance bar for the parallel executor.
#[test]
fn fig7_results_are_byte_identical_across_thread_counts() {
    let scenario = registry::by_name("fig7").expect("fig7 is registered");
    let baseline_results = run_grid(&scenario.grid, &opts(1));
    let baseline_json = sink::jsonl("fig7", &baseline_results, SinkOptions::default());
    let baseline_csv = sink::csv("fig7", &baseline_results, SinkOptions::default());
    assert_eq!(baseline_results.len(), 20);

    for threads in [2, 4, 8] {
        let results = run_grid(&scenario.grid, &opts(threads));
        assert_eq!(
            baseline_json,
            sink::jsonl("fig7", &results, SinkOptions::default()),
            "JSON output changed at {threads} threads"
        );
        assert_eq!(
            baseline_csv,
            sink::csv("fig7", &results, SinkOptions::default()),
            "CSV output changed at {threads} threads"
        );
    }
}

/// The same holds for a grid with a seed axis and for the table render.
#[test]
fn seeded_sweep_and_tables_are_thread_count_invariant() {
    let mut scenario = registry::by_name("ablation-small").expect("registered");
    scenario.grid.seeds = vec![1, 7];
    let serial = run_grid(&scenario.grid, &opts(1));
    let parallel = run_grid(&scenario.grid, &opts(6));
    assert_eq!(
        sink::jsonl("ablation-small", &serial, SinkOptions::default()),
        sink::jsonl("ablation-small", &parallel, SinkOptions::default()),
    );
    assert_eq!(
        (scenario.render)(&scenario, &serial),
        (scenario.render)(&scenario, &parallel),
    );
}

/// Sweep-grid enumeration is stable and duplicate-free for every
/// registered scenario, including the filtered (non-rectangular) ones.
#[test]
fn every_registered_grid_enumerates_stably_without_duplicates() {
    for scenario in registry::scenarios() {
        let a = scenario.grid.enumerate();
        let b = scenario.grid.enumerate();
        assert_eq!(a, b, "{}: enumeration unstable", scenario.name);
        let keys: HashSet<String> = a.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), a.len(), "{}: duplicate specs", scenario.name);
        for (i, spec) in a.iter().enumerate() {
            assert_eq!(spec.index, i, "{}: sparse indices", scenario.name);
        }
    }
}

/// With observability on (histograms, counters and the flit trace), the
/// percentile-bearing JSONL/CSV *and* the merged trace stream must stay
/// byte-identical across worker counts — the observability layer inherits
/// the executor's determinism guarantee.
#[test]
fn observability_output_is_thread_count_invariant() {
    let scenario = registry::by_name("fig7-small").expect("registered");
    let o = |threads| ExecOptions {
        threads,
        ops_per_core: 10,
        obs_override: Some(scorpio::ObsLevel::Trace),
        trace_limit: Some(4096),
        ..ExecOptions::default()
    };
    let hist = SinkOptions {
        include_hist: true,
        ..SinkOptions::default()
    };
    let serial = run_grid(&scenario.grid, &o(1));
    let json = sink::jsonl("fig7-small", &serial, hist);
    let csv = sink::csv("fig7-small", &serial, hist);
    assert!(json.contains(r#""obs":{"schema_version":3,"packet_latency":{"count":"#));
    assert!(json.contains(r#""p999":"#));
    assert!(csv.lines().next().unwrap().contains("packet_p50"));
    for threads in [2, 8] {
        let parallel = run_grid(&scenario.grid, &o(threads));
        assert_eq!(json, sink::jsonl("fig7-small", &parallel, hist));
        assert_eq!(csv, sink::csv("fig7-small", &parallel, hist));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.trace, b.trace, "{}: trace varies", a.spec.key());
            assert_eq!(a.trace_dropped, b.trace_dropped);
        }
    }
    // The trace actually recorded something on the SCORPIO rows.
    assert!(serial
        .iter()
        .any(|r| r.trace.as_ref().is_some_and(|t| !t.is_empty())));
}

/// *Intra-run* worker lanes (plane/region ticking on pool threads inside
/// one simulation, as opposed to the executor's run-level threads) must
/// not leak into output either: the same spec emits byte-identical sink
/// records for every lane count, including counts beyond the host's
/// cores.
#[test]
fn intra_run_worker_count_does_not_change_sink_output() {
    let scenario = registry::by_name("scaling-kilocore-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.planes == 4 && s.engine == Engine::Turbo)
        .expect("4-plane turbo cell exists");
    let run = |workers: usize| {
        run_spec_custom(&spec, 8, None, None, |sys| {
            sys.set_leap(true);
            sys.set_workers(workers);
        })
    };
    let base = run(1);
    let line = sink::json_line("kilocore", &base, SinkOptions::default());
    assert!(base.report.ops_completed > 0);
    for workers in [2, 3, 4, 8] {
        let other = run(workers);
        assert_eq!(
            line,
            sink::json_line("kilocore", &other, SinkOptions::default()),
            "sink record changed at {workers} intra-run workers"
        );
    }
}

/// Different seeds must actually produce different results (the seed axis
/// is not decorative).
#[test]
fn seeds_change_results() {
    let mut scenario = registry::by_name("fig7").expect("registered");
    scenario.grid.workloads.truncate(1);
    scenario.grid.protocols.truncate(1);
    scenario.grid.seeds = vec![1, 2];
    let results = run_grid(&scenario.grid, &opts(2));
    assert_eq!(results.len(), 2);
    assert_ne!(results[0].config_hash, results[1].config_hash);
    assert_ne!(
        results[0].report.to_json(),
        results[1].report.to_json(),
        "different seeds should perturb the simulation"
    );
}

/// A ≥4-worker fig7 sweep should beat the serial baseline wall-clock.
/// Ignored by default: the assertion is only meaningful on a multi-core
/// host (run with `cargo test -- --ignored` there).
#[test]
#[ignore = "timing assertion; requires a multi-core host"]
fn parallel_sweep_is_faster_than_serial() {
    let scenario = registry::by_name("fig7").expect("registered");
    // Long enough runs that per-run wall time dwarfs thread overhead.
    let long = |threads| ExecOptions {
        threads,
        ops_per_core: 60,
        ..ExecOptions::default()
    };
    let t0 = std::time::Instant::now();
    let serial = run_grid(&scenario.grid, &long(1));
    let serial_wall = t0.elapsed();
    let t1 = std::time::Instant::now();
    let parallel = run_grid(&scenario.grid, &long(4));
    let parallel_wall = t1.elapsed();
    assert_eq!(serial.len(), parallel.len());
    assert!(
        parallel_wall < serial_wall,
        "4 workers ({parallel_wall:?}) should beat serial ({serial_wall:?})"
    );
}
