//! The active-set engine's hard requirement: it is an *optimization*,
//! never a semantics change. Every run must produce a byte-identical
//! [`scorpio::SystemReport`] to the forced always-scan engine — across
//! every ordering protocol, since each protocol exercises different
//! wake/sleep paths (notification windows, reorder buffers, expiry
//! broadcasts, directory homes).

use scorpio::ObsLevel;
use scorpio_harness::exec::{run_spec, run_spec_custom, run_spec_opts};
use scorpio_harness::registry;
use scorpio_harness::{Engine, Knob};

/// Golden equivalence on the fig7-small grid: SCORPIO, TokenB, INSO-40,
/// LPD-D and HT-D, each compared engine-vs-engine via `to_json`.
#[test]
fn fig7_small_reports_are_byte_identical_across_engines() {
    let scenario = registry::by_name("fig7-small").expect("fig7-small is registered");
    let specs = scenario.grid.enumerate();
    assert_eq!(specs.len(), 10, "2 workloads x 5 protocols");
    for spec in specs {
        assert_eq!(spec.engine, Engine::ActiveSet);
        let mut scan_spec = spec.clone();
        scan_spec.engine = Engine::AlwaysScan;
        let active = run_spec(&spec, 12);
        let scan = run_spec(&scan_spec, 12);
        assert_eq!(
            active.report.to_json(),
            scan.report.to_json(),
            "engine divergence at {}",
            spec.key()
        );
        assert_eq!(active.config_hash, scan.config_hash);
    }
}

/// The new axis: every delivery fabric (mesh, torus, ring) under every
/// ordering protocol must produce byte-identical reports across all three
/// engines — active-set vs always-scan (scheduling is semantics-neutral)
/// and table routing vs per-flit coordinate routing (the tables are the
/// spec, memoized).
#[test]
fn topology_small_reports_are_byte_identical_across_engines() {
    let scenario = registry::by_name("topology-small").expect("topology-small is registered");
    let specs: Vec<_> = scenario
        .grid
        .enumerate()
        .into_iter()
        .filter(|s| s.workload.name == "blackscholes")
        .collect();
    assert_eq!(specs.len(), 3 * 5, "3 fabrics x 5 protocols");
    for spec in specs {
        assert_eq!(spec.engine, Engine::ActiveSet);
        let active = run_spec(&spec, 8);
        for engine in [Engine::AlwaysScan, Engine::CoordRoute] {
            let mut other_spec = spec.clone();
            other_spec.engine = engine;
            let other = run_spec(&other_spec, 8);
            assert_eq!(
                active.report.to_json(),
                other.report.to_json(),
                "engine divergence at {} vs {engine:?}",
                spec.key()
            );
            assert_eq!(active.config_hash, other.config_hash);
        }
    }
}

/// The plane axis: multi-plane main networks (2 and 4 planes, every
/// fabric) must produce byte-identical reports across all three engines.
/// This covers the idle-plane skip (the always-scan engine never skips a
/// plane, the active-set engine skips every quiescent one) and table vs
/// coordinate routing inside each plane.
#[test]
fn multi_plane_reports_are_byte_identical_across_engines() {
    let scenario = registry::by_name("planes-small").expect("planes-small is registered");
    let specs: Vec<_> = scenario
        .grid
        .enumerate()
        .into_iter()
        .filter(|s| s.planes != 1 && s.protocol == scorpio::Protocol::Scorpio)
        .collect();
    assert_eq!(specs.len(), 3 * 2, "3 fabrics x 2 multi-plane counts");
    for spec in specs {
        assert_eq!(spec.engine, Engine::ActiveSet);
        let active = run_spec(&spec, 8);
        assert!(active.report.ops_completed > 0);
        for engine in [Engine::AlwaysScan, Engine::CoordRoute] {
            let mut other_spec = spec.clone();
            other_spec.engine = engine;
            let other = run_spec(&other_spec, 8);
            assert_eq!(
                active.report.to_json(),
                other.report.to_json(),
                "engine divergence at {} vs {engine:?}",
                spec.key()
            );
            assert_eq!(active.config_hash, other.config_hash);
        }
    }
}

/// The concentrated-mesh axis: every concentration (1/2/4 tiles per
/// router), single- and multi-plane, must produce byte-identical reports
/// across all three engines. This exercises the endpoint-indexed broadcast
/// tables (source-slot-dependent fork masks), the per-slot ESID views and
/// the higher-radix router arbitration under both scheduling engines and
/// both routing engines — and SCORPIO's 2-plane cells cover the
/// cmesh × planes composition.
#[test]
fn cmesh_reports_are_byte_identical_across_engines() {
    let scenario = registry::by_name("cmesh-small").expect("cmesh-small is registered");
    let specs: Vec<_> = scenario
        .grid
        .enumerate()
        .into_iter()
        .filter(|s| {
            s.protocol == scorpio::Protocol::Scorpio
                || (s.fabric == scorpio_harness::Fabric::CMesh(4) && s.planes == 1)
        })
        .collect();
    // 3 concentrations x {1, 2} planes of SCORPIO + the four baseline
    // protocols at concentration 4.
    assert_eq!(specs.len(), 3 * 2 + 4);
    for spec in specs {
        assert_eq!(spec.engine, Engine::ActiveSet);
        let active = run_spec(&spec, 8);
        assert!(active.report.ops_completed > 0);
        for engine in [Engine::AlwaysScan, Engine::CoordRoute] {
            let mut other_spec = spec.clone();
            other_spec.engine = engine;
            let other = run_spec(&other_spec, 8);
            assert_eq!(
                active.report.to_json(),
                other.report.to_json(),
                "engine divergence at {} vs {engine:?}",
                spec.key()
            );
            assert_eq!(active.config_hash, other.config_hash);
        }
    }
}

/// The observability layer inherits the equivalence guarantee: with full
/// tracing on (counters, histograms and the flit-event stream), the
/// report — now carrying the `"obs"` annex with its percentiles, stall
/// splits and per-plane counters — and the merged trace itself must be
/// byte-identical across all three engines. Every hook sits after the
/// shared idle-skip check, so an engine that never visits a quiescent
/// router and one that visits-and-skips it must record the same thing.
/// Grid points cover single-plane mesh (fig7-small, all 5 protocols on
/// one workload), multi-plane fabrics and a concentrated mesh.
#[test]
fn observability_reports_and_traces_are_byte_identical_across_engines() {
    let fig7 = registry::by_name("fig7-small").expect("registered");
    let planes = registry::by_name("planes-small").expect("registered");
    let cmesh = registry::by_name("cmesh-small").expect("registered");
    let mut specs: Vec<_> = fig7
        .grid
        .enumerate()
        .into_iter()
        .filter(|s| s.workload.name == "blackscholes")
        .collect();
    assert_eq!(specs.len(), 5, "all 5 ordering protocols");
    specs.extend(
        planes
            .grid
            .enumerate()
            .into_iter()
            .filter(|s| s.planes == 4 && s.protocol == scorpio::Protocol::Scorpio),
    );
    specs.extend(cmesh.grid.enumerate().into_iter().filter(|s| {
        s.fabric == scorpio_harness::Fabric::CMesh(2) && s.protocol == scorpio::Protocol::Scorpio
    }));
    assert!(specs.len() > 5 + 3, "plane and cmesh cells present");
    for spec in specs {
        assert_eq!(spec.engine, Engine::ActiveSet);
        let run =
            |s: &scorpio_harness::RunSpec| run_spec_opts(s, 8, Some(ObsLevel::Trace), Some(2048));
        let active = run(&spec);
        let json = active.report.to_json();
        assert!(
            json.contains(r#""obs":{"schema_version":3,"packet_latency""#),
            "obs annex missing at {}",
            spec.key()
        );
        for engine in [Engine::AlwaysScan, Engine::CoordRoute] {
            let mut other_spec = spec.clone();
            other_spec.engine = engine;
            let other = run(&other_spec);
            assert_eq!(
                json,
                other.report.to_json(),
                "obs report divergence at {} vs {engine:?}",
                spec.key()
            );
            assert_eq!(
                active.trace,
                other.trace,
                "trace divergence at {} vs {engine:?}",
                spec.key()
            );
            assert_eq!(active.trace_dropped, other.trace_dropped);
            assert_eq!(active.config_hash, other.config_hash);
        }
    }
}

/// The acceptance benchmark behind the `planes-throughput` scenario: on
/// the broadcast-saturated 8×8 mesh, four address-interleaved planes must
/// deliver at least 1.5× the request throughput of the single network.
/// Runtime ratios of simulated cycles are deterministic, but the runs are
/// big — CI executes this under `--release --ignored` like the other
/// heavy benchmarks.
#[test]
#[ignore = "heavy: run explicitly with --release (CI throughput job)"]
fn four_planes_deliver_1_5x_throughput_on_a_saturated_mesh() {
    let scenario = registry::by_name("planes-throughput").expect("registered");
    let specs = scenario.grid.enumerate();
    let one = specs.iter().find(|s| s.planes == 1).expect("1-plane cell");
    let four = specs.iter().find(|s| s.planes == 4).expect("4-plane cell");
    let r1 = run_spec(one, 150);
    let r4 = run_spec(four, 150);
    assert_eq!(r1.report.ops_completed, r4.report.ops_completed);
    let speedup = r1.report.runtime_cycles as f64 / r4.report.runtime_cycles as f64;
    assert!(
        speedup >= 1.5,
        "4 planes delivered only {speedup:.2}x the single-network throughput \
         ({} vs {} cycles)",
        r4.report.runtime_cycles,
        r1.report.runtime_cycles
    );
}

/// The kilocore engines — the event-leaping clock and intra-run worker
/// lanes — are pure optimisations on top of whichever base engine runs:
/// the full {leap on/off} × {workers 1/2/4} matrix over all three
/// pre-existing engines must produce byte-identical reports AND merged
/// flit traces on a phased low-injection point (the regime where the
/// leap actually fires and crosses whole compute gaps in one step).
#[test]
fn leap_and_worker_matrix_is_byte_identical_including_traces() {
    let scenario = registry::by_name("scaling-mesh-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.mesh_side == 8 && s.workload.name == "uniform-low")
        .expect("8x8 uniform-low point exists");
    for engine in [Engine::ActiveSet, Engine::AlwaysScan, Engine::CoordRoute] {
        let run = |leap: bool, workers: usize| {
            run_spec_custom(&spec, 13, Some(ObsLevel::Trace), Some(1024), |sys| {
                match engine {
                    Engine::AlwaysScan => sys.set_always_scan(true),
                    Engine::CoordRoute => sys.set_table_routing(false),
                    _ => {}
                }
                sys.set_leap(leap);
                sys.set_workers(workers);
            })
        };
        let baseline = run(false, 1);
        let json = baseline.report.to_json();
        assert!(
            baseline.report.runtime_cycles > 40_000,
            "phased gap missing"
        );
        for leap in [false, true] {
            for workers in [1usize, 2, 4] {
                if !leap && workers == 1 {
                    continue; // that is the baseline
                }
                let other = run(leap, workers);
                assert_eq!(
                    json,
                    other.report.to_json(),
                    "report divergence: {engine:?} leap={leap} workers={workers}"
                );
                assert_eq!(
                    baseline.trace, other.trace,
                    "trace divergence: {engine:?} leap={leap} workers={workers}"
                );
                assert_eq!(baseline.trace_dropped, other.trace_dropped);
                // The leap really fired (except under always-scan, whose
                // guard disables it — nothing is quiescent to skip).
                if leap && engine != Engine::AlwaysScan {
                    assert!(
                        other.stepped_cycles < baseline.stepped_cycles / 2,
                        "{engine:?}: leap never fired ({} of {} cycles stepped)",
                        other.stepped_cycles,
                        baseline.stepped_cycles
                    );
                }
            }
        }
    }
}

/// The hierarchical notification scheme composes with the kilocore
/// engines: under the quad-f2 window the same {leap on/off} × {workers
/// 1/2/4} matrix over all three base engines must again be byte-identical
/// in reports AND merged flit traces. This is the quad row of the
/// `{flat, quad} × {leap, workers} × engines` matrix (the flat row is
/// `leap_and_worker_matrix_is_byte_identical_including_traces` above) and
/// doubles as the flat-vs-quad parallel-vs-serial comparison: within each
/// scheme, worker lanes and the serial clock agree to the byte. The two
/// schemes are deliberately *not* compared to each other — the quad tree
/// shortens the notification window, so it is a different (hash-visible)
/// machine.
#[test]
fn quad_notify_matrix_is_byte_identical_including_traces() {
    let scenario = registry::by_name("scaling-mesh-small").expect("registered");
    let mut spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.mesh_side == 8 && s.workload.name == "uniform-low")
        .expect("8x8 uniform-low point exists");
    spec.variant.label = format!("{}+quad-f2", spec.variant.label);
    spec.variant.knobs.push(Knob::QuadNotify(2));
    for engine in [Engine::ActiveSet, Engine::AlwaysScan, Engine::CoordRoute] {
        let run = |leap: bool, workers: usize| {
            run_spec_custom(&spec, 13, Some(ObsLevel::Trace), Some(1024), |sys| {
                match engine {
                    Engine::AlwaysScan => sys.set_always_scan(true),
                    Engine::CoordRoute => sys.set_table_routing(false),
                    _ => {}
                }
                sys.set_leap(leap);
                sys.set_workers(workers);
            })
        };
        let baseline = run(false, 1);
        let json = baseline.report.to_json();
        assert!(baseline.regions > 1, "quad scheme did not partition");
        assert!(
            baseline.report.runtime_cycles > 40_000,
            "phased gap missing"
        );
        for leap in [false, true] {
            for workers in [1usize, 2, 4] {
                if !leap && workers == 1 {
                    continue; // that is the baseline
                }
                let other = run(leap, workers);
                assert_eq!(
                    json,
                    other.report.to_json(),
                    "report divergence: quad-f2 {engine:?} leap={leap} workers={workers}"
                );
                assert_eq!(
                    baseline.trace, other.trace,
                    "trace divergence: quad-f2 {engine:?} leap={leap} workers={workers}"
                );
                assert_eq!(baseline.trace_dropped, other.trace_dropped);
                if leap && engine != Engine::AlwaysScan {
                    assert!(
                        other.stepped_cycles < baseline.stepped_cycles / 2,
                        "quad-f2 {engine:?}: leap never fired ({} of {} cycles stepped)",
                        other.stepped_cycles,
                        baseline.stepped_cycles
                    );
                    // Per-region accounting saw idle quads: the summed
                    // per-quad stepped cycles stay under stepped × quads.
                    assert!(
                        other.region_cycles_stepped < other.stepped_cycles * other.regions as u64,
                        "quad-f2 {engine:?}: every quad was active every stepped cycle"
                    );
                }
            }
        }
    }
}

/// The wider quad tree (fanout 4) gets the same guarantee on the
/// cheapest slice of the matrix: leap and turbo vs the stepped baseline.
#[test]
fn quad_f4_leap_and_turbo_are_byte_identical() {
    let scenario = registry::by_name("scaling-mesh-small").expect("registered");
    let mut spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.mesh_side == 8 && s.workload.name == "uniform-low")
        .expect("8x8 uniform-low point exists");
    spec.variant.label = format!("{}+quad-f4", spec.variant.label);
    spec.variant.knobs.push(Knob::QuadNotify(4));
    let run = |leap: bool, workers: usize| {
        run_spec_custom(&spec, 13, Some(ObsLevel::Trace), Some(1024), |sys| {
            sys.set_leap(leap);
            sys.set_workers(workers);
        })
    };
    let baseline = run(false, 1);
    assert!(baseline.regions > 1, "quad scheme did not partition");
    for (leap, workers) in [(true, 1), (true, 4)] {
        let other = run(leap, workers);
        assert_eq!(
            baseline.report.to_json(),
            other.report.to_json(),
            "report divergence: quad-f4 leap={leap} workers={workers}"
        );
        assert_eq!(baseline.trace, other.trace);
        assert!(other.stepped_cycles < baseline.stepped_cycles / 2);
    }
}

/// A compute gap longer than the 50k-cycle deadlock watchdog must not
/// trip it under the leap engine: the watchdog counts *stepped* progress
/// (a wedged machine really steps without completing ops), and the leap
/// engine crosses the whole gap in one step. Under the old cycle-delta
/// watchdog this run panicked as a false positive.
#[test]
fn watchdog_tolerates_leaped_gaps_beyond_50k_cycles() {
    let scenario = registry::by_name("scaling-mesh-small").expect("registered");
    let mut spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.mesh_side == 8 && s.workload.name == "uniform-low")
        .expect("8x8 uniform-low point exists");
    spec.workload.phase_gap = 120_000;
    spec.engine = Engine::Leap;
    let r = run_spec(&spec, 13);
    assert!(r.report.ops_completed > 0);
    assert!(
        r.report.runtime_cycles > 120_000,
        "the >50k gap never happened ({} cycles)",
        r.report.runtime_cycles
    );
    assert!(
        r.stepped_cycles < r.report.runtime_cycles / 2,
        "the gap was stepped ({} of {}), not leaped",
        r.stepped_cycles,
        r.report.runtime_cycles
    );

    // The quad-leap case: under the hierarchical scheme the watchdog's
    // stepped-progress accounting must likewise ignore cycles crossed by
    // the leap — including the per-region ledger, which counts a leaf
    // quad only on cycles it was actually ticked. A bug that charged
    // leaped cycles to every region (or stepped progress to the watchdog)
    // trips the 50k assertion inside `run_to_completion`.
    spec.variant.label = format!("{}+quad-f2", spec.variant.label);
    spec.variant.knobs.push(Knob::QuadNotify(2));
    let q = run_spec(&spec, 13);
    assert!(q.report.ops_completed > 0);
    assert!(
        q.report.runtime_cycles > 120_000,
        "the >50k gap never happened under quad-f2 ({} cycles)",
        q.report.runtime_cycles
    );
    assert!(
        q.stepped_cycles < q.report.runtime_cycles / 2,
        "the quad-f2 gap was stepped ({} of {}), not leaped",
        q.stepped_cycles,
        q.report.runtime_cycles
    );
    assert!(q.regions > 1);
    assert!(
        q.region_cycles_stepped < q.stepped_cycles * q.regions as u64,
        "per-region ledger charged every quad on every stepped cycle \
         ({} >= {} x {})",
        q.region_cycles_stepped,
        q.stepped_cycles,
        q.regions
    );
}

/// The acceptance benchmark behind the `scaling-kilocore` scenario: on
/// the phased low-injection kilocore cell, the turbo engine (leap +
/// worker lanes) must simulate at least 3× the cycles/sec of the
/// active-set engine. Wall-clock assertion, so ignored by default like
/// the other heavy benchmarks (CI throughput job, `--release --ignored`).
#[test]
#[ignore = "heavy timing benchmark: run explicitly with --release (CI throughput job)"]
fn turbo_engine_is_3x_on_kilocore_low_injection() {
    let scenario = registry::by_name("scaling-kilocore").expect("registered");
    let specs = scenario.grid.enumerate();
    let active = specs
        .iter()
        .find(|s| s.mesh_side == 32 && s.fabric == scorpio_harness::Fabric::Mesh)
        .expect("32x32 active cell");
    let mut turbo = active.clone();
    turbo.engine = Engine::Turbo;
    let ra = run_spec(active, 150);
    let rt = run_spec(&turbo, 150);
    assert_eq!(ra.report.to_json(), rt.report.to_json(), "engines diverged");
    // The leap fired: the turbo engine stepped well under the simulated
    // cycle count. This part holds on any host.
    assert!(
        rt.stepped_cycles < ra.stepped_cycles,
        "turbo never leaped ({} vs {} stepped cycles)",
        rt.stepped_cycles,
        ra.stepped_cycles
    );
    // The wall-clock floor needs the worker lanes to actually run in
    // parallel; on a smaller host turbo degenerates to the leap engine
    // (lanes are clamped to the host), so only the leap assertion above
    // is meaningful there.
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host < 4 {
        eprintln!("skipping the 3x floor: host has {host} core(s), the lanes would timeshare");
        return;
    }
    let rate = |r: &scorpio_harness::RunResult| {
        r.report.runtime_cycles as f64 * 1e9 / r.sim_nanos.max(1) as f64
    };
    let speedup = rate(&rt) / rate(&ra);
    assert!(
        speedup >= 3.0,
        "turbo simulated only {speedup:.2}x the active-set engine's cycles/sec \
         ({:.0} vs {:.0})",
        rate(&rt),
        rate(&ra)
    );
}

/// The acceptance benchmark behind the quad-notify kilocore cells: on
/// the drifting 32×32 mesh the machine-wide leap ratio is poor (one
/// busy tile anywhere keeps the global clock stepping), but the
/// per-region ledger must show event leaping working quad-by-quad —
/// simulated cycles over mean stepped cycles per leaf quad at least 3×,
/// and above the machine-wide ratio. Deterministic (ratios of simulated
/// quantities), but kilocore-heavy, so ignored like the other release
/// benchmarks (CI throughput job).
#[test]
#[ignore = "heavy: run explicitly with --release (CI throughput job)"]
fn quad_leap_region_ratio_floor_on_kilocore() {
    let scenario = registry::by_name("scaling-kilocore").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| {
            s.mesh_side == 32
                && s.fabric == scorpio_harness::Fabric::Mesh
                && s.engine == Engine::Leap
                && s.variant.knobs.contains(&Knob::QuadNotify(2))
        })
        .expect("32x32 quad-f2 leap cell");
    // The tree shrank the window: 13 cycles at 32×32 against flat's 65.
    assert!(
        spec.config().notification_window() <= 20,
        "quad window regressed: {}",
        spec.config().notification_window()
    );
    let r = run_spec(&spec, 150);
    assert!(r.report.ops_completed > 0);
    assert!(r.regions > 1, "quad scheme did not partition");
    let machine = r.report.runtime_cycles as f64 / r.stepped_cycles.max(1) as f64;
    let region =
        r.report.runtime_cycles as f64 * r.regions as f64 / r.region_cycles_stepped.max(1) as f64;
    assert!(
        region >= 3.0,
        "per-region leap ratio only {region:.2}x (machine-wide {machine:.2}x)"
    );
    assert!(
        region > machine,
        "per-region ratio {region:.2}x not above machine-wide {machine:.2}x"
    );
}

/// The same holds on a larger mesh with proportional MCs and the
/// phased low-injection workload — the regime where the active-set
/// engine actually skips most of the machine.
#[test]
fn scaling_mesh_point_is_byte_identical_across_engines() {
    let scenario = registry::by_name("scaling-mesh-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.mesh_side == 8 && s.workload.name == "uniform-low")
        .expect("8x8 uniform-low point exists");
    let mut scan_spec = spec.clone();
    scan_spec.engine = Engine::AlwaysScan;
    let active = run_spec(&spec, 13);
    let scan = run_spec(&scan_spec, 13);
    assert_eq!(
        active.report.to_json(),
        scan.report.to_json(),
        "engine divergence at {}",
        spec.key()
    );
    // The runs did real work and really slept through phases.
    assert!(active.report.ops_completed > 0);
    assert!(active.report.runtime_cycles > 40_000, "phased gap missing");
}
