//! Documentation consistency: the registry is the source of truth for
//! what can be run, and EXPERIMENTS.md is its user-facing catalogue. A
//! scenario that exists but is undocumented silently rots (nobody runs
//! it, nothing explains its columns), so CI fails the build instead.

use scorpio_harness::registry;

/// Repo-root file contents (the harness crate lives two levels down).
fn repo_file(name: &str) -> String {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Every registered scenario name must appear — backticked, so a name
/// that is merely a substring of another (`fig6` in `fig6-small`) cannot
/// satisfy the check by accident — in EXPERIMENTS.md.
#[test]
fn every_scenario_name_is_documented_in_experiments_md() {
    let md = repo_file("EXPERIMENTS.md");
    let mut missing = Vec::new();
    for s in registry::scenarios() {
        if !md.contains(&format!("`{}`", s.name)) {
            missing.push(s.name);
        }
    }
    assert!(
        missing.is_empty(),
        "scenarios missing from EXPERIMENTS.md (add a `name` entry for each): {missing:?}"
    );
}

/// The README's topology section documents the fabric axis; every fabric
/// kind the harness can sweep must be mentioned so run examples exist for
/// all of them.
#[test]
fn readme_documents_every_fabric_kind() {
    let md = repo_file("README.md");
    for fabric in ["mesh", "torus", "ring", "cmesh"] {
        assert!(
            md.contains(fabric),
            "README.md never mentions the {fabric} fabric"
        );
    }
}

/// DESIGN.md §13 is the trace schema's reference: every event kind the
/// tracer can emit must be documented there (quoted, as it appears on
/// the wire), and the README must show the `--trace` flag. The kind
/// list mirrors `scorpio_noc::TraceKind::name` — a new variant without
/// documentation fails here.
#[test]
fn design_md_documents_the_full_trace_schema() {
    let md = repo_file("DESIGN.md");
    for kind in [
        "inject",
        "vc-alloc",
        "hop",
        "bypass",
        "eject",
        "ordered-commit",
    ] {
        assert!(
            md.contains(&format!("\"{kind}\"")),
            "DESIGN.md never documents the {kind:?} trace event kind"
        );
    }
    let readme = repo_file("README.md");
    assert!(
        readme.contains("--trace"),
        "README.md lacks a --trace example"
    );
    assert!(readme.contains("--hist"), "README.md lacks the --hist flag");
}

/// EXPERIMENTS.md documents the histogram CSV columns the `--hist` flag
/// adds, so consumers of sweep CSVs can find what the columns mean.
#[test]
fn experiments_md_documents_percentile_columns() {
    let md = repo_file("EXPERIMENTS.md");
    for col in ["packet_p50", "packet_p999", "ordering_p50", "ordering_p999"] {
        assert!(
            md.contains(col),
            "EXPERIMENTS.md never mentions the {col} CSV column"
        );
    }
}

/// DESIGN.md §16 is the span schema's reference: each of the seven phase
/// names must appear quoted as it does on the wire, and the README must
/// show the `--spans`/`--windows` flags. The phase list mirrors
/// `scorpio::span_json` — a renamed phase without documentation fails
/// here.
#[test]
fn design_md_documents_the_span_phases() {
    let md = repo_file("DESIGN.md");
    for phase in [
        "source", "queue", "inject", "flight", "commit", "data", "fill",
    ] {
        assert!(
            md.contains(&format!("\"{phase}\"")),
            "DESIGN.md never documents the {phase:?} span phase"
        );
    }
    let readme = repo_file("README.md");
    assert!(
        readme.contains("--spans"),
        "README.md lacks a --spans example"
    );
    assert!(
        readme.contains("--windows"),
        "README.md lacks a --windows example"
    );
}

/// EXPERIMENTS.md documents the span and window CSV columns so sweep-CSV
/// consumers can find what the opt-in columns mean.
#[test]
fn experiments_md_documents_span_and_window_columns() {
    let md = repo_file("EXPERIMENTS.md");
    for col in [
        "span_queue",
        "span_fill",
        "warmup",
        "steady_ops",
        "max_wait_ep",
    ] {
        assert!(
            md.contains(col),
            "EXPERIMENTS.md never mentions the {col} CSV column"
        );
    }
    assert!(
        md.contains("schema_version"),
        "EXPERIMENTS.md never mentions the obs annex schema_version"
    );
}

/// EXPERIMENTS.md documents the open-loop sweep columns: the arrival
/// axis every sink row now carries, the source-queue span phase, the
/// window-fairness minimum and the drop counter. DESIGN.md §17 is the
/// arrival-process reference, so the generator names and the knee rule
/// must appear there.
#[test]
fn open_loop_columns_and_processes_are_documented() {
    let md = repo_file("EXPERIMENTS.md");
    for col in [
        "arrival",
        "load_millis",
        "span_source",
        "min_wait_ep",
        "min_wait_mean",
        "source_dropped",
    ] {
        assert!(
            md.contains(col),
            "EXPERIMENTS.md never mentions the {col} CSV column"
        );
    }
    let design = repo_file("DESIGN.md");
    for term in ["Poisson", "bursty", "offered load", "knee"] {
        assert!(
            design.contains(term),
            "DESIGN.md never documents the open-loop term {term:?}"
        );
    }
    let readme = repo_file("README.md");
    assert!(
        readme.contains("latency-curve-small"),
        "README.md lacks an open-loop run example"
    );
}
