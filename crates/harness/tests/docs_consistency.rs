//! Documentation consistency: the registry is the source of truth for
//! what can be run, and EXPERIMENTS.md is its user-facing catalogue. A
//! scenario that exists but is undocumented silently rots (nobody runs
//! it, nothing explains its columns), so CI fails the build instead.

use scorpio_harness::registry;

/// Repo-root file contents (the harness crate lives two levels down).
fn repo_file(name: &str) -> String {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Every registered scenario name must appear — backticked, so a name
/// that is merely a substring of another (`fig6` in `fig6-small`) cannot
/// satisfy the check by accident — in EXPERIMENTS.md.
#[test]
fn every_scenario_name_is_documented_in_experiments_md() {
    let md = repo_file("EXPERIMENTS.md");
    let mut missing = Vec::new();
    for s in registry::scenarios() {
        if !md.contains(&format!("`{}`", s.name)) {
            missing.push(s.name);
        }
    }
    assert!(
        missing.is_empty(),
        "scenarios missing from EXPERIMENTS.md (add a `name` entry for each): {missing:?}"
    );
}

/// The README's topology section documents the fabric axis; every fabric
/// kind the harness can sweep must be mentioned so run examples exist for
/// all of them.
#[test]
fn readme_documents_every_fabric_kind() {
    let md = repo_file("README.md");
    for fabric in ["mesh", "torus", "ring", "cmesh"] {
        assert!(
            md.contains(fabric),
            "README.md never mentions the {fabric} fabric"
        );
    }
}
