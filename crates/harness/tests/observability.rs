//! Observability integration: the flit trace is not a parallel truth.
//! Every `eject` event carries the packet's end-to-end latency, so the
//! trace must *reconcile exactly* with the aggregate packet-latency
//! histogram the report carries — rebuild the histogram from the trace
//! and the buckets must match one for one. And the layer must be free
//! when off (the `--ignored` release benchmark below).

use scorpio::ObsLevel;
use scorpio_harness::exec::{run_spec, run_spec_opts, RunResult};
use scorpio_harness::registry;
use std::collections::{HashMap, HashSet};

/// Tiny numeric-field extractor for the hand-rolled trace JSON (no JSON
/// parser in the dependency-free build): the value of `"key":` up to the
/// next `,` or `}`.
fn field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// The `"event"` kind string of a trace line.
fn kind(line: &str) -> &str {
    let pat = "\"event\":\"";
    let start = line.find(pat).expect("trace line has an event kind") + pat.len();
    let rest = &line[start..];
    &rest[..rest.find('"').expect("kind string is terminated")]
}

/// Run one SCORPIO cell with an effectively unbounded trace and check
/// that (a) every eject's `lat` equals its packet's inject→eject span,
/// (b) the histogram rebuilt from the `lat` fields matches the report's
/// packet-latency histogram bucket for bucket, and (c) the trace
/// exercises the full documented schema (all six event kinds).
#[test]
fn trace_reconciles_with_packet_latency_histogram() {
    let scenario = registry::by_name("fig7-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.protocol == scorpio::Protocol::Scorpio)
        .expect("a SCORPIO cell exists");
    let r = run_spec_opts(&spec, 10, Some(ObsLevel::Trace), Some(10_000_000));
    assert_eq!(r.trace_dropped, 0, "the cap must not truncate this run");
    let obs = r.report.obs.as_deref().expect("obs annex present");
    let trace = r.trace.as_ref().expect("trace recorded");

    let mut inject: HashMap<(u64, u64), u64> = HashMap::new();
    let mut buckets = [0u64; 65];
    let mut ejects = 0u64;
    let mut kinds = HashSet::new();
    for line in trace {
        let k = kind(line);
        kinds.insert(k.to_string());
        match k {
            "inject" => {
                let key = (field(line, "plane").unwrap(), field(line, "uid").unwrap());
                inject.insert(key, field(line, "cycle").unwrap());
            }
            "eject" => {
                ejects += 1;
                let lat = field(line, "lat").unwrap();
                buckets[(64 - lat.leading_zeros()) as usize] += 1;
                let key = (field(line, "plane").unwrap(), field(line, "uid").unwrap());
                let t0 = inject[&key];
                assert_eq!(
                    field(line, "cycle").unwrap() - t0,
                    lat,
                    "inject→eject span disagrees with lat: {line}"
                );
            }
            _ => {}
        }
    }
    assert!(ejects > 0, "the run delivered packets");
    assert_eq!(obs.packet_latency.count(), ejects, "one sample per eject");
    let reported: Vec<(usize, u64)> = obs.packet_latency.nonzero_buckets().collect();
    let rebuilt: Vec<(usize, u64)> = buckets
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (i, c))
        .collect();
    assert_eq!(
        reported, rebuilt,
        "trace does not reconcile with the histogram"
    );
    for k in [
        "inject",
        "vc-alloc",
        "hop",
        "bypass",
        "eject",
        "ordered-commit",
    ] {
        assert!(kinds.contains(k), "trace never emitted a {k:?} event");
    }
}

/// When the cap bites, the retained events are the exact global prefix —
/// the capped trace must equal the first `limit` lines of the uncapped
/// one, and the report's kept/dropped split must account for every event.
#[test]
fn capped_trace_is_an_exact_prefix_of_the_uncapped_trace() {
    let scenario = registry::by_name("fig7-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.protocol == scorpio::Protocol::Scorpio)
        .expect("a SCORPIO cell exists");
    let full = run_spec_opts(&spec, 8, Some(ObsLevel::Trace), Some(10_000_000));
    let capped = run_spec_opts(&spec, 8, Some(ObsLevel::Trace), Some(200));
    let full_trace = full.trace.as_ref().unwrap();
    let capped_trace = capped.trace.as_ref().unwrap();
    assert!(full_trace.len() > 200, "run is big enough to hit the cap");
    assert_eq!(capped_trace.len(), 200);
    assert_eq!(
        &full_trace[..200],
        &capped_trace[..],
        "capped trace is not the exact global prefix"
    );
    assert!(capped.trace_dropped > 0);
    // Identical simulation either way: the cap only truncates output.
    assert_eq!(full.report.runtime_cycles, capped.report.runtime_cycles);
}

/// The disabled-cost bound behind the `obs-overhead` scenario. The
/// obs-off hot path is structurally the pre-observability engine plus
/// one `Option`-is-`None` branch per hook; a same-process binary
/// *without* those branches does not exist, so the <2% bound is
/// asserted as measurement stability: interleaved best-of-N A/B runs of
/// the identical obs-off cell must agree within 2%, which makes the
/// absolute simulated-cycles/sec this cell records into the BENCH JSONL
/// artifact comparable across commits at the 2% level — where a
/// disabled-path regression would surface. Ignored by default: timing
/// assertions need a quiet multi-core host (CI's throughput job runs it
/// under `--release`).
#[test]
#[ignore = "timing assertion; CI throughput job runs it under --release"]
fn disabled_observability_costs_under_two_percent() {
    let scenario = registry::by_name("obs-overhead-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.variant.label == "obs-off")
        .expect("the obs-off cell exists");
    let rate = |r: &RunResult| r.report.runtime_cycles as f64 * 1e9 / r.sim_nanos as f64;
    let (mut a, mut b) = (0.0f64, 0.0f64);
    for _ in 0..5 {
        a = a.max(rate(&run_spec(&spec, 30)));
        b = b.max(rate(&run_spec(&spec, 30)));
    }
    let delta = (a / b - 1.0).abs();
    assert!(
        delta < 0.02,
        "obs-off throughput unstable beyond the 2% bound: {a:.0} vs {b:.0} cyc/sec \
         ({:.2}% apart)",
        delta * 100.0
    );
}
