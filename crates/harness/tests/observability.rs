//! Observability integration: the flit trace is not a parallel truth.
//! Every `eject` event carries the packet's end-to-end latency, so the
//! trace must *reconcile exactly* with the aggregate packet-latency
//! histogram the report carries — rebuild the histogram from the trace
//! and the buckets must match one for one. And the layer must be free
//! when off (the `--ignored` release benchmark below).

use scorpio::ObsLevel;
use scorpio_harness::exec::{run_spec, run_spec_full, run_spec_opts, Overrides, RunResult};
use scorpio_harness::registry;
use std::collections::{HashMap, HashSet};

/// Tiny numeric-field extractor for the hand-rolled trace JSON (no JSON
/// parser in the dependency-free build): the value of `"key":` up to the
/// next `,` or `}`.
fn field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// The `"event"` kind string of a trace line.
fn kind(line: &str) -> &str {
    let pat = "\"event\":\"";
    let start = line.find(pat).expect("trace line has an event kind") + pat.len();
    let rest = &line[start..];
    &rest[..rest.find('"').expect("kind string is terminated")]
}

/// Run one SCORPIO cell with an effectively unbounded trace and check
/// that (a) every eject's `lat` equals its packet's inject→eject span,
/// (b) the histogram rebuilt from the `lat` fields matches the report's
/// packet-latency histogram bucket for bucket, and (c) the trace
/// exercises the full documented schema (all six event kinds).
#[test]
fn trace_reconciles_with_packet_latency_histogram() {
    let scenario = registry::by_name("fig7-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.protocol == scorpio::Protocol::Scorpio)
        .expect("a SCORPIO cell exists");
    let r = run_spec_opts(&spec, 10, Some(ObsLevel::Trace), Some(10_000_000));
    assert_eq!(r.trace_dropped, 0, "the cap must not truncate this run");
    let obs = r.report.obs.as_deref().expect("obs annex present");
    let trace = r.trace.as_ref().expect("trace recorded");

    let mut inject: HashMap<(u64, u64), u64> = HashMap::new();
    let mut buckets = [0u64; 65];
    let mut ejects = 0u64;
    let mut kinds = HashSet::new();
    for line in trace {
        let k = kind(line);
        kinds.insert(k.to_string());
        match k {
            "inject" => {
                let key = (field(line, "plane").unwrap(), field(line, "uid").unwrap());
                inject.insert(key, field(line, "cycle").unwrap());
            }
            "eject" => {
                ejects += 1;
                let lat = field(line, "lat").unwrap();
                buckets[(64 - lat.leading_zeros()) as usize] += 1;
                let key = (field(line, "plane").unwrap(), field(line, "uid").unwrap());
                let t0 = inject[&key];
                assert_eq!(
                    field(line, "cycle").unwrap() - t0,
                    lat,
                    "inject→eject span disagrees with lat: {line}"
                );
            }
            _ => {}
        }
    }
    assert!(ejects > 0, "the run delivered packets");
    assert_eq!(obs.packet_latency.count(), ejects, "one sample per eject");
    let reported: Vec<(usize, u64)> = obs.packet_latency.nonzero_buckets().collect();
    let rebuilt: Vec<(usize, u64)> = buckets
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (i, c))
        .collect();
    assert_eq!(
        reported, rebuilt,
        "trace does not reconcile with the histogram"
    );
    for k in [
        "inject",
        "vc-alloc",
        "hop",
        "bypass",
        "eject",
        "ordered-commit",
    ] {
        assert!(kinds.contains(k), "trace never emitted a {k:?} event");
    }
}

/// When the cap bites, the retained events are the exact global prefix —
/// the capped trace must equal the first `limit` lines of the uncapped
/// one, and the report's kept/dropped split must account for every event.
#[test]
fn capped_trace_is_an_exact_prefix_of_the_uncapped_trace() {
    let scenario = registry::by_name("fig7-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.protocol == scorpio::Protocol::Scorpio)
        .expect("a SCORPIO cell exists");
    let full = run_spec_opts(&spec, 8, Some(ObsLevel::Trace), Some(10_000_000));
    let capped = run_spec_opts(&spec, 8, Some(ObsLevel::Trace), Some(200));
    let full_trace = full.trace.as_ref().unwrap();
    let capped_trace = capped.trace.as_ref().unwrap();
    assert!(full_trace.len() > 200, "run is big enough to hit the cap");
    assert_eq!(capped_trace.len(), 200);
    assert_eq!(
        &full_trace[..200],
        &capped_trace[..],
        "capped trace is not the exact global prefix"
    );
    assert!(capped.trace_dropped > 0);
    // Identical simulation either way: the cap only truncates output.
    assert_eq!(full.report.runtime_cycles, capped.report.runtime_cycles);
}

/// The SCORPIO cell of `fig7-small` — the shared subject of the span
/// suite below.
fn scorpio_cell() -> scorpio_harness::RunSpec {
    registry::by_name("fig7-small")
        .expect("registered")
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.protocol == scorpio::Protocol::Scorpio)
        .expect("a SCORPIO cell exists")
}

/// The shared body of the span-reconciliation suite: every span line
/// must (a) carry phases that are exactly the differences of its stamps
/// and partition its end-to-end latency, (b) rebuild the annex's
/// per-phase histograms bucket for bucket, and (c) reconcile with the
/// scalar report: inject+flight+commit is the ordering delay, and span
/// totals plus hit latencies rebuild the full L2 service distribution.
fn check_span_reconciliation(r: &RunResult) {
    let obs = r.report.obs.as_deref().expect("obs annex present");
    let sp = obs.spans.as_ref().expect("span report present");
    let spans = r.spans.as_ref().expect("spans recorded");
    assert_eq!(r.spans_dropped, 0, "the cap must not truncate this run");
    assert_eq!(sp.dropped, 0);
    assert_eq!(sp.count as usize, spans.len());
    assert!(!spans.is_empty(), "the run missed at least once");

    const PHASES: [&str; 7] = [
        "source", "queue", "inject", "flight", "commit", "data", "fill",
    ];
    let mut rebuilt: HashMap<&str, [u64; 65]> = HashMap::new();
    let mut totals = [0u64; 65];
    let bucket = |v: u64| (64 - v.leading_zeros()) as usize;
    for line in spans {
        // `inject`/`data` name both an absolute stamp and a phase, so
        // split at the phases object before extracting fields.
        let (head, phases) = line.split_once("\"phases\":").expect("span has phases");
        let stamp = |key| field(head, key).unwrap_or_else(|| panic!("span lacks {key}: {line}"));
        let phase = |key| field(phases, key).unwrap_or_else(|| panic!("span lacks {key}: {line}"));
        // Stamps are monotonic through the pipeline and the phases are
        // exactly their differences.
        assert_eq!(phase("source"), stamp("admitted") - stamp("enqueued"));
        assert_eq!(phase("queue"), stamp("issue") - stamp("admitted"));
        assert_eq!(phase("inject"), stamp("inject") - stamp("issue"));
        assert_eq!(phase("flight"), stamp("popped") - stamp("inject"));
        assert_eq!(phase("commit"), stamp("ordered") - stamp("popped"));
        let ready = stamp("data").max(stamp("ordered"));
        assert_eq!(phase("data"), ready - stamp("ordered"));
        assert_eq!(phase("fill"), stamp("retire") - ready);
        // The seven phases partition the end-to-end miss latency.
        let total: u64 = PHASES.iter().map(|&p| phase(p)).sum();
        assert_eq!(total, stamp("retire") - stamp("enqueued"));
        for p in PHASES {
            rebuilt.entry(p).or_insert([0; 65])[bucket(phase(p))] += 1;
        }
        totals[bucket(total)] += 1;
    }
    let nz = |b: &[u64; 65]| -> Vec<(usize, u64)> {
        b.iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    };
    for (name, hist) in PHASES.iter().zip([
        &sp.source, &sp.queue, &sp.inject, &sp.flight, &sp.commit, &sp.data, &sp.fill,
    ]) {
        assert_eq!(
            hist.nonzero_buckets().collect::<Vec<_>>(),
            nz(&rebuilt[name]),
            "span stream does not rebuild the {name} histogram"
        );
    }
    assert_eq!(sp.total.nonzero_buckets().collect::<Vec<_>>(), nz(&totals));

    // Scalar reconciliation — the identities the latency-breakdown
    // table prints as `exact`.
    let ordering = &r.report.ordering_delay;
    assert_eq!(sp.inject.count(), ordering.count());
    assert_eq!(
        sp.inject.sum() + sp.flight.sum() + sp.commit.sum(),
        ordering.sum(),
        "inject+flight+commit must be the ordering delay"
    );
    let service = &r.report.l2_service_latency;
    assert_eq!(sp.total.count() + sp.hit.count(), service.count());
    assert_eq!(
        sp.total.sum() + sp.hit.sum(),
        service.sum(),
        "span totals + hits must rebuild the L2 service distribution"
    );
}

/// Closed-loop spans reconcile, and the source phase — arrival to
/// source-queue release, which only open-loop injection can stretch —
/// is identically zero because a closed-loop request is admitted the
/// cycle it is generated.
#[test]
fn spans_reconcile_with_report_histograms() {
    let r = run_spec_full(
        &scorpio_cell(),
        10,
        &Overrides {
            spans: true,
            ..Overrides::default()
        },
        |_| {},
    );
    check_span_reconciliation(&r);
    let sp = r.report.obs.as_deref().unwrap().spans.as_ref().unwrap();
    assert_eq!(sp.source.sum(), 0, "closed-loop source wait must be zero");
    assert_eq!(sp.source.count(), sp.total.count());
}

/// Open-loop spans reconcile too, and the source phase is *live*: at an
/// offered load past the service capacity the bounded source queue
/// actually backs up, so the rebuilt-from-stream source histogram must
/// carry real wait — the new phase joins the partition of
/// retire−enqueued rather than riding alongside it.
#[test]
fn open_loop_spans_reconcile_and_fill_the_source_phase() {
    let scenario = registry::by_name("latency-curve-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| {
            s.protocol == scorpio::Protocol::Scorpio
                && s.fabric == scorpio_harness::Fabric::Mesh
                && s.variant.label == "pois-30"
        })
        .expect("the mesh SCORPIO pois-30 cell exists");
    let r = run_spec_full(
        &spec,
        10,
        &Overrides {
            spans: true,
            ..Overrides::default()
        },
        |_| {},
    );
    check_span_reconciliation(&r);
    let sp = r.report.obs.as_deref().unwrap().spans.as_ref().unwrap();
    assert!(
        sp.source.sum() > 0,
        "past-capacity offered load never queued at the source"
    );
}

/// Spans and windows are simulation truth, so every engine must render
/// byte-identical streams — the always-scan and coordinate-routing
/// references, the leaping clock, parallel worker lanes, and the
/// combined turbo engine, on single- and multi-plane configurations.
#[test]
fn span_and_window_streams_are_engine_invariant() {
    let ov = Overrides {
        spans: true,
        window_cycles: Some(256),
        ..Overrides::default()
    };
    type Tweak = fn(&mut scorpio::System);
    let cases: [(&str, Tweak); 5] = [
        ("scan", |s| s.set_always_scan(true)),
        ("coord", |s| s.set_table_routing(false)),
        ("leap", |s| s.set_leap(true)),
        ("workers2", |s| s.set_workers(2)),
        ("turbo4", |s| {
            s.set_leap(true);
            s.set_workers(4);
        }),
    ];
    for planes in [1, 2] {
        let mut spec = scorpio_cell();
        spec.planes = planes;
        let base = run_spec_full(&spec, 13, &ov, |_| {});
        let spans = base.spans.as_ref().expect("spans recorded");
        let windows = base.windows.as_ref().expect("windows recorded");
        assert!(!spans.is_empty() && !windows.is_empty());
        for (name, tweak) in cases {
            let r = run_spec_full(&spec, 13, &ov, tweak);
            assert_eq!(
                r.spans.as_ref().unwrap(),
                spans,
                "{name} spans diverge at {planes} plane(s)"
            );
            assert_eq!(
                r.windows.as_ref().unwrap(),
                windows,
                "{name} windows diverge at {planes} plane(s)"
            );
            assert_eq!(
                r.report.to_json(),
                base.report.to_json(),
                "{name} report diverges at {planes} plane(s)"
            );
        }
    }
}

/// Executor worker counts must not leak into the recorded streams or the
/// sinks: `--threads 1/2/8` over the whole latency-breakdown grid emit
/// byte-identical span/window JSONL and CSV.
#[test]
fn span_and_window_output_is_thread_invariant() {
    use scorpio_harness::exec::{run_grid, ExecOptions};
    use scorpio_harness::sink::{self, SinkOptions};
    let scenario = registry::by_name("latency-breakdown-small").expect("registered");
    let mk = |threads| ExecOptions {
        threads,
        ops_per_core: 8,
        spans: true,
        window_cycles: Some(256),
        ..ExecOptions::default()
    };
    let sink_opts = SinkOptions {
        include_hist: true,
        include_spans: true,
        include_windows: true,
        ..SinkOptions::default()
    };
    let serial = run_grid(&scenario.grid, &mk(1));
    let base_json = sink::jsonl("lb", &serial, sink_opts);
    let base_csv = sink::csv("lb", &serial, sink_opts);
    assert!(serial
        .iter()
        .all(|r| r.spans.is_some() && r.windows.is_some()));
    for threads in [2, 8] {
        let parallel = run_grid(&scenario.grid, &mk(threads));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spans, b.spans, "{} spans depend on threads", a.spec.key());
            assert_eq!(
                a.windows,
                b.windows,
                "{} windows depend on threads",
                a.spec.key()
            );
        }
        assert_eq!(sink::jsonl("lb", &parallel, sink_opts), base_json);
        assert_eq!(sink::csv("lb", &parallel, sink_opts), base_csv);
    }
}

/// The disabled-cost bound behind the `obs-overhead` scenario. The
/// obs-off hot path is structurally the pre-observability engine plus
/// one `Option`-is-`None` branch per hook; a same-process binary
/// *without* those branches does not exist, so the <2% bound is
/// asserted as measurement stability: interleaved best-of-N A/B runs of
/// the identical obs-off cell must agree within 2%, which makes the
/// absolute simulated-cycles/sec this cell records into the BENCH JSONL
/// artifact comparable across commits at the 2% level — where a
/// disabled-path regression would surface. Ignored by default: timing
/// assertions need a quiet multi-core host (CI's throughput job runs it
/// under `--release`).
#[test]
#[ignore = "timing assertion; CI throughput job runs it under --release"]
fn disabled_observability_costs_under_two_percent() {
    let scenario = registry::by_name("obs-overhead-small").expect("registered");
    let spec = scenario
        .grid
        .enumerate()
        .into_iter()
        .find(|s| s.variant.label == "obs-off")
        .expect("the obs-off cell exists");
    let rate = |r: &RunResult| r.report.runtime_cycles as f64 * 1e9 / r.sim_nanos as f64;
    let (mut a, mut b) = (0.0f64, 0.0f64);
    for _ in 0..5 {
        a = a.max(rate(&run_spec(&spec, 30)));
        b = b.max(rate(&run_spec(&spec, 30)));
    }
    let delta = (a / b - 1.0).abs();
    assert!(
        delta < 0.02,
        "obs-off throughput unstable beyond the 2% bound: {a:.0} vs {b:.0} cyc/sec \
         ({:.2}% apart)",
        delta * 100.0
    );
}
