//! The parallel job executor.
//!
//! Every [`RunSpec`] in a grid is an *independent* simulation — a fresh
//! [`System`] with its own RNG streams and no shared state — so a sweep is
//! embarrassingly parallel. The executor distributes specs round-robin over
//! per-worker deques; a worker drains its own deque from the front and,
//! when empty, steals from the back of its siblings, so stragglers (big
//! meshes, slow protocols) cannot serialize the sweep behind one worker.
//!
//! Determinism: each run's result depends only on its spec (plus the
//! ops-per-core override), and results are returned in grid-enumeration
//! order, so the output is byte-identical for any worker count and any
//! completion order. Wall-clock timings are recorded per run but kept out
//! of the deterministic sinks unless explicitly requested.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use scorpio::{span_json, ObsLevel, System, SystemReport, WindowRow};
use scorpio_noc::TraceEvent;
use scorpio_workloads::generate;

use crate::scenario::{Engine, RunSpec, SweepGrid};

/// Executor options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads. `0` means one per available CPU.
    pub threads: usize,
    /// Operations per core for every run (the harness owns this override
    /// so results cannot depend on process-global environment reads racing
    /// with the sweep).
    pub ops_per_core: usize,
    /// Emit one progress line per completed run to stderr.
    pub verbose: bool,
    /// Force an observability level on every run (`--hist` / `--trace`).
    /// `None` keeps each spec's own level (usually off, or whatever a
    /// `Knob::Obs` variant set).
    pub obs_override: Option<ObsLevel>,
    /// Force the flit-trace cap on every run (`--trace-limit`).
    pub trace_limit: Option<usize>,
    /// Force transaction-span recording on every run (`--spans`).
    pub spans: bool,
    /// Force windowed telemetry with this epoch length on every run
    /// (`--windows` / `--window-cycles`). `None` keeps each spec's own
    /// setting (usually off, or whatever a `Knob::Windows` variant set).
    pub window_cycles: Option<u64>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            threads: 0,
            ops_per_core: crate::ops_per_core(),
            verbose: false,
            obs_override: None,
            trace_limit: None,
            spans: false,
            window_cycles: None,
        }
    }
}

/// Config-level overrides applied on top of a spec's own configuration
/// before a run; the config hash fingerprints the overridden config.
#[derive(Debug, Clone, Copy, Default)]
pub struct Overrides {
    /// Force an observability level (`--hist` / `--trace`).
    pub obs: Option<ObsLevel>,
    /// Force the flit-trace cap (`--trace-limit`).
    pub trace_limit: Option<usize>,
    /// Force transaction-span recording (`--spans`).
    pub spans: bool,
    /// Force windowed telemetry with this epoch length (`--windows`).
    pub window_cycles: Option<u64>,
}

impl ExecOptions {
    /// Resolves `threads == 0` to the host's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// The result of one grid point: spec, report and metadata.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that produced this result.
    pub spec: RunSpec,
    /// Stable fingerprint of the exact [`scorpio::SystemConfig`] run.
    pub config_hash: u64,
    /// Human-readable configuration label.
    pub config_label: String,
    /// The simulation report.
    pub report: SystemReport,
    /// Wall-clock nanoseconds this run took (not part of deterministic
    /// output; see the sink options).
    pub wall_nanos: u128,
    /// Setup phase: workload generation plus system construction.
    pub setup_nanos: u128,
    /// Simulation phase (`run_to_completion` only) — the denominator of
    /// the simulated-cycles-per-second throughput metric.
    pub sim_nanos: u128,
    /// Cycles the engine actually stepped. Equals `report.runtime_cycles`
    /// unless the leap engine jumped idle spans; the gap is the leap
    /// ratio the timing sinks report.
    pub stepped_cycles: u64,
    /// Per-region leap domains (leaf quads of a hierarchical notification
    /// tree); 1 for the flat scheme and for baselines.
    pub regions: usize,
    /// Σ over stepped cycles of the active-region count (see
    /// [`scorpio::System::region_cycles_stepped`]); `stepped × regions`
    /// when per-region accounting is off.
    pub region_cycles_stepped: u64,
    /// Rendered flit-trace events (one JSON object per event, in
    /// deterministic merge order) when the run traced; `None` otherwise.
    pub trace: Option<Vec<String>>,
    /// Trace events dropped at the cap.
    pub trace_dropped: u64,
    /// Rendered transaction spans (one JSON object per retired miss, in
    /// deterministic retire order) when the run recorded spans.
    pub spans: Option<Vec<String>>,
    /// Spans dropped at the cap.
    pub spans_dropped: u64,
    /// Rendered windowed-telemetry rows (one JSON object per epoch, in
    /// epoch order) when the run bucketed windows.
    pub windows: Option<Vec<String>>,
}

/// Runs one spec to completion.
pub fn run_spec(spec: &RunSpec, ops_per_core: usize) -> RunResult {
    run_spec_opts(spec, ops_per_core, None, None)
}

/// Runs one spec to completion, optionally forcing the observability
/// level and flit-trace cap on top of the spec's own configuration.
pub fn run_spec_opts(
    spec: &RunSpec,
    ops_per_core: usize,
    obs_override: Option<ObsLevel>,
    trace_limit: Option<usize>,
) -> RunResult {
    run_spec_ov(
        spec,
        ops_per_core,
        &Overrides {
            obs: obs_override,
            trace_limit,
            ..Overrides::default()
        },
    )
}

/// Runs one spec to completion with the full override set on top of the
/// spec's own configuration.
pub fn run_spec_ov(spec: &RunSpec, ops_per_core: usize, ov: &Overrides) -> RunResult {
    // The parallel engines ask for four lanes but never more than the
    // host has: results are byte-identical for any lane count, so extra
    // lanes could only timeshare a core and slow the benchmark down.
    let lanes = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    run_spec_full(spec, ops_per_core, ov, |sys| match spec.engine {
        Engine::ActiveSet => {}
        Engine::AlwaysScan => sys.set_always_scan(true),
        Engine::CoordRoute => sys.set_table_routing(false),
        Engine::Leap => sys.set_leap(true),
        Engine::Parallel => sys.set_workers(lanes),
        Engine::Turbo => {
            sys.set_leap(true);
            sys.set_workers(lanes);
        }
    })
}

/// Runs one spec to completion with an arbitrary pre-run system tweak in
/// place of the spec's engine selection (the equivalence matrix uses this
/// to set leap/worker combinations the [`Engine`] axis does not name).
pub fn run_spec_custom(
    spec: &RunSpec,
    ops_per_core: usize,
    obs_override: Option<ObsLevel>,
    trace_limit: Option<usize>,
    tweak: impl Fn(&mut System),
) -> RunResult {
    run_spec_full(
        spec,
        ops_per_core,
        &Overrides {
            obs: obs_override,
            trace_limit,
            ..Overrides::default()
        },
        tweak,
    )
}

/// The executor core: applies every override, runs the spec, and
/// collects whichever deterministic streams the final configuration
/// enabled (flit trace, transaction spans, window rows).
pub fn run_spec_full(
    spec: &RunSpec,
    ops_per_core: usize,
    ov: &Overrides,
    tweak: impl Fn(&mut System),
) -> RunResult {
    let mut cfg = spec.config();
    if let Some(level) = ov.obs {
        cfg = cfg.with_obs(level);
    }
    if let Some(n) = ov.trace_limit {
        cfg = cfg.with_trace_limit(n);
    }
    if ov.spans {
        cfg = cfg.with_spans(true);
    }
    if let Some(w) = ov.window_cycles {
        cfg = cfg.with_windows(w);
    }
    // The hash fingerprints the exact configuration run, overrides
    // included — an obs-off run keeps its pre-observability hash.
    let config_hash = cfg.stable_hash();
    let config_label = cfg.label();
    let tracing = cfg.obs == ObsLevel::Trace;
    let spanning = cfg.spans;
    let windowing = cfg.window_cycles != 0;
    let params = spec.workload.clone().with_ops(ops_per_core);
    let started = Instant::now();
    let traces = generate(&params, cfg.cores(), cfg.seed);
    let mut sys = System::with_traces(cfg, traces);
    tweak(&mut sys);
    let setup_nanos = started.elapsed().as_nanos();
    let sim_started = Instant::now();
    let report = sys.run_to_completion();
    let sim_nanos = sim_started.elapsed().as_nanos();
    let stepped_cycles = sys.stepped_cycles();
    let regions = sys.regions();
    let region_cycles_stepped = sys.region_cycles_stepped();
    let (trace, trace_dropped) = if tracing {
        let (events, dropped) = sys.take_trace();
        (
            Some(events.iter().map(TraceEvent::json_body).collect()),
            dropped,
        )
    } else {
        (None, 0)
    };
    let (spans, spans_dropped) = if spanning {
        let (records, dropped) = sys.span_records();
        (Some(records.iter().map(span_json).collect()), dropped)
    } else {
        (None, 0)
    };
    let windows = windowing.then(|| sys.window_rows().iter().map(WindowRow::json_body).collect());
    RunResult {
        spec: spec.clone(),
        config_hash,
        config_label,
        report,
        wall_nanos: started.elapsed().as_nanos(),
        setup_nanos,
        sim_nanos,
        stepped_cycles,
        regions,
        region_cycles_stepped,
        trace,
        trace_dropped,
        spans,
        spans_dropped,
        windows,
    }
}

/// Runs every spec of `grid` and returns results in enumeration order.
pub fn run_grid(grid: &SweepGrid, opts: &ExecOptions) -> Vec<RunResult> {
    run_specs(&grid.enumerate(), opts)
}

/// Runs an explicit spec list and returns results in the same order.
pub fn run_specs(specs: &[RunSpec], opts: &ExecOptions) -> Vec<RunResult> {
    let n = specs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = opts.effective_threads().clamp(1, n);
    let ov = Overrides {
        obs: opts.obs_override,
        trace_limit: opts.trace_limit,
        spans: opts.spans,
        window_cycles: opts.window_cycles,
    };
    if workers == 1 {
        return specs
            .iter()
            .map(|s| {
                let r = run_spec_ov(s, opts.ops_per_core, &ov);
                if opts.verbose {
                    eprintln!(
                        "[harness] {} -> {} cycles",
                        s.key(),
                        r.report.runtime_cycles
                    );
                }
                r
            })
            .collect();
    }

    // Per-worker deques, filled round-robin so neighbouring (similarly
    // sized) jobs spread across workers; idle workers steal from the back.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..n)
                    .filter(|i| i % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            scope.spawn(move || loop {
                // Own queue first (front), then steal (back). The own-pop
                // must be its own statement: chaining `.or_else` onto the
                // locked pop would keep queue w's guard alive across the
                // steal (temporaries live to the end of the statement),
                // and two workers going idle together would then deadlock
                // on each other's queue locks.
                let own = queues[w].lock().unwrap().pop_front();
                let job = own.or_else(|| {
                    (1..workers)
                        .map(|d| (w + d) % workers)
                        .find_map(|v| queues[v].lock().unwrap().pop_back())
                });
                let Some(i) = job else { break };
                let r = run_spec_ov(&specs[i], opts.ops_per_core, &ov);
                if opts.verbose {
                    eprintln!(
                        "[harness] {} -> {} cycles (worker {w})",
                        specs[i].key(),
                        r.report.runtime_cycles
                    );
                }
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every job index was queued exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{SweepGrid, Variant};
    use scorpio::Protocol;
    use scorpio_workloads::WorkloadParams;

    fn tiny_grid() -> SweepGrid {
        SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[2])
            .protocols(&[Protocol::Scorpio, Protocol::TokenB])
            .variants(vec![Variant::baseline()])
            .seeds(&[1, 2, 3])
    }

    #[test]
    fn results_come_back_in_enumeration_order() {
        let grid = tiny_grid();
        let opts = ExecOptions {
            threads: 3,
            ops_per_core: 5,
            ..ExecOptions::default()
        };
        let results = run_grid(&grid, &opts);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.spec.index, i);
        }
    }

    #[test]
    fn thread_count_does_not_change_reports() {
        let grid = tiny_grid();
        let serial = run_grid(
            &grid,
            &ExecOptions {
                threads: 1,
                ops_per_core: 8,
                ..ExecOptions::default()
            },
        );
        for workers in [2, 4, 7] {
            let parallel = run_grid(
                &grid,
                &ExecOptions {
                    threads: workers,
                    ops_per_core: 8,
                    ..ExecOptions::default()
                },
            );
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.spec, b.spec);
                assert_eq!(a.config_hash, b.config_hash);
                assert_eq!(
                    a.report.to_json(),
                    b.report.to_json(),
                    "{} must not depend on worker count",
                    a.spec.key()
                );
            }
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let grid = SweepGrid::over(vec![WorkloadParams::by_name("fft").unwrap()]).meshes(&[2]);
        let results = run_grid(
            &grid,
            &ExecOptions {
                threads: 64,
                ops_per_core: 4,
                ..ExecOptions::default()
            },
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].report.ops_completed, 4 * 4);
    }

    #[test]
    fn empty_grid_returns_empty() {
        let grid = SweepGrid::default();
        assert!(run_grid(&grid, &ExecOptions::default()).is_empty());
    }

    // Regression test: the steal path once held the worker's own queue
    // lock across the steal attempt, so two workers going idle together
    // deadlocked on each other's locks. The race window is the sweep
    // tail, so hammer many short sweeps where workers drain their queues
    // near-simultaneously.
    #[test]
    fn executor_tail_does_not_deadlock() {
        let grid = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[2])
            .seeds(&[1, 2, 3, 4, 5, 6]);
        let specs = grid.enumerate();
        for _ in 0..150 {
            let r = run_specs(
                &specs,
                &ExecOptions {
                    threads: 4,
                    ops_per_core: 2,
                    ..ExecOptions::default()
                },
            );
            assert_eq!(r.len(), 6);
        }
    }
}
