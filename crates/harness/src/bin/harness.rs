//! The `harness` CLI: list and run registered experiment scenarios.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(scorpio_harness::cli::run_cli(args));
}
