//! The normalized-runtime pretty-printer used by most figure scenarios.
//!
//! Ported here from `scorpio-bench` and hardened: empty rows, ragged rows
//! and zero baselines render as `-` cells instead of panicking or printing
//! `NaN`/`inf` (a zero baseline is real — e.g. a workload whose runs were
//! all filtered out of a grid, or a misconfigured sweep).

/// Renders a normalized-runtime table: one row per benchmark, one column
/// per configuration, all normalized to the first column. Rows whose
/// baseline is zero or missing print `-` for the affected cells and are
/// excluded from the column averages.
pub fn render_normalized(
    title: &str,
    benchmarks: &[&str],
    configs: &[&str],
    runtimes: &[Vec<u64>],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n=== {title} ===\n"));
    out.push_str(&format!("{:<16}", "benchmark"));
    for c in configs {
        out.push_str(&format!("{c:>16}"));
    }
    out.push('\n');
    let mut sums = vec![0.0; configs.len()];
    let mut averaged_rows = 0usize;
    for (b, row) in benchmarks.iter().zip(runtimes) {
        out.push_str(&format!("{b:<16}"));
        let base = row.first().copied().unwrap_or(0);
        if base == 0 {
            for _ in configs {
                out.push_str(&format!("{:>16}", "-"));
            }
            out.push('\n');
            continue;
        }
        averaged_rows += 1;
        for (i, _) in configs.iter().enumerate() {
            match row.get(i) {
                Some(&rt) => {
                    let norm = rt as f64 / base as f64;
                    sums[i] += norm;
                    out.push_str(&format!("{norm:>16.3}"));
                }
                None => out.push_str(&format!("{:>16}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "AVG"));
    for s in &sums {
        if averaged_rows == 0 {
            out.push_str(&format!("{:>16}", "-"));
        } else {
            out.push_str(&format!("{:>16.3}", s / averaged_rows as f64));
        }
    }
    out.push('\n');
    out
}

/// Prints [`render_normalized`] to stdout (the historical `scorpio-bench`
/// entry point, kept for the figure binaries).
pub fn print_normalized(title: &str, benchmarks: &[&str], configs: &[&str], runtimes: &[Vec<u64>]) {
    print!(
        "{}",
        render_normalized(title, benchmarks, configs, runtimes)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_first_column() {
        let t = render_normalized(
            "demo",
            &["a", "b"],
            &["base", "x2"],
            &[vec![100, 200], vec![10, 5]],
        );
        assert!(t.contains("=== demo ==="));
        assert!(t.contains("2.000"));
        assert!(t.contains("0.500"));
        // AVG of [1,1] and [2,0.5] columns.
        assert!(t.contains("1.250"));
    }

    #[test]
    fn zero_baseline_renders_dashes_not_nan() {
        let t = render_normalized(
            "demo",
            &["dead", "live"],
            &["base", "x"],
            &[vec![0, 50], vec![10, 20]],
        );
        assert!(!t.contains("NaN") && !t.contains("inf"), "{t}");
        let dead_row = t.lines().find(|l| l.starts_with("dead")).unwrap();
        assert!(dead_row.contains('-'));
        // The AVG only covers the live row.
        let avg = t.lines().find(|l| l.starts_with("AVG")).unwrap();
        assert!(avg.contains("2.000"), "{avg}");
    }

    #[test]
    fn empty_and_ragged_rows_do_not_panic() {
        let t = render_normalized(
            "demo",
            &["empty", "short"],
            &["base", "x"],
            &[vec![], vec![10]],
        );
        assert!(t.contains("empty"));
        let short = t.lines().find(|l| l.starts_with("short")).unwrap();
        assert!(short.contains("1.000") && short.contains('-'));
    }

    #[test]
    fn no_rows_at_all() {
        let t = render_normalized("demo", &[], &["base"], &[]);
        let avg = t.lines().find(|l| l.starts_with("AVG")).unwrap();
        assert!(avg.contains('-'), "empty table must not divide by zero");
    }
}
