//! Structured result sinks: JSON lines and CSV.
//!
//! Both formats are fully deterministic by default — fixed key/column
//! order, stable float formatting, no timestamps — so `harness run <s>
//! --threads N` emits byte-identical files for every `N`. Per-run wall
//! time is available behind [`SinkOptions::include_timing`] for profiling,
//! which deliberately breaks byte-stability (and nothing else).

use std::fs;
use std::io::{self, Write};

use crate::exec::RunResult;

/// Sink configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinkOptions {
    /// Include per-run wall-clock nanoseconds, phase breakdown and
    /// simulated-cycles/sec. Off by default because it makes output depend
    /// on the host rather than only on (scenario, seed).
    pub include_timing: bool,
    /// Add the latency-percentile CSV columns (packet latency and
    /// ordering delay, p50/p95/p99/p999). Blank when a run recorded no
    /// histograms; deterministic when it did, so this flag keeps the
    /// byte-stability guarantee (unlike `include_timing`).
    pub include_hist: bool,
    /// Add the span-breakdown CSV columns (span count plus the mean of
    /// each of the seven lifecycle phases). Blank when a run recorded no
    /// spans; deterministic when it did.
    pub include_spans: bool,
    /// Add the windowed-telemetry CSV columns (window count, warmup
    /// split, steady-state totals, worst windowed wait). Blank when a
    /// run bucketed no windows; deterministic when it did.
    pub include_windows: bool,
}

/// Simulated cycles per wall-clock second of the simulation phase.
fn cycles_per_sec(r: &RunResult) -> f64 {
    if r.sim_nanos == 0 {
        0.0
    } else {
        r.report.runtime_cycles as f64 * 1e9 / r.sim_nanos as f64
    }
}

/// One result as a JSON-lines record.
pub fn json_line(scenario: &str, r: &RunResult, opts: SinkOptions) -> String {
    let timing = if opts.include_timing {
        format!(
            r#""wall_nanos":{},"setup_nanos":{},"sim_nanos":{},"stepped_cycles":{},"cycles_per_sec":{:?},"#,
            r.wall_nanos,
            r.setup_nanos,
            r.sim_nanos,
            r.stepped_cycles,
            cycles_per_sec(r),
        )
    } else {
        String::new()
    };
    // The engine, fabric, planes and placement fields appear only for
    // non-default values, so default (active-set, mesh, single-plane)
    // output is byte-for-byte what it was before those axes existed.
    let engine = match r.spec.engine.label() {
        "" => String::new(),
        label => format!(r#""engine":{label:?},"#),
    };
    let fabric = match r.spec.fabric.label() {
        "" => String::new(),
        label => format!(r#""fabric":{label:?},"#),
    };
    let planes = match r.spec.planes {
        1 => String::new(),
        n => format!(r#""planes":{n},"#),
    };
    let placement = match r.spec.mc_placement() {
        None => String::new(),
        Some(key) => format!(r#""placement":{key:?},"#),
    };
    // Open-loop fields appear only for open-loop runs, so closed-loop
    // output is byte-for-byte what it was before the injection axis.
    let open_load = match r.spec.open_load() {
        None => String::new(),
        Some((p, millis)) => format!(r#""arrival":{:?},"load_millis":{millis},"#, p.label(millis)),
    };
    // Per-region leap accounting appears only for runs with more than one
    // region (a quad notification scheme), like the other conditional
    // fields: flat-scheme output is byte-for-byte what it always was.
    let regions = if r.regions > 1 {
        format!(
            r#""regions":{},"region_cycles_stepped":{},"#,
            r.regions, r.region_cycles_stepped
        )
    } else {
        String::new()
    };
    format!(
        r#"{{"scenario":{:?},"index":{},"workload":{:?},"mesh":{},{}{}{}{}"protocol":{:?},"variant":{:?},"seed":{},{}{}"config":{:?},"config_hash":"{:#018x}",{}"report":{}}}"#,
        scenario,
        r.spec.index,
        r.spec.workload.name,
        r.spec.mesh_side,
        fabric,
        planes,
        placement,
        open_load,
        r.spec.protocol.name(),
        r.spec.variant.label,
        r.spec.seed,
        engine,
        regions,
        r.config_label,
        r.config_hash,
        timing,
        r.report.to_json(),
    )
}

/// All results as a JSON-lines document (one record per line).
pub fn jsonl(scenario: &str, results: &[RunResult], opts: SinkOptions) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&json_line(scenario, r, opts));
        out.push('\n');
    }
    out
}

/// All results as a CSV document with a header row.
pub fn csv(scenario: &str, results: &[RunResult], opts: SinkOptions) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario,index,workload,mesh,fabric,planes,placement,arrival,load_millis,variant,engine,seed,config_hash,",
    );
    out.push_str(scorpio::SystemReport::csv_header());
    if opts.include_hist {
        out.push_str(
            ",packet_p50,packet_p95,packet_p99,packet_p999,\
             ordering_p50,ordering_p95,ordering_p99,ordering_p999",
        );
    }
    if opts.include_spans {
        out.push_str(
            ",spans,span_source,span_queue,span_inject,span_flight,span_commit,span_data,span_fill",
        );
    }
    if opts.include_windows {
        out.push_str(
            ",windows,warmup,steady_ops,steady_ejected,max_wait_ep,max_wait_mean,\
             min_wait_ep,min_wait_mean",
        );
    }
    if opts.include_timing {
        out.push_str(
            ",wall_nanos,setup_nanos,sim_nanos,stepped_cycles,regions,region_cycles_stepped,cycles_per_sec",
        );
    }
    out.push('\n');
    for r in results {
        // Unlike JSONL (self-describing records), CSV rows need a fixed
        // schema, so the engine, fabric, planes and placement columns are
        // always present; the default labels render as "active", "mesh",
        // "1" and "default".
        let engine = match r.spec.engine.label() {
            "" => "active",
            label => label,
        };
        let fabric = match r.spec.fabric.label() {
            "" => "mesh",
            label => label,
        };
        let placement = r.spec.mc_placement().unwrap_or_else(|| "default".into());
        let (arrival, load_millis) = match r.spec.open_load() {
            Some((p, millis)) => (p.label(millis), millis),
            None => ("closed".into(), 0),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{:#018x},{}",
            scenario,
            r.spec.index,
            r.spec.workload.name,
            r.spec.mesh_side,
            fabric,
            r.spec.planes,
            placement,
            arrival,
            load_millis,
            r.spec.variant.label,
            engine,
            r.spec.seed,
            r.config_hash,
            r.report.csv_row(),
        ));
        if opts.include_hist {
            let obs = r.report.obs.as_deref();
            let cell = |v: Option<u64>| v.map_or_else(String::new, |x| format!("{x}"));
            for f in [0.50, 0.95, 0.99, 0.999] {
                out.push_str(&format!(
                    ",{}",
                    cell(obs.and_then(|o| o.packet_latency.percentile(f)))
                ));
            }
            for f in [0.50, 0.95, 0.99, 0.999] {
                out.push_str(&format!(
                    ",{}",
                    cell(obs.and_then(|o| o.ordering_delay.percentile(f)))
                ));
            }
        }
        if opts.include_spans {
            // Phase means are exact integer ratios rendered as shortest
            // round-trip floats — deterministic, like every other cell.
            match r.report.obs.as_deref().and_then(|o| o.spans.as_ref()) {
                Some(s) if s.count > 0 => {
                    out.push_str(&format!(",{}", s.count));
                    for h in [
                        &s.source, &s.queue, &s.inject, &s.flight, &s.commit, &s.data, &s.fill,
                    ] {
                        out.push_str(&format!(",{:?}", h.sum() as f64 / h.count() as f64));
                    }
                }
                _ => out.push_str(",,,,,,,,"),
            }
        }
        if opts.include_windows {
            match r.report.obs.as_deref().and_then(|o| o.windows.as_ref()) {
                Some(w) => {
                    out.push_str(&format!(
                        ",{},{},{},{}",
                        w.count, w.warmup, w.steady_ops, w.steady_ejected
                    ));
                    for cell in [&w.max_wait, &w.min_wait] {
                        match cell {
                            Some(m) => out.push_str(&format!(
                                ",{},{:?}",
                                m.ep,
                                m.sum as f64 / m.count as f64
                            )),
                            None => out.push_str(",,"),
                        }
                    }
                }
                None => out.push_str(",,,,,,,,"),
            }
        }
        if opts.include_timing {
            out.push_str(&format!(
                ",{},{},{},{},{},{},{:?}",
                r.wall_nanos,
                r.setup_nanos,
                r.sim_nanos,
                r.stepped_cycles,
                r.regions,
                r.region_cycles_stepped,
                cycles_per_sec(r)
            ));
        }
        out.push('\n');
    }
    out
}

/// Writes `contents` to `path`, or to stdout when `path` is `-`.
///
/// A closed stdout pipe (`--json - | head`) counts as success: the
/// reader got what it asked for.
pub fn write(path: &str, contents: &str) -> io::Result<()> {
    if path == "-" {
        match io::stdout().write_all(contents.as_bytes()) {
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => Ok(()),
            other => other,
        }
    } else {
        fs::write(path, contents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_grid, ExecOptions};
    use crate::scenario::SweepGrid;
    use scorpio_workloads::WorkloadParams;

    fn results() -> Vec<RunResult> {
        let grid = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[2])
            .seeds(&[1, 2]);
        run_grid(
            &grid,
            &ExecOptions {
                threads: 1,
                ops_per_core: 5,
                ..ExecOptions::default()
            },
        )
    }

    #[test]
    fn jsonl_shape_and_determinism() {
        let rs = results();
        let a = jsonl("demo", &rs, SinkOptions::default());
        let b = jsonl("demo", &rs, SinkOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 2);
        let first = a.lines().next().unwrap();
        assert!(first.starts_with(r#"{"scenario":"demo","index":0,"workload":"lu","#));
        assert!(first.contains(r#""config_hash":"0x"#));
        assert!(first.contains(r#""report":{"protocol":"#));
        assert!(!first.contains("wall_nanos"));
        // Braces balance on every line (cheap well-formedness check
        // without a JSON parser in the dependency-free build).
        for line in a.lines() {
            let open = line.matches('{').count();
            let close = line.matches('}').count();
            assert_eq!(open, close, "unbalanced braces in {line}");
        }
    }

    #[test]
    fn timing_is_opt_in() {
        let rs = results();
        let with = jsonl(
            "demo",
            &rs,
            SinkOptions {
                include_timing: true,
                ..SinkOptions::default()
            },
        );
        assert!(with.contains("wall_nanos"));
        assert!(with.contains("setup_nanos"));
        assert!(with.contains("sim_nanos"));
        assert!(with.contains("stepped_cycles"));
        assert!(with.contains("cycles_per_sec"));
        let csv_with = csv(
            "demo",
            &rs,
            SinkOptions {
                include_timing: true,
                ..SinkOptions::default()
            },
        );
        assert!(csv_with.lines().next().unwrap().ends_with(
            ",wall_nanos,setup_nanos,sim_nanos,stepped_cycles,\
             regions,region_cycles_stepped,cycles_per_sec"
        ));
    }

    #[test]
    fn hist_columns_are_opt_in_and_blank_without_observability() {
        let rs = results();
        let plain = csv("demo", &rs, SinkOptions::default());
        assert!(!plain.contains("packet_p50"));
        let with = csv(
            "demo",
            &rs,
            SinkOptions {
                include_hist: true,
                ..SinkOptions::default()
            },
        );
        let header = with.lines().next().unwrap();
        assert!(header.ends_with(
            ",packet_p50,packet_p95,packet_p99,packet_p999,\
             ordering_p50,ordering_p95,ordering_p99,ordering_p999"
        ));
        // These runs recorded no histograms, so the cells are blank — and
        // every row still matches the header's arity.
        let cols = header.split(',').count();
        for line in with.lines().skip(1) {
            assert_eq!(line.split(',').count(), cols);
            assert!(line.ends_with(",,,,,,,"));
        }
    }

    #[test]
    fn span_and_window_columns_are_opt_in_and_blank_without_recording() {
        let rs = results();
        let plain = csv("demo", &rs, SinkOptions::default());
        assert!(!plain.contains("span_queue"));
        assert!(!plain.contains("max_wait_ep"));
        let with = csv(
            "demo",
            &rs,
            SinkOptions {
                include_spans: true,
                include_windows: true,
                ..SinkOptions::default()
            },
        );
        let header = with.lines().next().unwrap();
        assert!(header.ends_with(
            ",spans,span_source,span_queue,span_inject,span_flight,span_commit,span_data,\
             span_fill,windows,warmup,steady_ops,steady_ejected,max_wait_ep,max_wait_mean,\
             min_wait_ep,min_wait_mean"
        ));
        // These runs recorded neither spans nor windows, so every cell is
        // blank — and every row still matches the header's arity.
        let cols = header.split(',').count();
        for line in with.lines().skip(1) {
            assert_eq!(line.split(',').count(), cols);
            assert!(line.ends_with(",,,,,,,,,,,,,,,,"));
        }
    }

    #[test]
    fn csv_rows_match_header() {
        let rs = results();
        let doc = csv("demo", &rs, SinkOptions::default());
        let mut lines = doc.lines();
        let header = lines.next().unwrap().split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), header);
        }
    }
}
