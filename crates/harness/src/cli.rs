//! The `harness` command-line driver, also backing the nine thin figure
//! binaries in `scorpio-bench`.
//!
//! ```text
//! harness list
//! harness workloads
//! harness run <scenario>... [--threads N] [--ops N] [--seeds 1,2,3]
//!                           [--json PATH] [--csv PATH] [--timing]
//!                           [--hist] [--trace PATH] [--trace-limit N]
//!                           [--spans PATH] [--windows PATH]
//!                           [--window-cycles N]
//!                           [--verbose] [--no-table]
//! ```
//!
//! `--json`/`--csv`/`--trace`/`--spans`/`--windows` accept `-` for
//! stdout. Output is deterministic for a given (scenario, seeds, ops)
//! regardless of `--threads`, unless `--timing` opts into per-run
//! wall-clock columns; `--hist` (latency histograms + NoC counters),
//! `--trace` (the flit trace), `--spans` (per-transaction lifecycle
//! records) and `--windows` (epoch-bucketed time-series telemetry) keep
//! that byte-stability.

use std::io::Write;
use std::time::Instant;

use crate::exec::{run_grid, ExecOptions, RunResult};
use crate::registry;
use crate::sink::{self, SinkOptions};

/// Parsed `harness run` options.
#[derive(Debug, Default)]
struct RunOptions {
    scenarios: Vec<String>,
    threads: Option<usize>,
    ops: Option<usize>,
    seeds: Option<Vec<u64>>,
    json: Option<String>,
    csv: Option<String>,
    timing: bool,
    hist: bool,
    trace: Option<String>,
    trace_limit: Option<usize>,
    spans: Option<String>,
    windows: Option<String>,
    window_cycles: Option<u64>,
    verbose: bool,
    no_table: bool,
}

/// Epoch length `--windows` uses when `--window-cycles` is not given.
pub const DEFAULT_WINDOW_CYCLES: u64 = 1024;

const USAGE: &str = "usage:
  harness list                      show registered scenarios
  harness workloads                 show registered workload presets
  harness run <scenario>... [opts]  run one or more scenarios
run options:
  --threads N     worker threads (default: all CPUs)
  --ops N         operations per core (default: $SCORPIO_OPS or 150)
  --seeds A,B,..  replace the scenario's seed axis
  --json PATH     write JSON-lines results (- for stdout)
  --csv PATH      write CSV results (- for stdout)
  --timing        include per-run wall time in sinks (non-deterministic)
  --hist          record latency histograms + NoC counters on every run
                  (adds percentile columns; deterministic)
  --trace PATH    record the deterministic flit-event trace and write it
                  as JSON lines (- for stdout; implies --hist's recording)
  --trace-limit N cap retained trace events per run (default 100000;
                  also caps retained spans)
  --spans PATH    record per-transaction lifecycle spans and write them
                  as JSON lines (- for stdout; deterministic)
  --windows PATH  record epoch-bucketed time-series telemetry and write
                  one JSON line per window (- for stdout; deterministic)
  --window-cycles N  window length in cycles for --windows (default 1024)
  --verbose       per-run progress lines on stderr
  --no-table      skip the human-readable tables";

/// Writes to stdout, tolerating a closed pipe (`harness list | head`
/// must not panic). Other errors are ignored too: there is nowhere
/// better to report a failing stdout.
fn out(s: &str) {
    let _ = std::io::stdout().write_all(s.as_bytes());
}

/// Runs the CLI with `args` (without the program name); returns the exit
/// code.
pub fn run_cli<I, S>(args: I) -> i32
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args: Vec<String> = args.into_iter().map(Into::into).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            out(&format!("{:<16}{:>6}  description\n", "scenario", "runs"));
            for s in registry::scenarios() {
                out(&format!("{:<16}{:>6}  {}\n", s.name, s.grid.len(), s.about));
            }
            0
        }
        Some("workloads") => {
            out(&format!(
                "{:<16}{:>8}{:>8}{:>10}{:>10}\n\n",
                "workload", "writes", "shared", "sh-lines", "migratory"
            ));
            for w in scorpio_workloads::WorkloadParams::all() {
                out(&format!(
                    "{:<16}{:>8.2}{:>8.2}{:>10}{:>10.2}\n",
                    w.name,
                    w.write_fraction,
                    w.shared_fraction,
                    w.shared_lines,
                    w.migratory_fraction
                ));
            }
            out("\nsets: all, splash2, parsec, figure6, figure7\n");
            0
        }
        Some("run") => match parse_run(&args[1..]) {
            Ok(opts) => run(&opts),
            Err(e) => {
                eprintln!("harness: {e}\n\n{USAGE}");
                2
            }
        },
        Some("--help" | "-h" | "help") | None => {
            out(&format!("{USAGE}\n"));
            if args.is_empty() {
                2
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!("harness: unknown command `{other}`\n\n{USAGE}");
            2
        }
    }
}

fn parse_run(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let positive = |flag: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("{flag} must be a positive integer, got `{raw}`")),
            }
        };
        match a.as_str() {
            "--threads" => {
                let raw = value("--threads")?;
                opts.threads = Some(positive("--threads", raw)?);
            }
            "--ops" => {
                let raw = value("--ops")?;
                opts.ops = Some(positive("--ops", raw)?);
            }
            "--seeds" => {
                let raw = value("--seeds")?;
                let seeds: Result<Vec<u64>, _> =
                    raw.split(',').map(|s| s.trim().parse::<u64>()).collect();
                let seeds = seeds.map_err(|_| format!("bad --seeds list `{raw}`"))?;
                if seeds.is_empty() {
                    return Err("--seeds list is empty".into());
                }
                opts.seeds = Some(seeds);
            }
            "--json" => opts.json = Some(value("--json")?),
            "--csv" => opts.csv = Some(value("--csv")?),
            "--timing" => opts.timing = true,
            "--hist" => opts.hist = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--trace-limit" => {
                let raw = value("--trace-limit")?;
                opts.trace_limit = Some(positive("--trace-limit", raw)?);
            }
            "--spans" => opts.spans = Some(value("--spans")?),
            "--windows" => opts.windows = Some(value("--windows")?),
            "--window-cycles" => {
                let raw = value("--window-cycles")?;
                opts.window_cycles = Some(positive("--window-cycles", raw)? as u64);
            }
            "--verbose" => opts.verbose = true,
            "--no-table" => opts.no_table = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            name => opts.scenarios.push(name.to_string()),
        }
    }
    if opts.scenarios.is_empty() {
        return Err("no scenario given".into());
    }
    if opts.window_cycles.is_some() && opts.windows.is_none() {
        return Err("--window-cycles needs --windows".into());
    }
    for name in &opts.scenarios {
        if registry::by_name(name).is_none() {
            return Err(format!("unknown scenario `{name}` (see `harness list`)"));
        }
    }
    Ok(opts)
}

fn run(opts: &RunOptions) -> i32 {
    let obs_override = if opts.trace.is_some() {
        Some(scorpio::ObsLevel::Trace)
    } else if opts.hist {
        Some(scorpio::ObsLevel::Counters)
    } else {
        None
    };
    let exec = ExecOptions {
        threads: opts.threads.unwrap_or(0),
        ops_per_core: opts.ops.unwrap_or_else(crate::ops_per_core),
        verbose: opts.verbose,
        obs_override,
        trace_limit: opts.trace_limit,
        spans: opts.spans.is_some(),
        window_cycles: opts
            .windows
            .as_ref()
            .map(|_| opts.window_cycles.unwrap_or(DEFAULT_WINDOW_CYCLES)),
    };
    let sink_opts = SinkOptions {
        include_timing: opts.timing,
        include_hist: opts.hist || opts.trace.is_some(),
        include_spans: opts.spans.is_some(),
        include_windows: opts.windows.is_some(),
    };
    let mut all: Vec<(String, Vec<RunResult>)> = Vec::new();
    for name in &opts.scenarios {
        let mut scenario = registry::by_name(name).expect("validated in parse_run");
        if let Some(seeds) = &opts.seeds {
            scenario.grid.seeds = seeds.clone();
        }
        let started = Instant::now();
        let results = run_grid(&scenario.grid, &exec);
        let wall = started.elapsed();
        if !results.is_empty() {
            let sim_nanos: u128 = results.iter().map(|r| r.wall_nanos).sum();
            eprintln!(
                "[harness] {name}: {} runs on {} worker(s) in {:.2}s (sim time {:.2}s, speedup {:.2}x)",
                results.len(),
                exec.effective_threads().clamp(1, results.len()),
                wall.as_secs_f64(),
                sim_nanos as f64 / 1e9,
                sim_nanos as f64 / 1e9 / wall.as_secs_f64().max(1e-9),
            );
        }
        if !opts.no_table {
            out(&(scenario.render)(&scenario, &results));
        }
        all.push((name.clone(), results));
    }
    if let Some(path) = &opts.json {
        let doc: String = all
            .iter()
            .map(|(name, results)| sink::jsonl(name, results, sink_opts))
            .collect();
        if let Err(e) = sink::write(path, &doc) {
            eprintln!("harness: writing {path}: {e}");
            return 1;
        }
    }
    if let Some(path) = &opts.csv {
        let mut doc = String::new();
        for (i, (name, results)) in all.iter().enumerate() {
            let part = sink::csv(name, results, sink_opts);
            if i == 0 {
                doc.push_str(&part);
            } else {
                // One header for the whole file.
                doc.extend(part.split_once('\n').map(|x| x.1).map(String::from));
            }
        }
        if let Err(e) = sink::write(path, &doc) {
            eprintln!("harness: writing {path}: {e}");
            return 1;
        }
    }
    if let Some(path) = &opts.trace {
        let mut doc = String::new();
        let mut dropped = 0u64;
        for (name, results) in &all {
            for r in results {
                dropped += r.trace_dropped;
                for body in r.trace.as_deref().unwrap_or_default() {
                    doc.push_str(&prefixed(name, r, body));
                    doc.push('\n');
                }
            }
        }
        if dropped > 0 {
            eprintln!(
                "[harness] trace: {dropped} event(s) beyond the cap dropped (raise --trace-limit)"
            );
        }
        if let Err(e) = sink::write(path, &doc) {
            eprintln!("harness: writing {path}: {e}");
            return 1;
        }
    }
    if let Some(path) = &opts.spans {
        let mut doc = String::new();
        let mut dropped = 0u64;
        for (name, results) in &all {
            for r in results {
                dropped += r.spans_dropped;
                for body in r.spans.as_deref().unwrap_or_default() {
                    doc.push_str(&prefixed(name, r, body));
                    doc.push('\n');
                }
            }
        }
        if dropped > 0 {
            eprintln!(
                "[harness] spans: {dropped} span(s) beyond the cap dropped (raise --trace-limit)"
            );
        }
        if let Err(e) = sink::write(path, &doc) {
            eprintln!("harness: writing {path}: {e}");
            return 1;
        }
    }
    if let Some(path) = &opts.windows {
        let mut doc = String::new();
        for (name, results) in &all {
            for r in results {
                for body in r.windows.as_deref().unwrap_or_default() {
                    doc.push_str(&prefixed(name, r, body));
                    doc.push('\n');
                }
            }
        }
        if let Err(e) = sink::write(path, &doc) {
            eprintln!("harness: writing {path}: {e}");
            return 1;
        }
    }
    0
}

/// One stream line: the record body led by its run's identity, so a
/// multi-run file keeps one self-describing schema (the body starts
/// with '{').
fn prefixed(scenario: &str, r: &RunResult, body: &str) -> String {
    format!(
        "{{\"scenario\":{scenario:?},\"index\":{},\"seed\":{},{}",
        r.spec.index,
        r.spec.seed,
        &body[1..]
    )
}

/// Entry point for the thin figure binaries: runs `scenarios` with any
/// extra CLI args passed through, then exits the process.
pub fn bin_main(scenarios: &[&str], extra: Vec<String>) -> ! {
    let mut args: Vec<String> = vec!["run".into()];
    args.extend(scenarios.iter().map(|s| s.to_string()));
    args.extend(extra);
    std::process::exit(run_cli(args));
}

/// [`bin_main`] for wrapper binaries whose first positional argument
/// historically selected a reduced run (e.g. `fig6 small`, `scaling
/// small`): `variants` maps that argument to the scenario to run instead
/// of `base`; any other arguments pass through unchanged.
pub fn bin_main_with_variants(base: &str, variants: &[(&str, &str)], mut args: Vec<String>) -> ! {
    let selected = args
        .first()
        .and_then(|a| variants.iter().find(|(arg, _)| arg == a))
        .map(|&(_, scenario)| scenario);
    let name = match selected {
        Some(scenario) => {
            args.remove(0);
            scenario
        }
        None => base,
    };
    bin_main(&[name], args)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_run_accepts_full_flag_set() {
        let args: Vec<String> = [
            "fig7",
            "--threads",
            "8",
            "--ops",
            "20",
            "--seeds",
            "1,2,3",
            "--json",
            "o.jsonl",
            "--csv",
            "-",
            "--timing",
            "--hist",
            "--trace",
            "t.jsonl",
            "--trace-limit",
            "500",
            "--spans",
            "s.jsonl",
            "--windows",
            "w.jsonl",
            "--window-cycles",
            "512",
            "--verbose",
            "--no-table",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_run(&args).unwrap();
        assert_eq!(o.scenarios, vec!["fig7"]);
        assert_eq!(o.threads, Some(8));
        assert_eq!(o.ops, Some(20));
        assert_eq!(o.seeds, Some(vec![1, 2, 3]));
        assert_eq!(o.json.as_deref(), Some("o.jsonl"));
        assert_eq!(o.csv.as_deref(), Some("-"));
        assert_eq!(o.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(o.trace_limit, Some(500));
        assert_eq!(o.spans.as_deref(), Some("s.jsonl"));
        assert_eq!(o.windows.as_deref(), Some("w.jsonl"));
        assert_eq!(o.window_cycles, Some(512));
        assert!(o.timing && o.hist && o.verbose && o.no_table);
    }

    #[test]
    fn parse_run_rejects_bad_input() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(parse_run(&s(&[])).is_err());
        assert!(parse_run(&s(&["fig99"])).is_err());
        assert!(parse_run(&s(&["fig7", "--threads"])).is_err());
        assert!(parse_run(&s(&["fig7", "--seeds", "a,b"])).is_err());
        assert!(parse_run(&s(&["fig7", "--ops", "0"])).is_err());
        assert!(parse_run(&s(&["fig7", "--threads", "0"])).is_err());
        assert!(parse_run(&s(&["fig7", "--wat"])).is_err());
        assert!(parse_run(&s(&["fig7", "--trace"])).is_err());
        assert!(parse_run(&s(&["fig7", "--trace-limit", "0"])).is_err());
        assert!(parse_run(&s(&["fig7", "--spans"])).is_err());
        assert!(parse_run(&s(&["fig7", "--window-cycles", "0"])).is_err());
        // --window-cycles without --windows has nothing to apply to.
        assert!(parse_run(&s(&["fig7", "--window-cycles", "512"])).is_err());
    }

    #[test]
    fn unknown_command_fails_cleanly() {
        assert_eq!(run_cli(["frobnicate"]), 2);
        assert_eq!(run_cli(Vec::<String>::new()), 2);
        assert_eq!(run_cli(["--help"]), 0);
        assert_eq!(run_cli(["list"]), 0);
        assert_eq!(run_cli(["workloads"]), 0);
    }

    #[test]
    fn static_scenarios_run_end_to_end() {
        assert_eq!(
            run_cli(["run", "table1", "table2", "fig9", "--no-table"]),
            0
        );
    }
}
