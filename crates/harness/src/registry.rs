//! The named-scenario registry.
//!
//! Every figure and table of the paper's evaluation is registered here as
//! a [`Scenario`]: a declarative sweep grid plus a render function that
//! reproduces the table the original hand-rolled binary printed. The nine
//! `scorpio-bench` binaries are thin wrappers that resolve a name in this
//! registry and hand it to the CLI driver; `harness list` shows everything
//! that can be run, including the reduced `-small` variants the binaries
//! historically accepted as a positional argument.

use scorpio::{ArrivalProcess, Protocol};
use scorpio_workloads::WorkloadParams;

use crate::exec::RunResult;
use crate::scenario::{
    Engine, Fabric, GridFilter, Knob, McPlacement, RunSpec, Scenario, SweepGrid, Variant,
};
use crate::table::render_normalized;

/// Every registered scenario, in presentation order.
///
/// # Panics
///
/// Panics if any registered grid fails [`SweepGrid::validate`] — a
/// zero/duplicate axis value would silently emit duplicate (or no) JSONL
/// rows, so it is rejected here, at registry build time.
pub fn scenarios() -> Vec<Scenario> {
    let all = vec![
        fig6("fig6", 6),
        fig6("fig6-small", 4),
        fig6("fig6-64", 8),
        fig7(),
        fig7_small(),
        fig8a(),
        fig8b(),
        fig8c(),
        fig8d(),
        fig9(),
        fig10("fig10", &[6, 8, 10]),
        fig10("fig10-small", &[3, 4]),
        table1(),
        table2(),
        ablation("ablation", 6),
        ablation("ablation-small", 4),
        scaling("scaling", &[6, 8, 10]),
        scaling("scaling-small", &[3, 4]),
        scaling_mesh("scaling-mesh", &[8, 12, 16]),
        scaling_mesh("scaling-mesh-small", &[4, 8]),
        throughput("throughput", 16),
        throughput("throughput-small", 8),
        topology("topology", 6),
        topology("topology-small", 4),
        route_lookup("route-lookup", 12),
        route_lookup("route-lookup-small", 6),
        obs_overhead("obs-overhead", 12),
        obs_overhead("obs-overhead-small", 6),
        latency_breakdown("latency-breakdown", 8),
        latency_breakdown("latency-breakdown-small", 4),
        planes_scenario("planes", 6),
        planes_scenario("planes-small", 4),
        planes_throughput("planes-throughput", 8),
        planes_throughput("planes-throughput-small", 6),
        mc_placement("mc-placement", 6),
        mc_placement("mc-placement-small", 4),
        cmesh("cmesh", 8),
        cmesh("cmesh-small", 4),
        scaling_kilocore("scaling-kilocore", &[16, 32], kilocore_filter),
        scaling_kilocore("scaling-kilocore-small", &[8, 16], kilocore_small_filter),
        latency_curve("latency-curve", true),
        latency_curve("latency-curve-small", false),
    ];
    for s in &all {
        s.grid
            .validate()
            .unwrap_or_else(|e| panic!("scenario {}: {e}", s.name));
    }
    all
}

/// Resolves a scenario by registry name.
pub fn by_name(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// Display label for a protocol column (the paper's figure legends).
fn protocol_label(p: Protocol) -> String {
    match p {
        Protocol::Inso { expiry_window } => format!("INSO-{expiry_window}"),
        other => other.name(),
    }
}

/// First result matching `pred`, if any.
fn find(results: &[RunResult], pred: impl Fn(&RunSpec) -> bool) -> Option<&RunResult> {
    results.iter().find(|r| pred(&r.spec))
}

/// Runtime matrix with one row per grid workload and one column per grid
/// protocol (missing grid points become 0, which the table renders as a
/// guarded cell rather than NaN). A cell is the runtime averaged over
/// every matching run — i.e. over the seed axis when `--seeds` adds
/// replicates — so the table summarizes the same data the sinks record.
fn protocol_matrix(s: &Scenario, results: &[RunResult]) -> (Vec<&'static str>, Vec<Vec<u64>>) {
    let names: Vec<&'static str> = s.grid.workloads.iter().map(|w| w.name).collect();
    let rows = s
        .grid
        .workloads
        .iter()
        .map(|w| {
            s.grid
                .protocols
                .iter()
                .map(|&p| {
                    mean_runtime(results, |spec| {
                        spec.workload.name == w.name && spec.protocol == p
                    })
                })
                .collect()
        })
        .collect();
    (names, rows)
}

/// Runtime matrix with one row per grid workload and one column per grid
/// variant (cells averaged over replicates, as in [`protocol_matrix`]).
fn variant_matrix(s: &Scenario, results: &[RunResult]) -> (Vec<&'static str>, Vec<Vec<u64>>) {
    let names: Vec<&'static str> = s.grid.workloads.iter().map(|w| w.name).collect();
    let rows = s
        .grid
        .workloads
        .iter()
        .map(|w| {
            s.grid
                .variants
                .iter()
                .map(|v| {
                    mean_runtime(results, |spec| {
                        spec.workload.name == w.name && spec.variant.label == v.label
                    })
                })
                .collect()
        })
        .collect();
    (names, rows)
}

/// Mean runtime over all runs matching `pred`, or 0 when none match.
fn mean_runtime(results: &[RunResult], pred: impl Fn(&RunSpec) -> bool) -> u64 {
    let matching: Vec<u64> = results
        .iter()
        .filter(|r| pred(&r.spec))
        .map(|r| r.report.runtime_cycles)
        .collect();
    if matching.is_empty() {
        0
    } else {
        matching.iter().sum::<u64>() / matching.len() as u64
    }
}

fn variant_labels(s: &Scenario) -> Vec<&str> {
    s.grid.variants.iter().map(|v| v.label.as_str()).collect()
}

// ---------------------------------------------------------------- Figure 6

fn fig6(name: &'static str, k: u16) -> Scenario {
    Scenario {
        name,
        title: format!(
            "Figure 6a — normalized runtime, {} cores",
            k as usize * k as usize
        ),
        about: "LPD-D vs HT-D vs SCORPIO-D across SPLASH-2 + PARSEC",
        grid: SweepGrid::over(WorkloadParams::figure6_set())
            .meshes(&[k])
            .protocols(&[Protocol::LpdDir, Protocol::HtDir, Protocol::Scorpio])
            // The paper's 256 KB directory serves real benchmarks with
            // gigabyte working sets; our synthetic footprints are ~1000x
            // smaller, so the budget is scaled to preserve the capacity
            // pressure that differentiates LPD's wide entries from HT's
            // 2-bit entries (see EXPERIMENTS.md).
            .with_base(vec![Knob::DirTotalBytes(8 * 1024)]),
        render: fig6_render,
    }
}

fn fig6_render(s: &Scenario, results: &[RunResult]) -> String {
    let (names, rows) = protocol_matrix(s, results);
    let mut out = render_normalized(&s.title, &names, &["LPD-D", "HT-D", "SCORPIO-D"], &rows);
    out.push_str("\n=== Figure 6b/6c — latency breakdown (cycles) ===\n");
    out.push_str(&format!(
        "{:<16}{:<12}{:>10}{:>12}{:>12}{:>12}{:>12}\n",
        "benchmark", "protocol", "L2 svc", "c2c-served", "mem-served", "ordering", "%cache"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<16}{:<12}{:>10.1}{:>12.1}{:>12.1}{:>12.1}{:>11.1}%\n",
            r.spec.workload.name,
            r.report.protocol,
            r.report.l2_service_latency.mean(),
            r.report.cache_served.mean(),
            r.report.memory_served.mean(),
            r.report.ordering_delay.mean(),
            100.0 * r.report.cache_served_fraction(),
        ));
    }
    out
}

// ---------------------------------------------------------------- Figure 7

fn fig7() -> Scenario {
    Scenario {
        name: "fig7",
        title: "Figure 7 — normalized runtime, 16 cores".into(),
        about: "SCORPIO vs TokenB vs INSO (expiry 20/40/80) on the PARSEC subset",
        grid: SweepGrid::over(WorkloadParams::figure7_set())
            .meshes(&[4])
            .protocols(&[
                Protocol::Scorpio,
                Protocol::TokenB,
                Protocol::Inso { expiry_window: 20 },
                Protocol::Inso { expiry_window: 40 },
                Protocol::Inso { expiry_window: 80 },
            ]),
        render: fig7_render,
    }
}

fn fig7_render(s: &Scenario, results: &[RunResult]) -> String {
    let (names, rows) = protocol_matrix(s, results);
    let cols: Vec<String> = s
        .grid
        .protocols
        .iter()
        .map(|&p| protocol_label(p))
        .collect();
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    render_normalized(&s.title, &names, &cols, &rows)
}

/// The reduced all-protocol grid backing the engine-equivalence golden
/// test: every ordering scheme — SCORPIO, TokenB, INSO, and both directory
/// baselines — on a 16-core mesh with a small PARSEC subset.
fn fig7_small() -> Scenario {
    Scenario {
        name: "fig7-small",
        title: "Figure 7 (reduced) — all ordering protocols, 16 cores".into(),
        about: "SCORPIO vs TokenB vs INSO-40 vs LPD-D vs HT-D, reduced workload set",
        grid: SweepGrid::over(
            WorkloadParams::figure7_set()
                .into_iter()
                .filter(|p| ["blackscholes", "swaptions"].contains(&p.name))
                .collect(),
        )
        .meshes(&[4])
        .protocols(&[
            Protocol::Scorpio,
            Protocol::TokenB,
            Protocol::Inso { expiry_window: 40 },
            Protocol::LpdDir,
            Protocol::HtDir,
        ]),
        render: fig7_render,
    }
}

// ---------------------------------------------------------------- Figure 8

fn fig8a() -> Scenario {
    Scenario {
        name: "fig8a",
        title: "Figure 8a — channel width".into(),
        about: "NoC exploration: channel width 8/16/32 bytes",
        grid: SweepGrid::over(WorkloadParams::splash2()).variants(vec![
            Variant::knob(Knob::ChannelBytes(8)),
            Variant::knob(Knob::ChannelBytes(16)),
            Variant::knob(Knob::ChannelBytes(32)),
        ]),
        render: fig8_render,
    }
}

fn fig8b() -> Scenario {
    Scenario {
        name: "fig8b",
        title: "Figure 8b — GO-REQ VCs".into(),
        about: "NoC exploration: GO-REQ virtual channels 2/4/6",
        grid: SweepGrid::over(WorkloadParams::splash2()).variants(vec![
            Variant::knob(Knob::GoreqVcs(2)),
            Variant::knob(Knob::GoreqVcs(4)),
            Variant::knob(Knob::GoreqVcs(6)),
        ]),
        render: fig8_render,
    }
}

fn fig8c() -> Scenario {
    Scenario {
        name: "fig8c",
        title: "Figure 8c — UO-RESP VCs × channel width".into(),
        about: "NoC exploration: UO-RESP VC count against channel width",
        grid: SweepGrid::over(WorkloadParams::splash2()).variants(vec![
            Variant::new("8B/2VC", vec![Knob::ChannelBytes(8), Knob::UoRespVcs(2)]),
            Variant::new("8B/4VC", vec![Knob::ChannelBytes(8), Knob::UoRespVcs(4)]),
            Variant::new("16B/2VC", vec![Knob::ChannelBytes(16), Knob::UoRespVcs(2)]),
            Variant::new("16B/4VC", vec![Knob::ChannelBytes(16), Knob::UoRespVcs(4)]),
        ]),
        render: fig8_render,
    }
}

fn fig8d() -> Scenario {
    Scenario {
        name: "fig8d",
        title: "Figure 8d — notification bits per core (4 outstanding)".into(),
        about: "NoC exploration: notification-network width 1/2/3 bits",
        grid: SweepGrid::over(WorkloadParams::splash2())
            .with_base(vec![Knob::Outstanding(4)])
            .variants(vec![
                Variant::knob(Knob::NotificationBits(1)),
                Variant::knob(Knob::NotificationBits(2)),
                Variant::knob(Knob::NotificationBits(3)),
            ]),
        render: fig8_render,
    }
}

fn fig8_render(s: &Scenario, results: &[RunResult]) -> String {
    let (names, rows) = variant_matrix(s, results);
    render_normalized(&s.title, &names, &variant_labels(s), &rows)
}

// ---------------------------------------------------------------- Figure 9

fn fig9() -> Scenario {
    Scenario {
        name: "fig9",
        title: "Figure 9 — tile power and area breakdowns".into(),
        about: "Analytical power/area model (no simulation)",
        grid: SweepGrid::default(), // static: no workloads, zero runs
        render: fig9_render,
    }
}

fn fig9_render(_s: &Scenario, _results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("=== Figure 9a — tile power breakdown ===\n");
    for s in scorpio_physical::tile_power_breakdown() {
        out.push_str(&format!(
            "{:<16}{:>6.1}%\n",
            format!("{:?}", s.component),
            s.percent
        ));
    }
    out.push_str("\n=== Figure 9b — tile area breakdown ===\n");
    for s in scorpio_physical::tile_area_breakdown() {
        out.push_str(&format!(
            "{:<16}{:>6.1}%\n",
            format!("{:?}", s.component),
            s.percent
        ));
    }
    out.push_str(&format!(
        "\nChip power (36 tiles): {:.1} W\n",
        scorpio_physical::chip_power_watts(36)
    ));
    out.push_str(&format!(
        "Notification network width: 36×1b = {} bits (<1% tile area/power)\n",
        scorpio_physical::notification_width_bits(36, 1)
    ));
    out
}

// --------------------------------------------------------------- Figure 10

fn fig10(name: &'static str, meshes: &[u16]) -> Scenario {
    Scenario {
        name,
        title: "Figure 10 — avg L2 service latency (cycles)".into(),
        about: "Pipelined vs non-pipelined uncore across mesh sizes",
        grid: SweepGrid::over(
            [
                "barnes",
                "blackscholes",
                "canneal",
                "fft",
                "fluidanimate",
                "lu",
            ]
            .iter()
            .map(|n| WorkloadParams::by_name(n).expect("registered workload"))
            .collect(),
        )
        .meshes(meshes)
        .variants(vec![
            Variant::knob(Knob::PipelinedUncore(false)),
            Variant::knob(Knob::PipelinedUncore(true)),
        ]),
        render: fig10_render,
    }
}

fn fig10_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<16}{:>8}{:>12}{:>12}{:>10}\n",
        "benchmark", "mesh", "non-PL", "PL", "gain"
    ));
    for &k in &s.grid.mesh_sides {
        let mut sums = [0.0f64; 2];
        for w in &s.grid.workloads {
            let mut lat = [0.0f64; 2];
            for (i, label) in ["non-PL", "PL"].iter().enumerate() {
                lat[i] = find(results, |spec| {
                    spec.workload.name == w.name
                        && spec.mesh_side == k
                        && spec.variant.label == *label
                })
                .map_or(0.0, |r| r.report.l2_service_latency.mean());
                sums[i] += lat[i];
            }
            let gain = if lat[0] > 0.0 {
                100.0 * (lat[0] - lat[1]) / lat[0]
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<16}{:>5}x{:<2}{:>12.1}{:>12.1}{:>9.1}%\n",
                w.name, k, k, lat[0], lat[1], gain
            ));
        }
        let n = s.grid.workloads.len() as f64;
        let gain = if sums[0] > 0.0 {
            100.0 * (sums[0] - sums[1]) / sums[0]
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<16}{:>5}x{:<2}{:>12.1}{:>12.1}{:>9.1}%  <- average\n",
            "AVG",
            k,
            k,
            sums[0] / n,
            sums[1] / n,
            gain
        ));
    }
    out
}

// ------------------------------------------------------------ Tables 1 & 2

fn table1() -> Scenario {
    Scenario {
        name: "table1",
        title: "Table 1 — SCORPIO chip features".into(),
        about: "Chip feature summary (no simulation)",
        grid: SweepGrid::default(),
        render: table1_render,
    }
}

fn table1_render(_s: &Scenario, _results: &[RunResult]) -> String {
    let mut out = String::from("=== Table 1 — SCORPIO chip features ===\n");
    for (feature, value) in scorpio_physical::chip_feature_table() {
        out.push_str(&format!("{feature:<24}{value}\n"));
    }
    out
}

fn table2() -> Scenario {
    Scenario {
        name: "table2",
        title: "Table 2 — multicore processor comparison".into(),
        about: "Processor comparison table (no simulation)",
        grid: SweepGrid::default(),
        render: table2_render,
    }
}

fn table2_render(_s: &Scenario, _results: &[RunResult]) -> String {
    let mut out = String::from("=== Table 2 — multicore processor comparison ===\n");
    out.push_str(&format!(
        "{:<16}{:<8}{:<26}{:<32}{}\n",
        "processor", "cores", "consistency", "coherence", "interconnect"
    ));
    for c in scorpio_physical::processor_comparison_table() {
        out.push_str(&format!(
            "{:<16}{:<8}{:<26}{:<32}{}\n",
            c.name, c.cores, c.consistency, c.coherence, c.interconnect
        ));
    }
    out
}

// ---------------------------------------------------------------- Ablation

fn ablation(name: &'static str, k: u16) -> Scenario {
    Scenario {
        name,
        title: format!("Ablation — {k}x{k}, fluidanimate"),
        about: "Design-choice ablation: bypass, region tracker, FIDs, window slack",
        grid: SweepGrid::over(vec![
            WorkloadParams::by_name("fluidanimate").expect("registered workload")
        ])
        .meshes(&[k])
        .variants(vec![
            Variant::new("baseline (chip)", vec![]),
            Variant::new("no lookahead bypass", vec![Knob::Bypass(false)]),
            Variant::new("no region tracker", vec![Knob::RegionTracker(false)]),
            Variant::new("FID capacity 1", vec![Knob::FidCapacity(1)]),
            Variant::new(
                "2x notification window",
                vec![Knob::NotificationWindowSlack(13)],
            ),
            Variant::new(
                "4x notification window",
                vec![Knob::NotificationWindowSlack(39)],
            ),
        ]),
        render: ablation_render,
    }
}

fn ablation_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<26}{:>10}{:>12}{:>14}{:>12}\n",
        "configuration", "runtime", "L2 svc", "ordering", "normalized"
    ));
    // Each seed is its own replicate block, normalized against *its own*
    // baseline run, so a `--seeds` override never mixes seeds in the
    // normalized column.
    let multi_seed = s.grid.seeds.len() > 1;
    for &seed in &s.grid.seeds {
        let block: Vec<&RunResult> = results.iter().filter(|r| r.spec.seed == seed).collect();
        let base = block.first().map_or(0, |r| r.report.runtime_cycles);
        for r in block {
            let norm = if base > 0 {
                format!("{:>12.3}", r.report.runtime_cycles as f64 / base as f64)
            } else {
                format!("{:>12}", "-")
            };
            let label = if multi_seed {
                format!("{} [seed {}]", r.spec.variant.label, seed)
            } else {
                r.spec.variant.label.clone()
            };
            out.push_str(&format!(
                "{:<26}{:>10}{:>12.1}{:>14.1}{norm}\n",
                label,
                r.report.runtime_cycles,
                r.report.l2_service_latency.mean(),
                r.report.ordering_delay.mean(),
            ));
        }
    }
    out
}

// ----------------------------------------------------------- Section 5.3

fn scaling(name: &'static str, meshes: &[u16]) -> Scenario {
    Scenario {
        name,
        title: "Section 5.3 — GO-REQ VC scaling at high core counts".into(),
        about: "VC scaling (4/16/50) on growing meshes vs the 1/k^2 bound",
        grid: SweepGrid::over(vec![
            WorkloadParams::by_name("fluidanimate").expect("registered workload")
        ])
        .meshes(meshes)
        .variants(vec![
            Variant::knob(Knob::GoreqVcs(4)),
            Variant::knob(Knob::GoreqVcs(16)),
            Variant::knob(Knob::GoreqVcs(50)),
        ])
        .filtered(scaling_filter),
        render: scaling_render,
    }
}

/// The GO-REQ VC count a spec's variant sets (the chip default, 4, when
/// the variant leaves the knob alone) — shared by the scaling filter and
/// render so they can never disagree.
fn goreq_vcs(spec: &RunSpec) -> u8 {
    spec.variant
        .knobs
        .iter()
        .find_map(|k| match k {
            Knob::GoreqVcs(v) => Some(*v),
            _ => None,
        })
        .unwrap_or(4)
}

/// The paper's non-rectangular sweep: small meshes only need few VCs to
/// reach the topology bound, so higher VC counts are only run where they
/// matter (6×6 → 4; 8×8 → 4/16; larger → 4/16/50).
fn scaling_filter(spec: &RunSpec) -> bool {
    let vcs = goreq_vcs(spec);
    match spec.mesh_side {
        6 => vcs == 4,
        8 => vcs <= 16,
        _ => true,
    }
}

fn scaling_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:>6}{:>8}{:>10}{:>12}{:>14}{:>16}\n",
        "mesh", "cores", "GO-VCs", "runtime", "L2 svc (cyc)", "1/k^2 bound"
    ));
    for r in results {
        let k = r.spec.mesh_side;
        let vcs = goreq_vcs(&r.spec);
        out.push_str(&format!(
            "{:>4}x{:<3}{:>6}{:>10}{:>12}{:>14.1}{:>16.4}\n",
            k,
            k,
            k as usize * k as usize,
            vcs,
            r.report.runtime_cycles,
            r.report.l2_service_latency.mean(),
            1.0 / (k as f64 * k as f64),
        ));
    }
    out.push_str("\nPer the paper: more GO-REQ VCs push throughput toward the\n");
    out.push_str("topology bound, but a k x k mesh broadcast cannot exceed 1/k^2\n");
    out.push_str("flits/node/cycle — multiple main networks are the cheaper fix.\n");
    out
}

// ------------------------------------------------- Scaling-mesh scenarios

/// Synthetic traffic shapes for the large-mesh sweeps. Not named after any
/// benchmark: these are uniform-random traffic generators whose knobs are
/// chosen to exercise the mesh, not to mimic an application, so they live
/// here rather than in the workload registry.
///
/// `uniform-low` is the low-injection point: barrier-style phasing — short
/// memory bursts over a cache-resident, mostly private footprint, then a
/// long synchronized compute phase during which the network drains and the
/// whole machine is quiescent. That burst/drain-tail shape is exactly the
/// regime the active-set engine exists for. `uniform-med` keeps the mesh
/// under continuous broadcast load for contrast.
fn uniform_low() -> WorkloadParams {
    WorkloadParams {
        name: "uniform-low",
        ops_per_core: 400,
        mean_gap: 4.0,
        write_fraction: 0.1,
        shared_fraction: 0.004,
        shared_lines: 64,
        private_lines: 4,
        hot_fraction: 0.2,
        hot_lines: 8,
        migratory_fraction: 0.02,
        locality: 0.95,
        phase_ops: 12,
        phase_gap: 40_000,
    }
}

/// Moderate-injection uniform traffic.
fn uniform_med() -> WorkloadParams {
    WorkloadParams {
        name: "uniform-med",
        ops_per_core: 400,
        mean_gap: 10.0,
        write_fraction: 0.35,
        shared_fraction: 0.5,
        shared_lines: 4096,
        private_lines: 1024,
        hot_fraction: 0.1,
        hot_lines: 64,
        migratory_fraction: 0.1,
        locality: 0.6,
        phase_ops: 0,
        phase_gap: 0,
    }
}

/// Large-mesh SCORPIO sweeps (8×8 → 16×16) with MC bandwidth scaled to the
/// core count.
fn scaling_mesh(name: &'static str, meshes: &[u16]) -> Scenario {
    Scenario {
        name,
        title: "Scaling-mesh — SCORPIO beyond the chip (proportional MCs)".into(),
        about: "Large-mesh synthetic-traffic sweeps, one MC per 16 tiles",
        grid: SweepGrid::over(vec![uniform_low(), uniform_med()])
            .meshes(meshes)
            .with_base(vec![Knob::ProportionalMcs]),
        render: scaling_mesh_render,
    }
}

fn scaling_mesh_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:>8}{:>7}{:>5}{:>12}{:>12}{:>12}{:>10}\n",
        "workload", "mesh", "cores", "MCs", "runtime", "L2 svc", "pkt lat", "bypass"
    ));
    for r in results {
        let k = r.spec.mesh_side;
        out.push_str(&format!(
            "{:<14}{:>6}x{:<2}{:>6}{:>5}{:>12}{:>12.1}{:>12.1}{:>9.1}%\n",
            r.spec.workload.name,
            k,
            k,
            k as usize * k as usize,
            r.spec.config().mesh.mc_routers().len(),
            r.report.runtime_cycles,
            r.report.l2_service_latency.mean(),
            r.report.packet_latency.mean(),
            100.0 * r.report.bypass_rate(),
        ));
    }
    out
}

// ------------------------------------------------ Throughput self-benchmark

/// Simulator self-benchmark: the identical low-injection sweep under both
/// engines, so the active-set speedup is *measured* on every run rather
/// than asserted. Wall-clock derived numbers are inherently
/// non-deterministic; they appear in the rendered table (and, with
/// `--timing`, the sinks) but never in default sink output.
fn throughput(name: &'static str, mesh: u16) -> Scenario {
    Scenario {
        name,
        title: format!(
            "Throughput — simulated cycles/sec, active-set vs always-scan ({mesh}x{mesh})"
        ),
        about: "Engine self-benchmark: low-injection sweep under both engines",
        grid: SweepGrid::over(vec![uniform_low()])
            .meshes(&[mesh])
            .engines(&[Engine::ActiveSet, Engine::AlwaysScan])
            .with_base(vec![Knob::ProportionalMcs]),
        render: throughput_render,
    }
}

fn throughput_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:>8}{:>12}{:>12}{:>14}{:>16}\n",
        "workload", "engine", "runtime", "wall (ms)", "sim cyc/sec", "speedup"
    ));
    // cycles/sec of each engine, then the active/scan ratio per workload.
    let rate = |r: &RunResult| -> f64 {
        let secs = r.wall_nanos as f64 / 1e9;
        if secs > 0.0 {
            r.report.runtime_cycles as f64 / secs
        } else {
            0.0
        }
    };
    for w in &s.grid.workloads {
        let mut rates = [0.0f64; 2];
        for r in results.iter().filter(|r| r.spec.workload.name == w.name) {
            let (slot, label) = match r.spec.engine {
                Engine::ActiveSet => (0, "active"),
                Engine::AlwaysScan => (1, "scan"),
                _ => continue,
            };
            rates[slot] = rate(r);
            out.push_str(&format!(
                "{:<14}{:>8}{:>12}{:>12.1}{:>14.0}{:>16}\n",
                w.name,
                label,
                r.report.runtime_cycles,
                r.wall_nanos as f64 / 1e6,
                rates[slot],
                "",
            ));
        }
        if rates[1] > 0.0 {
            out.push_str(&format!(
                "{:<14}{:>8}{:>12}{:>12}{:>14}{:>15.2}x\n",
                w.name,
                "",
                "",
                "",
                "",
                rates[0] / rates[1]
            ));
        }
    }
    out.push_str("\nBoth engines produce byte-identical reports (see the\n");
    out.push_str("engine-equivalence test suite); only wall-clock differs.\n");
    out
}

// ------------------------------------------- Kilocore scale-out benchmark

/// One cell of the kilocore sweep, parameterized on the grid's larger
/// mesh side: the big side runs single-plane (the 1024-core flat mesh and
/// its concentrated twin), the small side runs the 4-plane concentrated
/// composition. The proportional-MC variant pairs with the flat mesh only
/// (the placement is undefined elsewhere); concentrated cells keep their
/// corner MCs.
fn kilocore_cell(spec: &RunSpec, big: u16) -> bool {
    let prop = spec.variant.knobs.contains(&Knob::ProportionalMcs);
    let pairing_ok = match spec.fabric {
        Fabric::Mesh => prop,
        _ => !prop,
    };
    pairing_ok
        && if spec.mesh_side == big {
            spec.planes == 1
        } else {
            spec.fabric == Fabric::CMesh(4) && spec.planes == 4
        }
}

fn kilocore_filter(spec: &RunSpec) -> bool {
    kilocore_cell(spec, 32)
}

fn kilocore_small_filter(spec: &RunSpec) -> bool {
    kilocore_cell(spec, 16)
}

/// Kilocore scale-out self-benchmark: the low-injection barrier workload
/// on a 32×32 mesh (1024 cores, proportional MCs), its concentrated twin
/// `cmesh16x16x4`, and a 4-plane `cmesh8x8x4` composition — each under
/// the plain active-set engine, the event-leaping clock, and leap plus
/// four worker lanes (`turbo`), and each with the flat notification
/// scheme and the hierarchical quad tree (`quad-f2`, which shrinks the
/// notification window from O(grid diameter) to O(2·tree depth) and
/// unlocks per-region leap accounting). All engines produce byte-identical
/// reports (equivalence matrix); the table measures what the leap, the
/// workers and the quad window buy at this scale.
fn scaling_kilocore(name: &'static str, meshes: &'static [u16], filter: GridFilter) -> Scenario {
    Scenario {
        name,
        title: format!(
            "Scaling-kilocore — engine scale-out at {} cores (leap + parallel ticking)",
            meshes.last().map_or(0, |&k| k as usize * k as usize)
        ),
        about: "Kilocore self-benchmark: active-set vs leap vs turbo, flat vs quad notify",
        grid: SweepGrid::over(vec![uniform_low()])
            .meshes(meshes)
            .fabrics(&[Fabric::Mesh, Fabric::CMesh(4)])
            .planes(&[1, 4])
            .engines(&[Engine::ActiveSet, Engine::Leap, Engine::Turbo])
            .variants(vec![
                Variant::new("prop-MCs", vec![Knob::ProportionalMcs]),
                Variant::new(
                    "prop-MCs+quad-f2",
                    vec![Knob::ProportionalMcs, Knob::QuadNotify(2)],
                ),
                Variant::baseline(),
                Variant::new("quad-f2", vec![Knob::QuadNotify(2)]),
            ])
            .filtered(filter),
        render: scaling_kilocore_render,
    }
}

/// The notification-scheme label of a spec's variant: "flat", or
/// `quad-fN` when the variant carries a [`Knob::QuadNotify`].
fn kilocore_notify_label(spec: &RunSpec) -> String {
    spec.variant
        .knobs
        .iter()
        .find_map(|k| match k {
            Knob::QuadNotify(f) => Some(format!("quad-f{f}")),
            _ => None,
        })
        .unwrap_or_else(|| "flat".into())
}

fn scaling_kilocore_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<16}{:>7}{:>9}{:>8}{:>12}{:>12}{:>10}{:>10}{:>14}{:>10}\n",
        "geometry",
        "planes",
        "notify",
        "engine",
        "runtime",
        "stepped",
        "leap",
        "r-leap",
        "sim cyc/sec",
        "speedup"
    ));
    let rate = |r: &RunResult| -> f64 {
        let secs = r.sim_nanos as f64 / 1e9;
        if secs > 0.0 {
            r.report.runtime_cycles as f64 / secs
        } else {
            0.0
        }
    };
    // Group rows by cell (geometry + planes + notification scheme); the
    // speedup column is each engine's rate over the active-set engine on
    // the same cell.
    let mut cells: Vec<(u16, Fabric, usize, String)> = Vec::new();
    for r in results {
        let cell = (
            r.spec.mesh_side,
            r.spec.fabric,
            r.spec.planes,
            kilocore_notify_label(&r.spec),
        );
        if !cells.contains(&cell) {
            cells.push(cell);
        }
    }
    for (k, fabric, planes, notify) in cells {
        let base = results
            .iter()
            .find(|r| {
                r.spec.mesh_side == k
                    && r.spec.fabric == fabric
                    && r.spec.planes == planes
                    && kilocore_notify_label(&r.spec) == notify
                    && r.spec.engine == Engine::ActiveSet
            })
            .map_or(0.0, rate);
        for r in results.iter().filter(|r| {
            r.spec.mesh_side == k
                && r.spec.fabric == fabric
                && r.spec.planes == planes
                && kilocore_notify_label(&r.spec) == notify
        }) {
            let engine = match r.spec.engine.label() {
                "" => "active",
                label => label,
            };
            let leap = if r.stepped_cycles > 0 {
                format!(
                    "{:>9.2}x",
                    r.report.runtime_cycles as f64 / r.stepped_cycles as f64
                )
            } else {
                format!("{:>10}", "-")
            };
            // Per-region leap: simulated cycles over mean stepped cycles
            // per region — what event leaping buys once a quiescent quad
            // no longer has to lockstep with a bursting neighbour.
            let rleap = if r.regions > 1 && r.region_cycles_stepped > 0 {
                format!(
                    "{:>9.2}x",
                    r.report.runtime_cycles as f64 * r.regions as f64
                        / r.region_cycles_stepped as f64
                )
            } else {
                format!("{:>10}", "-")
            };
            out.push_str(&format!(
                "{:<16}{:>7}{:>9}{:>8}{:>12}{:>12}{leap}{rleap}{:>14.0}{speedup}\n",
                fabric.geometry(k),
                planes,
                notify,
                engine,
                r.report.runtime_cycles,
                r.stepped_cycles,
                rate(r),
                speedup = if base > 0.0 && rate(r) > 0.0 {
                    format!("{:>9.2}x", rate(r) / base)
                } else {
                    format!("{:>10}", "-")
                },
            ));
        }
    }
    out.push_str("\nAll engines produce byte-identical reports and traces (the\n");
    out.push_str("equivalence matrix asserts this); leap is simulated/stepped\n");
    out.push_str("cycles, r-leap is simulated cycles over mean stepped cycles\n");
    out.push_str("per leaf quad (quad notify only), speedup is sim-cycles/sec\n");
    out.push_str("over the active-set engine on the same cell.\n");
    out
}

// ------------------------------------------------- Topology comparisons

/// All five ordering protocols over all three delivery fabrics at matched
/// endpoint counts (`k²` tiles + 4 MC ports each): the ordered-broadcast
/// machinery does not care how delivery happens, so every cell of this
/// grid must complete — and the runtime differences isolate pure delivery
/// effects (diameter, wrap links, router radix).
fn topology(name: &'static str, k: u16) -> Scenario {
    Scenario {
        name,
        title: format!(
            "Topology — mesh vs torus vs ring at {} cores, all ordering protocols",
            k as usize * k as usize
        ),
        about: "Delivery-fabric sweep: mesh/torus/ring under all five protocols",
        grid: SweepGrid::over(
            WorkloadParams::figure7_set()
                .into_iter()
                .filter(|p| ["blackscholes", "swaptions"].contains(&p.name))
                .collect(),
        )
        .meshes(&[k])
        .fabrics(&[Fabric::Mesh, Fabric::Torus, Fabric::Ring])
        .protocols(&[
            Protocol::Scorpio,
            Protocol::TokenB,
            Protocol::Inso { expiry_window: 40 },
            Protocol::LpdDir,
            Protocol::HtDir,
        ]),
        render: topology_render,
    }
}

fn topology_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:<10}{:<12}{:>6}{:>12}{:>12}{:>12}{:>10}\n",
        "workload", "fabric", "protocol", "diam", "runtime", "L2 svc", "pkt lat", "bypass"
    ));
    for r in results {
        let cfg = r.spec.config();
        out.push_str(&format!(
            "{:<14}{:<10}{:<12}{:>6}{:>12}{:>12.1}{:>12.1}{:>9.1}%\n",
            r.spec.workload.name,
            cfg.mesh.name(),
            r.report.protocol,
            cfg.mesh.diameter(),
            r.report.runtime_cycles,
            r.report.l2_service_latency.mean(),
            r.report.packet_latency.mean(),
            100.0 * r.report.bypass_rate(),
        ));
    }
    out.push_str("\nMatched endpoint counts per row block; ordering is decoupled\n");
    out.push_str("from delivery, so every fabric carries every protocol.\n");
    out
}

// ------------------------------------- Route-lookup self-benchmark

/// Simulator self-benchmark: the identical sweep with table-lookup routing
/// (default) vs per-flit coordinate-spec routing, so the table win is
/// *measured* on every run. Reports are byte-identical across the two
/// (engine-equivalence suite); only wall-clock differs.
fn route_lookup(name: &'static str, mesh: u16) -> Scenario {
    Scenario {
        name,
        title: format!("Route-lookup — table routing vs per-flit coordinate math ({mesh}x{mesh})"),
        about: "Routing self-benchmark: compiled tables vs coordinate math",
        grid: SweepGrid::over(vec![uniform_med()])
            .meshes(&[mesh])
            .engines(&[Engine::ActiveSet, Engine::CoordRoute]),
        render: route_lookup_render,
    }
}

fn route_lookup_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:>8}{:>12}{:>12}{:>14}{:>16}\n",
        "workload", "routing", "runtime", "wall (ms)", "sim cyc/sec", "speedup"
    ));
    let rate = |r: &RunResult| -> f64 {
        let secs = r.wall_nanos as f64 / 1e9;
        if secs > 0.0 {
            r.report.runtime_cycles as f64 / secs
        } else {
            0.0
        }
    };
    for w in &s.grid.workloads {
        let mut rates = [0.0f64; 2];
        for r in results.iter().filter(|r| r.spec.workload.name == w.name) {
            let (slot, label) = match r.spec.engine {
                Engine::ActiveSet => (0, "tables"),
                Engine::CoordRoute => (1, "coord"),
                _ => continue,
            };
            rates[slot] = rate(r);
            out.push_str(&format!(
                "{:<14}{:>8}{:>12}{:>12.1}{:>14.0}{:>16}\n",
                w.name,
                label,
                r.report.runtime_cycles,
                r.wall_nanos as f64 / 1e6,
                rates[slot],
                "",
            ));
        }
        if rates[1] > 0.0 {
            out.push_str(&format!(
                "{:<14}{:>8}{:>12}{:>12}{:>14}{:>15.2}x\n",
                w.name,
                "",
                "",
                "",
                "",
                rates[0] / rates[1]
            ));
        }
    }
    out.push_str("\nBoth routings produce byte-identical reports (equivalence\n");
    out.push_str("suite); only wall-clock differs.\n");
    out
}

// ----------------------------------------- Observability self-benchmark

/// Simulator self-benchmark: the identical sweep with observability off,
/// at the counter level and at the full flit trace, so the cost of the
/// instrumentation is *measured* on every run. The off column is the
/// baseline the <2% overhead assertion (`obs_overhead` test) holds
/// against; reports differ only in the `obs` annex (equivalence suite).
fn obs_overhead(name: &'static str, mesh: u16) -> Scenario {
    Scenario {
        name,
        title: format!("Observability overhead — off vs counters vs trace ({mesh}x{mesh})"),
        about: "Observability self-benchmark: off vs counters vs flit trace",
        grid: SweepGrid::over(vec![uniform_med()])
            .meshes(&[mesh])
            .variants(vec![
                Variant::new("obs-off", vec![]),
                Variant::knob(Knob::Obs(scorpio::ObsLevel::Counters)),
                Variant::knob(Knob::Obs(scorpio::ObsLevel::Trace)),
                Variant::knob(Knob::Spans),
                Variant::knob(Knob::Windows(1024)),
            ]),
        render: obs_overhead_render,
    }
}

fn obs_overhead_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:>14}{:>12}{:>12}{:>14}{:>12}\n",
        "workload", "obs", "runtime", "wall (ms)", "sim cyc/sec", "overhead"
    ));
    let rate = |r: &RunResult| -> f64 {
        let secs = r.sim_nanos as f64 / 1e9;
        if secs > 0.0 {
            r.report.runtime_cycles as f64 / secs
        } else {
            0.0
        }
    };
    for w in &s.grid.workloads {
        let mut base = 0.0f64;
        for r in results.iter().filter(|r| r.spec.workload.name == w.name) {
            let cyc = rate(r);
            if r.spec.variant.label == "obs-off" {
                base = cyc;
            }
            let overhead = if base > 0.0 && cyc > 0.0 {
                format!("{:>+10.1}%", 100.0 * (base / cyc - 1.0))
            } else {
                format!("{:>11}", "")
            };
            out.push_str(&format!(
                "{:<14}{:>14}{:>12}{:>12.1}{:>14.0}{:>12}\n",
                w.name,
                r.spec.variant.label,
                r.report.runtime_cycles,
                r.wall_nanos as f64 / 1e6,
                cyc,
                overhead,
            ));
        }
    }
    out.push_str("\nSimulated behavior is identical at every level (obs\n");
    out.push_str("equivalence tests); only recording work differs.\n");
    out
}

// ------------------------------------------------------ Latency breakdown

/// The paper's latency-decomposition story, measured from transaction
/// spans: every ordering protocol on the chip mesh and on a concentrated
/// mesh with half the routers (smaller diameter). The span phases show
/// queueing, injection wait, traversal, ordering commit, data wait and
/// fill separately — for SCORPIO the ordering-commit share stays flat
/// while traversal tracks the fabric diameter, the decoupling thesis.
fn latency_breakdown(name: &'static str, mesh: u16) -> Scenario {
    Scenario {
        name,
        title: format!("Latency breakdown — span phases per protocol ({mesh}x{mesh} tiles)"),
        about: "Per-phase miss-latency decomposition from transaction spans",
        grid: SweepGrid::over(vec![WorkloadParams::by_name("blackscholes").unwrap()])
            .meshes(&[mesh])
            .fabrics(&[Fabric::Mesh, Fabric::CMesh(2)])
            .protocols(&[
                Protocol::Scorpio,
                Protocol::TokenB,
                Protocol::Inso { expiry_window: 40 },
                Protocol::LpdDir,
                Protocol::HtDir,
            ])
            .variants(vec![Variant::knob(Knob::Spans)]),
        render: latency_breakdown_render,
    }
}

fn latency_breakdown_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<12}{:>9}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>9}{:>11}\n",
        "fabric",
        "protocol",
        "queue",
        "inject",
        "flight",
        "commit",
        "data",
        "fill",
        "total",
        "reconcile"
    ));
    let mean = |sum: u64, count: u64| {
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    };
    for r in results {
        let Some(sp) = r.report.obs.as_ref().and_then(|o| o.spans.as_ref()) else {
            continue;
        };
        // Exact reconciliation against the scalar report: inject + flight
        // + commit is the ordering delay, and the span totals plus the
        // hit latencies rebuild the full L2 service distribution.
        let ordering = &r.report.ordering_delay;
        let service = &r.report.l2_service_latency;
        let ordering_exact = sp.inject.sum() + sp.flight.sum() + sp.commit.sum() == ordering.sum()
            && sp.inject.count() == ordering.count();
        let service_exact = sp.total.sum() + sp.hit.sum() == service.sum()
            && sp.total.count() + sp.hit.count() == service.count();
        let fabric = match r.spec.fabric.label() {
            "" => "mesh".to_string(),
            label => label.to_string(),
        };
        out.push_str(&format!(
            "{:<12}{:>9}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>9.1}{:>11}\n",
            fabric,
            protocol_label(r.spec.protocol),
            mean(sp.queue.sum(), sp.queue.count()),
            mean(sp.inject.sum(), sp.inject.count()),
            mean(sp.flight.sum(), sp.flight.count()),
            mean(sp.commit.sum(), sp.commit.count()),
            mean(sp.data.sum(), sp.data.count()),
            mean(sp.fill.sum(), sp.fill.count()),
            mean(sp.total.sum(), sp.total.count()),
            if ordering_exact && service_exact {
                "exact"
            } else {
                "MISMATCH"
            },
        ));
    }
    out.push_str("\nPer-phase means over every recorded miss span (cycles).\n");
    out.push_str("reconcile=exact: inject+flight+commit sums equal the ordering-\n");
    out.push_str("delay scalars and span totals + hits rebuild l2_service_latency.\n");
    out
}

// ----------------------------------------------- Multi-plane main networks

/// Saturating broadcast-heavy traffic: every access misses (the shared
/// footprint dwarfs the L2), so the ordered-request rate is bounded by the
/// network, not the cores. The regime where Section 5.3's 1/k² broadcast
/// bound binds — and the one the plane replication exists to lift.
fn bcast_heavy() -> WorkloadParams {
    WorkloadParams {
        name: "bcast-heavy",
        ops_per_core: 400,
        mean_gap: 0.5,
        write_fraction: 0.5,
        shared_fraction: 1.0,
        shared_lines: 16384,
        private_lines: 1,
        hot_fraction: 0.0,
        hot_lines: 1,
        migratory_fraction: 0.0,
        locality: 0.0,
        phase_ops: 0,
        phase_gap: 0,
    }
}

/// The GO-REQ VC count of a result's variant (chip default 4) — feeds the
/// physical model's VC scaling in the plane/topology energy columns.
fn result_goreq_vcs(r: &RunResult) -> u8 {
    goreq_vcs(&r.spec)
}

/// Relative network energy per completed request for one run: the
/// physical model's (fabric, planes, concentration, VC)-scaled network
/// power integrated over the runtime, per op. Only ratios between rows
/// are meaningful. The concentration comes from the topology itself
/// (`tiles_per_router`) — the same derivation the delivery fabric and
/// notification window use — so the energy column can never disagree
/// with the topology about router shape.
fn net_energy_per_op(r: &RunResult) -> f64 {
    let cfg = r.spec.config();
    scorpio_physical::energy_per_message_scale_c(
        result_goreq_vcs(r),
        cfg.mesh.name(),
        r.spec.planes,
        cfg.mesh.tiles_per_router() as usize,
        r.report.runtime_cycles,
        r.report.ops_completed,
    )
}

/// Multi-plane main networks (Section 5.3's "cheaper fix"): every fabric ×
/// 1/2/4 address-interleaved planes × all five ordering protocols at
/// matched endpoint counts. Ordering is per plane (hence per address), so
/// every cell must complete; the runtime and energy columns quantify what
/// replication buys and costs.
fn planes_scenario(name: &'static str, k: u16) -> Scenario {
    Scenario {
        name,
        title: format!(
            "Planes — 1/2/4 main networks at {} cores, all fabrics and protocols",
            k as usize * k as usize
        ),
        about: "Multi-plane sweep: address-interleaved parallel fabrics, per-plane ordering",
        grid: SweepGrid::over(
            WorkloadParams::figure7_set()
                .into_iter()
                .filter(|p| p.name == "blackscholes")
                .collect(),
        )
        .meshes(&[k])
        .fabrics(&[Fabric::Mesh, Fabric::Torus, Fabric::Ring])
        .planes(&[1, 2, 4])
        .protocols(&[
            Protocol::Scorpio,
            Protocol::TokenB,
            Protocol::Inso { expiry_window: 40 },
            Protocol::LpdDir,
            Protocol::HtDir,
        ]),
        render: planes_render,
    }
}

fn planes_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:<10}{:>7}{:<3}{:<12}{:>12}{:>12}{:>12}{:>12}\n",
        "workload",
        "fabric",
        "planes",
        "",
        "protocol",
        "runtime",
        "pkt lat",
        "net-power",
        "net-E/op"
    ));
    for r in results {
        let cfg = r.spec.config();
        out.push_str(&format!(
            "{:<14}{:<10}{:>7}{:<3}{:<12}{:>12}{:>12.1}{:>11.2}x{:>12.1}\n",
            r.spec.workload.name,
            cfg.mesh.name(),
            r.spec.planes,
            "",
            r.report.protocol,
            r.report.runtime_cycles,
            r.report.packet_latency.mean(),
            scorpio_physical::network_power_scale(
                result_goreq_vcs(r),
                cfg.mesh.name(),
                r.spec.planes
            ),
            net_energy_per_op(r),
        ));
    }
    out.push_str("\nPer-address order is preserved across planes (steering assigns\n");
    out.push_str("each line to exactly one plane); net-power and net-E/op come from\n");
    out.push_str("the physical model, so bandwidth gains are priced, not free.\n");
    out
}

// ----------------------------------- Plane-throughput self-benchmark

/// Delivered-request throughput on a saturated mesh as planes replicate:
/// the acceptance benchmark for the "multiple main networks" subsystem.
/// Every run retires the same ops, so requests/kcycle — and the speedup
/// column — reduce to runtime ratios of *simulated* cycles; unlike the
/// engine self-benchmarks, this one is fully deterministic.
fn planes_throughput(name: &'static str, mesh: u16) -> Scenario {
    Scenario {
        name,
        title: format!(
            "Planes-throughput — delivered requests/kcycle, 1/2/4 planes ({mesh}x{mesh} saturated)"
        ),
        about: "Plane self-benchmark: broadcast-saturated mesh, throughput and energy vs planes",
        grid: SweepGrid::over(vec![bcast_heavy()])
            .meshes(&[mesh])
            .planes(&[1, 2, 4])
            .with_base(vec![Knob::Outstanding(4)]),
        render: planes_throughput_render,
    }
}

fn planes_throughput_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:>7}{:>12}{:>12}{:>12}{:>12}{:>12}\n",
        "workload", "planes", "runtime", "req/kcyc", "speedup", "net-power", "net-E/op"
    ));
    for w in &s.grid.workloads {
        let base = find(results, |spec| {
            spec.workload.name == w.name && spec.planes == 1
        })
        .map_or(0, |r| r.report.runtime_cycles);
        for r in results.iter().filter(|r| r.spec.workload.name == w.name) {
            let rate = if r.report.runtime_cycles > 0 {
                1000.0 * r.report.ops_completed as f64 / r.report.runtime_cycles as f64
            } else {
                0.0
            };
            let speedup = if r.report.runtime_cycles > 0 && base > 0 {
                format!("{:>11.2}x", base as f64 / r.report.runtime_cycles as f64)
            } else {
                format!("{:>12}", "-")
            };
            out.push_str(&format!(
                "{:<14}{:>7}{:>12}{:>12.1}{speedup}{:>11.2}x{:>12.1}\n",
                r.spec.workload.name,
                r.spec.planes,
                r.report.runtime_cycles,
                rate,
                scorpio_physical::network_power_scale(result_goreq_vcs(r), "mesh", r.spec.planes),
                net_energy_per_op(r),
            ));
        }
    }
    out.push_str("\nEvery run retires the identical op count, so speedup is the\n");
    out.push_str("runtime ratio vs the single-plane network on the same traffic.\n");
    out
}

// ------------------------------------------- MC placement sweeps

/// The MC-placement key of a spec's variant, if any.
fn placement_of(spec: &RunSpec) -> Option<McPlacement> {
    spec.variant.knobs.iter().find_map(|k| match k {
        Knob::McPlacement { placement, .. } => Some(*placement),
        _ => None,
    })
}

/// Keeps only (fabric, placement) combinations that are defined: corner
/// placements on mesh/torus, ring spreading on rings, proportional on
/// meshes.
fn mc_placement_filter(spec: &RunSpec) -> bool {
    placement_of(spec).is_some_and(|p| p.supports(spec.fabric))
}

/// Topology-aware MC placement: MC count × placement scheme × fabric, at
/// matched core counts. Exposes each fabric's memory-bandwidth
/// sensitivity — corner MCs melt under traffic a spread placement
/// balances, and the effect differs per topology.
fn mc_placement(name: &'static str, k: u16) -> Scenario {
    Scenario {
        name,
        title: format!(
            "MC placement — count x placement x fabric at {} cores",
            k as usize * k as usize
        ),
        about: "MC count/placement sweep: corner vs spread vs proportional per fabric",
        grid: SweepGrid::over(vec![uniform_med()])
            .meshes(&[k])
            .fabrics(&[Fabric::Mesh, Fabric::Torus, Fabric::Ring])
            .variants(vec![
                Variant::knob(Knob::McPlacement {
                    placement: McPlacement::Corner,
                    mcs: 2,
                }),
                Variant::knob(Knob::McPlacement {
                    placement: McPlacement::Corner,
                    mcs: 4,
                }),
                Variant::knob(Knob::McPlacement {
                    placement: McPlacement::Spread,
                    mcs: 2,
                }),
                Variant::knob(Knob::McPlacement {
                    placement: McPlacement::Spread,
                    mcs: 4,
                }),
                Variant::knob(Knob::McPlacement {
                    placement: McPlacement::Proportional,
                    mcs: 0,
                }),
            ])
            .filtered(mc_placement_filter),
        render: mc_placement_render,
    }
}

fn mc_placement_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:<10}{:<12}{:>5}{:>12}{:>14}{:>12}\n",
        "workload", "fabric", "placement", "MCs", "runtime", "mem-served", "pkt lat"
    ));
    for r in results {
        let cfg = r.spec.config();
        out.push_str(&format!(
            "{:<14}{:<10}{:<12}{:>5}{:>12}{:>14.1}{:>12.1}\n",
            r.spec.workload.name,
            cfg.mesh.name(),
            r.spec.mc_placement().unwrap_or_default(),
            cfg.mesh.mc_routers().len(),
            r.report.runtime_cycles,
            r.report.memory_served.mean(),
            r.report.packet_latency.mean(),
        ));
    }
    out.push_str("\nEach fabric runs only the placements defined for it (corner on\n");
    out.push_str("mesh/torus, spreading on rings, proportional on meshes).\n");
    out
}

// --------------------------------------------- Concentrated-mesh sweeps

/// Concentrated mesh (CMesh): `k²` cores at concentration 1, 2 and 4 —
/// the same tile count on ever-smaller router grids — under every
/// ordering protocol, plus a 2-plane SCORPIO column to show the fabric
/// axis composes with plane replication. Concentration halves the
/// diameter (and with it the notification window) at each step; the
/// table's hop/window columns make the trade visible and the pkt-lat
/// column shows it landing: on the uncongested workload, c=2/4 deliver
/// ordered broadcasts in strictly fewer cycles than c=1.
fn cmesh(name: &'static str, k: u16) -> Scenario {
    Scenario {
        name,
        title: format!(
            "CMesh — concentration 1/2/4 at {} cores, all ordering protocols",
            k as usize * k as usize
        ),
        about: "Concentrated-mesh sweep: 1/2/4 tiles per router at matched core counts",
        grid: SweepGrid::over(
            WorkloadParams::figure7_set()
                .into_iter()
                .filter(|p| p.name == "blackscholes")
                .collect(),
        )
        .meshes(&[k])
        .fabrics(&[Fabric::CMesh(1), Fabric::CMesh(2), Fabric::CMesh(4)])
        .planes(&[1, 2])
        .protocols(&[
            Protocol::Scorpio,
            Protocol::TokenB,
            Protocol::Inso { expiry_window: 40 },
            Protocol::LpdDir,
            Protocol::HtDir,
        ])
        // Ragged: every protocol on the single-plane network, SCORPIO
        // alone on the 2-plane composition column.
        .filtered(|s| s.planes == 1 || s.protocol == Protocol::Scorpio),
        render: cmesh_render,
    }
}

fn cmesh_render(s: &Scenario, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<14}{:<14}{:>5}{:>7}{:>6}{:>8} {:<13}{:>12}{:>12}{:>12}{:>12}\n",
        "workload",
        "geometry",
        "conc",
        "planes",
        "diam",
        "window",
        "protocol",
        "runtime",
        "pkt lat",
        "net-power",
        "net-E/op"
    ));
    for r in results {
        let cfg = r.spec.config();
        let conc = cfg.mesh.tiles_per_router();
        out.push_str(&format!(
            "{:<14}{:<14}{:>5}{:>7}{:>6}{:>8} {:<13}{:>12}{:>12.1}{:>11.2}x{:>12.1}\n",
            r.spec.workload.name,
            cfg.mesh.label(),
            conc,
            r.spec.planes,
            cfg.mesh.diameter(),
            cfg.mesh.notification_window(),
            r.report.protocol,
            r.report.runtime_cycles,
            r.report.packet_latency.mean(),
            scorpio_physical::network_power_scale_c(
                result_goreq_vcs(r),
                cfg.mesh.name(),
                r.spec.planes,
                conc as usize,
            ),
            net_energy_per_op(r),
        ));
    }
    // Per-protocol latency deltas vs the unconcentrated column — the
    // hop-count win in one line each.
    out.push('\n');
    for &p in &s.grid.protocols {
        let lat = |conc: u8| -> Option<f64> {
            find(results, |spec| {
                spec.protocol == p && spec.fabric == Fabric::CMesh(conc) && spec.planes == 1
            })
            .map(|r| r.report.packet_latency.mean())
        };
        if let (Some(c1), Some(c2), Some(c4)) = (lat(1), lat(2), lat(4)) {
            out.push_str(&format!(
                "{:<12} pkt lat c1 {c1:>7.1}  c2 {c2:>7.1} ({:>+6.1}%)  c4 {c4:>7.1} ({:>+6.1}%)\n",
                protocol_label(p),
                100.0 * (c2 - c1) / c1,
                100.0 * (c4 - c1) / c1,
            ));
        }
    }
    out.push_str("\nSame cores, 1/c the routers: concentration shrinks the diameter\n");
    out.push_str("and the notification window together; the higher-radix router's\n");
    out.push_str("area/power cost is priced by the physical model's net columns.\n");
    out
}

// ------------------------------------------------ Open-loop latency curves

/// The `latency-curve` offered-load steps, in requests per 1000 cycles
/// per core. With one outstanding access per core the service rate knees
/// in the low tens, so the ladder brackets it from far below.
const CURVE_LOADS_SMALL: [u32; 5] = [2, 6, 12, 20, 30];
const CURVE_LOADS_FULL: [u32; 6] = [2, 6, 12, 20, 30, 45];

/// The knee multiple: the first load step whose p99 sojourn exceeds
/// `KNEE_FACTOR ×` the lowest-load baseline p99 is reported as the knee.
const KNEE_FACTOR: u64 = 3;

/// The bursty contrast point's Markov-modulated dwell means: 50-cycle ON
/// bursts separated by 150-cycle quiets (25% duty), at the same long-run
/// offered load as the mid-ladder Poisson step.
const CURVE_BURST: ArrivalProcess = ArrivalProcess::Bursty { on: 50, off: 150 };

/// Shared-heavy uniform traffic for the open-loop sweeps: half the
/// accesses touch a large shared pool, so most offered load turns into
/// coherence transactions on the fabric rather than L1 hits. The trace's
/// own think-time gaps are ignored by the Poisson/bursty release (they
/// only time the Replay process).
fn open_uniform() -> WorkloadParams {
    WorkloadParams {
        name: "open-uniform",
        ops_per_core: 400,
        mean_gap: 10.0,
        write_fraction: 0.35,
        shared_fraction: 0.5,
        shared_lines: 4096,
        private_lines: 1024,
        hot_fraction: 0.1,
        hot_lines: 64,
        migratory_fraction: 0.1,
        locality: 0.6,
        phase_ops: 0,
        phase_gap: 0,
    }
}

/// Open-loop latency-vs-offered-load curves (the conventional NoC
/// characterisation): sweep the injection ladder past the saturation
/// knee per fabric × planes × protocol, with a bursty contrast point at
/// the mid ladder. Spans give the p99 sojourn (source wait included) the
/// knee detector runs on; windows give the per-endpoint injection-wait
/// extremes the CMesh fairness columns surface per concentration slot.
fn latency_curve(name: &'static str, full: bool) -> Scenario {
    let loads: &[u32] = if full {
        &CURVE_LOADS_FULL
    } else {
        &CURVE_LOADS_SMALL
    };
    let mut variants: Vec<Variant> = loads
        .iter()
        .map(|&millis| {
            Variant::knob(Knob::OpenLoad {
                process: ArrivalProcess::Poisson,
                millis,
            })
        })
        .collect();
    variants.push(Variant::knob(Knob::OpenLoad {
        process: CURVE_BURST,
        millis: 20,
    }));
    let fabrics: &[Fabric] = if full {
        &[Fabric::Mesh, Fabric::CMesh(2), Fabric::CMesh(4)]
    } else {
        &[Fabric::Mesh, Fabric::CMesh(2)]
    };
    let planes: &[usize] = if full { &[1, 2] } else { &[1] };
    Scenario {
        name,
        title: "Latency curve — open-loop offered load to the saturation knee".into(),
        about: "Open-loop injection sweeps: latency vs offered load, knee + fairness",
        grid: SweepGrid::over(vec![open_uniform()])
            .meshes(&[8])
            .fabrics(fabrics)
            .planes(planes)
            .protocols(&[Protocol::Scorpio, Protocol::LpdDir])
            .variants(variants)
            .with_base(vec![Knob::Spans, Knob::Windows(512)]),
        render: latency_curve_render,
    }
}

/// The arrival-process family tag grouping a curve's load steps: knee
/// detection compares p99s *within* one (fabric, planes, protocol,
/// process) curve, never across processes.
fn curve_group(spec: &RunSpec) -> Option<(String, usize, String, &'static str)> {
    let (process, _) = spec.open_load()?;
    let kind = match process {
        ArrivalProcess::Poisson => "pois",
        ArrivalProcess::Bursty { .. } => "burst",
        ArrivalProcess::Replay => "replay",
    };
    Some((
        spec.fabric.label().to_string(),
        spec.planes,
        spec.protocol.name(),
        kind,
    ))
}

/// p99 of the full request sojourn (arrival → retire, source wait
/// included) from a run's span annex.
fn curve_p99(r: &RunResult) -> Option<u64> {
    r.report
        .obs
        .as_ref()
        .and_then(|o| o.spans.as_ref())
        .and_then(|sp| sp.total.percentile(0.99))
}

fn latency_curve_render(s: &Scenario, results: &[RunResult]) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    out.push_str(&format!("=== {} ===\n", s.title));
    out.push_str(&format!(
        "{:<10}{:>3}{:>9}{:>10}{:>8}{:>9}{:>8}{:>10}{:>10}{:>11}{:>11}{}\n",
        "fabric",
        "pl",
        "protocol",
        "arrival",
        "p50",
        "p99",
        "drops",
        "slot-max",
        "slot-min",
        "wmax",
        "wmin",
        "  knee"
    ));
    // First pass: the knee per curve — the first load step whose p99
    // exceeds KNEE_FACTOR x the lowest step's p99.
    let mut curves: BTreeMap<_, Vec<(u32, u64)>> = BTreeMap::new();
    for r in results {
        if let (Some(g), Some((_, load)), Some(p99)) =
            (curve_group(&r.spec), r.spec.open_load(), curve_p99(r))
        {
            curves.entry(g).or_default().push((load, p99));
        }
    }
    let mut knees: BTreeMap<_, u32> = BTreeMap::new();
    for (g, mut steps) in curves {
        steps.sort();
        let Some(&(_, base)) = steps.first() else {
            continue;
        };
        if let Some(&(load, _)) = steps.iter().find(|&&(_, p99)| p99 > KNEE_FACTOR * base) {
            knees.insert(g, load);
        }
    }
    // Second pass: one row per run, fairness cells for concentrated rows.
    for r in results {
        let Some((process, load)) = r.spec.open_load() else {
            continue;
        };
        let obs = r.report.obs.as_deref();
        let sp = obs.and_then(|o| o.spans.as_ref());
        let p = |f: f64| {
            sp.and_then(|sp| sp.total.percentile(f))
                .map_or_else(|| "-".into(), |v| v.to_string())
        };
        // Per-slot injection-wait means: on a concentrated mesh all c
        // tiles of a router share its local injection bandwidth, so the
        // spread between the best- and worst-served slot is the
        // arbitration-fairness signal (it diverges past the knee).
        let (slot_max, slot_min) = match r.spec.fabric {
            Fabric::CMesh(c) if c > 1 => {
                let means: Vec<f64> = obs
                    .map(|o| {
                        o.inject_wait_slots
                            .iter()
                            .take(c as usize)
                            .map(|h| {
                                if h.count() == 0 {
                                    0.0
                                } else {
                                    h.sum() as f64 / h.count() as f64
                                }
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let max = means.iter().cloned().fold(f64::MIN, f64::max);
                let min = means.iter().cloned().fold(f64::MAX, f64::min);
                if means.is_empty() {
                    ("-".into(), "-".into())
                } else {
                    (format!("{max:.1}"), format!("{min:.1}"))
                }
            }
            _ => ("-".into(), "-".into()),
        };
        // Windowed per-endpoint extremes, mapped to concentration slots
        // (endpoint index modulo c; MC ports render as "mc").
        let w = obs.and_then(|o| o.windows.as_ref());
        let cores = r.spec.config().cores() as u32;
        let slot_of = |ep: u32| -> String {
            match r.spec.fabric {
                _ if ep >= cores => "mc".into(),
                Fabric::CMesh(c) if c > 1 => format!("s{}", ep % c as u32),
                _ => format!("e{ep}"),
            }
        };
        let wcell = |e: &Option<scorpio::EpWait>| {
            e.as_ref().map_or_else(
                || "-".into(),
                |m| format!("{}:{:.1}", slot_of(m.ep), m.sum as f64 / m.count as f64),
            )
        };
        let knee = curve_group(&r.spec)
            .and_then(|g| knees.get(&g).copied())
            .is_some_and(|k| k == load);
        out.push_str(&format!(
            "{:<10}{:>3}{:>9}{:>10}{:>8}{:>9}{:>8}{:>10}{:>10}{:>11}{:>11}{}\n",
            match r.spec.fabric.label() {
                "" => "mesh",
                l => l,
            },
            r.spec.planes,
            protocol_label(r.spec.protocol),
            process.label(load),
            p(0.50),
            p(0.99),
            r.report.source_dropped,
            slot_max,
            slot_min,
            wcell(&w.and_then(|w| w.max_wait.as_ref()).copied()),
            wcell(&w.and_then(|w| w.min_wait.as_ref()).copied()),
            if knee { "  <-- knee" } else { "" },
        ));
    }
    out.push_str("\np50/p99: full request sojourn (arrival -> retire, source wait\n");
    out.push_str("included) from the span annex. knee: first load step whose p99\n");
    out.push_str(&format!(
        "exceeds {KNEE_FACTOR}x the lowest step's. slot-max/slot-min: per-slot mean\n"
    ));
    out.push_str("injection wait on concentrated meshes (c tiles share one router\n");
    out.push_str("port). wmax/wmin: worst/best windowed per-endpoint mean wait.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let all = scenarios();
        let names: HashSet<&str> = all.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), all.len());
        for s in &all {
            assert!(by_name(s.name).is_some(), "{} must resolve", s.name);
        }
        assert!(by_name("fig99").is_none());
    }

    #[test]
    fn registry_covers_all_nine_bench_binaries() {
        for required in [
            "fig6", "fig7", "fig8a", "fig8b", "fig8c", "fig8d", "fig9", "fig10", "table1",
            "table2", "ablation", "scaling",
        ] {
            assert!(by_name(required).is_some(), "missing scenario {required}");
        }
    }

    #[test]
    fn new_scenarios_are_registered() {
        // The engine self-benchmark sweeps both engines over one workload.
        let t = by_name("throughput").unwrap();
        assert_eq!(t.grid.len(), 2);
        let specs = t.grid.enumerate();
        assert_eq!(specs[0].engine, Engine::ActiveSet);
        assert_eq!(specs[1].engine, Engine::AlwaysScan);
        assert_eq!(specs[0].mesh_side, 16);
        // Engines share the exact same configuration (same hash).
        assert_eq!(
            specs[0].config().stable_hash(),
            specs[1].config().stable_hash()
        );
        assert!(specs[1].key().ends_with("/scan"));
        // Scaling-mesh: 2 workloads x 3 meshes, proportional MCs applied.
        let sm = by_name("scaling-mesh").unwrap();
        assert_eq!(sm.grid.len(), 2 * 3);
        let spec16 = sm
            .grid
            .enumerate()
            .into_iter()
            .find(|s| s.mesh_side == 16)
            .unwrap();
        assert_eq!(spec16.config().mesh.mc_routers().len(), 16);
        // fig7-small covers every ordering protocol for the golden test.
        assert_eq!(by_name("fig7-small").unwrap().grid.len(), 2 * 5);
        // Topology: 2 workloads x 3 fabrics x 5 protocols.
        let topo = by_name("topology-small").unwrap();
        assert_eq!(topo.grid.len(), 2 * 3 * 5);
        let fabrics: HashSet<&str> = topo
            .grid
            .enumerate()
            .iter()
            .map(|s| s.config().mesh.name())
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        assert_eq!(fabrics.len(), 3);
        // Every fabric at matched endpoint counts.
        for spec in topo.grid.enumerate() {
            assert_eq!(spec.config().mesh.endpoint_count(), 4 * 4 + 4);
        }
        // Route-lookup sweeps tables vs coordinate math on one workload.
        let rl = by_name("route-lookup").unwrap();
        let specs = rl.grid.enumerate();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].engine, Engine::ActiveSet);
        assert_eq!(specs[1].engine, Engine::CoordRoute);
        assert_eq!(
            specs[0].config().stable_hash(),
            specs[1].config().stable_hash()
        );
        assert!(specs[1].key().ends_with("/coord"));
    }

    #[test]
    fn plane_and_placement_scenarios_are_registered() {
        // Planes: 1 workload x 3 fabrics x 3 plane counts x 5 protocols.
        let p = by_name("planes-small").unwrap();
        assert_eq!(p.grid.len(), 3 * 3 * 5);
        let specs = p.grid.enumerate();
        let plane_counts: HashSet<usize> = specs.iter().map(|s| s.planes).collect();
        assert_eq!(plane_counts, HashSet::from([1, 2, 4]));
        // Single-plane cells hash exactly like the axis-free config; every
        // (fabric, planes) pair fingerprints uniquely.
        let hashes: HashSet<u64> = specs.iter().map(|s| s.config().stable_hash()).collect();
        assert_eq!(hashes.len(), 3 * 3 * 5);
        // Plane-throughput: saturated workload, 1/2/4 planes, higher
        // outstanding budget folded in as a base knob.
        let t = by_name("planes-throughput").unwrap();
        assert_eq!(t.grid.len(), 3);
        for spec in t.grid.enumerate() {
            assert_eq!(spec.mesh_side, 8);
            assert_eq!(spec.config().core_outstanding, 4);
        }
        // MC placement: the ragged (fabric x placement) product — mesh
        // gets corner-2/corner-4/prop, torus corner-2/corner-4, ring
        // spread-2/spread-4.
        let m = by_name("mc-placement-small").unwrap();
        let specs = m.grid.enumerate();
        assert_eq!(specs.len(), 3 + 2 + 2);
        for spec in &specs {
            let placement = spec.mc_placement().expect("every cell has a placement");
            assert!(
                placement_of(spec).unwrap().supports(spec.fabric),
                "unsupported cell {placement} on {:?}",
                spec.fabric
            );
        }
        // Placement keys flow into the config (MC counts really change).
        let corner2 = specs
            .iter()
            .find(|s| s.fabric == Fabric::Mesh && s.mc_placement().as_deref() == Some("corner-2"))
            .unwrap();
        assert_eq!(corner2.config().mesh.mc_routers().len(), 2);
    }

    #[test]
    fn cmesh_scenarios_are_registered() {
        // Ragged grid: 3 concentrations x (5 single-plane protocols + the
        // SCORPIO 2-plane composition column).
        let s = by_name("cmesh-small").unwrap();
        assert_eq!(s.grid.len(), 3 * (5 + 1));
        let specs = s.grid.enumerate();
        // Matched core counts on shrinking router grids, distinct hashes.
        let mut geoms = HashSet::new();
        let mut hashes = HashSet::new();
        for spec in &specs {
            let cfg = spec.config();
            assert_eq!(cfg.cores(), 16, "{}", spec.key());
            geoms.insert(cfg.mesh.label());
            hashes.insert(cfg.stable_hash());
        }
        assert_eq!(
            geoms,
            HashSet::from([
                "cmesh4x4x1".to_string(),
                "cmesh4x2x2".to_string(),
                "cmesh2x2x4".to_string()
            ])
        );
        // Every cell carries a distinct configuration fingerprint
        // (geometry x protocol x plane count all enter the hash).
        assert_eq!(hashes.len(), specs.len());
        // Keys carry the cmesh geometry and the plane suffix.
        assert!(specs
            .iter()
            .any(|s| s.key() == "blackscholes/cmesh4x2x2/SCORPIO/baseline/seed1"));
        assert!(specs
            .iter()
            .any(|s| s.key() == "blackscholes/cmesh2x2x4+2pl/SCORPIO/baseline/seed1"));
        // The diameter really shrinks with concentration.
        let diam = |c: u8| {
            specs
                .iter()
                .find(|s| s.fabric == Fabric::CMesh(c))
                .unwrap()
                .config()
                .mesh
                .diameter()
        };
        assert_eq!((diam(1), diam(2), diam(4)), (6, 4, 2));
        // The full variant runs 64 cores.
        let full = by_name("cmesh").unwrap();
        assert!(full
            .grid
            .enumerate()
            .iter()
            .all(|s| s.config().cores() == 64));
    }

    #[test]
    fn every_registered_grid_validates() {
        for s in scenarios() {
            assert!(s.grid.validate().is_ok(), "{} failed validation", s.name);
        }
    }

    #[test]
    fn grid_sizes_match_the_original_binaries() {
        assert_eq!(by_name("fig6").unwrap().grid.len(), 12 * 3);
        assert_eq!(by_name("fig7").unwrap().grid.len(), 4 * 5);
        assert_eq!(by_name("fig8a").unwrap().grid.len(), 8 * 3);
        assert_eq!(by_name("fig8c").unwrap().grid.len(), 8 * 4);
        assert_eq!(by_name("fig10").unwrap().grid.len(), 6 * 3 * 2);
        assert_eq!(by_name("ablation").unwrap().grid.len(), 6);
        // Section 5.3's ragged sweep: 6x6 -> 1, 8x8 -> 2, 10x10 -> 3.
        assert_eq!(by_name("scaling").unwrap().grid.len(), 1 + 2 + 3);
        // Static table scenarios run zero simulations.
        assert!(by_name("fig9").unwrap().grid.is_empty());
        assert!(by_name("table1").unwrap().grid.is_empty());
        assert!(by_name("table2").unwrap().grid.is_empty());
    }

    #[test]
    fn static_renders_produce_tables_without_results() {
        for name in ["fig9", "table1", "table2"] {
            let s = by_name(name).unwrap();
            let out = (s.render)(&s, &[]);
            assert!(out.contains("==="), "{name} render looks empty: {out}");
        }
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(protocol_label(Protocol::Scorpio), "SCORPIO");
        assert_eq!(
            protocol_label(Protocol::Inso { expiry_window: 40 }),
            "INSO-40"
        );
    }

    #[test]
    fn latency_curve_scenarios_are_registered() {
        // Small: 2 fabrics x 1 plane x 2 protocols x (5 loads + 1 burst).
        let s = by_name("latency-curve-small").unwrap();
        assert_eq!(s.grid.len(), 2 * 2 * 6);
        let specs = s.grid.enumerate();
        // Every cell is open-loop, and the variant label carries the
        // arrival process and the offered-load knob.
        for spec in &specs {
            let (_, load) = spec.open_load().expect("open-loop cell");
            assert!(spec.config().open_loop.is_some(), "{}", spec.key());
            assert!(load > 0);
        }
        assert!(specs
            .iter()
            .any(|s| s.key() == "open-uniform/8x8/SCORPIO/pois-2/seed1"));
        assert!(specs
            .iter()
            .any(|s| s.key() == "open-uniform/cmesh8x4x2/LPD-D/burst-20/seed1"));
        // Full: 3 fabrics x 2 planes x 2 protocols x (6 loads + 1 burst),
        // and the load ladder extends past the small sweep's top step.
        let f = by_name("latency-curve").unwrap();
        assert_eq!(f.grid.len(), 3 * 2 * 2 * 7);
        assert!(f
            .grid
            .enumerate()
            .iter()
            .any(|s| s.key().contains("/pois-45/")));
    }
}
