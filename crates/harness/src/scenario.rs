//! The declarative experiment model: knobs, sweep grids and scenarios.
//!
//! A [`SweepGrid`] is the cartesian product of five axes — workloads, mesh
//! sides, protocols, configuration [`Variant`]s and seeds — optionally
//! restricted by a filter (for non-rectangular sweeps such as the Section
//! 5.3 VC-scaling study). [`SweepGrid::enumerate`] flattens the grid into
//! an ordered, duplicate-free list of [`RunSpec`]s that the executor can
//! run in any order and on any number of threads without changing results.

use scorpio::{
    ArrivalProcess, NotifyScheme, ObsLevel, OpenLoopConfig, Protocol, SystemConfig,
    DEFAULT_SOURCE_QUEUE_CAP,
};
use scorpio_workloads::WorkloadParams;

/// One settable configuration knob, applied on top of the square-mesh
/// baseline produced by [`SystemConfig::square`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Knob {
    /// Channel width in bytes (Figure 8a).
    ChannelBytes(u32),
    /// GO-REQ virtual channels (Figure 8b, Section 5.3).
    GoreqVcs(u8),
    /// UO-RESP virtual channels (Figure 8c).
    UoRespVcs(u8),
    /// Notification bits per core (Figure 8d).
    NotificationBits(u8),
    /// Outstanding misses per core (RSHRs move together).
    Outstanding(usize),
    /// Pipelined vs non-pipelined uncore (Figure 10).
    PipelinedUncore(bool),
    /// Lookahead bypassing on/off (ablation).
    Bypass(bool),
    /// Region-tracker snoop filter on/off (ablation).
    RegionTracker(bool),
    /// FID-list capacity (ablation).
    FidCapacity(usize),
    /// Extra cycles over the minimum notification window (ablation).
    NotificationWindowSlack(u64),
    /// Hierarchical quad-tree notification aggregation with the given
    /// fanout: the window shrinks from O(grid diameter) to O(2·tree depth)
    /// (the kilocore sweeps; default-path runs keep the flat scheme).
    QuadNotify(u8),
    /// Total directory-cache storage in bytes (Figure 6 scaling note).
    DirTotalBytes(usize),
    /// Perimeter MC placement scaled to the core count (scaling-mesh
    /// sweeps: one MC per 16 tiles instead of four fixed corners).
    ProportionalMcs,
    /// Observability level: latency histograms and NoC counters, or the
    /// full flit trace (the `obs-overhead` sweep; simulated behavior is
    /// unchanged — asserted by the equivalence suite).
    Obs(ObsLevel),
    /// Flit-trace cap, paired with `Obs(ObsLevel::Trace)`.
    TraceLimit(usize),
    /// Per-transaction lifecycle spans plus counter-level observability
    /// (the `latency-breakdown` sweeps; simulated behavior is unchanged).
    Spans,
    /// Windowed time-series telemetry with the given epoch length in
    /// cycles, plus counter-level observability (the `obs-overhead`
    /// windows variant).
    Windows(u64),
    /// Open-loop injection (the `latency-curve` sweeps): requests are
    /// released by `process` at `millis` requests per 1000 cycles per
    /// core instead of by the previous op's completion, with the default
    /// bounded source queue. Load 0 degenerates to the closed-loop trace.
    OpenLoad {
        /// The arrival process shaping inter-arrival gaps.
        process: ArrivalProcess,
        /// Offered load in requests per 1000 cycles per core.
        millis: u32,
    },
    /// Topology-aware MC placement: `mcs` memory-controller ports placed
    /// by `placement` (the `mc-placement` sweeps). The L2's interleaving
    /// endpoints are rewired to match.
    McPlacement {
        /// Where the MC ports go.
        placement: McPlacement,
        /// How many (ignored by [`McPlacement::Proportional`], which
        /// derives the count from the core count).
        mcs: u16,
    },
}

/// Memory-controller placement schemes for the `mc-placement` sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McPlacement {
    /// Corner routers (mesh/torus): 2 picks the NW/SE diagonal, 4 all
    /// four corners — the chip's arrangement.
    Corner,
    /// Evenly spread around the ring ([`scorpio_noc::Ring::with_spread_mcs`]).
    Spread,
    /// One MC per 16 tiles along the mesh perimeter
    /// ([`SystemConfig::with_proportional_mcs`]).
    Proportional,
}

impl McPlacement {
    /// The placement key recorded in JSONL/CSV result rows.
    pub fn key(self) -> &'static str {
        match self {
            McPlacement::Corner => "corner",
            McPlacement::Spread => "spread",
            McPlacement::Proportional => "prop",
        }
    }

    /// Whether this placement is defined for `fabric`.
    pub fn supports(self, fabric: Fabric) -> bool {
        match self {
            McPlacement::Corner => matches!(fabric, Fabric::Mesh | Fabric::Torus),
            McPlacement::Spread => fabric == Fabric::Ring,
            McPlacement::Proportional => fabric == Fabric::Mesh,
        }
    }
}

/// Rebuilds `cfg`'s fabric with `mcs` MC ports placed by `placement`,
/// rewiring the L2's MC-interleaving endpoints to match.
fn apply_mc_placement(mut cfg: SystemConfig, placement: McPlacement, mcs: u16) -> SystemConfig {
    use scorpio_noc::{Mesh, Ring, RouterId, Topology, Torus};
    let fabric: Topology = match (&cfg.mesh, placement) {
        (_, McPlacement::Proportional) => return cfg.with_proportional_mcs(),
        (Topology::Mesh(m), McPlacement::Corner) => {
            let (c, r) = (m.cols(), m.rows());
            let corners = corner_order(c, r);
            Mesh::new(c, r, &corners[..(mcs as usize).min(corners.len())]).into()
        }
        (Topology::Torus(t), McPlacement::Corner) => {
            let (c, r) = (t.cols(), t.rows());
            let corners = corner_order(c, r);
            Torus::new(c, r, &corners[..(mcs as usize).min(corners.len())]).into()
        }
        (Topology::Ring(r), McPlacement::Spread) => {
            Ring::with_spread_mcs(r.router_count() as u16, mcs).into()
        }
        (topo, placement) => panic!(
            "MC placement {placement:?} is undefined for the {} fabric",
            topo.name()
        ),
    };
    cfg.l2.mc_endpoints = fabric
        .mc_routers()
        .iter()
        .map(|&r| scorpio_noc::Endpoint::mc(r))
        .collect();
    cfg.mesh = fabric;
    return cfg;

    /// Corner routers in placement-priority order: NW, SE (the opposite
    /// diagonal first, so two MCs sit maximally apart), then NE, SW.
    /// Degenerate 1×N / N×1 fabrics collapse coincident corners, so the
    /// distinct filter must catch non-adjacent repeats too.
    fn corner_order(cols: u16, rows: u16) -> Vec<RouterId> {
        let mut corners: Vec<RouterId> = Vec::with_capacity(4);
        for c in [
            RouterId(0),
            RouterId(cols * rows - 1),
            RouterId(cols - 1),
            RouterId(cols * (rows - 1)),
        ] {
            if !corners.contains(&c) {
                corners.push(c);
            }
        }
        corners
    }
}

impl Knob {
    /// Applies the knob to a configuration.
    pub fn apply(self, mut cfg: SystemConfig) -> SystemConfig {
        match self {
            Knob::ChannelBytes(b) => cfg.with_channel_bytes(b),
            Knob::GoreqVcs(v) => cfg.with_goreq_vcs(v),
            Knob::UoRespVcs(v) => cfg.with_uoresp_vcs(v),
            Knob::NotificationBits(b) => cfg.with_notification_bits(b),
            Knob::Outstanding(n) => cfg.with_outstanding(n),
            Knob::PipelinedUncore(p) => cfg.with_pipelined_uncore(p),
            Knob::Bypass(on) => {
                cfg.noc.bypass = on;
                cfg
            }
            Knob::RegionTracker(on) => {
                if !on {
                    cfg.l2.region_entries = None;
                }
                cfg
            }
            Knob::FidCapacity(n) => {
                cfg.l2.fid_capacity = n;
                cfg
            }
            Knob::NotificationWindowSlack(s) => {
                cfg.notification_window_slack = s;
                cfg
            }
            Knob::QuadNotify(fanout) => cfg.with_notify(NotifyScheme::Quad { fanout }),
            Knob::DirTotalBytes(b) => {
                cfg.dir_total_bytes = b;
                cfg
            }
            Knob::ProportionalMcs => cfg.with_proportional_mcs(),
            Knob::Obs(level) => cfg.with_obs(level),
            Knob::TraceLimit(n) => cfg.with_trace_limit(n),
            Knob::Spans => cfg.with_obs(ObsLevel::Counters).with_spans(true),
            Knob::Windows(w) => cfg.with_obs(ObsLevel::Counters).with_windows(w),
            Knob::OpenLoad { process, millis } => cfg.with_open_loop(OpenLoopConfig {
                process,
                load_millis: millis,
                queue_cap: DEFAULT_SOURCE_QUEUE_CAP,
            }),
            Knob::McPlacement { placement, mcs } => apply_mc_placement(cfg, placement, mcs),
        }
    }

    /// Short label used in variant names and result rows.
    pub fn label(self) -> String {
        match self {
            Knob::ChannelBytes(b) => format!("CW={b}B"),
            Knob::GoreqVcs(v) => format!("GO-VCs={v}"),
            Knob::UoRespVcs(v) => format!("UO-VCs={v}"),
            Knob::NotificationBits(b) => format!("BW={b}b"),
            Knob::Outstanding(n) => format!("out={n}"),
            Knob::PipelinedUncore(true) => "PL".into(),
            Knob::PipelinedUncore(false) => "non-PL".into(),
            Knob::Bypass(true) => "bypass".into(),
            Knob::Bypass(false) => "no-bypass".into(),
            Knob::RegionTracker(true) => "region-tracker".into(),
            Knob::RegionTracker(false) => "no-region-tracker".into(),
            Knob::FidCapacity(n) => format!("fid-cap={n}"),
            Knob::NotificationWindowSlack(s) => format!("slack={s}"),
            Knob::QuadNotify(f) => format!("quad-f{f}"),
            Knob::DirTotalBytes(b) => format!("dir={b}B"),
            Knob::ProportionalMcs => "prop-MCs".into(),
            Knob::Obs(ObsLevel::Off) => "obs-off".into(),
            Knob::Obs(ObsLevel::Counters) => "obs-counters".into(),
            Knob::Obs(ObsLevel::Trace) => "obs-trace".into(),
            Knob::TraceLimit(n) => format!("trace-cap={n}"),
            Knob::Spans => "spans".into(),
            Knob::Windows(w) => format!("windows={w}"),
            Knob::OpenLoad { process, millis } => process.label(millis),
            Knob::McPlacement {
                placement: McPlacement::Proportional,
                ..
            } => "prop".into(),
            Knob::McPlacement { placement, mcs } => format!("{}-{mcs}", placement.key()),
        }
    }
}

/// A labelled bundle of knobs: one column of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Column label in tables and result rows.
    pub label: String,
    /// Knobs applied (in order) on top of the baseline configuration.
    pub knobs: Vec<Knob>,
}

impl Variant {
    /// The unmodified baseline configuration.
    pub fn baseline() -> Variant {
        Variant {
            label: "baseline".into(),
            knobs: Vec::new(),
        }
    }

    /// A variant with an explicit label.
    pub fn new(label: impl Into<String>, knobs: Vec<Knob>) -> Variant {
        Variant {
            label: label.into(),
            knobs,
        }
    }

    /// A single-knob variant labelled after the knob.
    pub fn knob(k: Knob) -> Variant {
        Variant {
            label: k.label(),
            knobs: vec![k],
        }
    }

    /// Applies every knob to `cfg`.
    pub fn apply(&self, mut cfg: SystemConfig) -> SystemConfig {
        for k in &self.knobs {
            cfg = k.apply(cfg);
        }
        cfg
    }
}

/// Which simulation engine a run uses. All engines produce byte-identical
/// [`scorpio::SystemReport`]s (asserted by the engine-equivalence suite);
/// only wall-clock speed differs, which is what the `throughput` and
/// `route-lookup` self-benchmarks measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The active-set engine (default): only components with pending work
    /// are ticked each cycle; routing is compiled-table lookup.
    #[default]
    ActiveSet,
    /// The always-scan reference engine: every tile, MC, router and
    /// injection port is probed every cycle.
    AlwaysScan,
    /// The coordinate-routing reference engine: active-set scheduling, but
    /// routers evaluate the topology's coordinate spec per flit instead of
    /// reading the compiled tables.
    CoordRoute,
    /// The active-set engine plus the event-leaping clock: whole-machine
    /// idle spans are jumped rather than stepped.
    Leap,
    /// The active-set engine with four worker lanes ticking planes (or
    /// router shards) in parallel behind a deterministic commit.
    Parallel,
    /// Leap and four worker lanes combined — the kilocore scale-out
    /// engine.
    Turbo,
}

impl Engine {
    /// Short label for result rows (empty for the default engine so that
    /// existing keys and sink output stay byte-stable).
    pub fn label(self) -> &'static str {
        match self {
            Engine::ActiveSet => "",
            Engine::AlwaysScan => "scan",
            Engine::CoordRoute => "coord",
            Engine::Leap => "leap",
            Engine::Parallel => "par",
            Engine::Turbo => "turbo",
        }
    }
}

/// The delivery-fabric axis of a sweep: which [`scorpio_noc::Topology`]
/// the `k` of the mesh-side axis materializes as. Every fabric at the same
/// `k` has `k²` tiles — matched core counts, so runtime differences are
/// delivery effects, not size effects. A concentrated mesh keeps the `k²`
/// cores but shrinks the router grid by its concentration:
/// `CMesh(2)` at `k = 4` is a 4×2 router grid of 2-tile routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fabric {
    /// A `k × k` mesh with corner MCs (the chip fabric; default).
    #[default]
    Mesh,
    /// A `k × k` torus with the MC ports on the mesh's corner routers.
    Torus,
    /// A ring of `k²` routers with four evenly spread MC ports.
    Ring,
    /// A concentrated mesh of `k²` tiles at the given concentration
    /// (1, 2 or 4 tiles per router; `k` must be even above 1), corner MCs.
    CMesh(u8),
}

impl Fabric {
    /// Short label for result rows (empty for the default fabric so that
    /// existing keys and sink output stay byte-stable).
    pub fn label(self) -> &'static str {
        match self {
            Fabric::Mesh => "",
            Fabric::Torus => "torus",
            Fabric::Ring => "ring",
            Fabric::CMesh(1) => "cmesh1",
            Fabric::CMesh(2) => "cmesh2",
            Fabric::CMesh(4) => "cmesh4",
            Fabric::CMesh(_) => "cmesh",
        }
    }

    /// The router grid a `k²`-tile concentrated mesh materializes as:
    /// concentration 1 keeps `k × k`, 2 halves the rows (`k × k/2`), 4
    /// halves both dimensions (`k/2 × k/2`).
    ///
    /// # Panics
    ///
    /// Panics on an unsupported concentration, or an odd `k` above
    /// concentration 1.
    pub fn cmesh_dims(k: u16, concentration: u8) -> (u16, u16) {
        match concentration {
            1 => (k, k),
            2 | 4 => {
                assert!(
                    k.is_multiple_of(2),
                    "a {k}x{k}-tile cmesh at concentration {concentration} needs an even side"
                );
                if concentration == 2 {
                    (k, k / 2)
                } else {
                    (k / 2, k / 2)
                }
            }
            other => panic!("unsupported cmesh concentration {other} (use 1, 2 or 4)"),
        }
    }

    /// The geometry string for run keys: `"4x4"`, `"torus4x4"`, `"ring16"`
    /// (mesh keys are unchanged from before the fabric axis existed);
    /// concentrated meshes use the topology's own label shape,
    /// `"cmesh4x2x2"` (router grid × concentration).
    pub fn geometry(self, k: u16) -> String {
        match self {
            Fabric::Mesh => format!("{k}x{k}"),
            Fabric::Torus => format!("torus{k}x{k}"),
            Fabric::Ring => format!("ring{}", k as u32 * k as u32),
            Fabric::CMesh(c) => {
                let (w, h) = Fabric::cmesh_dims(k, c);
                format!("cmesh{w}x{h}x{c}")
            }
        }
    }
}

/// A filter restricting a grid to a non-rectangular subset.
pub type GridFilter = fn(&RunSpec) -> bool;

/// The cartesian product defining one experiment sweep.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Workload axis.
    pub workloads: Vec<WorkloadParams>,
    /// Mesh-side axis (`k` ⇒ a `k × k`-sized system; see [`Fabric`]).
    pub mesh_sides: Vec<u16>,
    /// Delivery-fabric axis (the `topology` scenarios sweep all three;
    /// everything else runs the default mesh only).
    pub fabrics: Vec<Fabric>,
    /// Main-network plane axis (the `planes` scenarios sweep 1/2/4;
    /// everything else runs the single-plane network only).
    pub planes: Vec<usize>,
    /// Protocol axis.
    pub protocols: Vec<Protocol>,
    /// Configuration-variant axis.
    pub variants: Vec<Variant>,
    /// Engine axis (the `throughput` self-benchmark sweeps both; everything
    /// else runs the default active-set engine only).
    pub engines: Vec<Engine>,
    /// Seed axis (replicates).
    pub seeds: Vec<u64>,
    /// Knobs applied to *every* run before its variant.
    pub base: Vec<Knob>,
    /// Optional restriction for non-rectangular sweeps.
    pub filter: Option<GridFilter>,
}

impl Default for SweepGrid {
    fn default() -> SweepGrid {
        SweepGrid {
            workloads: Vec::new(),
            mesh_sides: vec![6],
            fabrics: vec![Fabric::Mesh],
            planes: vec![1],
            protocols: vec![Protocol::Scorpio],
            variants: vec![Variant::baseline()],
            engines: vec![Engine::ActiveSet],
            seeds: vec![1],
            base: Vec::new(),
            filter: None,
        }
    }
}

impl SweepGrid {
    /// Grid over a set of workloads with all other axes at defaults.
    pub fn over(workloads: Vec<WorkloadParams>) -> SweepGrid {
        SweepGrid {
            workloads,
            ..SweepGrid::default()
        }
    }

    /// Sets the mesh-side axis.
    #[must_use]
    pub fn meshes(mut self, sides: &[u16]) -> SweepGrid {
        self.mesh_sides = sides.to_vec();
        self
    }

    /// Sets the delivery-fabric axis.
    #[must_use]
    pub fn fabrics(mut self, fabrics: &[Fabric]) -> SweepGrid {
        self.fabrics = fabrics.to_vec();
        self
    }

    /// Sets the main-network plane axis.
    #[must_use]
    pub fn planes(mut self, planes: &[usize]) -> SweepGrid {
        self.planes = planes.to_vec();
        self
    }

    /// Sets the protocol axis.
    #[must_use]
    pub fn protocols(mut self, protocols: &[Protocol]) -> SweepGrid {
        self.protocols = protocols.to_vec();
        self
    }

    /// Sets the variant axis.
    #[must_use]
    pub fn variants(mut self, variants: Vec<Variant>) -> SweepGrid {
        self.variants = variants;
        self
    }

    /// Sets the engine axis.
    #[must_use]
    pub fn engines(mut self, engines: &[Engine]) -> SweepGrid {
        self.engines = engines.to_vec();
        self
    }

    /// Sets the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: &[u64]) -> SweepGrid {
        self.seeds = seeds.to_vec();
        self
    }

    /// Adds grid-wide base knobs.
    #[must_use]
    pub fn with_base(mut self, base: Vec<Knob>) -> SweepGrid {
        self.base = base;
        self
    }

    /// Restricts the grid with `filter`.
    #[must_use]
    pub fn filtered(mut self, filter: GridFilter) -> SweepGrid {
        self.filter = Some(filter);
        self
    }

    /// Checks the grid's axes for values that would silently corrupt a
    /// sweep: an empty or duplicate-carrying axis emits duplicate result
    /// rows (or none at all), and a zero mesh side or plane count cannot
    /// be materialized. Called for every registered scenario at registry
    /// build time, so a bad grid fails fast instead of writing bad JSONL.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending axis and value.
    pub fn validate(&self) -> Result<(), String> {
        fn dup<T: PartialEq + std::fmt::Debug>(axis: &str, values: &[T]) -> Result<(), String> {
            for (i, v) in values.iter().enumerate() {
                if values[..i].contains(v) {
                    return Err(format!("duplicate {axis} axis value {v:?}"));
                }
            }
            Ok(())
        }
        let names: Vec<&str> = self.workloads.iter().map(|w| w.name).collect();
        dup("workload", &names)?;
        dup("mesh-side", &self.mesh_sides)?;
        dup("fabric", &self.fabrics)?;
        dup("planes", &self.planes)?;
        dup("protocol", &self.protocols)?;
        let labels: Vec<&str> = self.variants.iter().map(|v| v.label.as_str()).collect();
        dup("variant", &labels)?;
        dup("engine", &self.engines)?;
        dup("seed", &self.seeds)?;
        if self.mesh_sides.contains(&0) {
            return Err("mesh-side axis contains 0".into());
        }
        if self.planes.contains(&0) {
            return Err("planes axis contains 0".into());
        }
        for (axis, empty) in [
            ("mesh-side", self.mesh_sides.is_empty()),
            ("fabric", self.fabrics.is_empty()),
            ("planes", self.planes.is_empty()),
            ("protocol", self.protocols.is_empty()),
            ("variant", self.variants.is_empty()),
            ("engine", self.engines.is_empty()),
            ("seed", self.seeds.is_empty()),
        ] {
            // Workloads may be empty (static table scenarios); every other
            // axis must carry at least one value.
            if empty {
                return Err(format!("{axis} axis is empty"));
            }
        }
        Ok(())
    }

    /// Flattens the grid into its ordered run list.
    ///
    /// The order is the nested-loop order workload → mesh → fabric →
    /// planes → protocol → variant → engine → seed, which is stable
    /// across calls; indices are assigned after filtering, so
    /// `enumerate()[i].index == i` always holds. The executor may
    /// *complete* runs in any order, but results are returned in this
    /// order, which is what makes sweep output reproducible.
    pub fn enumerate(&self) -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for w in &self.workloads {
            for &mesh_side in &self.mesh_sides {
                for &fabric in &self.fabrics {
                    for &planes in &self.planes {
                        for &protocol in &self.protocols {
                            for v in &self.variants {
                                for &engine in &self.engines {
                                    for &seed in &self.seeds {
                                        let effective = Variant {
                                            label: v.label.clone(),
                                            knobs: self
                                                .base
                                                .iter()
                                                .chain(&v.knobs)
                                                .copied()
                                                .collect(),
                                        };
                                        let spec = RunSpec {
                                            index: specs.len(),
                                            workload: w.clone(),
                                            mesh_side,
                                            fabric,
                                            planes,
                                            protocol,
                                            variant: effective,
                                            engine,
                                            seed,
                                        };
                                        if self.filter.is_none_or(|f| f(&spec)) {
                                            specs.push(spec);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        specs
    }

    /// Number of runs the grid expands to.
    pub fn len(&self) -> usize {
        self.enumerate().len()
    }

    /// Whether the grid expands to zero runs (static scenarios).
    pub fn is_empty(&self) -> bool {
        self.enumerate().is_empty()
    }
}

/// One fully-specified run: a point of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position in the grid's enumeration order.
    pub index: usize,
    /// Workload parameters (ops-per-core is overridden by the executor).
    pub workload: WorkloadParams,
    /// Mesh side (`k` ⇒ a `k²`-tile system; see [`Fabric::geometry`]).
    pub mesh_side: u16,
    /// Delivery fabric the `mesh_side` materializes as.
    pub fabric: Fabric,
    /// Parallel main-network planes (1 = the single-network engine).
    pub planes: usize,
    /// Ordering protocol.
    pub protocol: Protocol,
    /// Configuration variant (grid base knobs already folded in).
    pub variant: Variant,
    /// Simulation engine (semantics-neutral; reports are byte-identical
    /// across engines).
    pub engine: Engine,
    /// Workload seed.
    pub seed: u64,
}

impl RunSpec {
    /// Materializes the [`SystemConfig`] for this run: a `k × k` mesh,
    /// a `k × k` torus, or a `k²`-router ring — all with four MC ports,
    /// so every fabric at the same `k` has matched endpoint counts.
    pub fn config(&self) -> SystemConfig {
        let k = self.mesh_side;
        let base = match self.fabric {
            Fabric::Mesh => SystemConfig::square(k),
            Fabric::Torus => SystemConfig::torus(k),
            Fabric::Ring => SystemConfig::ring(k * k, 4),
            Fabric::CMesh(c) => {
                let (w, h) = Fabric::cmesh_dims(k, c);
                SystemConfig::cmesh(w, h, c)
            }
        };
        let mut cfg = base.with_protocol(self.protocol);
        cfg.seed = self.seed;
        if self.planes != 1 {
            cfg = cfg.with_planes(self.planes);
        }
        self.variant.apply(cfg)
    }

    /// The MC-placement key of this spec's variant, if it carries a
    /// [`Knob::McPlacement`] (recorded by the JSONL/CSV sinks).
    pub fn mc_placement(&self) -> Option<String> {
        self.variant.knobs.iter().find_map(|k| match k {
            Knob::McPlacement { .. } => Some(k.label()),
            _ => None,
        })
    }

    /// The open-loop injection point of this spec's variant, if it
    /// carries a [`Knob::OpenLoad`] (recorded by the JSONL/CSV sinks).
    pub fn open_load(&self) -> Option<(ArrivalProcess, u32)> {
        self.variant.knobs.iter().find_map(|k| match k {
            Knob::OpenLoad { process, millis } => Some((*process, *millis)),
            _ => None,
        })
    }

    /// A human-readable identity key, unique within a grid. Default-engine
    /// single-plane mesh keys are unchanged from before the engine, fabric
    /// and plane axes existed; other fabrics change the geometry segment
    /// (`torus4x4`, `ring16`), multiple planes extend it (`8x8+4pl`), and
    /// non-default engines append a suffix (`/scan`, `/coord`).
    pub fn key(&self) -> String {
        let engine = match self.engine.label() {
            "" => String::new(),
            label => format!("/{label}"),
        };
        let planes = match self.planes {
            1 => String::new(),
            n => format!("+{n}pl"),
        };
        format!(
            "{}/{}{planes}/{}/{}/seed{}{engine}",
            self.workload.name,
            self.fabric.geometry(self.mesh_side),
            self.protocol.name(),
            self.variant.label,
            self.seed
        )
    }
}

/// A named, registered experiment: a grid plus its presentation.
pub struct Scenario {
    /// Registry name (`harness run <name>`).
    pub name: &'static str,
    /// Table title.
    pub title: String,
    /// One-line description for `harness list`.
    pub about: &'static str,
    /// The sweep to run (empty for static table scenarios).
    pub grid: SweepGrid,
    /// Renders the scenario's human-readable tables from its results.
    pub render: fn(&Scenario, &[crate::exec::RunResult]) -> String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_grid() -> SweepGrid {
        SweepGrid::over(vec![
            WorkloadParams::by_name("lu").unwrap(),
            WorkloadParams::by_name("fft").unwrap(),
        ])
        .meshes(&[2, 3])
        .protocols(&[Protocol::Scorpio, Protocol::TokenB])
        .variants(vec![Variant::baseline(), Variant::knob(Knob::GoreqVcs(6))])
        .seeds(&[1, 2])
    }

    #[test]
    fn enumeration_is_stable_and_duplicate_free() {
        let g = small_grid();
        let a = g.enumerate();
        let b = g.enumerate();
        assert_eq!(a, b, "enumeration must be stable");
        assert_eq!(a.len(), 2 * 2 * 2 * 2 * 2);
        let keys: HashSet<String> = a.iter().map(RunSpec::key).collect();
        assert_eq!(keys.len(), a.len(), "keys must be unique");
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn filter_restricts_and_reindexes() {
        let g = small_grid().filtered(|s| s.mesh_side == 2);
        let specs = g.enumerate();
        assert_eq!(specs.len(), 16);
        assert!(specs.iter().all(|s| s.mesh_side == 2));
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i, "indices must be dense after filtering");
        }
    }

    #[test]
    fn base_knobs_fold_into_every_variant() {
        let g = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[2])
            .with_base(vec![Knob::DirTotalBytes(8 * 1024)])
            .variants(vec![Variant::baseline(), Variant::knob(Knob::GoreqVcs(6))]);
        for spec in g.enumerate() {
            assert_eq!(spec.config().dir_total_bytes, 8 * 1024);
        }
    }

    #[test]
    fn knobs_apply_and_label() {
        let cfg = Knob::ChannelBytes(32).apply(SystemConfig::square(3));
        assert_eq!(cfg.noc.channel_bytes, 32);
        let cfg = Knob::Bypass(false).apply(SystemConfig::square(3));
        assert!(!cfg.noc.bypass);
        let cfg = Knob::RegionTracker(false).apply(SystemConfig::square(3));
        assert!(cfg.l2.region_entries.is_none());
        let cfg = Knob::NotificationWindowSlack(13).apply(SystemConfig::square(3));
        assert_eq!(cfg.notification_window_slack, 13);
        let cfg = Knob::QuadNotify(2).apply(SystemConfig::square(4));
        assert_eq!(cfg.notify, NotifyScheme::Quad { fanout: 2 });
        assert_ne!(
            cfg.stable_hash(),
            SystemConfig::square(4).stable_hash(),
            "the notify scheme is a config axis"
        );
        assert_eq!(Knob::QuadNotify(4).label(), "quad-f4");
        assert_eq!(Knob::GoreqVcs(6).label(), "GO-VCs=6");
        assert_eq!(Knob::PipelinedUncore(false).label(), "non-PL");
        let v = Variant::new("combo", vec![Knob::ChannelBytes(8), Knob::UoRespVcs(4)]);
        let cfg = v.apply(SystemConfig::square(3));
        assert_eq!(cfg.noc.channel_bytes, 8);
        assert_eq!(cfg.noc.vnets[1].vcs, 4);
    }

    #[test]
    fn fabric_axis_changes_geometry_but_not_mesh_keys() {
        let g = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[4])
            .fabrics(&[Fabric::Mesh, Fabric::Torus, Fabric::Ring]);
        let specs = g.enumerate();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].key(), "lu/4x4/SCORPIO/baseline/seed1");
        assert_eq!(specs[1].key(), "lu/torus4x4/SCORPIO/baseline/seed1");
        assert_eq!(specs[2].key(), "lu/ring16/SCORPIO/baseline/seed1");
        // Matched endpoint counts, three distinct config hashes.
        for s in &specs {
            assert_eq!(s.config().cores(), 16);
            assert_eq!(s.config().mesh.endpoint_count(), 20);
        }
        let hashes: HashSet<u64> = specs.iter().map(|s| s.config().stable_hash()).collect();
        assert_eq!(hashes.len(), 3);
    }

    #[test]
    fn coord_engine_suffixes_keys_and_shares_config() {
        let g = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[2])
            .engines(&[Engine::ActiveSet, Engine::CoordRoute]);
        let specs = g.enumerate();
        assert_eq!(specs.len(), 2);
        assert!(specs[1].key().ends_with("/coord"));
        assert_eq!(
            specs[0].config().stable_hash(),
            specs[1].config().stable_hash()
        );
    }

    #[test]
    fn planes_axis_extends_keys_and_configs_but_leaves_defaults_stable() {
        let g = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[4])
            .planes(&[1, 2, 4]);
        let specs = g.enumerate();
        assert_eq!(specs.len(), 3);
        // Single-plane keys are byte-stable from before the axis existed.
        assert_eq!(specs[0].key(), "lu/4x4/SCORPIO/baseline/seed1");
        assert_eq!(specs[1].key(), "lu/4x4+2pl/SCORPIO/baseline/seed1");
        assert_eq!(specs[2].key(), "lu/4x4+4pl/SCORPIO/baseline/seed1");
        assert_eq!(specs[0].config().planes.get(), 1);
        assert_eq!(specs[2].config().planes.get(), 4);
        // Three distinct config hashes; plane 1 matches the axis-free
        // config exactly.
        let hashes: HashSet<u64> = specs.iter().map(|s| s.config().stable_hash()).collect();
        assert_eq!(hashes.len(), 3);
        assert_eq!(
            specs[0].config().stable_hash(),
            SystemConfig::square(4).stable_hash()
        );
    }

    #[test]
    fn validate_rejects_zero_and_duplicate_axis_values() {
        let ok = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()]);
        assert!(ok.validate().is_ok());
        // Zero values.
        let zero_planes = ok.clone().planes(&[0, 1]);
        assert!(zero_planes.validate().unwrap_err().contains("planes"));
        let zero_mesh = ok.clone().meshes(&[0]);
        assert!(zero_mesh.validate().unwrap_err().contains("mesh-side"));
        // Duplicates on every axis kind.
        let dup_fabric = ok.clone().fabrics(&[Fabric::Torus, Fabric::Torus]);
        assert!(dup_fabric.validate().unwrap_err().contains("fabric"));
        let dup_seed = ok.clone().seeds(&[3, 3]);
        assert!(dup_seed.validate().unwrap_err().contains("seed"));
        let dup_planes = ok.clone().planes(&[2, 2]);
        assert!(dup_planes.validate().unwrap_err().contains("planes"));
        let dup_protocol = ok.clone().protocols(&[Protocol::TokenB, Protocol::TokenB]);
        assert!(dup_protocol.validate().unwrap_err().contains("protocol"));
        let dup_variant = ok
            .clone()
            .variants(vec![Variant::baseline(), Variant::baseline()]);
        assert!(dup_variant.validate().unwrap_err().contains("variant"));
        let dup_workload = SweepGrid::over(vec![
            WorkloadParams::by_name("lu").unwrap(),
            WorkloadParams::by_name("lu").unwrap(),
        ]);
        assert!(dup_workload.validate().unwrap_err().contains("workload"));
        // Empty non-workload axes are rejected too.
        let empty_engines = ok.clone().engines(&[]);
        assert!(empty_engines.validate().unwrap_err().contains("engine"));
        // Static scenarios (no workloads) stay valid.
        assert!(SweepGrid::default().validate().is_ok());
    }

    #[test]
    fn mc_placement_knob_rewires_fabric_and_l2() {
        let corner2 = Knob::McPlacement {
            placement: McPlacement::Corner,
            mcs: 2,
        };
        let cfg = corner2.apply(SystemConfig::square(4));
        assert_eq!(cfg.mesh.mc_routers().len(), 2);
        assert_eq!(cfg.l2.mc_endpoints.len(), 2);
        // Two corner MCs sit on the opposite diagonal.
        assert_eq!(
            cfg.mesh.mc_routers(),
            &[scorpio_noc::RouterId(0), scorpio_noc::RouterId(15)]
        );
        let torus = corner2.apply(SystemConfig::torus(4));
        assert_eq!(torus.mesh.name(), "torus");
        assert_eq!(torus.mesh.mc_routers().len(), 2);
        let spread = Knob::McPlacement {
            placement: McPlacement::Spread,
            mcs: 2,
        }
        .apply(SystemConfig::ring(16, 4));
        assert_eq!(spread.mesh.mc_routers().len(), 2);
        assert_eq!(spread.l2.mc_endpoints.len(), 2);
        assert_eq!(corner2.label(), "corner-2");
        assert_eq!(
            Knob::McPlacement {
                placement: McPlacement::Proportional,
                mcs: 0
            }
            .label(),
            "prop"
        );
        // Placement support matrix drives the sweep filter.
        assert!(McPlacement::Corner.supports(Fabric::Mesh));
        assert!(McPlacement::Corner.supports(Fabric::Torus));
        assert!(!McPlacement::Corner.supports(Fabric::Ring));
        assert!(McPlacement::Spread.supports(Fabric::Ring));
        assert!(!McPlacement::Proportional.supports(Fabric::Torus));
    }

    #[test]
    #[should_panic(expected = "undefined for the ring fabric")]
    fn corner_placement_on_a_ring_panics() {
        let _ = Knob::McPlacement {
            placement: McPlacement::Corner,
            mcs: 2,
        }
        .apply(SystemConfig::ring(16, 4));
    }

    #[test]
    fn open_load_knob_applies_labels_and_surfaces_in_specs() {
        let k = Knob::OpenLoad {
            process: ArrivalProcess::Poisson,
            millis: 40,
        };
        let cfg = k.apply(SystemConfig::square(3));
        let ol = cfg.open_loop.expect("knob must set the open-loop axis");
        assert_eq!(ol.load_millis, 40);
        assert_eq!(ol.queue_cap, DEFAULT_SOURCE_QUEUE_CAP);
        assert_eq!(k.label(), "pois-40");
        assert_eq!(
            Knob::OpenLoad {
                process: ArrivalProcess::Bursty { on: 50, off: 150 },
                millis: 80,
            }
            .label(),
            "burst-80"
        );
        let g = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[2])
            .variants(vec![Variant::knob(k)]);
        let spec = &g.enumerate()[0];
        assert_eq!(spec.open_load(), Some((ArrivalProcess::Poisson, 40)));
        assert!(spec.key().contains("/pois-40/"));
    }

    #[test]
    fn specs_differ_by_seed_in_config_hash() {
        let g = SweepGrid::over(vec![WorkloadParams::by_name("lu").unwrap()])
            .meshes(&[2])
            .seeds(&[1, 2]);
        let specs = g.enumerate();
        assert_ne!(
            specs[0].config().stable_hash(),
            specs[1].config().stable_hash()
        );
    }
}
