//! # scorpio-harness
//!
//! Experiment orchestration for the SCORPIO reproduction: the paper's
//! evaluation — and every scaling study beyond it — is a grid of
//! independent simulations (protocol × mesh size × workload × seed ×
//! configuration knobs). This crate owns that grid end to end:
//!
//! * [`scenario`] — the declarative model: [`Knob`]s, [`Variant`]s,
//!   [`SweepGrid`]s and named [`Scenario`]s,
//! * [`registry`] — every figure/table of the paper as a registered
//!   scenario (`fig6` … `table2`, plus reduced `-small` variants),
//! * [`exec`] — a multi-threaded, work-stealing job executor whose
//!   results are byte-identical for any worker count,
//! * [`sink`] — deterministic JSON-lines and CSV result sinks,
//! * [`table`] — the normalized-runtime pretty-printer,
//! * [`cli`] — the `harness` command (`harness list`, `harness run fig7
//!   --threads 8 --json out.jsonl`), which the nine `scorpio-bench`
//!   figure binaries wrap.
//!
//! # Examples
//!
//! Run the Figure 7 protocol comparison on a tiny budget across all CPUs:
//!
//! ```
//! use scorpio_harness::exec::{run_grid, ExecOptions};
//! use scorpio_harness::registry;
//!
//! let scenario = registry::by_name("fig7").unwrap();
//! let opts = ExecOptions { threads: 0, ops_per_core: 5, ..ExecOptions::default() };
//! let results = run_grid(&scenario.grid, &opts);
//! assert_eq!(results.len(), 20); // 4 workloads x 5 protocols
//! println!("{}", (scenario.render)(&scenario, &results));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod exec;
pub mod registry;
pub mod scenario;
pub mod sink;
pub mod table;

pub use exec::{run_grid, run_spec, ExecOptions, RunResult};
pub use scenario::{Engine, Fabric, Knob, McPlacement, RunSpec, Scenario, SweepGrid, Variant};
pub use table::{print_normalized, render_normalized};

use scorpio::{SystemConfig, SystemReport};
use scorpio_workloads::{generate, WorkloadParams};

/// Default operations per core for sweeps. Override with the `SCORPIO_OPS`
/// environment variable (or `harness run --ops N`) to trade fidelity for
/// speed.
pub fn ops_per_core() -> usize {
    std::env::var("SCORPIO_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150)
}

/// Runs `params` (scaled to [`ops_per_core`]) on `cfg` and returns the
/// report — the single-run primitive the grid executor parallelizes.
pub fn run_workload(cfg: SystemConfig, params: &WorkloadParams) -> SystemReport {
    let scaled = params.clone().with_ops(ops_per_core());
    let traces = generate(&scaled, cfg.cores(), cfg.seed);
    let mut sys = scorpio::System::with_traces(cfg, traces);
    sys.run_to_completion()
}
