//! Large-mesh and non-square topology coverage: broadcasts must reach
//! every endpoint exactly once and the network must drain, on meshes well
//! beyond the 6×6 chip — the scaling scenarios' substrate.

use scorpio_noc::{Endpoint, Mesh, Network, NocConfig, Packet, RouterId, Sid};

/// Consumes everything that arrives until the network drains (or `max`
/// cycles pass), returning the number of flits consumed.
fn drain(net: &mut Network<u64>, max: u64) -> u64 {
    let eps: Vec<Endpoint> = net.mesh().endpoints().collect();
    let mut consumed = 0;
    for _ in 0..max {
        for &ep in &eps {
            let slots: Vec<_> = net.eject_heads(ep).map(|(s, _)| s).collect();
            for s in slots {
                if net.eject_take(ep, s).is_some() {
                    consumed += 1;
                }
            }
        }
        net.step();
        if net.is_drained() {
            break;
        }
    }
    consumed
}

fn broadcast_reaches_everyone(mesh: Mesh, src: RouterId, max_cycles: u64) {
    let n_eps = mesh.endpoints().count();
    let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
    let src_ep = Endpoint::tile(src);
    let uid = net
        .try_inject(src_ep, Packet::request(src_ep, Sid(src.0), 0, 7))
        .unwrap();
    drain(&mut net, max_cycles);
    assert!(net.is_drained(), "network failed to drain");
    // Every endpoint except the source consumes exactly one copy.
    assert_eq!(net.deliveries(uid) as usize, n_eps - 1);
}

#[test]
fn broadcast_on_non_square_mesh() {
    // 8×4 with MCs on two corners: 32 tiles + 2 MC ports.
    let mesh = Mesh::new(8, 4, &[RouterId(0), RouterId(31)]);
    broadcast_reaches_everyone(mesh, RouterId(13), 600);
}

#[test]
fn broadcast_on_tall_thin_mesh() {
    let mesh = Mesh::new(2, 9, &[RouterId(4)]);
    broadcast_reaches_everyone(mesh, RouterId(17), 600);
}

#[test]
fn broadcast_on_16x16_with_proportional_mcs() {
    let mesh = Mesh::square_with_proportional_mcs(16);
    assert_eq!(mesh.mc_routers().len(), 16);
    // 256 tiles + 16 MCs - 1 source = 271 copies.
    broadcast_reaches_everyone(mesh, RouterId(8 * 16 + 8), 2000);
}

#[test]
fn sixteen_by_sixteen_quiesces_between_traffic_phases() {
    let mesh = Mesh::square_with_proportional_mcs(16);
    let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
    let n_eps = net.mesh().endpoints().count();
    // Phase 1: broadcasts from two far-apart tiles.
    for (k, r) in [RouterId(0), RouterId(255)].into_iter().enumerate() {
        let ep = Endpoint::tile(r);
        net.try_inject(ep, Packet::request(ep, Sid(r.0), k as u16, k as u64))
            .unwrap();
    }
    drain(&mut net, 3000);
    assert!(net.is_drained(), "phase 1 failed to drain");
    // The delivery map grows without bound under track_deliveries; tests
    // that assert per-uid counts drain it between phases.
    net.clear_deliveries();
    // Phase 2: a fresh broadcast starts from a clean quiescent network.
    let ep = Endpoint::tile(RouterId(100));
    let uid = net
        .try_inject(ep, Packet::request(ep, Sid(100), 0, 3))
        .unwrap();
    drain(&mut net, 3000);
    assert!(net.is_drained(), "phase 2 failed to drain");
    assert_eq!(net.deliveries(uid) as usize, n_eps - 1);
}

/// The active-set engine and the always-scan engine must march the same
/// network through the exact same states: same cycle-by-cycle ejections,
/// same drain cycle, same delivery counts — under random mixed traffic on
/// a non-square mesh.
#[test]
fn engines_are_cycle_exact_under_random_traffic() {
    use scorpio_sim::SimRng;

    let run = |scan: bool| -> (u64, Vec<(u64, u64)>) {
        let mesh = Mesh::new(6, 3, &[RouterId(0), RouterId(17)]);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        net.set_always_scan(scan);
        let eps: Vec<Endpoint> = net.mesh().endpoints().collect();
        let mut rng = SimRng::seed_from(99);
        let mut log = Vec::new();
        let mut drained_at = 0;
        for cycle in 0..2500u64 {
            if cycle < 800 {
                for &ep in &eps {
                    if rng.chance(0.03) {
                        let to = eps[rng.gen_range_usize(eps.len())];
                        if ep.slot.is_tile() && rng.chance(0.5) {
                            let _ = net.try_inject(
                                ep,
                                Packet::request(ep, Sid(ep.router.0), cycle as u16, cycle),
                            );
                        } else if to != ep {
                            let _ = net.try_inject(ep, Packet::response(ep, to, 3, cycle));
                        }
                    }
                }
            }
            for &ep in &eps {
                let slots: Vec<_> = net.eject_heads(ep).map(|(s, _)| s).collect();
                for s in slots {
                    if let Some(f) = net.eject_take(ep, s) {
                        log.push((cycle, f.packet.uid));
                    }
                }
            }
            net.step();
            if cycle > 800 && net.is_drained() {
                drained_at = cycle;
                break;
            }
        }
        assert!(net.is_drained(), "network wedged (scan={scan})");
        (drained_at, log)
    };

    let (drain_a, log_a) = run(false);
    let (drain_b, log_b) = run(true);
    assert_eq!(drain_a, drain_b, "engines drained on different cycles");
    assert_eq!(log_a, log_b, "engines ejected different flit sequences");
    assert!(!log_a.is_empty());
}
