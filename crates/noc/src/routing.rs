//! XY dimension-ordered routing and XY broadcast trees.
//!
//! The main network uses XY routing (Table 1), which is deadlock-free for
//! the unordered response traffic. Broadcasts follow an XY tree: the request
//! travels east and west along the injection row, and every router in that
//! row forks copies north and south; column branches continue straight.
//! Every router delivers one copy to each of its local endpoints, so each
//! endpoint receives the broadcast exactly once.

use crate::flit::Dest;
use crate::topology::{Endpoint, Mesh, Port, PortMask, RouterId};

/// Computes the output port for a unicast packet at router `here`.
///
/// XY routing: correct the X offset first, then Y, then eject through the
/// destination's local port.
pub fn unicast_output(mesh: &Mesh, here: RouterId, dest: Endpoint) -> Port {
    let hc = mesh.coord(here);
    let dc = mesh.coord(dest.router);
    if dc.x > hc.x {
        Port::East
    } else if dc.x < hc.x {
        Port::West
    } else if dc.y > hc.y {
        Port::South
    } else if dc.y < hc.y {
        Port::North
    } else {
        dest.slot.port()
    }
}

/// Computes the set of output ports for a broadcast flit at router `here`,
/// given the port it arrived through (`None` at the source router).
///
/// The source's own tile copy is *not* produced: the requesting NIC
/// self-delivers through its loopback path, so the network only serves the
/// other endpoints. The source router still delivers to its MC port, if any.
pub fn broadcast_outputs(mesh: &Mesh, here: RouterId, arrived_on: Option<Port>) -> PortMask {
    let c = mesh.coord(here);
    let mut mask = PortMask::EMPTY;
    let at_source = arrived_on.is_none();

    match arrived_on {
        None => {
            // Source: spread along the row in both X directions and start
            // both column branches.
            if c.x + 1 < mesh.cols() {
                mask.insert(Port::East);
            }
            if c.x > 0 {
                mask.insert(Port::West);
            }
            if c.y > 0 {
                mask.insert(Port::North);
            }
            if c.y + 1 < mesh.rows() {
                mask.insert(Port::South);
            }
        }
        Some(Port::West) => {
            // Travelling east along the row: keep going east, fork columns.
            if c.x + 1 < mesh.cols() {
                mask.insert(Port::East);
            }
            if c.y > 0 {
                mask.insert(Port::North);
            }
            if c.y + 1 < mesh.rows() {
                mask.insert(Port::South);
            }
        }
        Some(Port::East) => {
            if c.x > 0 {
                mask.insert(Port::West);
            }
            if c.y > 0 {
                mask.insert(Port::North);
            }
            if c.y + 1 < mesh.rows() {
                mask.insert(Port::South);
            }
        }
        Some(Port::North) => {
            // Travelling south down a column: continue south only.
            if c.y + 1 < mesh.rows() {
                mask.insert(Port::South);
            }
        }
        Some(Port::South) => {
            if c.y > 0 {
                mask.insert(Port::North);
            }
        }
        Some(local @ (Port::Tile | Port::Mc)) => {
            panic!("broadcast flit cannot arrive on local port {local}")
        }
    }

    // Local deliveries. The source tile self-delivers via NIC loopback.
    if !at_source {
        mask.insert(Port::Tile);
    }
    if mesh.has_mc(here) {
        mask.insert(Port::Mc);
    }
    mask
}

/// Computes the output set for a flit at `here` given its destination and
/// arrival port. Unicast resolves to a single port; broadcast to a tree mask.
pub fn route_outputs(
    mesh: &Mesh,
    here: RouterId,
    dest: Dest,
    arrived_on: Option<Port>,
) -> PortMask {
    match dest {
        Dest::Unicast(ep) => PortMask::single(unicast_output(mesh, here, ep)),
        Dest::Broadcast => broadcast_outputs(mesh, here, arrived_on),
    }
}

/// For a flit leaving `here` through mesh port `out`, the input port it
/// arrives on at the neighbouring router.
pub fn arrival_port(out: Port) -> Port {
    out.opposite()
}

/// Walks the XY unicast path from `src` to `dest`, returning the router
/// sequence including both ends. Useful for tests and latency bounds.
pub fn unicast_path(mesh: &Mesh, src: RouterId, dest: Endpoint) -> Vec<RouterId> {
    let mut path = vec![src];
    let mut here = src;
    loop {
        let out = unicast_output(mesh, here, dest);
        if out.is_local() {
            return path;
        }
        here = mesh
            .neighbor(here, out)
            .expect("XY routing never points off-mesh");
        path.push(here);
    }
}

/// Simulates the broadcast tree from `src`, returning for every router the
/// set of local ports that receive a copy. Used by tests to prove exactly-
/// once delivery; the router pipeline performs the same forking cycle by
/// cycle.
pub fn broadcast_deliveries(mesh: &Mesh, src: RouterId) -> Vec<PortMask> {
    let mut deliveries = vec![PortMask::EMPTY; mesh.router_count()];
    // (router, arrival port) work list seeded at the source.
    let mut work: Vec<(RouterId, Option<Port>)> = vec![(src, None)];
    while let Some((here, arrived)) = work.pop() {
        let outs = broadcast_outputs(mesh, here, arrived);
        for port in outs.iter() {
            if port.is_local() {
                let mut m = deliveries[here.index()];
                assert!(!m.contains(port), "duplicate delivery at {here}");
                m.insert(port);
                deliveries[here.index()] = m;
            } else {
                let next = mesh
                    .neighbor(here, port)
                    .expect("broadcast mask never points off-mesh");
                work.push((next, Some(arrival_port(port))));
            }
        }
    }
    deliveries
}

/// The endpoints a broadcast from `src_tile` must reach: every endpoint
/// except the source tile itself.
pub fn broadcast_targets(mesh: &Mesh, src_tile: Endpoint) -> Vec<Endpoint> {
    mesh.endpoints().filter(|ep| *ep != src_tile).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_routes_x_before_y() {
        let mesh = Mesh::new(6, 6, &[]);
        // From (0,0) to (3,2): go east first.
        let src = RouterId(0);
        let dest = Endpoint::tile(RouterId(2 * 6 + 3));
        assert_eq!(unicast_output(&mesh, src, dest), Port::East);
        // Same column: go south.
        let below = Endpoint::tile(RouterId(12));
        assert_eq!(unicast_output(&mesh, src, below), Port::South);
        // At destination: eject.
        assert_eq!(unicast_output(&mesh, src, Endpoint::tile(src)), Port::Tile);
    }

    #[test]
    fn unicast_path_has_manhattan_length() {
        let mesh = Mesh::new(6, 6, &[]);
        for (a, b) in [(0u16, 35u16), (7, 7), (5, 30), (14, 21)] {
            let path = unicast_path(&mesh, RouterId(a), Endpoint::tile(RouterId(b)));
            assert_eq!(
                path.len() as u16 - 1,
                mesh.hops(RouterId(a), RouterId(b)),
                "path {a}->{b}"
            );
            assert_eq!(*path.last().unwrap(), RouterId(b));
        }
    }

    #[test]
    fn unicast_to_mc_slot_ejects_on_mc_port() {
        let mesh = Mesh::scorpio_chip();
        let dest = Endpoint::mc(RouterId(0));
        assert_eq!(unicast_output(&mesh, RouterId(0), dest), Port::Mc);
    }

    #[test]
    fn broadcast_reaches_every_tile_exactly_once() {
        let mesh = Mesh::scorpio_chip();
        for src in mesh.routers() {
            let deliveries = broadcast_deliveries(&mesh, src);
            for r in mesh.routers() {
                let got_tile = deliveries[r.index()].contains(Port::Tile);
                if r == src {
                    assert!(!got_tile, "source tile self-delivers via loopback");
                } else {
                    assert!(got_tile, "tile {r} missed broadcast from {src}");
                }
                let got_mc = deliveries[r.index()].contains(Port::Mc);
                assert_eq!(got_mc, mesh.has_mc(r), "mc delivery at {r} from {src}");
            }
        }
    }

    #[test]
    fn broadcast_works_on_rectangles_and_small_meshes() {
        for (cols, rows) in [(1u16, 1u16), (1, 4), (4, 1), (3, 5), (8, 8)] {
            let mesh = Mesh::new(cols, rows, &[]);
            for src in mesh.routers() {
                let deliveries = broadcast_deliveries(&mesh, src);
                let tiles = deliveries.iter().filter(|m| m.contains(Port::Tile)).count();
                assert_eq!(tiles, mesh.router_count() - 1, "{cols}x{rows} from {src}");
            }
        }
    }

    #[test]
    fn column_branches_do_not_refork() {
        let mesh = Mesh::new(6, 6, &[]);
        // A flit arriving from the north (travelling south) only continues
        // south + ejects; it must never turn east/west (that would duplicate).
        let mid = RouterId(14);
        let outs = broadcast_outputs(&mesh, mid, Some(Port::North));
        assert!(outs.contains(Port::South));
        assert!(outs.contains(Port::Tile));
        assert!(!outs.contains(Port::East));
        assert!(!outs.contains(Port::West));
        assert!(!outs.contains(Port::North));
    }

    #[test]
    fn route_outputs_dispatches() {
        let mesh = Mesh::scorpio_chip();
        let uni = route_outputs(
            &mesh,
            RouterId(0),
            Dest::Unicast(Endpoint::tile(RouterId(1))),
            None,
        );
        assert_eq!(uni.iter().collect::<Vec<_>>(), vec![Port::East]);
        let bc = route_outputs(&mesh, RouterId(14), Dest::Broadcast, None);
        assert!(bc.len() >= 4);
    }

    #[test]
    #[should_panic(expected = "cannot arrive on local port")]
    fn broadcast_from_local_arrival_panics() {
        let mesh = Mesh::new(2, 2, &[]);
        let _ = broadcast_outputs(&mesh, RouterId(0), Some(Port::Tile));
    }

    #[test]
    fn broadcast_targets_exclude_source() {
        let mesh = Mesh::scorpio_chip();
        let src = Endpoint::tile(RouterId(7));
        let targets = broadcast_targets(&mesh, src);
        assert_eq!(targets.len(), 39);
        assert!(!targets.contains(&src));
    }
}
