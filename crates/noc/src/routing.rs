//! Routing-spec walkers and shared topology property checks.
//!
//! The per-flit hot path routes through the compiled tables (`tables.rs`);
//! this module walks the *spec* — [`Topology::unicast_port`] /
//! [`Topology::broadcast_ports`] — off the hot path: path enumeration for
//! latency bounds, and the broadcast exactly-once property check that every
//! [`Topology`] implementation must pass ([`check_broadcast_exactly_once`]).

use crate::topology::{Endpoint, LocalSlot, Port, PortMask, RouterId, Topology};

/// The output port for a unicast packet at router `here` (spec form).
pub fn unicast_output(topo: &Topology, here: RouterId, dest: Endpoint) -> Port {
    topo.unicast_port(here, dest)
}

/// The output set for a broadcast flit from the endpoint `src` at router
/// `here`, given the port it arrived through (`None` at the source
/// router) — spec form. The source is an endpoint because on concentrated
/// fabrics the fork mask depends on which tile slot injected (the source
/// slot self-delivers through the NIC loopback; its siblings do not).
pub fn broadcast_outputs(
    topo: &Topology,
    src: Endpoint,
    here: RouterId,
    arrived_on: Option<Port>,
) -> PortMask {
    topo.broadcast_ports(src, here, arrived_on)
}

/// For a flit leaving `here` through mesh port `out`, the input port it
/// arrives on at the neighbouring router.
pub fn arrival_port(out: Port) -> Port {
    out.opposite()
}

/// Walks the unicast route from `src` to `dest`, returning the router
/// sequence including both ends. Useful for tests and latency bounds.
pub fn unicast_path(topo: &Topology, src: RouterId, dest: Endpoint) -> Vec<RouterId> {
    let mut path = vec![src];
    let mut here = src;
    loop {
        let out = topo.unicast_port(here, dest);
        if out.is_local() {
            return path;
        }
        here = topo
            .neighbor(here, out)
            .expect("unicast routing never points off-fabric");
        path.push(here);
    }
}

/// The diameter obtained by *walking the unicast routing spec* between
/// every router pair — the ground truth [`Topology::diameter`] (the single
/// closed-form derivation every consumer reads: notification-window
/// sizing, OR-propagation convergence, the physical wire model) is
/// asserted against, so a declared diameter and the paths flits actually
/// take can never quietly disagree. O(routers² · diameter); test/property
/// use only.
pub fn walked_diameter(topo: &Topology) -> u16 {
    let mut max = 0;
    for a in topo.routers() {
        for b in topo.routers() {
            max = max.max(topo.hops(a, b));
        }
    }
    max
}

/// Simulates the broadcast tree from the tile endpoint `src`, returning
/// for every router the set of local ports that receive a copy. Asserts
/// that no router is visited twice (a revisit would mean a duplicate
/// delivery or a routing cycle) and that no local port is fed twice. The
/// router pipeline performs the same forking cycle by cycle.
pub fn broadcast_deliveries(topo: &Topology, src: Endpoint) -> Vec<PortMask> {
    let mut deliveries = vec![PortMask::EMPTY; topo.router_count()];
    let mut visited = vec![false; topo.router_count()];
    visited[src.router.index()] = true;
    // (router, arrival port) work list seeded at the source router.
    let mut work: Vec<(RouterId, Option<Port>)> = vec![(src.router, None)];
    while let Some((here, arrived)) = work.pop() {
        let outs = broadcast_outputs(topo, src, here, arrived);
        for port in outs.iter() {
            if port.is_local() {
                let mut m = deliveries[here.index()];
                assert!(!m.contains(port), "duplicate delivery at {here}");
                m.insert(port);
                deliveries[here.index()] = m;
            } else {
                let next = topo
                    .neighbor(here, port)
                    .expect("broadcast mask never points off-fabric");
                assert!(
                    !visited[next.index()],
                    "broadcast from {src} revisits router {next}"
                );
                visited[next.index()] = true;
                work.push((next, Some(arrival_port(port))));
            }
        }
    }
    deliveries
}

/// The endpoints a broadcast from `src_tile` must reach: every endpoint
/// except the source tile itself.
pub fn broadcast_targets(topo: &Topology, src_tile: Endpoint) -> Vec<Endpoint> {
    topo.endpoints().filter(|ep| *ep != src_tile).collect()
}

/// The shared broadcast property every [`Topology`] implementation must
/// satisfy, checked from every source *tile endpoint* (on a concentrated
/// fabric that is every slot of every router):
///
/// * no router is visited by more than one branch (no flit revisits a
///   router — asserted inside [`broadcast_deliveries`]),
/// * every tile slot except the source's own receives exactly one copy —
///   including the source router's sibling slots — while the source tile
///   self-delivers through its NIC loopback,
/// * every MC port — including the source router's — receives exactly one
///   copy, and non-MC routers receive none.
///
/// # Panics
///
/// Panics with a description of the first violation.
pub fn check_broadcast_exactly_once(topo: &Topology) {
    for src_tile in 0..topo.tile_count() {
        let src = topo.tile_endpoint(src_tile);
        let LocalSlot::Tile(src_slot) = src.slot else {
            unreachable!("tile_endpoint returned a non-tile slot");
        };
        let deliveries = broadcast_deliveries(topo, src);
        for r in topo.routers() {
            for k in 0..topo.tiles_per_router() {
                let got = deliveries[r.index()].contains(Port::tile_slot(k));
                if r == src.router && k == src_slot {
                    assert!(
                        !got,
                        "{}: source tile {src} must self-deliver via loopback",
                        topo.label()
                    );
                } else {
                    assert!(
                        got,
                        "{}: tile slot {k} of {r} missed the broadcast from {src}",
                        topo.label()
                    );
                }
            }
            assert_eq!(
                deliveries[r.index()].contains(Port::Mc),
                topo.has_mc(r),
                "{}: MC delivery mismatch at {r} from {src}",
                topo.label()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CMesh, Mesh, Ring, Torus};

    fn mesh(cols: u16, rows: u16) -> Topology {
        Mesh::new(cols, rows, &[]).into()
    }

    #[test]
    fn unicast_routes_x_before_y() {
        let topo = mesh(6, 6);
        // From (0,0) to (3,2): go east first.
        let src = RouterId(0);
        let dest = Endpoint::tile(RouterId(2 * 6 + 3));
        assert_eq!(unicast_output(&topo, src, dest), Port::East);
        // Same column: go south.
        let below = Endpoint::tile(RouterId(12));
        assert_eq!(unicast_output(&topo, src, below), Port::South);
        // At destination: eject.
        assert_eq!(unicast_output(&topo, src, Endpoint::tile(src)), Port::Tile);
    }

    #[test]
    fn unicast_path_has_hops_length_on_every_topology() {
        for topo in [
            mesh(6, 6),
            Topology::from(Torus::new(5, 4, &[])),
            Topology::from(Ring::new(9, &[])),
        ] {
            for a in topo.routers() {
                for b in topo.routers() {
                    let path = unicast_path(&topo, a, Endpoint::tile(b));
                    assert_eq!(
                        path.len() as u16 - 1,
                        topo.hops(a, b),
                        "{}: path {a}->{b}",
                        topo.label()
                    );
                    assert_eq!(*path.last().unwrap(), b);
                }
            }
        }
    }

    #[test]
    fn unicast_to_mc_slot_ejects_on_mc_port() {
        let topo: Topology = Mesh::scorpio_chip().into();
        let dest = Endpoint::mc(RouterId(0));
        assert_eq!(unicast_output(&topo, RouterId(0), dest), Port::Mc);
    }

    // The shared property check, over every topology implementation and a
    // spread of geometries — the generalized form of the original
    // `broadcast_reaches_every_tile_exactly_once` mesh test.
    #[test]
    fn broadcast_exactly_once_on_every_topology() {
        let topologies: Vec<Topology> = vec![
            Mesh::scorpio_chip().into(),
            Mesh::new(1, 1, &[]).into(),
            Mesh::new(1, 4, &[]).into(),
            Mesh::new(4, 1, &[]).into(),
            Mesh::new(3, 5, &[RouterId(2)]).into(),
            Mesh::new(8, 8, &[]).into(),
            Torus::new(2, 2, &[]).into(),
            Torus::new(3, 3, &[RouterId(4)]).into(),
            Torus::new(4, 4, &[RouterId(0), RouterId(15)]).into(),
            Torus::new(5, 3, &[]).into(),
            Torus::new(
                6,
                6,
                &[RouterId(0), RouterId(5), RouterId(30), RouterId(35)],
            )
            .into(),
            Ring::new(2, &[]).into(),
            Ring::new(3, &[RouterId(1)]).into(),
            Ring::new(8, &[RouterId(0), RouterId(4)]).into(),
            Ring::with_spread_mcs(36, 4).into(),
            CMesh::with_corner_mcs(4, 2, 2).into(),
            CMesh::with_corner_mcs(2, 2, 4).into(),
            CMesh::with_corner_mcs(4, 4, 1).into(),
            CMesh::new(3, 3, 3, &[RouterId(4)]).into(),
            CMesh::new(1, 1, 4, &[RouterId(0)]).into(),
            CMesh::new(5, 1, 2, &[]).into(),
        ];
        for topo in &topologies {
            check_broadcast_exactly_once(topo);
        }
    }

    // Property test over *random* concentrated meshes (and random MC
    // placements): the exactly-once broadcast property, the declared-vs-
    // walked diameter agreement, and dense endpoint indexing must hold for
    // every (cols, rows, concentration) the generator produces. This is
    // the dependency-free stand-in for a proptest suite (the offline
    // toolchain carries no external crates), using the simulator's own
    // deterministic RNG.
    #[test]
    fn random_concentrations_hold_the_topology_properties() {
        use scorpio_sim::SimRng;
        let mut rng = SimRng::seed_from(0xC0DE);
        for _ in 0..40 {
            let cols = 1 + rng.gen_range_usize(5) as u16;
            let rows = 1 + rng.gen_range_usize(5) as u16;
            let conc = 1 + rng.gen_range_usize(Port::MAX_TILE_SLOTS as usize) as u8;
            let n = cols as usize * rows as usize;
            // Random duplicate-free MC subset (possibly empty).
            let mut mcs: Vec<RouterId> = Vec::new();
            for r in 0..n as u16 {
                if rng.chance(0.2) {
                    mcs.push(RouterId(r));
                }
            }
            let topo: Topology = CMesh::new(cols, rows, conc, &mcs).into();
            let label = topo.label();
            assert_eq!(topo.tile_count(), n * conc as usize, "{label}");
            check_broadcast_exactly_once(&topo);
            assert_eq!(topo.diameter(), walked_diameter(&topo), "{label}");
            for (i, ep) in topo.endpoints().enumerate() {
                assert_eq!(topo.endpoint_index(ep), i, "{label}");
            }
            for i in 0..topo.tile_count() {
                assert_eq!(topo.endpoint_index(topo.tile_endpoint(i)), i, "{label}");
            }
        }
    }

    // The bugfix satellite: the diameter every consumer reads (notify
    // window sizing, OR-propagation bound, physical wire model) and the
    // diameter implied by actually walking the unicast spec must be the
    // same number on every fabric — CMesh included, where the router grid
    // (not the tile count) is what bounds propagation.
    #[test]
    fn declared_diameter_matches_walked_diameter_everywhere() {
        let topologies: Vec<Topology> = vec![
            Mesh::scorpio_chip().into(),
            Mesh::new(7, 3, &[]).into(),
            Mesh::new(1, 1, &[]).into(),
            Torus::new(4, 4, &[]).into(),
            Torus::new(5, 3, &[]).into(),
            Torus::new(2, 2, &[]).into(),
            Ring::new(2, &[]).into(),
            Ring::new(9, &[]).into(),
            Ring::with_spread_mcs(36, 4).into(),
            CMesh::with_corner_mcs(4, 2, 2).into(),
            CMesh::with_corner_mcs(2, 2, 4).into(),
            CMesh::with_corner_mcs(6, 6, 1).into(),
        ];
        for topo in &topologies {
            assert_eq!(
                topo.diameter(),
                walked_diameter(topo),
                "declared vs walked diameter diverged on {}",
                topo.label()
            );
            // And the notification window follows that one number.
            assert_eq!(
                topo.notification_window(),
                topo.diameter() as u64 + 3,
                "{}",
                topo.label()
            );
        }
    }

    #[test]
    fn column_branches_do_not_refork() {
        let topo = mesh(6, 6);
        // A flit arriving from the north (travelling south) only continues
        // south + ejects; it must never turn east/west (that would duplicate).
        let mid = RouterId(14);
        let outs = broadcast_outputs(&topo, Endpoint::tile(RouterId(2)), mid, Some(Port::North));
        assert!(outs.contains(Port::South));
        assert!(outs.contains(Port::Tile));
        assert!(!outs.contains(Port::East));
        assert!(!outs.contains(Port::West));
        assert!(!outs.contains(Port::North));
    }

    #[test]
    #[should_panic(expected = "cannot arrive on local port")]
    fn broadcast_from_local_arrival_panics() {
        let topo = mesh(2, 2);
        let _ = broadcast_outputs(
            &topo,
            Endpoint::tile(RouterId(0)),
            RouterId(0),
            Some(Port::Tile),
        );
    }

    #[test]
    fn broadcast_targets_exclude_source() {
        let topo: Topology = Mesh::scorpio_chip().into();
        let src = Endpoint::tile(RouterId(7));
        let targets = broadcast_targets(&topo, src);
        assert_eq!(targets.len(), 39);
        assert!(!targets.contains(&src));
    }

    #[test]
    fn ring_broadcast_splits_between_directions() {
        let topo: Topology = Ring::new(4, &[]).into();
        // len=4: the east branch covers 2 routers, the west branch 1.
        let deliveries = broadcast_deliveries(&topo, Endpoint::tile(RouterId(0)));
        let tiles = deliveries.iter().filter(|m| m.contains(Port::Tile)).count();
        assert_eq!(tiles, 3);
        assert!(deliveries[2].contains(Port::Tile)); // reached eastbound
    }
}
