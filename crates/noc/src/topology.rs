//! Topologies: routers, coordinates, ports, endpoints — and the three
//! delivery fabrics ([`Mesh`], [`Torus`], [`Ring`]) behind the
//! [`Topology`] interface.
//!
//! SCORPIO's central idea is that message *ordering* is decoupled from
//! message *delivery*, so the delivery fabric is swappable: anything that
//! can broadcast to every endpoint exactly once and unicast responses can
//! carry the ordered protocol. Each topology supplies its routing *spec*
//! — [`Topology::unicast_port`] and [`Topology::broadcast_ports`] — which
//! the network compiles into per-router lookup tables at construction
//! time (see `tables.rs`); the per-flit hot path never runs coordinate
//! arithmetic.

use std::fmt;

/// Identifies a router in the mesh by linear index (row-major).
///
/// In the 36-core SCORPIO chip this is also the tile number (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u16);

impl RouterId {
    /// The linear index as `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A mesh coordinate: `x` grows eastward, `y` grows southward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..cols`, west to east.
    pub x: u16,
    /// Row, `0..rows`, north to south.
    pub y: u16,
}

/// One of the (up to) nine ports of a SCORPIO router.
///
/// The four cardinal ports connect to neighbouring routers; the tile ports
/// connect to the network interface controllers of the tiles the router
/// hosts, and `Mc` is the extra local port present on the edge routers
/// that host a memory-controller attachment (Section 4 of the paper).
///
/// On the chip's fabrics every router hosts exactly one tile, so only
/// `Tile` (slot 0) exists. A *concentrated* mesh attaches up to
/// [`Port::MAX_TILE_SLOTS`] tiles per router through the additional
/// `Tile1`..`Tile3` ports — the radix increase that buys CMesh its halved
/// diameter. The extra tile ports are appended *after* `Mc` in index order
/// so that every single-tile fabric sees the identical six-port router it
/// always had (same indices, same arbitration order, same tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Toward the router at `y - 1`.
    North,
    /// Toward the router at `y + 1`.
    South,
    /// Toward the router at `x + 1`.
    East,
    /// Toward the router at `x - 1`.
    West,
    /// The tile-NIC local port of tile slot 0.
    Tile,
    /// The memory-controller local port (only on MC-hosting routers).
    Mc,
    /// Tile slot 1 (concentrated fabrics only).
    Tile1,
    /// Tile slot 2 (concentrated fabrics only).
    Tile2,
    /// Tile slot 3 (concentrated fabrics only).
    Tile3,
}

impl Port {
    /// Number of distinct ports.
    pub const COUNT: usize = 9;

    /// Maximum tiles one router can host (tile slots `0..4`).
    pub const MAX_TILE_SLOTS: u8 = 4;

    /// All ports, in index order. The first six entries are exactly the
    /// historical single-tile port set, in its historical order.
    pub const ALL: [Port; Port::COUNT] = [
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::Tile,
        Port::Mc,
        Port::Tile1,
        Port::Tile2,
        Port::Tile3,
    ];

    /// Dense index in `0..Port::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Tile => 4,
            Port::Mc => 5,
            Port::Tile1 => 6,
            Port::Tile2 => 7,
            Port::Tile3 => 8,
        }
    }

    /// The tile port of local slot `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= Port::MAX_TILE_SLOTS`.
    #[inline]
    pub fn tile_slot(k: u8) -> Port {
        match k {
            0 => Port::Tile,
            1 => Port::Tile1,
            2 => Port::Tile2,
            3 => Port::Tile3,
            _ => panic!("tile slot {k} out of range"),
        }
    }

    /// The tile slot this port serves, if it is a tile port.
    #[inline]
    pub fn tile_index(self) -> Option<u8> {
        match self {
            Port::Tile => Some(0),
            Port::Tile1 => Some(1),
            Port::Tile2 => Some(2),
            Port::Tile3 => Some(3),
            _ => None,
        }
    }

    /// The port a neighbouring router receives this router's output on.
    ///
    /// # Panics
    ///
    /// Panics for the local ports (tiles and `Mc`), which have no opposite.
    #[inline]
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::South => Port::North,
            Port::East => Port::West,
            Port::West => Port::East,
            _ => panic!("local ports have no opposite"),
        }
    }

    /// Whether this is one of the local (non-mesh) ports.
    #[inline]
    pub fn is_local(self) -> bool {
        !matches!(self, Port::North | Port::South | Port::East | Port::West)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::North => "N",
            Port::South => "S",
            Port::East => "E",
            Port::West => "W",
            Port::Tile => "tile",
            Port::Mc => "mc",
            Port::Tile1 => "tile1",
            Port::Tile2 => "tile2",
            Port::Tile3 => "tile3",
        };
        f.write_str(s)
    }
}

/// A set of [`Port`]s, stored as a bitmask.
///
/// Used for multicast output sets: a broadcast flit forks through several
/// output ports in a single cycle (Section 3.2, "single-cycle broadcast
/// optimization").
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Port, PortMask};
///
/// let mut m = PortMask::EMPTY;
/// m.insert(Port::East);
/// m.insert(Port::Tile);
/// assert!(m.contains(Port::East));
/// assert_eq!(m.len(), 2);
/// m.remove(Port::East);
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![Port::Tile]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortMask(u16);

impl PortMask {
    /// The empty set.
    pub const EMPTY: PortMask = PortMask(0);

    /// A set containing a single port.
    #[inline]
    pub fn single(port: Port) -> PortMask {
        PortMask(1 << port.index())
    }

    /// Adds `port` to the set.
    #[inline]
    pub fn insert(&mut self, port: Port) {
        self.0 |= 1 << port.index();
    }

    /// Removes `port` from the set.
    #[inline]
    pub fn remove(&mut self, port: Port) {
        self.0 &= !(1 << port.index());
    }

    /// Whether `port` is in the set.
    #[inline]
    pub fn contains(self, port: Port) -> bool {
        self.0 & (1 << port.index()) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of ports in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the ports in the set in index order.
    pub fn iter(self) -> impl Iterator<Item = Port> {
        Port::ALL.into_iter().filter(move |p| self.contains(*p))
    }

    /// The raw bit representation (bit `i` = `Port::ALL[i]`).
    #[inline]
    pub(crate) fn bits(self) -> u16 {
        self.0
    }

    /// Rebuilds a mask from its raw bits.
    #[inline]
    pub(crate) fn from_bits(bits: u16) -> PortMask {
        PortMask(bits)
    }
}

/// Which local attachment of a router an endpoint refers to.
///
/// Every fabric addresses its local attachments through this type; on the
/// chip's single-tile fabrics the only tile slot is `Tile(0)`, while a
/// concentrated mesh hosts `Tile(0)..Tile(c-1)` behind one router. The
/// slot is the *normal path* of endpoint indexing, not a special case:
/// tile endpoint `i` of any topology is `(router i / c, Tile(i % c))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocalSlot {
    /// Tile NIC attachment `k` of the router (core + caches).
    Tile(u8),
    /// The memory-controller NIC.
    Mc,
}

impl LocalSlot {
    /// The router output port that reaches this slot.
    #[inline]
    pub fn port(self) -> Port {
        match self {
            LocalSlot::Tile(k) => Port::tile_slot(k),
            LocalSlot::Mc => Port::Mc,
        }
    }

    /// Whether this is a tile attachment.
    #[inline]
    pub fn is_tile(self) -> bool {
        matches!(self, LocalSlot::Tile(_))
    }

    /// Whether this is the memory-controller attachment.
    #[inline]
    pub fn is_mc(self) -> bool {
        matches!(self, LocalSlot::Mc)
    }
}

/// A network endpoint: a (router, local slot) pair.
///
/// Tiles and memory-controller ports are both endpoints; coherence-request
/// broadcasts are delivered to every endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The router this endpoint attaches to.
    pub router: RouterId,
    /// Which local port of the router.
    pub slot: LocalSlot,
}

impl Endpoint {
    /// The slot-0 tile endpoint of router `r` — the only tile endpoint of
    /// an unconcentrated router.
    pub fn tile(r: RouterId) -> Endpoint {
        Endpoint {
            router: r,
            slot: LocalSlot::Tile(0),
        }
    }

    /// Tile endpoint `k` of router `r` (concentrated fabrics).
    pub fn tile_slot(r: RouterId, k: u8) -> Endpoint {
        Endpoint {
            router: r,
            slot: LocalSlot::Tile(k),
        }
    }

    /// The memory-controller endpoint of router `r`.
    pub fn mc(r: RouterId) -> Endpoint {
        Endpoint {
            router: r,
            slot: LocalSlot::Mc,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.slot {
            LocalSlot::Tile(0) => write!(f, "tile@{}", self.router),
            LocalSlot::Tile(k) => write!(f, "tile.{k}@{}", self.router),
            LocalSlot::Mc => write!(f, "mc@{}", self.router),
        }
    }
}

/// A 2-D mesh: dimensions plus the set of routers hosting MC ports.
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Mesh, RouterId};
///
/// let mesh = Mesh::new(6, 6, &[RouterId(0), RouterId(5), RouterId(30), RouterId(35)]);
/// assert_eq!(mesh.router_count(), 36);
/// let c = mesh.coord(RouterId(7));
/// assert_eq!((c.x, c.y), (1, 1));
/// assert!(mesh.has_mc(RouterId(5)));
/// assert_eq!(mesh.endpoints().count(), 40); // 36 tiles + 4 MC ports
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    cols: u16,
    rows: u16,
    mc_routers: Vec<RouterId>,
}

impl Mesh {
    /// Creates a `cols × rows` mesh with MC ports on `mc_routers`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, if an MC router is out of range,
    /// or if the same router is listed twice.
    pub fn new(cols: u16, rows: u16, mc_routers: &[RouterId]) -> Mesh {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        let count = cols as usize * rows as usize;
        let mut sorted = mc_routers.to_vec();
        sorted.sort();
        for pair in sorted.windows(2) {
            assert!(pair[0] != pair[1], "duplicate MC router {}", pair[0]);
        }
        for r in &sorted {
            assert!(r.index() < count, "MC router {} out of range", r);
        }
        Mesh {
            cols,
            rows,
            mc_routers: sorted,
        }
    }

    /// The SCORPIO 36-core chip arrangement: 6×6 mesh, two dual-port memory
    /// controllers attached to the four corner routers.
    pub fn scorpio_chip() -> Mesh {
        Mesh::new(
            6,
            6,
            &[RouterId(0), RouterId(5), RouterId(30), RouterId(35)],
        )
    }

    /// A square `k × k` mesh with MC ports on the four corners.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn square_with_corner_mcs(k: u16) -> Mesh {
        assert!(k > 0, "mesh dimension must be non-zero");
        if k == 1 {
            return Mesh::new(1, 1, &[RouterId(0)]);
        }
        let corners = [
            RouterId(0),
            RouterId(k - 1),
            RouterId(k * (k - 1)),
            RouterId(k * k - 1),
        ];
        Mesh::new(k, k, &corners)
    }

    /// A square `k × k` mesh with memory-controller ports scaled to the
    /// core count: one MC per 16 tiles (at least the chip's 4), spread
    /// evenly along the perimeter. Four corner MCs serve 36 cores fine,
    /// but at 16×16 they would starve 256 cores of memory bandwidth and
    /// melt the corner routers; the paper's scaling argument (Section 5.3)
    /// assumes bandwidth grows with the machine. For `k ≤ 8` the placement
    /// coincides with [`Mesh::square_with_corner_mcs`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn square_with_proportional_mcs(k: u16) -> Mesh {
        assert!(k > 0, "mesh dimension must be non-zero");
        if k == 1 {
            return Mesh::new(1, 1, &[RouterId(0)]);
        }
        // Perimeter routers in clockwise order from the north-west corner;
        // evenly spaced picks land on the four corners when n == 4.
        let last = k - 1;
        let mut perimeter: Vec<RouterId> = Vec::with_capacity(4 * (k as usize - 1));
        for x in 0..last {
            perimeter.push(RouterId(x)); // north edge, west → east
        }
        for y in 0..last {
            perimeter.push(RouterId(y * k + last)); // east edge, north → south
        }
        for x in 0..last {
            perimeter.push(RouterId(k * last + (last - x))); // south edge, east → west
        }
        for y in 0..last {
            perimeter.push(RouterId((last - y) * k)); // west edge, south → north
        }
        let n = (k as usize * k as usize / 16).max(4).min(perimeter.len());
        let mcs: Vec<RouterId> = (0..n).map(|i| perimeter[i * perimeter.len() / n]).collect();
        Mesh::new(k, k, &mcs)
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total number of routers (each hosting one tile on a plain mesh).
    pub fn router_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// The routers hosting memory-controller ports, in ascending order.
    pub fn mc_routers(&self) -> &[RouterId] {
        &self.mc_routers
    }

    /// Whether `r` hosts a memory-controller port.
    pub fn has_mc(&self, r: RouterId) -> bool {
        self.mc_routers.binary_search(&r).is_ok()
    }

    /// The coordinate of router `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn coord(&self, r: RouterId) -> Coord {
        assert!(r.index() < self.router_count(), "router {} out of range", r);
        Coord {
            x: r.0 % self.cols,
            y: r.0 / self.cols,
        }
    }

    /// The router at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn router_at(&self, c: Coord) -> RouterId {
        assert!(c.x < self.cols && c.y < self.rows, "coord out of range");
        RouterId(c.y * self.cols + c.x)
    }

    /// The neighbour of `r` through `port`, if that port faces into the mesh.
    pub fn neighbor(&self, r: RouterId, port: Port) -> Option<RouterId> {
        let c = self.coord(r);
        let n = match port {
            Port::North if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            Port::South if c.y + 1 < self.rows => Coord { x: c.x, y: c.y + 1 },
            Port::East if c.x + 1 < self.cols => Coord { x: c.x + 1, y: c.y },
            Port::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            _ => return None,
        };
        Some(self.router_at(n))
    }

    /// Hop distance between two routers, *derived from the routing spec*:
    /// the length of the XY path [`Mesh::unicast_port`] actually produces
    /// (which for a mesh equals the Manhattan distance). Deriving distance
    /// and path from the same function means they can never diverge.
    pub fn hops(&self, a: RouterId, b: RouterId) -> u16 {
        walk_hops(
            a,
            b,
            |here, dest| self.unicast_port(here, dest),
            |r, p| self.neighbor(r, p),
        )
    }

    /// Worst-case unicast hop count between any router pair.
    pub fn diameter(&self) -> u16 {
        (self.cols - 1) + (self.rows - 1)
    }

    /// Routing spec: the output port for a unicast packet at `here` bound
    /// for `dest` — XY dimension-ordered routing (correct X first, then Y,
    /// then eject through the destination's local port).
    pub fn unicast_port(&self, here: RouterId, dest: Endpoint) -> Port {
        let hc = self.coord(here);
        let dc = self.coord(dest.router);
        if dc.x > hc.x {
            Port::East
        } else if dc.x < hc.x {
            Port::West
        } else if dc.y > hc.y {
            Port::South
        } else if dc.y < hc.y {
            Port::North
        } else {
            dest.slot.port()
        }
    }

    /// Routing spec: the output set for a broadcast flit at `here`, given
    /// the port it arrived through (`None` at the source router).
    ///
    /// XY broadcast tree: the request travels east and west along the
    /// injection row, every row router forks copies north and south, and
    /// column branches continue straight. The source's own tile copy is
    /// *not* produced — the requesting NIC self-delivers through its
    /// loopback path — but the source router still feeds its MC port.
    pub fn broadcast_ports(
        &self,
        _src: RouterId,
        here: RouterId,
        arrived_on: Option<Port>,
    ) -> PortMask {
        let c = self.coord(here);
        let mut mask = PortMask::EMPTY;
        let at_source = arrived_on.is_none();

        match arrived_on {
            None => {
                // Source: spread along the row in both X directions and
                // start both column branches.
                if c.x + 1 < self.cols {
                    mask.insert(Port::East);
                }
                if c.x > 0 {
                    mask.insert(Port::West);
                }
                if c.y > 0 {
                    mask.insert(Port::North);
                }
                if c.y + 1 < self.rows {
                    mask.insert(Port::South);
                }
            }
            Some(Port::West) => {
                // Travelling east along the row: keep going east, fork
                // columns.
                if c.x + 1 < self.cols {
                    mask.insert(Port::East);
                }
                if c.y > 0 {
                    mask.insert(Port::North);
                }
                if c.y + 1 < self.rows {
                    mask.insert(Port::South);
                }
            }
            Some(Port::East) => {
                if c.x > 0 {
                    mask.insert(Port::West);
                }
                if c.y > 0 {
                    mask.insert(Port::North);
                }
                if c.y + 1 < self.rows {
                    mask.insert(Port::South);
                }
            }
            Some(Port::North) => {
                // Travelling south down a column: continue south only.
                if c.y + 1 < self.rows {
                    mask.insert(Port::South);
                }
            }
            Some(Port::South) => {
                if c.y > 0 {
                    mask.insert(Port::North);
                }
            }
            Some(local) => {
                debug_assert!(local.is_local());
                panic!("broadcast flit cannot arrive on local port {local}")
            }
        }

        // Local deliveries. The source tile self-delivers via NIC loopback.
        if !at_source {
            mask.insert(Port::Tile);
        }
        if self.has_mc(here) {
            mask.insert(Port::Mc);
        }
        mask
    }

    /// Iterates over every router id.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.router_count() as u16).map(RouterId)
    }

    /// Iterates over every endpoint: all tiles, then all MC ports.
    pub fn endpoints(&self) -> impl Iterator<Item = Endpoint> + '_ {
        self.routers()
            .map(Endpoint::tile)
            .chain(self.mc_routers.iter().copied().map(Endpoint::mc))
    }

    /// The default notification-network time window for this mesh:
    /// worst-case X traversal + worst-case Y traversal + one merge cycle.
    ///
    /// For the 6×6 chip this is 13 cycles, matching Table 1.
    pub fn notification_window(&self) -> u64 {
        self.diameter() as u64 + 3
    }
}

/// Walks the unicast route from `a` to `b`'s tile, counting mesh hops —
/// the single distance definition every topology derives [`hops`] from,
/// so reported distance and actual path length cannot diverge.
///
/// [`hops`]: Topology::hops
fn walk_hops(
    a: RouterId,
    b: RouterId,
    mut port_of: impl FnMut(RouterId, Endpoint) -> Port,
    mut neighbor: impl FnMut(RouterId, Port) -> Option<RouterId>,
) -> u16 {
    let dest = Endpoint::tile(b);
    let mut here = a;
    let mut hops = 0u16;
    loop {
        let p = port_of(here, dest);
        if p.is_local() {
            return hops;
        }
        here = neighbor(here, p).expect("unicast route never points off-fabric");
        hops += 1;
    }
}

/// Validates an MC-router list: sorted copy, no duplicates, all in range.
fn checked_mcs(mc_routers: &[RouterId], count: usize) -> Vec<RouterId> {
    let mut sorted = mc_routers.to_vec();
    sorted.sort();
    for pair in sorted.windows(2) {
        assert!(pair[0] != pair[1], "duplicate MC router {}", pair[0]);
    }
    for r in &sorted {
        assert!(r.index() < count, "MC router {} out of range", r);
    }
    sorted
}

/// A 2-D torus: a mesh whose rows and columns wrap around.
///
/// Routing is minimal dimension-ordered XY with wraparound (ties broken
/// toward East/South); deadlock freedom over the wrap links comes from
/// *dateline* virtual-channel classes — a packet crossing a dimension's
/// wraparound link switches from the class-0 to the class-1 VC partition
/// for the rest of that dimension, which breaks the channel-dependency
/// cycle each ring would otherwise form (see DESIGN.md §10).
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Port, RouterId, Torus};
///
/// let torus = Torus::square_with_corner_mcs(4);
/// // Every router has all four neighbours; edges wrap.
/// assert_eq!(torus.neighbor(RouterId(0), Port::West), Some(RouterId(3)));
/// assert_eq!(torus.neighbor(RouterId(0), Port::North), Some(RouterId(12)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus {
    cols: u16,
    rows: u16,
    mc_routers: Vec<RouterId>,
}

impl Torus {
    /// Creates a `cols × rows` torus with MC ports on `mc_routers`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (a wrap link needs somewhere
    /// to wrap to), if an MC router is out of range, or on duplicates.
    pub fn new(cols: u16, rows: u16, mc_routers: &[RouterId]) -> Torus {
        assert!(
            cols >= 2 && rows >= 2,
            "torus dimensions must be at least 2"
        );
        let count = cols as usize * rows as usize;
        Torus {
            cols,
            rows,
            mc_routers: checked_mcs(mc_routers, count),
        }
    }

    /// A square `k × k` torus with MC ports on the same four routers the
    /// mesh places its corner MCs on, so mesh-vs-torus sweeps compare
    /// matched endpoint counts.
    pub fn square_with_corner_mcs(k: u16) -> Torus {
        assert!(k >= 2, "torus dimension must be at least 2");
        let corners = [
            RouterId(0),
            RouterId(k - 1),
            RouterId(k * (k - 1)),
            RouterId(k * k - 1),
        ];
        Torus::new(k, k, &corners)
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total number of routers.
    pub fn router_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// The routers hosting memory-controller ports, ascending.
    pub fn mc_routers(&self) -> &[RouterId] {
        &self.mc_routers
    }

    /// Whether `r` hosts a memory-controller port.
    pub fn has_mc(&self, r: RouterId) -> bool {
        self.mc_routers.binary_search(&r).is_ok()
    }

    /// The coordinate of router `r`.
    pub fn coord(&self, r: RouterId) -> Coord {
        assert!(r.index() < self.router_count(), "router {} out of range", r);
        Coord {
            x: r.0 % self.cols,
            y: r.0 / self.cols,
        }
    }

    /// The neighbour of `r` through `port` — always present on a torus
    /// (wrapping at the edges); `None` only for local ports.
    pub fn neighbor(&self, r: RouterId, port: Port) -> Option<RouterId> {
        let c = self.coord(r);
        let (x, y) = match port {
            Port::North => (c.x, (c.y + self.rows - 1) % self.rows),
            Port::South => (c.x, (c.y + 1) % self.rows),
            Port::East => ((c.x + 1) % self.cols, c.y),
            Port::West => ((c.x + self.cols - 1) % self.cols, c.y),
            _ => return None,
        };
        Some(RouterId(y * self.cols + x))
    }

    /// Whether the link leaving `r` through `port` crosses its dimension's
    /// dateline (i.e. is a wraparound link). East wraps at the last
    /// column, West at column 0; South at the last row, North at row 0.
    pub fn wrap_link(&self, r: RouterId, port: Port) -> bool {
        let c = self.coord(r);
        match port {
            Port::East => c.x + 1 == self.cols,
            Port::West => c.x == 0,
            Port::South => c.y + 1 == self.rows,
            Port::North => c.y == 0,
            _ => false,
        }
    }

    /// Worst-case unicast hop count: half of each dimension.
    pub fn diameter(&self) -> u16 {
        self.cols / 2 + self.rows / 2
    }

    /// Hop distance derived from the routing spec (see [`Mesh::hops`]);
    /// equals the wraparound Manhattan distance.
    pub fn hops(&self, a: RouterId, b: RouterId) -> u16 {
        walk_hops(
            a,
            b,
            |here, dest| self.unicast_port(here, dest),
            |r, p| self.neighbor(r, p),
        )
    }

    /// Routing spec: minimal dimension-ordered XY with wraparound; equal
    /// distances break toward East/South so routes are deterministic.
    pub fn unicast_port(&self, here: RouterId, dest: Endpoint) -> Port {
        let hc = self.coord(here);
        let dc = self.coord(dest.router);
        let de = (dc.x + self.cols - hc.x) % self.cols;
        let dw = (hc.x + self.cols - dc.x) % self.cols;
        if de != 0 {
            return if de <= dw { Port::East } else { Port::West };
        }
        let ds = (dc.y + self.rows - hc.y) % self.rows;
        let dn = (hc.y + self.rows - dc.y) % self.rows;
        if ds != 0 {
            return if ds <= dn { Port::South } else { Port::North };
        }
        dest.slot.port()
    }

    /// Routing spec: the wraparound XY broadcast tree. The source's row
    /// copies travel East for ⌈(cols−1)/2⌉ hops and West for the remaining
    /// ⌊(cols−1)/2⌋, so together they cover every other column exactly
    /// once; every row router forks column branches that likewise split
    /// the ring between South and North.
    pub fn broadcast_ports(
        &self,
        src: RouterId,
        here: RouterId,
        arrived_on: Option<Port>,
    ) -> PortMask {
        let sc = self.coord(src);
        let hc = self.coord(here);
        let e_max = self.cols / 2; // == ceil((cols-1)/2)
        let w_max = (self.cols - 1) / 2;
        let s_max = self.rows / 2;
        let n_max = (self.rows - 1) / 2;
        let de = (hc.x + self.cols - sc.x) % self.cols;
        let dw = (sc.x + self.cols - hc.x) % self.cols;
        let ds = (hc.y + self.rows - sc.y) % self.rows;
        let dn = (sc.y + self.rows - hc.y) % self.rows;

        let mut mask = PortMask::EMPTY;
        let column_forks = |mask: &mut PortMask| {
            if s_max > 0 {
                mask.insert(Port::South);
            }
            if n_max > 0 {
                mask.insert(Port::North);
            }
        };
        match arrived_on {
            None => {
                if e_max > 0 {
                    mask.insert(Port::East);
                }
                if w_max > 0 {
                    mask.insert(Port::West);
                }
                column_forks(&mut mask);
            }
            Some(Port::West) => {
                // Travelling east: `de` hops covered so far.
                if de < e_max {
                    mask.insert(Port::East);
                }
                column_forks(&mut mask);
            }
            Some(Port::East) => {
                if dw < w_max {
                    mask.insert(Port::West);
                }
                column_forks(&mut mask);
            }
            Some(Port::North) => {
                if ds < s_max {
                    mask.insert(Port::South);
                }
            }
            Some(Port::South) => {
                if dn < n_max {
                    mask.insert(Port::North);
                }
            }
            Some(local) => {
                debug_assert!(local.is_local());
                panic!("broadcast flit cannot arrive on local port {local}")
            }
        }
        if arrived_on.is_some() {
            mask.insert(Port::Tile);
        }
        if self.has_mc(here) {
            mask.insert(Port::Mc);
        }
        mask
    }

    /// Dateline VC class of the downstream input VC for the unicast hop
    /// `here → neighbor(here, port)`: `true` (class 1) once the remaining
    /// path in `port`'s dimension no longer crosses that dimension's
    /// wraparound link, `false` (class 0) while it still will. The 0 → 1
    /// switch at the dateline breaks each ring's channel-dependency cycle
    /// (DESIGN.md §10).
    pub fn unicast_class(&self, here: RouterId, dest: Endpoint, port: Port) -> bool {
        if port.is_local() {
            return false;
        }
        let next = self.neighbor(here, port).expect("torus ports always wrap");
        let nc = self.coord(next);
        let dc = self.coord(dest.router);
        match port {
            Port::East => nc.x <= dc.x,
            Port::West => nc.x >= dc.x,
            Port::South => nc.y <= dc.y,
            Port::North => nc.y >= dc.y,
            _ => unreachable!("checked above"),
        }
    }

    /// Dateline VC class for one branch hop of the broadcast from `src`
    /// leaving `here` through `port` (same convention as
    /// [`Torus::unicast_class`]): class 1 once the rest of the branch arc
    /// stays clear of the wraparound link.
    pub fn broadcast_class(&self, src: RouterId, here: RouterId, port: Port) -> bool {
        if port.is_local() {
            return false;
        }
        let sc = self.coord(src);
        let next = self.neighbor(here, port).expect("torus ports always wrap");
        let nc = self.coord(next);
        let (rem, pos, span) = match port {
            // saturating_sub: the spec is total (the table builder probes
            // off-tree points too); beyond the branch's hop budget the
            // remaining arc is simply zero.
            Port::East => {
                let de_next = (nc.x + self.cols - sc.x) % self.cols;
                ((self.cols / 2).saturating_sub(de_next), nc.x, self.cols)
            }
            Port::West => {
                let dw_next = (sc.x + self.cols - nc.x) % self.cols;
                (
                    ((self.cols - 1) / 2).saturating_sub(dw_next),
                    nc.x,
                    self.cols,
                )
            }
            Port::South => {
                let ds_next = (nc.y + self.rows - sc.y) % self.rows;
                ((self.rows / 2).saturating_sub(ds_next), nc.y, self.rows)
            }
            Port::North => {
                let dn_next = (sc.y + self.rows - nc.y) % self.rows;
                (
                    ((self.rows - 1) / 2).saturating_sub(dn_next),
                    nc.y,
                    self.rows,
                )
            }
            _ => unreachable!("checked above"),
        };
        match port {
            // Positive directions wrap leaving the last row/column.
            Port::East | Port::South => pos + rem < span,
            // Negative directions wrap leaving row/column 0.
            Port::West | Port::North => rem <= pos,
            _ => unreachable!("checked above"),
        }
    }
}

/// A bidirectional ring: every router has only East and West neighbours,
/// the radically simpler fabric of ring-router microarchitectures.
///
/// Unicast takes the shorter way around (ties toward East); broadcasts
/// split the ring between an eastbound and a westbound copy. Deadlock
/// freedom uses the same dateline VC classes as [`Torus`].
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Port, Ring, RouterId};
///
/// let ring = Ring::with_spread_mcs(16, 4);
/// assert_eq!(ring.router_count(), 16);
/// assert_eq!(ring.mc_routers().len(), 4);
/// assert_eq!(ring.neighbor(RouterId(15), Port::East), Some(RouterId(0)));
/// assert_eq!(ring.neighbor(RouterId(0), Port::North), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    len: u16,
    mc_routers: Vec<RouterId>,
}

impl Ring {
    /// Creates a ring of `len` routers with MC ports on `mc_routers`.
    ///
    /// # Panics
    ///
    /// Panics if `len < 2`, if an MC router is out of range, or on
    /// duplicates.
    pub fn new(len: u16, mc_routers: &[RouterId]) -> Ring {
        assert!(len >= 2, "ring length must be at least 2");
        Ring {
            len,
            mc_routers: checked_mcs(mc_routers, len as usize),
        }
    }

    /// A ring of `len` routers with `n_mcs` MC ports spread evenly,
    /// starting at router 0 — `Ring::with_spread_mcs(k * k, 4)` matches
    /// the endpoint count of a `k × k` mesh with corner MCs.
    ///
    /// # Panics
    ///
    /// Panics if `n_mcs` is zero or exceeds `len`.
    pub fn with_spread_mcs(len: u16, n_mcs: u16) -> Ring {
        assert!(n_mcs > 0 && n_mcs <= len, "need 1..=len MC routers");
        // u32 arithmetic: `i * len` overflows u16 for rings past ~16k
        // routers, which would silently misplace MCs in release builds.
        let mcs: Vec<RouterId> = (0..n_mcs as u32)
            .map(|i| RouterId((i * len as u32 / n_mcs as u32) as u16))
            .collect();
        Ring::new(len, &mcs)
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.len as usize
    }

    /// The routers hosting memory-controller ports, ascending.
    pub fn mc_routers(&self) -> &[RouterId] {
        &self.mc_routers
    }

    /// Whether `r` hosts a memory-controller port.
    pub fn has_mc(&self, r: RouterId) -> bool {
        self.mc_routers.binary_search(&r).is_ok()
    }

    /// The neighbour of `r` through `port`: East/West wrap around, the
    /// North/South ports do not exist on a ring.
    pub fn neighbor(&self, r: RouterId, port: Port) -> Option<RouterId> {
        assert!(r.index() < self.router_count(), "router {} out of range", r);
        match port {
            Port::East => Some(RouterId((r.0 + 1) % self.len)),
            Port::West => Some(RouterId((r.0 + self.len - 1) % self.len)),
            _ => None,
        }
    }

    /// Whether the link leaving `r` through `port` is the dateline
    /// (wraparound) link of its direction.
    pub fn wrap_link(&self, r: RouterId, port: Port) -> bool {
        match port {
            Port::East => r.0 + 1 == self.len,
            Port::West => r.0 == 0,
            _ => false,
        }
    }

    /// Worst-case unicast hop count: half way around.
    pub fn diameter(&self) -> u16 {
        self.len / 2
    }

    /// Hop distance derived from the routing spec (see [`Mesh::hops`]).
    pub fn hops(&self, a: RouterId, b: RouterId) -> u16 {
        walk_hops(
            a,
            b,
            |here, dest| self.unicast_port(here, dest),
            |r, p| self.neighbor(r, p),
        )
    }

    /// Routing spec: shortest way around, ties toward East.
    pub fn unicast_port(&self, here: RouterId, dest: Endpoint) -> Port {
        let de = (dest.router.0 + self.len - here.0) % self.len;
        let dw = (here.0 + self.len - dest.router.0) % self.len;
        if de == 0 {
            dest.slot.port()
        } else if de <= dw {
            Port::East
        } else {
            Port::West
        }
    }

    /// Routing spec: the broadcast splits into an eastbound copy covering
    /// ⌈(len−1)/2⌉ routers and a westbound copy covering the rest.
    pub fn broadcast_ports(
        &self,
        src: RouterId,
        here: RouterId,
        arrived_on: Option<Port>,
    ) -> PortMask {
        let e_max = self.len / 2;
        let w_max = (self.len - 1) / 2;
        let de = (here.0 + self.len - src.0) % self.len;
        let dw = (src.0 + self.len - here.0) % self.len;
        let mut mask = PortMask::EMPTY;
        match arrived_on {
            None => {
                if e_max > 0 {
                    mask.insert(Port::East);
                }
                if w_max > 0 {
                    mask.insert(Port::West);
                }
            }
            Some(Port::West) => {
                if de < e_max {
                    mask.insert(Port::East);
                }
            }
            Some(Port::East) => {
                if dw < w_max {
                    mask.insert(Port::West);
                }
            }
            Some(other) => panic!("ring broadcast cannot arrive on port {other}"),
        }
        if arrived_on.is_some() {
            mask.insert(Port::Tile);
        }
        if self.has_mc(here) {
            mask.insert(Port::Mc);
        }
        mask
    }

    /// Dateline VC class for the unicast hop `here → next` (see
    /// [`Torus::unicast_class`]): class 1 once the remaining arc to `dest`
    /// stays clear of the wraparound link of its direction.
    pub fn unicast_class(&self, here: RouterId, dest: Endpoint, port: Port) -> bool {
        let d = dest.router.0;
        match port {
            Port::East => (here.0 + 1) % self.len <= d,
            Port::West => (here.0 + self.len - 1) % self.len >= d,
            _ => false,
        }
    }

    /// Dateline VC class for one hop of the broadcast from `src` leaving
    /// `here` through `port` (see [`Torus::broadcast_class`]).
    pub fn broadcast_class(&self, src: RouterId, here: RouterId, port: Port) -> bool {
        match port {
            Port::East => {
                let next = (here.0 + 1) % self.len;
                let de_next = (next + self.len - src.0) % self.len;
                let rem = (self.len / 2).saturating_sub(de_next);
                next + rem < self.len
            }
            Port::West => {
                let next = (here.0 + self.len - 1) % self.len;
                let dw_next = (src.0 + self.len - next) % self.len;
                let rem = ((self.len - 1) / 2).saturating_sub(dw_next);
                rem <= next
            }
            _ => false,
        }
    }
}

/// A concentrated 2-D mesh: a mesh of routers where every router hosts
/// `concentration` tiles instead of one.
///
/// Concentration is the classic lever against mesh diameter (Slim NoC,
/// Epiphany-V): at the same core count a `c`-concentrated mesh has `1/c`
/// the routers, so the worst-case ordered-broadcast path — and with it the
/// notification window — shrinks with the router grid, paid for by a
/// higher-radix router (4 mesh ports + `c` tile ports + optional MC).
/// Routing is exactly the mesh's XY spec over the router grid; the only
/// new behavior is local delivery, where a broadcast feeds *every* tile
/// port of a router — except the source's own slot, which self-delivers
/// through its NIC loopback like every SCORPIO source does.
///
/// # Examples
///
/// ```
/// use scorpio_noc::{CMesh, RouterId, Topology};
///
/// // 16 tiles as 8 routers x 2 tiles: diameter 4 instead of the 4x4
/// // mesh's 6.
/// let cm = CMesh::with_corner_mcs(4, 2, 2);
/// assert_eq!(cm.router_count(), 8);
/// assert_eq!(cm.tile_count(), 16);
/// let topo = Topology::from(cm);
/// assert_eq!(topo.diameter(), 4);
/// assert_eq!(topo.endpoint_count(), 20); // 16 tiles + 4 MC ports
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CMesh {
    mesh: Mesh,
    concentration: u8,
}

impl CMesh {
    /// Creates a `cols × rows` router grid hosting `concentration` tiles
    /// per router, with MC ports on `mc_routers`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, if `concentration` is zero or
    /// exceeds [`Port::MAX_TILE_SLOTS`], or on a bad MC list.
    pub fn new(cols: u16, rows: u16, concentration: u8, mc_routers: &[RouterId]) -> CMesh {
        assert!(
            (1..=Port::MAX_TILE_SLOTS).contains(&concentration),
            "concentration must be 1..={}, got {concentration}",
            Port::MAX_TILE_SLOTS
        );
        CMesh {
            mesh: Mesh::new(cols, rows, mc_routers),
            concentration,
        }
    }

    /// A `cols × rows` router grid with MC ports on the four corners
    /// (collapsed on degenerate 1-wide grids).
    pub fn with_corner_mcs(cols: u16, rows: u16, concentration: u8) -> CMesh {
        let last = RouterId(cols * rows - 1);
        let mut corners: Vec<RouterId> = Vec::with_capacity(4);
        for c in [
            RouterId(0),
            RouterId(cols - 1),
            RouterId(cols * (rows - 1)),
            last,
        ] {
            if !corners.contains(&c) {
                corners.push(c);
            }
        }
        corners.sort();
        CMesh::new(cols, rows, concentration, &corners)
    }

    /// Number of router-grid columns.
    pub fn cols(&self) -> u16 {
        self.mesh.cols()
    }

    /// Number of router-grid rows.
    pub fn rows(&self) -> u16 {
        self.mesh.rows()
    }

    /// Tiles hosted per router.
    pub fn concentration(&self) -> u8 {
        self.concentration
    }

    /// Total number of routers.
    pub fn router_count(&self) -> usize {
        self.mesh.router_count()
    }

    /// Total number of tiles (`routers × concentration`).
    pub fn tile_count(&self) -> usize {
        self.router_count() * self.concentration as usize
    }

    /// The routers hosting memory-controller ports, ascending.
    pub fn mc_routers(&self) -> &[RouterId] {
        self.mesh.mc_routers()
    }

    /// Whether `r` hosts a memory-controller port.
    pub fn has_mc(&self, r: RouterId) -> bool {
        self.mesh.has_mc(r)
    }

    /// The coordinate of router `r` in the router grid.
    pub fn coord(&self, r: RouterId) -> Coord {
        self.mesh.coord(r)
    }

    /// The neighbour of `r` through `port` (router-grid mesh links).
    pub fn neighbor(&self, r: RouterId, port: Port) -> Option<RouterId> {
        self.mesh.neighbor(r, port)
    }

    /// Worst-case unicast hop count — the *router grid's* diameter, which
    /// is what concentration shrinks.
    pub fn diameter(&self) -> u16 {
        self.mesh.diameter()
    }

    /// Hop distance derived from the routing walk (see [`Mesh::hops`]).
    pub fn hops(&self, a: RouterId, b: RouterId) -> u16 {
        self.mesh.hops(a, b)
    }

    /// Routing spec: XY dimension-ordered routing over the router grid;
    /// at the destination router, eject through the endpoint's slot port.
    pub fn unicast_port(&self, here: RouterId, dest: Endpoint) -> Port {
        self.mesh.unicast_port(here, dest)
    }

    /// Routing spec: the mesh XY broadcast tree over the router grid, with
    /// concentrated local delivery — every tile port of every router gets
    /// a copy, except the source endpoint's own slot (NIC loopback), and
    /// MC routers feed their MC port exactly as on the mesh.
    pub fn broadcast_ports(
        &self,
        src: Endpoint,
        here: RouterId,
        arrived_on: Option<Port>,
    ) -> PortMask {
        let mut mask = self.mesh.broadcast_ports(src.router, here, arrived_on);
        // The mesh spec's local delivery covers exactly one tile (slot 0,
        // absent at the source router); replace it with the concentrated
        // set: all slots, minus the source's own slot at the source router.
        mask.remove(Port::Tile);
        let skip = if arrived_on.is_none() {
            match src.slot {
                LocalSlot::Tile(k) => Some(k),
                LocalSlot::Mc => None,
            }
        } else {
            None
        };
        for k in 0..self.concentration {
            if Some(k) != skip {
                mask.insert(Port::tile_slot(k));
            }
        }
        mask
    }
}

/// The delivery fabric of the main network: one of the supported
/// topologies behind a single interface.
///
/// All structural queries (`router_count`, `neighbor`, `endpoints`, …),
/// the routing spec (`unicast_port`, `broadcast_ports`) and the derived
/// quantities the rest of the system consumes (`diameter`,
/// `notification_window`, `hops`) dispatch to the concrete topology.
/// `Network` compiles the routing spec into per-router lookup tables at
/// construction; the spec itself is only evaluated per-flit under the
/// coordinate-routing reference engine.
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Mesh, Ring, Topology, Torus};
///
/// let mesh: Topology = Mesh::square_with_corner_mcs(4).into();
/// let torus: Topology = Torus::square_with_corner_mcs(4).into();
/// let ring: Topology = Ring::with_spread_mcs(16, 4).into();
/// // Matched endpoint counts, shrinking diameters.
/// assert_eq!(mesh.endpoints().count(), 20);
/// assert_eq!(torus.endpoints().count(), 20);
/// assert_eq!(ring.endpoints().count(), 20);
/// assert_eq!(mesh.diameter(), 6);
/// assert_eq!(torus.diameter(), 4);
/// assert_eq!(ring.diameter(), 8);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum Topology {
    /// A 2-D mesh (the SCORPIO chip's fabric).
    Mesh(Mesh),
    /// A 2-D torus (wraparound mesh, dateline deadlock avoidance).
    Torus(Torus),
    /// A bidirectional ring (East/West only).
    Ring(Ring),
    /// A concentrated 2-D mesh (multiple tiles per router).
    CMesh(CMesh),
}

// Renders as the *inner* topology so a mesh still debug-prints exactly as
// the bare `Mesh` struct always has. `SystemConfig::stable_hash`
// fingerprints the Debug rendering; this transparency is what keeps every
// pre-topology-refactor mesh config hash — and the JSONL rows keyed on
// them — valid.
impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Mesh(m) => m.fmt(f),
            Topology::Torus(t) => t.fmt(f),
            Topology::Ring(r) => r.fmt(f),
            Topology::CMesh(c) => c.fmt(f),
        }
    }
}

impl From<Mesh> for Topology {
    fn from(m: Mesh) -> Topology {
        Topology::Mesh(m)
    }
}

impl From<Torus> for Topology {
    fn from(t: Torus) -> Topology {
        Topology::Torus(t)
    }
}

impl From<Ring> for Topology {
    fn from(r: Ring) -> Topology {
        Topology::Ring(r)
    }
}

// By-reference conversions (cloning) so APIs that take
// `impl Into<Topology>` keep accepting `&mesh` exactly as the mesh-only
// signatures did.
impl From<&Mesh> for Topology {
    fn from(m: &Mesh) -> Topology {
        Topology::Mesh(m.clone())
    }
}

impl From<&Torus> for Topology {
    fn from(t: &Torus) -> Topology {
        Topology::Torus(t.clone())
    }
}

impl From<&Ring> for Topology {
    fn from(r: &Ring) -> Topology {
        Topology::Ring(r.clone())
    }
}

impl From<CMesh> for Topology {
    fn from(c: CMesh) -> Topology {
        Topology::CMesh(c)
    }
}

impl From<&CMesh> for Topology {
    fn from(c: &CMesh) -> Topology {
        Topology::CMesh(c.clone())
    }
}

impl From<&Topology> for Topology {
    fn from(t: &Topology) -> Topology {
        t.clone()
    }
}

impl Topology {
    /// Short kind name: `"mesh"`, `"torus"`, `"ring"` or `"cmesh"`.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Mesh(_) => "mesh",
            Topology::Torus(_) => "torus",
            Topology::Ring(_) => "ring",
            Topology::CMesh(_) => "cmesh",
        }
    }

    /// Geometry label: `"6x6"` for a mesh (unchanged from the pre-topology
    /// labels), `"torus6x6"`, `"ring36"`, `"cmesh4x2x2"` (router grid ×
    /// concentration).
    pub fn label(&self) -> String {
        match self {
            Topology::Mesh(m) => format!("{}x{}", m.cols(), m.rows()),
            Topology::Torus(t) => format!("torus{}x{}", t.cols(), t.rows()),
            Topology::Ring(r) => format!("ring{}", r.router_count()),
            Topology::CMesh(c) => {
                format!("cmesh{}x{}x{}", c.cols(), c.rows(), c.concentration())
            }
        }
    }

    /// Total number of routers.
    pub fn router_count(&self) -> usize {
        match self {
            Topology::Mesh(m) => m.router_count(),
            Topology::Torus(t) => t.router_count(),
            Topology::Ring(r) => r.router_count(),
            Topology::CMesh(c) => c.router_count(),
        }
    }

    /// Tiles hosted per router (`1` on every unconcentrated fabric).
    pub fn tiles_per_router(&self) -> u8 {
        match self {
            Topology::CMesh(c) => c.concentration(),
            _ => 1,
        }
    }

    /// Total number of tiles (`router_count × tiles_per_router`). This —
    /// not the router count — is the system's core count.
    pub fn tile_count(&self) -> usize {
        self.router_count() * self.tiles_per_router() as usize
    }

    /// The endpoint of tile `i`: router `i / c`, slot `i % c` — the normal
    /// path of endpoint indexing (`c == 1` collapses to router `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tile_endpoint(&self, i: usize) -> Endpoint {
        assert!(i < self.tile_count(), "tile {i} out of range");
        let c = self.tiles_per_router() as usize;
        Endpoint::tile_slot(RouterId((i / c) as u16), (i % c) as u8)
    }

    /// The routers hosting memory-controller ports, in ascending order.
    pub fn mc_routers(&self) -> &[RouterId] {
        match self {
            Topology::Mesh(m) => m.mc_routers(),
            Topology::Torus(t) => t.mc_routers(),
            Topology::Ring(r) => r.mc_routers(),
            Topology::CMesh(c) => c.mc_routers(),
        }
    }

    /// Whether `r` hosts a memory-controller port.
    pub fn has_mc(&self, r: RouterId) -> bool {
        match self {
            Topology::Mesh(m) => m.has_mc(r),
            Topology::Torus(t) => t.has_mc(r),
            Topology::Ring(r_) => r_.has_mc(r),
            Topology::CMesh(c) => c.has_mc(r),
        }
    }

    /// The physical neighbour of `r` through `port`, if that link exists.
    pub fn neighbor(&self, r: RouterId, port: Port) -> Option<RouterId> {
        match self {
            Topology::Mesh(m) => m.neighbor(r, port),
            Topology::Torus(t) => t.neighbor(r, port),
            Topology::Ring(r_) => r_.neighbor(r, port),
            Topology::CMesh(c) => c.neighbor(r, port),
        }
    }

    /// Iterates over every router id.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.router_count() as u16).map(RouterId)
    }

    /// Iterates over every endpoint: all tiles in tile-index order
    /// (router-major, slot-minor), then all MC ports.
    pub fn endpoints(&self) -> impl Iterator<Item = Endpoint> + '_ {
        (0..self.tile_count())
            .map(|i| self.tile_endpoint(i))
            .chain(self.mc_routers().iter().copied().map(Endpoint::mc))
    }

    /// Number of endpoints (tiles + MC ports).
    pub fn endpoint_count(&self) -> usize {
        self.tile_count() + self.mc_routers().len()
    }

    /// Worst-case unicast hop count between any router pair.
    ///
    /// This is the *single* diameter derivation in the system: the
    /// notification-network window, the OR-propagation convergence bound
    /// and the physical wire model all consume this function, and
    /// `walked_diameter` in `routing.rs` (the ground truth obtained by
    /// walking the unicast spec between every router pair) is asserted
    /// equal to it for every topology — so the declared diameter and the
    /// paths flits actually take can never disagree.
    pub fn diameter(&self) -> u16 {
        match self {
            Topology::Mesh(m) => m.diameter(),
            Topology::Torus(t) => t.diameter(),
            Topology::Ring(r) => r.diameter(),
            Topology::CMesh(c) => c.diameter(),
        }
    }

    /// The default notification-network time window: the diameter bounds
    /// worst-case OR-propagation, plus the fixed merge margin. Identical
    /// to the historical `cols + rows + 1` formula on a mesh (13 cycles on
    /// the 6×6 chip), and tighter on low-diameter fabrics.
    pub fn notification_window(&self) -> u64 {
        self.diameter() as u64 + 3
    }

    /// The router grid as `(cols, rows)` — the coordinate space quad
    /// partitioning operates over. Router `(x, y)` has index
    /// `y * cols + x` on every 2-D fabric; a ring is treated as a
    /// `router_count × 1` line (the aggregation tree is a logical overlay,
    /// not a set of physical mesh links, so wraparound is irrelevant).
    pub fn router_grid(&self) -> (u16, u16) {
        match self {
            Topology::Mesh(m) => (m.cols(), m.rows()),
            Topology::Torus(t) => (t.cols(), t.rows()),
            Topology::Ring(r) => (r.router_count() as u16, 1),
            Topology::CMesh(c) => (c.cols(), c.rows()),
        }
    }

    /// Hop distance between two routers, derived by walking the unicast
    /// routing spec — distance and path length cannot diverge.
    pub fn hops(&self, a: RouterId, b: RouterId) -> u16 {
        match self {
            Topology::Mesh(m) => m.hops(a, b),
            Topology::Torus(t) => t.hops(a, b),
            Topology::Ring(r) => r.hops(a, b),
            Topology::CMesh(c) => c.hops(a, b),
        }
    }

    /// Whether this topology has wraparound links and therefore needs the
    /// dateline VC-class discipline (requires ≥ 2 regular VCs per vnet).
    pub fn has_datelines(&self) -> bool {
        matches!(self, Topology::Torus(_) | Topology::Ring(_))
    }

    /// Whether the link leaving `r` through `port` crosses its
    /// dimension's dateline.
    pub fn wrap_link(&self, r: RouterId, port: Port) -> bool {
        match self {
            Topology::Mesh(_) | Topology::CMesh(_) => false,
            Topology::Torus(t) => t.wrap_link(r, port),
            Topology::Ring(r_) => r_.wrap_link(r, port),
        }
    }

    /// Routing spec: the output port for a unicast packet at `here` bound
    /// for `dest` (the local port once `here` is the destination router).
    pub fn unicast_port(&self, here: RouterId, dest: Endpoint) -> Port {
        match self {
            Topology::Mesh(m) => m.unicast_port(here, dest),
            Topology::Torus(t) => t.unicast_port(here, dest),
            Topology::Ring(r) => r.unicast_port(here, dest),
            Topology::CMesh(c) => c.unicast_port(here, dest),
        }
    }

    /// Routing spec: the output set (mesh ports + local deliveries) for a
    /// broadcast from the endpoint `src` observed at `here` having arrived
    /// through `arrived_on` (`None` at the source router).
    ///
    /// The source is an *endpoint*, not a router: on a concentrated fabric
    /// the source router still feeds its sibling tile slots (only the
    /// source's own slot self-delivers through the NIC loopback), so the
    /// fork mask depends on which slot injected. Unconcentrated fabrics
    /// ignore the slot.
    pub fn broadcast_ports(
        &self,
        src: Endpoint,
        here: RouterId,
        arrived_on: Option<Port>,
    ) -> PortMask {
        match self {
            Topology::Mesh(m) => m.broadcast_ports(src.router, here, arrived_on),
            Topology::Torus(t) => t.broadcast_ports(src.router, here, arrived_on),
            Topology::Ring(r) => r.broadcast_ports(src.router, here, arrived_on),
            Topology::CMesh(c) => c.broadcast_ports(src, here, arrived_on),
        }
    }

    /// Routing spec with dateline class: the unicast output port plus
    /// whether the downstream VC must come from the class-1 partition
    /// (always `false` on a mesh, where no link wraps).
    pub fn unicast_hop(&self, here: RouterId, dest: Endpoint) -> (Port, bool) {
        let port = self.unicast_port(here, dest);
        let class = match self {
            Topology::Mesh(_) | Topology::CMesh(_) => false,
            Topology::Torus(t) => t.unicast_class(here, dest, port),
            Topology::Ring(r) => r.unicast_class(here, dest, port),
        };
        (port, class)
    }

    /// Routing spec with dateline classes: the broadcast output set plus a
    /// bitmask (by [`Port::index`]) of outputs whose downstream VC must
    /// come from the class-1 partition (always 0 on mesh-like fabrics).
    /// Class bits only ever appear on the four cardinal ports (indices
    /// `0..4`); local ports never carry one.
    pub fn broadcast_hop(
        &self,
        src: Endpoint,
        here: RouterId,
        arrived_on: Option<Port>,
    ) -> (PortMask, u8) {
        let mask = self.broadcast_ports(src, here, arrived_on);
        let mut classes = 0u8;
        match self {
            Topology::Mesh(_) | Topology::CMesh(_) => {}
            Topology::Torus(t) => {
                for p in mask.iter() {
                    if t.broadcast_class(src.router, here, p) {
                        classes |= 1 << p.index();
                    }
                }
            }
            Topology::Ring(r) => {
                for p in mask.iter() {
                    if r.broadcast_class(src.router, here, p) {
                        classes |= 1 << p.index();
                    }
                }
            }
        }
        (mask, classes)
    }

    /// The dense index of `ep`: tiles first (router-major, slot-minor — a
    /// tile's index *is* its core/SID number), then MC ports by MC-router
    /// rank.
    ///
    /// # Panics
    ///
    /// Panics if `ep` does not exist in this topology.
    pub fn endpoint_index(&self, ep: Endpoint) -> usize {
        let c = self.tiles_per_router();
        match ep.slot {
            LocalSlot::Tile(k) => {
                assert!(
                    ep.router.index() < self.router_count() && k < c,
                    "no tile slot {k} at {}",
                    ep.router
                );
                ep.router.index() * c as usize + k as usize
            }
            LocalSlot::Mc => {
                let pos = self
                    .mc_routers()
                    .binary_search(&ep.router)
                    .unwrap_or_else(|_| panic!("no MC port at {}", ep.router));
                self.tile_count() + pos
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip() {
        let mesh = Mesh::new(6, 6, &[]);
        for r in mesh.routers() {
            assert_eq!(mesh.router_at(mesh.coord(r)), r);
        }
    }

    #[test]
    fn neighbors_of_center_and_corner() {
        let mesh = Mesh::new(6, 6, &[]);
        let center = mesh.router_at(Coord { x: 2, y: 2 });
        assert_eq!(
            mesh.neighbor(center, Port::North),
            Some(mesh.router_at(Coord { x: 2, y: 1 }))
        );
        assert_eq!(
            mesh.neighbor(center, Port::South),
            Some(mesh.router_at(Coord { x: 2, y: 3 }))
        );
        assert_eq!(
            mesh.neighbor(center, Port::East),
            Some(mesh.router_at(Coord { x: 3, y: 2 }))
        );
        assert_eq!(
            mesh.neighbor(center, Port::West),
            Some(mesh.router_at(Coord { x: 1, y: 2 }))
        );

        let nw_corner = RouterId(0);
        assert_eq!(mesh.neighbor(nw_corner, Port::North), None);
        assert_eq!(mesh.neighbor(nw_corner, Port::West), None);
        assert!(mesh.neighbor(nw_corner, Port::East).is_some());
        assert!(mesh.neighbor(nw_corner, Port::South).is_some());
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let mesh = Mesh::new(4, 3, &[]);
        for r in mesh.routers() {
            for port in [Port::North, Port::South, Port::East, Port::West] {
                if let Some(n) = mesh.neighbor(r, port) {
                    assert_eq!(mesh.neighbor(n, port.opposite()), Some(r));
                }
            }
        }
    }

    #[test]
    fn hops_is_manhattan() {
        let mesh = Mesh::new(6, 6, &[]);
        assert_eq!(mesh.hops(RouterId(0), RouterId(35)), 10);
        assert_eq!(mesh.hops(RouterId(7), RouterId(7)), 0);
        assert_eq!(mesh.hops(RouterId(0), RouterId(5)), 5);
    }

    #[test]
    fn scorpio_chip_shape() {
        let mesh = Mesh::scorpio_chip();
        assert_eq!(mesh.router_count(), 36);
        assert_eq!(mesh.mc_routers().len(), 4);
        assert_eq!(mesh.notification_window(), 13);
        assert!(mesh.has_mc(RouterId(0)));
        assert!(!mesh.has_mc(RouterId(1)));
    }

    #[test]
    fn window_scales_with_mesh() {
        assert_eq!(Mesh::new(8, 8, &[]).notification_window(), 17);
        assert_eq!(Mesh::new(10, 10, &[]).notification_window(), 21);
        assert_eq!(Mesh::new(4, 4, &[]).notification_window(), 9);
    }

    #[test]
    fn endpoints_cover_tiles_and_mcs() {
        let mesh = Mesh::scorpio_chip();
        let eps: Vec<_> = mesh.endpoints().collect();
        assert_eq!(eps.len(), 40);
        assert_eq!(eps.iter().filter(|e| e.slot == LocalSlot::Mc).count(), 4);
    }

    #[test]
    fn port_mask_operations() {
        let mut m = PortMask::EMPTY;
        assert!(m.is_empty());
        m.insert(Port::North);
        m.insert(Port::Mc);
        assert_eq!(m.len(), 2);
        assert!(m.contains(Port::North));
        assert!(!m.contains(Port::South));
        m.remove(Port::North);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![Port::Mc]);
    }

    #[test]
    fn port_opposites() {
        assert_eq!(Port::North.opposite(), Port::South);
        assert_eq!(Port::East.opposite(), Port::West);
        assert!(Port::Tile.is_local());
        assert!(!Port::North.is_local());
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_port_opposite_panics() {
        let _ = Port::Tile.opposite();
    }

    #[test]
    #[should_panic(expected = "duplicate MC router")]
    fn duplicate_mc_panics() {
        let _ = Mesh::new(2, 2, &[RouterId(1), RouterId(1)]);
    }

    #[test]
    fn proportional_mcs_match_corners_on_small_meshes() {
        for k in [2u16, 4, 6, 8] {
            assert_eq!(
                Mesh::square_with_proportional_mcs(k).mc_routers(),
                Mesh::square_with_corner_mcs(k).mc_routers(),
                "k={k}"
            );
        }
        assert_eq!(Mesh::square_with_proportional_mcs(1).mc_routers().len(), 1);
    }

    #[test]
    fn proportional_mcs_scale_with_tiles() {
        // One MC per 16 tiles, on the perimeter, duplicate-free (Mesh::new
        // asserts that), and including the NW corner.
        for (k, expect) in [(12u16, 9usize), (16, 16), (20, 25)] {
            let mesh = Mesh::square_with_proportional_mcs(k);
            assert_eq!(mesh.mc_routers().len(), expect, "k={k}");
            assert!(mesh.has_mc(RouterId(0)));
            for &r in mesh.mc_routers() {
                let c = mesh.coord(r);
                assert!(
                    c.x == 0 || c.y == 0 || c.x == k - 1 || c.y == k - 1,
                    "MC {r} not on the perimeter of {k}x{k}"
                );
            }
        }
    }

    #[test]
    fn square_with_corner_mcs_small() {
        let m1 = Mesh::square_with_corner_mcs(1);
        assert_eq!(m1.mc_routers().len(), 1);
        let m4 = Mesh::square_with_corner_mcs(4);
        assert_eq!(
            m4.mc_routers(),
            &[RouterId(0), RouterId(3), RouterId(12), RouterId(15)]
        );
    }

    // Satellite regression: hops is derived from the routing walk, so on a
    // non-square mesh it must still equal the Manhattan distance (the old
    // closed form) — distance and actual path length cannot diverge.
    #[test]
    fn non_square_hops_match_manhattan() {
        let mesh = Mesh::new(7, 3, &[]);
        for a in mesh.routers() {
            for b in mesh.routers() {
                let (ca, cb) = (mesh.coord(a), mesh.coord(b));
                let manhattan = ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y);
                assert_eq!(mesh.hops(a, b), manhattan, "{a}->{b}");
            }
        }
    }

    #[test]
    fn torus_neighbors_wrap_and_are_symmetric() {
        let t = Torus::new(4, 3, &[]);
        assert_eq!(t.neighbor(RouterId(0), Port::West), Some(RouterId(3)));
        assert_eq!(t.neighbor(RouterId(0), Port::North), Some(RouterId(8)));
        assert_eq!(t.neighbor(RouterId(11), Port::East), Some(RouterId(8)));
        for r in 0..12u16 {
            for port in [Port::North, Port::South, Port::East, Port::West] {
                let n = t.neighbor(RouterId(r), port).unwrap();
                assert_eq!(t.neighbor(n, port.opposite()), Some(RouterId(r)));
            }
        }
        assert_eq!(t.neighbor(RouterId(0), Port::Tile), None);
    }

    #[test]
    fn torus_hops_is_wraparound_manhattan() {
        let t = Torus::new(5, 4, &[]);
        for a in 0..20u16 {
            for b in 0..20u16 {
                let (ca, cb) = (t.coord(RouterId(a)), t.coord(RouterId(b)));
                let dx = ca.x.abs_diff(cb.x).min(5 - ca.x.abs_diff(cb.x));
                let dy = ca.y.abs_diff(cb.y).min(4 - ca.y.abs_diff(cb.y));
                assert_eq!(t.hops(RouterId(a), RouterId(b)), dx + dy, "{a}->{b}");
            }
        }
    }

    #[test]
    fn spread_mcs_survive_large_rings() {
        // Regression: `i * len` in u16 overflowed past ~16k routers.
        let r = Ring::with_spread_mcs(30000, 4);
        assert_eq!(
            r.mc_routers(),
            &[
                RouterId(0),
                RouterId(7500),
                RouterId(15000),
                RouterId(22500)
            ]
        );
    }

    #[test]
    fn ring_hops_is_shorter_way_around() {
        let r = Ring::new(7, &[]);
        assert_eq!(r.hops(RouterId(0), RouterId(3)), 3);
        assert_eq!(r.hops(RouterId(0), RouterId(4)), 3); // west is shorter
        assert_eq!(r.hops(RouterId(6), RouterId(0)), 1);
        assert_eq!(r.hops(RouterId(2), RouterId(2)), 0);
    }

    #[test]
    fn diameters_and_windows() {
        let mesh: Topology = Mesh::square_with_corner_mcs(6).into();
        let torus: Topology = Torus::square_with_corner_mcs(6).into();
        let ring: Topology = Ring::with_spread_mcs(36, 4).into();
        assert_eq!(mesh.diameter(), 10);
        assert_eq!(torus.diameter(), 6);
        assert_eq!(ring.diameter(), 18);
        // Mesh window matches the historical cols + rows + 1 formula.
        assert_eq!(mesh.notification_window(), 13);
        assert_eq!(torus.notification_window(), 9);
        assert_eq!(ring.notification_window(), 21);
        assert!(!mesh.has_datelines());
        assert!(torus.has_datelines());
        assert!(ring.has_datelines());
    }

    #[test]
    fn wrap_links_sit_on_the_edges() {
        let t = Torus::new(4, 4, &[]);
        assert!(t.wrap_link(RouterId(3), Port::East));
        assert!(t.wrap_link(RouterId(0), Port::West));
        assert!(t.wrap_link(RouterId(12), Port::South));
        assert!(t.wrap_link(RouterId(0), Port::North));
        assert!(!t.wrap_link(RouterId(1), Port::East));
        let r = Ring::new(5, &[]);
        assert!(r.wrap_link(RouterId(4), Port::East));
        assert!(r.wrap_link(RouterId(0), Port::West));
        assert!(!r.wrap_link(RouterId(2), Port::East));
    }

    // Dateline classes along any unicast walk must be monotone 0 → 1
    // within each dimension: once a flit switches to the class-1
    // partition it never goes back, which is the acyclicity argument.
    #[test]
    fn torus_unicast_classes_are_monotone_per_dimension() {
        let topo: Topology = Torus::new(5, 4, &[]).into();
        for a in topo.routers() {
            for b in topo.routers() {
                let dest = Endpoint::tile(b);
                let mut here = a;
                let mut last: Option<(Port, bool)> = None;
                loop {
                    let (port, class) = topo.unicast_hop(here, dest);
                    if port.is_local() {
                        break;
                    }
                    if let Some((lp, lc)) = last {
                        let same_dim = matches!(
                            (lp, port),
                            (Port::East | Port::West, Port::East | Port::West)
                                | (Port::North | Port::South, Port::North | Port::South)
                        );
                        if same_dim {
                            assert!(lc <= class, "class fell back 1->0 at {here} ({a}->{b})");
                        }
                    }
                    last = Some((port, class));
                    here = topo.neighbor(here, port).unwrap();
                }
            }
        }
    }

    #[test]
    fn ring_unicast_classes_flip_exactly_at_the_dateline() {
        let topo: Topology = Ring::new(6, &[]).into();
        // 4 -> 1 goes east through the 5 -> 0 wrap: class 0 before, 1 after.
        let dest = Endpoint::tile(RouterId(1));
        let (p0, c0) = topo.unicast_hop(RouterId(4), dest);
        assert_eq!((p0, c0), (Port::East, false));
        let (p1, c1) = topo.unicast_hop(RouterId(5), dest);
        assert_eq!((p1, c1), (Port::East, true));
        let (p2, c2) = topo.unicast_hop(RouterId(0), dest);
        assert_eq!((p2, c2), (Port::East, true));
    }

    #[test]
    fn topology_names_and_labels() {
        let mesh: Topology = Mesh::square_with_corner_mcs(4).into();
        let torus: Topology = Torus::square_with_corner_mcs(4).into();
        let ring: Topology = Ring::with_spread_mcs(16, 4).into();
        assert_eq!((mesh.name(), mesh.label().as_str()), ("mesh", "4x4"));
        assert_eq!(
            (torus.name(), torus.label().as_str()),
            ("torus", "torus4x4")
        );
        assert_eq!((ring.name(), ring.label().as_str()), ("ring", "ring16"));
        // Debug transparency: the enum renders as the inner struct, which
        // is what keeps pre-topology SystemConfig hashes valid.
        assert_eq!(
            format!("{mesh:?}"),
            format!("{:?}", Mesh::square_with_corner_mcs(4))
        );
    }

    #[test]
    fn endpoint_index_is_dense_over_any_topology() {
        for topo in [
            Topology::from(Mesh::square_with_corner_mcs(4)),
            Topology::from(Torus::square_with_corner_mcs(4)),
            Topology::from(Ring::with_spread_mcs(16, 4)),
        ] {
            for (i, ep) in topo.endpoints().enumerate() {
                assert_eq!(topo.endpoint_index(ep), i, "{}", topo.label());
            }
        }
    }
}
