//! Mesh topology: routers, coordinates, ports and endpoints.

use std::fmt;

/// Identifies a router in the mesh by linear index (row-major).
///
/// In the 36-core SCORPIO chip this is also the tile number (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u16);

impl RouterId {
    /// The linear index as `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A mesh coordinate: `x` grows eastward, `y` grows southward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..cols`, west to east.
    pub x: u16,
    /// Row, `0..rows`, north to south.
    pub y: u16,
}

/// One of the (up to) six ports of a SCORPIO router.
///
/// The four cardinal ports connect to neighbouring routers; `Tile` connects
/// to the tile's network interface controller, and `Mc` is the extra local
/// port present on the four edge routers that host a memory-controller
/// attachment (Section 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Toward the router at `y - 1`.
    North,
    /// Toward the router at `y + 1`.
    South,
    /// Toward the router at `x + 1`.
    East,
    /// Toward the router at `x - 1`.
    West,
    /// The tile-NIC local port.
    Tile,
    /// The memory-controller local port (only on MC-hosting routers).
    Mc,
}

impl Port {
    /// Number of distinct ports.
    pub const COUNT: usize = 6;

    /// All ports, in index order.
    pub const ALL: [Port; Port::COUNT] = [
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::Tile,
        Port::Mc,
    ];

    /// Dense index in `0..Port::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Tile => 4,
            Port::Mc => 5,
        }
    }

    /// The port a neighbouring router receives this router's output on.
    ///
    /// # Panics
    ///
    /// Panics for the local ports `Tile` and `Mc`, which have no opposite.
    #[inline]
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::South => Port::North,
            Port::East => Port::West,
            Port::West => Port::East,
            Port::Tile | Port::Mc => panic!("local ports have no opposite"),
        }
    }

    /// Whether this is one of the two local (non-mesh) ports.
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, Port::Tile | Port::Mc)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::North => "N",
            Port::South => "S",
            Port::East => "E",
            Port::West => "W",
            Port::Tile => "tile",
            Port::Mc => "mc",
        };
        f.write_str(s)
    }
}

/// A set of [`Port`]s, stored as a bitmask.
///
/// Used for multicast output sets: a broadcast flit forks through several
/// output ports in a single cycle (Section 3.2, "single-cycle broadcast
/// optimization").
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Port, PortMask};
///
/// let mut m = PortMask::EMPTY;
/// m.insert(Port::East);
/// m.insert(Port::Tile);
/// assert!(m.contains(Port::East));
/// assert_eq!(m.len(), 2);
/// m.remove(Port::East);
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![Port::Tile]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortMask(u8);

impl PortMask {
    /// The empty set.
    pub const EMPTY: PortMask = PortMask(0);

    /// A set containing a single port.
    #[inline]
    pub fn single(port: Port) -> PortMask {
        PortMask(1 << port.index())
    }

    /// Adds `port` to the set.
    #[inline]
    pub fn insert(&mut self, port: Port) {
        self.0 |= 1 << port.index();
    }

    /// Removes `port` from the set.
    #[inline]
    pub fn remove(&mut self, port: Port) {
        self.0 &= !(1 << port.index());
    }

    /// Whether `port` is in the set.
    #[inline]
    pub fn contains(self, port: Port) -> bool {
        self.0 & (1 << port.index()) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of ports in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the ports in the set in index order.
    pub fn iter(self) -> impl Iterator<Item = Port> {
        Port::ALL.into_iter().filter(move |p| self.contains(*p))
    }
}

/// Which local attachment of a router an endpoint refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocalSlot {
    /// The tile NIC (core + caches).
    Tile,
    /// The memory-controller NIC.
    Mc,
}

impl LocalSlot {
    /// The router output port that reaches this slot.
    #[inline]
    pub fn port(self) -> Port {
        match self {
            LocalSlot::Tile => Port::Tile,
            LocalSlot::Mc => Port::Mc,
        }
    }
}

/// A network endpoint: a (router, local slot) pair.
///
/// Tiles and memory-controller ports are both endpoints; coherence-request
/// broadcasts are delivered to every endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The router this endpoint attaches to.
    pub router: RouterId,
    /// Which local port of the router.
    pub slot: LocalSlot,
}

impl Endpoint {
    /// The tile endpoint of router `r`.
    pub fn tile(r: RouterId) -> Endpoint {
        Endpoint {
            router: r,
            slot: LocalSlot::Tile,
        }
    }

    /// The memory-controller endpoint of router `r`.
    pub fn mc(r: RouterId) -> Endpoint {
        Endpoint {
            router: r,
            slot: LocalSlot::Mc,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.slot {
            LocalSlot::Tile => write!(f, "tile@{}", self.router),
            LocalSlot::Mc => write!(f, "mc@{}", self.router),
        }
    }
}

/// A 2-D mesh: dimensions plus the set of routers hosting MC ports.
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Mesh, RouterId};
///
/// let mesh = Mesh::new(6, 6, &[RouterId(0), RouterId(5), RouterId(30), RouterId(35)]);
/// assert_eq!(mesh.router_count(), 36);
/// let c = mesh.coord(RouterId(7));
/// assert_eq!((c.x, c.y), (1, 1));
/// assert!(mesh.has_mc(RouterId(5)));
/// assert_eq!(mesh.endpoints().count(), 40); // 36 tiles + 4 MC ports
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    cols: u16,
    rows: u16,
    mc_routers: Vec<RouterId>,
}

impl Mesh {
    /// Creates a `cols × rows` mesh with MC ports on `mc_routers`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, if an MC router is out of range,
    /// or if the same router is listed twice.
    pub fn new(cols: u16, rows: u16, mc_routers: &[RouterId]) -> Mesh {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        let count = cols as usize * rows as usize;
        let mut sorted = mc_routers.to_vec();
        sorted.sort();
        for pair in sorted.windows(2) {
            assert!(pair[0] != pair[1], "duplicate MC router {}", pair[0]);
        }
        for r in &sorted {
            assert!(r.index() < count, "MC router {} out of range", r);
        }
        Mesh {
            cols,
            rows,
            mc_routers: sorted,
        }
    }

    /// The SCORPIO 36-core chip arrangement: 6×6 mesh, two dual-port memory
    /// controllers attached to the four corner routers.
    pub fn scorpio_chip() -> Mesh {
        Mesh::new(
            6,
            6,
            &[RouterId(0), RouterId(5), RouterId(30), RouterId(35)],
        )
    }

    /// A square `k × k` mesh with MC ports on the four corners.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn square_with_corner_mcs(k: u16) -> Mesh {
        assert!(k > 0, "mesh dimension must be non-zero");
        if k == 1 {
            return Mesh::new(1, 1, &[RouterId(0)]);
        }
        let corners = [
            RouterId(0),
            RouterId(k - 1),
            RouterId(k * (k - 1)),
            RouterId(k * k - 1),
        ];
        Mesh::new(k, k, &corners)
    }

    /// A square `k × k` mesh with memory-controller ports scaled to the
    /// core count: one MC per 16 tiles (at least the chip's 4), spread
    /// evenly along the perimeter. Four corner MCs serve 36 cores fine,
    /// but at 16×16 they would starve 256 cores of memory bandwidth and
    /// melt the corner routers; the paper's scaling argument (Section 5.3)
    /// assumes bandwidth grows with the machine. For `k ≤ 8` the placement
    /// coincides with [`Mesh::square_with_corner_mcs`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn square_with_proportional_mcs(k: u16) -> Mesh {
        assert!(k > 0, "mesh dimension must be non-zero");
        if k == 1 {
            return Mesh::new(1, 1, &[RouterId(0)]);
        }
        // Perimeter routers in clockwise order from the north-west corner;
        // evenly spaced picks land on the four corners when n == 4.
        let last = k - 1;
        let mut perimeter: Vec<RouterId> = Vec::with_capacity(4 * (k as usize - 1));
        for x in 0..last {
            perimeter.push(RouterId(x)); // north edge, west → east
        }
        for y in 0..last {
            perimeter.push(RouterId(y * k + last)); // east edge, north → south
        }
        for x in 0..last {
            perimeter.push(RouterId(k * last + (last - x))); // south edge, east → west
        }
        for y in 0..last {
            perimeter.push(RouterId((last - y) * k)); // west edge, south → north
        }
        let n = (k as usize * k as usize / 16).max(4).min(perimeter.len());
        let mcs: Vec<RouterId> = (0..n).map(|i| perimeter[i * perimeter.len() / n]).collect();
        Mesh::new(k, k, &mcs)
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total number of routers (== tiles).
    pub fn router_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// The routers hosting memory-controller ports, in ascending order.
    pub fn mc_routers(&self) -> &[RouterId] {
        &self.mc_routers
    }

    /// Whether `r` hosts a memory-controller port.
    pub fn has_mc(&self, r: RouterId) -> bool {
        self.mc_routers.binary_search(&r).is_ok()
    }

    /// The coordinate of router `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn coord(&self, r: RouterId) -> Coord {
        assert!(r.index() < self.router_count(), "router {} out of range", r);
        Coord {
            x: r.0 % self.cols,
            y: r.0 / self.cols,
        }
    }

    /// The router at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn router_at(&self, c: Coord) -> RouterId {
        assert!(c.x < self.cols && c.y < self.rows, "coord out of range");
        RouterId(c.y * self.cols + c.x)
    }

    /// The neighbour of `r` through `port`, if that port faces into the mesh.
    pub fn neighbor(&self, r: RouterId, port: Port) -> Option<RouterId> {
        let c = self.coord(r);
        let n = match port {
            Port::North if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            Port::South if c.y + 1 < self.rows => Coord { x: c.x, y: c.y + 1 },
            Port::East if c.x + 1 < self.cols => Coord { x: c.x + 1, y: c.y },
            Port::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            _ => return None,
        };
        Some(self.router_at(n))
    }

    /// Manhattan hop distance between two routers.
    pub fn hops(&self, a: RouterId, b: RouterId) -> u16 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// Iterates over every router id.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.router_count() as u16).map(RouterId)
    }

    /// Iterates over every endpoint: all tiles, then all MC ports.
    pub fn endpoints(&self) -> impl Iterator<Item = Endpoint> + '_ {
        self.routers()
            .map(Endpoint::tile)
            .chain(self.mc_routers.iter().copied().map(Endpoint::mc))
    }

    /// The default notification-network time window for this mesh:
    /// worst-case X traversal + worst-case Y traversal + one merge cycle.
    ///
    /// For the 6×6 chip this is 13 cycles, matching Table 1.
    pub fn notification_window(&self) -> u64 {
        (self.cols as u64 - 1) + (self.rows as u64 - 1) + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip() {
        let mesh = Mesh::new(6, 6, &[]);
        for r in mesh.routers() {
            assert_eq!(mesh.router_at(mesh.coord(r)), r);
        }
    }

    #[test]
    fn neighbors_of_center_and_corner() {
        let mesh = Mesh::new(6, 6, &[]);
        let center = mesh.router_at(Coord { x: 2, y: 2 });
        assert_eq!(
            mesh.neighbor(center, Port::North),
            Some(mesh.router_at(Coord { x: 2, y: 1 }))
        );
        assert_eq!(
            mesh.neighbor(center, Port::South),
            Some(mesh.router_at(Coord { x: 2, y: 3 }))
        );
        assert_eq!(
            mesh.neighbor(center, Port::East),
            Some(mesh.router_at(Coord { x: 3, y: 2 }))
        );
        assert_eq!(
            mesh.neighbor(center, Port::West),
            Some(mesh.router_at(Coord { x: 1, y: 2 }))
        );

        let nw_corner = RouterId(0);
        assert_eq!(mesh.neighbor(nw_corner, Port::North), None);
        assert_eq!(mesh.neighbor(nw_corner, Port::West), None);
        assert!(mesh.neighbor(nw_corner, Port::East).is_some());
        assert!(mesh.neighbor(nw_corner, Port::South).is_some());
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let mesh = Mesh::new(4, 3, &[]);
        for r in mesh.routers() {
            for port in [Port::North, Port::South, Port::East, Port::West] {
                if let Some(n) = mesh.neighbor(r, port) {
                    assert_eq!(mesh.neighbor(n, port.opposite()), Some(r));
                }
            }
        }
    }

    #[test]
    fn hops_is_manhattan() {
        let mesh = Mesh::new(6, 6, &[]);
        assert_eq!(mesh.hops(RouterId(0), RouterId(35)), 10);
        assert_eq!(mesh.hops(RouterId(7), RouterId(7)), 0);
        assert_eq!(mesh.hops(RouterId(0), RouterId(5)), 5);
    }

    #[test]
    fn scorpio_chip_shape() {
        let mesh = Mesh::scorpio_chip();
        assert_eq!(mesh.router_count(), 36);
        assert_eq!(mesh.mc_routers().len(), 4);
        assert_eq!(mesh.notification_window(), 13);
        assert!(mesh.has_mc(RouterId(0)));
        assert!(!mesh.has_mc(RouterId(1)));
    }

    #[test]
    fn window_scales_with_mesh() {
        assert_eq!(Mesh::new(8, 8, &[]).notification_window(), 17);
        assert_eq!(Mesh::new(10, 10, &[]).notification_window(), 21);
        assert_eq!(Mesh::new(4, 4, &[]).notification_window(), 9);
    }

    #[test]
    fn endpoints_cover_tiles_and_mcs() {
        let mesh = Mesh::scorpio_chip();
        let eps: Vec<_> = mesh.endpoints().collect();
        assert_eq!(eps.len(), 40);
        assert_eq!(eps.iter().filter(|e| e.slot == LocalSlot::Mc).count(), 4);
    }

    #[test]
    fn port_mask_operations() {
        let mut m = PortMask::EMPTY;
        assert!(m.is_empty());
        m.insert(Port::North);
        m.insert(Port::Mc);
        assert_eq!(m.len(), 2);
        assert!(m.contains(Port::North));
        assert!(!m.contains(Port::South));
        m.remove(Port::North);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![Port::Mc]);
    }

    #[test]
    fn port_opposites() {
        assert_eq!(Port::North.opposite(), Port::South);
        assert_eq!(Port::East.opposite(), Port::West);
        assert!(Port::Tile.is_local());
        assert!(!Port::North.is_local());
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_port_opposite_panics() {
        let _ = Port::Tile.opposite();
    }

    #[test]
    #[should_panic(expected = "duplicate MC router")]
    fn duplicate_mc_panics() {
        let _ = Mesh::new(2, 2, &[RouterId(1), RouterId(1)]);
    }

    #[test]
    fn proportional_mcs_match_corners_on_small_meshes() {
        for k in [2u16, 4, 6, 8] {
            assert_eq!(
                Mesh::square_with_proportional_mcs(k).mc_routers(),
                Mesh::square_with_corner_mcs(k).mc_routers(),
                "k={k}"
            );
        }
        assert_eq!(Mesh::square_with_proportional_mcs(1).mc_routers().len(), 1);
    }

    #[test]
    fn proportional_mcs_scale_with_tiles() {
        // One MC per 16 tiles, on the perimeter, duplicate-free (Mesh::new
        // asserts that), and including the NW corner.
        for (k, expect) in [(12u16, 9usize), (16, 16), (20, 25)] {
            let mesh = Mesh::square_with_proportional_mcs(k);
            assert_eq!(mesh.mc_routers().len(), expect, "k={k}");
            assert!(mesh.has_mc(RouterId(0)));
            for &r in mesh.mc_routers() {
                let c = mesh.coord(r);
                assert!(
                    c.x == 0 || c.y == 0 || c.x == k - 1 || c.y == k - 1,
                    "MC {r} not on the perimeter of {k}x{k}"
                );
            }
        }
    }

    #[test]
    fn square_with_corner_mcs_small() {
        let m1 = Mesh::square_with_corner_mcs(1);
        assert_eq!(m1.mc_routers().len(), 1);
        let m4 = Mesh::square_with_corner_mcs(4);
        assert_eq!(
            m4.mc_routers(),
            &[RouterId(0), RouterId(3), RouterId(12), RouterId(15)]
        );
    }
}
