//! Packets, flits and virtual-network identifiers.

use crate::topology::Endpoint;
use scorpio_sim::Cycle;
use std::fmt;

/// Marker for types that can travel as packet payloads.
///
/// Payloads are small `Copy` values (a coherence message is a few dozen
/// bytes); broadcast forking clones the payload per branch, so cheap copies
/// matter. Blanket-implemented for every eligible type.
pub trait Payload: Copy + fmt::Debug + 'static {}

impl<T: Copy + fmt::Debug + 'static> Payload for T {}

/// Identifies a virtual network (message class) within the main network.
///
/// SCORPIO uses two (Section 3.2): [`VnetId::GO_REQ`] for globally ordered
/// broadcast requests and [`VnetId::UO_RESP`] for unordered responses. The
/// directory baselines run three unordered classes (request / forward /
/// response) on the same router fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VnetId(pub u8);

impl VnetId {
    /// The globally-ordered request class in the SCORPIO configuration.
    pub const GO_REQ: VnetId = VnetId(0);
    /// The unordered response class in the SCORPIO configuration.
    pub const UO_RESP: VnetId = VnetId(1);

    /// Dense index for array lookup.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VnetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vnet{}", self.0)
    }
}

/// Source identifier of an ordered request: the index of the injecting tile.
///
/// Requests on the GO-REQ virtual network are identified (and point-to-point
/// ordered) by SID alone; the notification network establishes the global
/// order among SIDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sid(pub u16);

impl Sid {
    /// The SID as a `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sid{}", self.0)
    }
}

/// Where a packet is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// A single endpoint (UO-RESP traffic, directory-protocol requests).
    Unicast(Endpoint),
    /// Every endpoint except the source tile, which self-delivers through
    /// its NIC loopback (GO-REQ coherence requests).
    Broadcast,
}

/// A packet: the unit of transfer the NIC composes and parses.
///
/// Control packets are a single flit; data packets carry a cache line and
/// span `len_flits` flits depending on the channel width (Table 1: 1-flit
/// control, 3-flit data at 16-byte channels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet<T> {
    /// Virtual network this packet travels on.
    pub vnet: VnetId,
    /// Injecting endpoint.
    pub src: Endpoint,
    /// Destination.
    pub dest: Dest,
    /// Source id, present on every ordered request.
    pub sid: Option<Sid>,
    /// Per-source request sequence number (the chip's "request entry ID").
    /// Reserved-VC eligibility matches on (SID, seq) so a *later* request
    /// from the same source can never squat in an rVC meant for the
    /// globally expected one.
    pub sid_seq: u16,
    /// Total flits in this packet (≥ 1).
    pub len_flits: u8,
    /// Cycle at which the packet entered the NIC injection queue.
    pub inject_cycle: Cycle,
    /// Unique id for tracking/debug; assigned by the network at injection.
    pub uid: u64,
    /// Opaque payload, carried on the head flit.
    pub payload: T,
}

impl<T: Payload> Packet<T> {
    /// Builds a single-flit broadcast request on GO-REQ. `seq` is the
    /// per-source request sequence number.
    pub fn request(src: Endpoint, sid: Sid, seq: u16, payload: T) -> Packet<T> {
        Packet {
            vnet: VnetId::GO_REQ,
            src,
            dest: Dest::Broadcast,
            sid: Some(sid),
            sid_seq: seq,
            len_flits: 1,
            inject_cycle: Cycle::ZERO,
            uid: 0,
            payload,
        }
    }

    /// Builds a unicast response on UO-RESP spanning `len_flits` flits.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero.
    pub fn response(src: Endpoint, dest: Endpoint, len_flits: u8, payload: T) -> Packet<T> {
        Packet::unicast(VnetId::UO_RESP, src, dest, len_flits, payload)
    }

    /// Builds a unicast packet on an arbitrary virtual network (used by the
    /// directory baselines for requests and forwards).
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero.
    pub fn unicast(
        vnet: VnetId,
        src: Endpoint,
        dest: Endpoint,
        len_flits: u8,
        payload: T,
    ) -> Packet<T> {
        assert!(len_flits >= 1, "a packet has at least one flit");
        Packet {
            vnet,
            src,
            dest: Dest::Unicast(dest),
            sid: None,
            sid_seq: 0,
            len_flits,
            inject_cycle: Cycle::ZERO,
            uid: 0,
            payload,
        }
    }

    /// Builds a single-flit *unordered* broadcast (TokenB / INSO baselines:
    /// snoop broadcasts without the notification network).
    pub fn broadcast_unordered(vnet: VnetId, src: Endpoint, payload: T) -> Packet<T> {
        Packet {
            vnet,
            src,
            dest: Dest::Broadcast,
            sid: None,
            sid_seq: 0,
            len_flits: 1,
            inject_cycle: Cycle::ZERO,
            uid: 0,
            payload,
        }
    }
}

/// A flit: the unit of flow control in the main network.
///
/// Each flit carries its whole packet by value (payloads are tiny `Copy`
/// structs), so body flits are self-describing and broadcast forks are
/// plain copies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flit<T> {
    /// The packet this flit belongs to.
    pub packet: Packet<T>,
    /// Position within the packet, `0..len_flits`.
    pub idx: u8,
}

impl<T: Payload> Flit<T> {
    /// The flits of `packet`, head first.
    pub fn of_packet(packet: Packet<T>) -> impl Iterator<Item = Flit<T>> {
        (0..packet.len_flits).map(move |idx| Flit { packet, idx })
    }

    /// Whether this is the head flit.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.idx == 0
    }

    /// Whether this is the tail flit (single-flit packets are both).
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.idx + 1 == self.packet.len_flits
    }

    /// Whether the packet consists of a single flit (eligible for lookahead
    /// bypassing).
    #[inline]
    pub fn is_single(&self) -> bool {
        self.packet.len_flits == 1
    }
}

/// Computes the number of flits in a cache-line data packet for a given
/// channel width, per the paper's design exploration (Section 5.2):
/// 8-byte channels need 5 flits, 16-byte need 3, 32-byte need 2.
///
/// The model is an 8-byte header plus the cache line, divided across
/// channel-width flits.
///
/// # Panics
///
/// Panics if `channel_bytes` is zero.
///
/// # Examples
///
/// ```
/// use scorpio_noc::data_packet_flits;
///
/// assert_eq!(data_packet_flits(8, 32), 5);
/// assert_eq!(data_packet_flits(16, 32), 3);
/// assert_eq!(data_packet_flits(32, 32), 2);
/// ```
pub fn data_packet_flits(channel_bytes: u32, line_bytes: u32) -> u8 {
    assert!(channel_bytes > 0, "channel width must be non-zero");
    const HEADER_BYTES: u32 = 8;
    let total = HEADER_BYTES + line_bytes;
    total.div_ceil(channel_bytes) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::RouterId;

    fn ep(r: u16) -> Endpoint {
        Endpoint::tile(RouterId(r))
    }

    #[test]
    fn request_is_single_flit_broadcast() {
        let p = Packet::request(ep(3), Sid(3), 0, 0u32);
        assert_eq!(p.vnet, VnetId::GO_REQ);
        assert_eq!(p.dest, Dest::Broadcast);
        assert_eq!(p.len_flits, 1);
        assert_eq!(p.sid, Some(Sid(3)));
    }

    #[test]
    fn response_is_unicast() {
        let p = Packet::response(ep(1), ep(2), 3, 9u32);
        assert_eq!(p.vnet, VnetId::UO_RESP);
        assert_eq!(p.dest, Dest::Unicast(ep(2)));
        assert_eq!(p.sid, None);
    }

    #[test]
    fn unordered_broadcast_has_no_sid() {
        let p = Packet::broadcast_unordered(VnetId(0), ep(1), ());
        assert_eq!(p.dest, Dest::Broadcast);
        assert_eq!(p.sid, None);
        assert_eq!(p.len_flits, 1);
    }

    #[test]
    fn flit_head_tail_flags() {
        let p = Packet::response(ep(0), ep(1), 3, ());
        let flits: Vec<_> = Flit::of_packet(p).collect();
        assert_eq!(flits.len(), 3);
        assert!(flits[0].is_head() && !flits[0].is_tail());
        assert!(!flits[1].is_head() && !flits[1].is_tail());
        assert!(!flits[2].is_head() && flits[2].is_tail());
        assert!(!flits[0].is_single());

        let single = Packet::request(ep(0), Sid(0), 0, ());
        let only: Vec<_> = Flit::of_packet(single).collect();
        assert!(only[0].is_head() && only[0].is_tail() && only[0].is_single());
    }

    #[test]
    fn data_flit_counts_match_paper() {
        assert_eq!(data_packet_flits(8, 32), 5);
        assert_eq!(data_packet_flits(16, 32), 3);
        assert_eq!(data_packet_flits(32, 32), 2);
        // 137-bit (~17-byte) channel of the actual chip: 3 flits as well.
        assert_eq!(data_packet_flits(17, 32), 3);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_response_panics() {
        let _ = Packet::response(ep(0), ep(1), 0, ());
    }

    #[test]
    fn vnet_constants() {
        assert_eq!(VnetId::GO_REQ.index(), 0);
        assert_eq!(VnetId::UO_RESP.index(), 1);
        assert_eq!(VnetId(3).to_string(), "vnet3");
    }
}
