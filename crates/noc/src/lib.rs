//! The SCORPIO main network: a NoC with virtual-channel routers, lookahead
//! bypassing, single-cycle multicast and reserved-VC deadlock avoidance
//! (Section 3.2 of the paper), delivered over a swappable [`Topology`] —
//! the chip's 2-D [`Mesh`], a wraparound [`Torus`], or a bidirectional
//! [`Ring`].
//!
//! The main network is *unordered*: it broadcasts coherence requests and
//! delivers responses with no global ordering guarantee. Global ordering is
//! established separately by the notification network (`scorpio-notify`)
//! and enforced at the network interface controllers (`scorpio-nic`);
//! this crate provides the hooks they need — per-endpoint ESID publication
//! ([`Network::set_esid`]) for reserved-VC policing, and VC-addressed
//! ejection ([`Network::eject_heads`] / [`Network::eject_take`]) so the NIC
//! can pull requests out of its buffers in the globally decided order.
//! Because ordering is decoupled from delivery — the paper's central idea —
//! any fabric that broadcasts to every endpoint exactly once can carry the
//! ordered protocol; each topology's routing spec is compiled into
//! per-router lookup tables at construction, so the per-flit hot path never
//! runs coordinate arithmetic (`tables.rs`).
//!
//! # Examples
//!
//! Broadcasting a request across a 4×4 mesh:
//!
//! ```
//! use scorpio_noc::{Endpoint, Mesh, Network, NocConfig, Packet, RouterId, Sid};
//!
//! let mesh = Mesh::square_with_corner_mcs(4);
//! let mut net: Network<u32> = Network::new(mesh, NocConfig::scorpio());
//! let src = Endpoint::tile(RouterId(0));
//! let uid = net.try_inject(src, Packet::request(src, Sid(0), 0, 0xBEEF))?;
//! while !net.is_drained() {
//!     // Consume everything that arrives, at every endpoint.
//!     let eps: Vec<_> = net.mesh().endpoints().collect();
//!     for ep in eps {
//!         let slots: Vec<_> = net.eject_heads(ep).map(|(s, _)| s).collect();
//!         for slot in slots {
//!             net.eject_take(ep, slot);
//!         }
//!     }
//!     net.step();
//! }
//! // 15 other tiles + 4 MC ports heard the broadcast.
//! assert_eq!(net.deliveries(uid), 19);
//! # Ok::<(), scorpio_sim::PushError<scorpio_noc::Packet<u32>>>(())
//! ```

// Unsafe is denied crate-wide and re-allowed only in the two modules that
// implement intra-run parallelism (`pool`, and the disjoint-shard tick in
// `network`); everything else stays effectively forbid-level.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod config;
mod flit;
mod network;
pub mod obs;
pub mod planes;
pub mod pool;
mod router;
pub mod routing;
mod tables;
mod topology;

pub use arbiter::RotatingArbiter;
pub use config::{NocConfig, VnetCfg};
pub use flit::{data_packet_flits, Dest, Flit, Packet, Payload, Sid, VnetId};
pub use network::{EjectSlot, Network, NocStats};
pub use obs::{merge_trace, NetObs, ObsConfig, TraceEvent, TraceKind, WindowCell};
pub use planes::{MultiNetwork, PlaneSteer, SteerKey};
pub use pool::TickPool;
pub use router::RouterStats;
pub use topology::{
    CMesh, Coord, Endpoint, LocalSlot, Mesh, Port, PortMask, Ring, RouterId, Topology, Torus,
};
