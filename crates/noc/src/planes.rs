//! Multiple main networks: address-interleaved parallel delivery planes.
//!
//! Section 5.3's "cheaper fix" for the mesh broadcast bound: a `k × k`
//! fabric cannot deliver more than one broadcast flit per node per cycle,
//! so per-node broadcast throughput falls as 1/k². Instead of ever more
//! VCs (which only approach that bound), the main network is *replicated*:
//! [`MultiNetwork`] owns N parallel [`Network`] instances — each with its
//! own routers, tables, VC state and active sets — and a deterministic
//! [`PlaneSteer`] function that maps every line address to exactly one
//! plane. Per-address total order is preserved (all requests for a line
//! travel, announce and deliver on that line's plane), which is all snoopy
//! coherence needs; aggregate bandwidth multiplies by the plane count.
//!
//! A [`MultiNetwork`] with one plane *is* the single-network engine: every
//! call delegates straight through and reports are byte-identical (the
//! engine-equivalence suite asserts this). Planes whose active sets are
//! empty — no woken router or injection port, no in-flight wire traffic —
//! are skipped entirely each cycle except for their clock advance, so idle
//! planes cost O(1).

use crate::config::NocConfig;
use crate::flit::{Packet, Payload, Sid};
use crate::network::{EjectSlot, Network, NocStats};
use crate::pool::TickPool;
use crate::topology::{Endpoint, Topology};
use scorpio_sim::{Cycle, PushError};
use std::num::NonZeroUsize;

/// Raw pointer to the plane array for the parallel plane tick. Each pool
/// job dereferences a *distinct* plane index, so the jobs hold disjoint
/// `&mut Network<T>`s.
struct PlanePtr<T>(*mut Network<T>);

// SAFETY: jobs access disjoint planes (distinct indices from a deduped
// live list); `T: Send` makes handing a plane to another thread sound.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for PlanePtr<T> {}

/// Types that expose the address key the plane steering function
/// interleaves on. Implemented by the coherence message (its line address)
/// and by the integer payloads the NoC-level tests use.
pub trait SteerKey {
    /// The 64-bit key (a line address) that selects this payload's plane.
    fn steer_key(&self) -> u64;
}

impl SteerKey for u64 {
    fn steer_key(&self) -> u64 {
        *self
    }
}

impl SteerKey for u32 {
    fn steer_key(&self) -> u64 {
        *self as u64
    }
}

impl SteerKey for () {
    fn steer_key(&self) -> u64 {
        0
    }
}

impl SteerKey for &'static str {
    fn steer_key(&self) -> u64 {
        self.len() as u64
    }
}

/// The deterministic address → plane steering function.
///
/// Addresses are striped over the planes at a configurable granularity:
/// plane = (addr >> interleave_log2) mod planes. Every address maps to
/// exactly one plane (the partition property the steering invariant rests
/// on), all nodes compute the same mapping with no communication, and
/// `planes == 1` maps everything to plane 0.
///
/// # Examples
///
/// ```
/// use scorpio_noc::PlaneSteer;
/// use std::num::NonZeroUsize;
///
/// let s = PlaneSteer::new(NonZeroUsize::new(4).unwrap(), 0);
/// assert_eq!(s.plane_of(0), 0);
/// assert_eq!(s.plane_of(5), 1);
/// // Coarser stripes: 4 consecutive lines share a plane.
/// let coarse = PlaneSteer::new(NonZeroUsize::new(2).unwrap(), 2);
/// assert_eq!(coarse.plane_of(3), 0);
/// assert_eq!(coarse.plane_of(4), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaneSteer {
    planes: NonZeroUsize,
    interleave_log2: u32,
}

impl PlaneSteer {
    /// A steering function over `planes` planes, striping addresses in
    /// blocks of `2^interleave_log2` lines.
    ///
    /// # Panics
    ///
    /// Panics if `interleave_log2 >= 64` (the shift would be undefined).
    pub fn new(planes: NonZeroUsize, interleave_log2: u32) -> PlaneSteer {
        assert!(interleave_log2 < 64, "interleave shift out of range");
        PlaneSteer {
            planes,
            interleave_log2,
        }
    }

    /// Number of planes addresses are striped over.
    pub fn planes(&self) -> usize {
        self.planes.get()
    }

    /// The stripe granularity exponent (lines per stripe = `2^this`).
    pub fn interleave_log2(&self) -> u32 {
        self.interleave_log2
    }

    /// The plane carrying address `addr`. Total and deterministic: every
    /// address belongs to exactly one plane.
    #[inline]
    pub fn plane_of(&self, addr: u64) -> usize {
        ((addr >> self.interleave_log2) % self.planes.get() as u64) as usize
    }
}

/// N parallel main networks behind the single-network delivery interface.
///
/// All planes share one topology, one configuration and one clock; each
/// plane owns its routers, tables, VC/credit state, ESID views and active
/// sets. Packets are steered by their payload's [`SteerKey`] so that all
/// traffic for a given line travels on that line's plane.
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Endpoint, Mesh, MultiNetwork, NocConfig, Packet, RouterId, Sid};
/// use std::num::NonZeroUsize;
///
/// let mesh = Mesh::square_with_corner_mcs(4);
/// let mut net: MultiNetwork<u64> =
///     MultiNetwork::new(mesh, NocConfig::scorpio(), NonZeroUsize::new(2).unwrap(), 0);
/// let src = Endpoint::tile(RouterId(0));
/// // Payload 7 is odd: the request travels on plane 1.
/// net.try_inject(src, Packet::request(src, Sid(0), 0, 7)).unwrap();
/// assert_eq!(net.inject_backlog_plane(1, src), 1);
/// for _ in 0..100 {
///     net.tick();
///     net.commit();
/// }
/// let far = Endpoint::tile(RouterId(15));
/// assert!(net.eject_heads_plane(1, far).next().is_some());
/// assert!(net.eject_heads_plane(0, far).next().is_none());
/// ```
pub struct MultiNetwork<T> {
    planes: Vec<Network<T>>,
    steer: PlaneSteer,
    /// When set, tick every plane every cycle (the reference engines must
    /// not skip anything).
    always_scan: bool,
    /// Per-plane skip decision of the current tick, consulted by commit.
    skipped: Vec<bool>,
    /// Scratch for merging per-plane woken-endpoint lists.
    woken_scratch: Vec<u32>,
    /// Second merge scratch (the two-pointer merge ping-pongs buffers).
    merge_scratch: Vec<u32>,
    /// Non-quiescent plane indices of the current tick.
    live_scratch: Vec<u32>,
    /// Worker pool for intra-run parallelism (see
    /// [`MultiNetwork::set_workers`]); `None` is the single-thread engine.
    pool: Option<TickPool>,
}

impl<T: Payload + SteerKey> MultiNetwork<T> {
    /// Builds `planes` parallel networks over `fabric` with configuration
    /// `cfg`, striping addresses in blocks of `2^interleave_log2` lines.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation (see [`Network::new`]).
    pub fn new(
        fabric: impl Into<Topology>,
        cfg: NocConfig,
        planes: NonZeroUsize,
        interleave_log2: u32,
    ) -> Self {
        let topology: Topology = fabric.into();
        let nets: Vec<Network<T>> = (0..planes.get())
            .map(|_| Network::new(topology.clone(), cfg.clone()))
            .collect();
        MultiNetwork {
            planes: nets,
            steer: PlaneSteer::new(planes, interleave_log2),
            always_scan: false,
            skipped: vec![false; planes.get()],
            woken_scratch: Vec::new(),
            merge_scratch: Vec::new(),
            live_scratch: Vec::new(),
            pool: None,
        }
    }

    /// Number of parallel planes.
    pub fn plane_count(&self) -> usize {
        self.planes.len()
    }

    /// The steering function in use.
    pub fn steer(&self) -> PlaneSteer {
        self.steer
    }

    /// Plane `p`'s network (read access for stats and tests).
    pub fn plane(&self, p: usize) -> &Network<T> {
        &self.planes[p]
    }

    /// Plane `p`'s network (mutable; tests and the NIC receive path).
    pub fn plane_mut(&mut self, p: usize) -> &mut Network<T> {
        &mut self.planes[p]
    }

    /// The shared topology (identical across planes).
    pub fn topology(&self) -> &Topology {
        self.planes[0].topology()
    }

    /// The shared configuration (identical across planes).
    pub fn config(&self) -> &NocConfig {
        self.planes[0].config()
    }

    /// Current cycle (all planes advance in lockstep).
    pub fn cycle(&self) -> Cycle {
        self.planes[0].cycle()
    }

    /// The dense index of `ep` (identical across planes).
    pub fn endpoint_index(&self, ep: Endpoint) -> usize {
        self.planes[0].endpoint_index(ep)
    }

    /// Queues `packet` at `ep` on the plane selected by its payload's
    /// [`SteerKey`], returning `(plane, uid)`.
    ///
    /// # Errors
    ///
    /// Returns the packet if that plane's injection queue is full.
    pub fn try_inject(
        &mut self,
        ep: Endpoint,
        packet: Packet<T>,
    ) -> Result<(usize, u64), PushError<Packet<T>>> {
        let plane = self.steer.plane_of(packet.payload.steer_key());
        let uid = self.planes[plane].try_inject(ep, packet)?;
        Ok((plane, uid))
    }

    /// The plane the steering function assigns to `key`.
    #[inline]
    pub fn plane_of(&self, key: u64) -> usize {
        self.steer.plane_of(key)
    }

    /// Packets waiting (or mid-send) at `ep`'s injection ports, summed
    /// over planes.
    pub fn inject_backlog(&self, ep: Endpoint) -> usize {
        self.planes.iter().map(|n| n.inject_backlog(ep)).sum()
    }

    /// Packets waiting at `ep`'s injection port on plane `p`.
    pub fn inject_backlog_plane(&self, p: usize, ep: Endpoint) -> usize {
        self.planes[p].inject_backlog(ep)
    }

    /// Whether packet `uid` is still waiting in `ep`'s injection port on
    /// plane `p` (see [`Network::inject_pending`]).
    pub fn inject_pending(&self, p: usize, ep: Endpoint, uid: u64) -> bool {
        self.planes[p].inject_pending(ep, uid)
    }

    /// Publishes `ep`'s expected request instance on plane `p` (takes
    /// effect at that plane's next commit).
    pub fn set_esid(&mut self, p: usize, ep: Endpoint, esid: Option<(Sid, u16)>) {
        self.planes[p].set_esid(ep, esid);
    }

    /// Whether any flit waits in the ejection buffers of endpoint
    /// `ep_idx` on *any* plane.
    pub fn eject_occupied(&self, ep_idx: usize) -> bool {
        self.planes.iter().any(|n| n.eject_occupied(ep_idx))
    }

    /// Head flits waiting at `ep` on plane `p`, one per occupied VC.
    pub fn eject_heads_plane(
        &self,
        p: usize,
        ep: Endpoint,
    ) -> impl Iterator<Item = (EjectSlot, &crate::flit::Flit<T>)> {
        self.planes[p].eject_heads(ep)
    }

    /// Consumes the head flit of `slot` at `ep` on plane `p`.
    pub fn eject_take_plane(
        &mut self,
        p: usize,
        ep: Endpoint,
        slot: EjectSlot,
    ) -> Option<crate::flit::Flit<T>> {
        self.planes[p].eject_take(ep, slot)
    }

    /// Selects the always-scan engine on every plane and disables the
    /// idle-plane skip (the reference engine probes everything).
    pub fn set_always_scan(&mut self, scan: bool) {
        self.always_scan = scan;
        for n in &mut self.planes {
            n.set_always_scan(scan);
        }
    }

    /// Selects table routing (default) or the coordinate-spec reference
    /// engine on every plane.
    pub fn set_table_routing(&mut self, tables: bool) {
        for n in &mut self.planes {
            n.set_table_routing(tables);
        }
    }

    /// Installs (or removes) an observability sink on every plane, each
    /// tagged with its plane index for trace merging. Call before the
    /// first cycle.
    pub fn set_observability(&mut self, cfg: Option<crate::obs::ObsConfig>) {
        for (p, n) in self.planes.iter_mut().enumerate() {
            n.set_observability(p as u16, cfg);
        }
    }

    /// Plane `p`'s observability sink, if installed.
    pub fn obs(&self, p: usize) -> Option<&crate::obs::NetObs> {
        self.planes[p].obs()
    }

    /// Drains every plane's retained trace events into `out` (unsorted —
    /// callers merge on [`crate::obs::TraceEvent::sort_key`]).
    pub fn take_trace(&mut self, out: &mut Vec<Vec<crate::obs::TraceEvent>>) {
        for n in &mut self.planes {
            if let Some(o) = n.obs_mut() {
                out.push(o.take_events());
            }
        }
    }

    /// Drains the merged set of endpoints whose ejection buffers received
    /// flits on any plane (ascending, deduplicated).
    ///
    /// Each plane's list is already sorted and deduplicated, so the merge
    /// is a repeated two-pointer pass over scratch buffers — no per-cycle
    /// sort, no allocation once the scratches have grown to size.
    pub fn take_woken_endpoints(&mut self, out: &mut Vec<u32>) {
        self.planes[0].take_woken_endpoints(out);
        if self.planes.len() == 1 {
            return;
        }
        let mut extra = std::mem::take(&mut self.woken_scratch);
        let mut merged = std::mem::take(&mut self.merge_scratch);
        for n in &mut self.planes[1..] {
            n.take_woken_endpoints(&mut extra);
            if extra.is_empty() {
                continue;
            }
            if out.is_empty() {
                std::mem::swap(out, &mut extra);
                continue;
            }
            merged.clear();
            let (mut i, mut j) = (0, 0);
            while i < out.len() && j < extra.len() {
                match out[i].cmp(&extra[j]) {
                    std::cmp::Ordering::Less => {
                        merged.push(out[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(extra[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(out[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&out[i..]);
            merged.extend_from_slice(&extra[j..]);
            std::mem::swap(out, &mut merged);
        }
        self.woken_scratch = extra;
        self.merge_scratch = merged;
    }

    /// Selects the number of worker lanes for intra-run parallelism.
    /// `workers <= 1` is the single-thread engine (the default); larger
    /// values spawn `workers - 1` pool threads that tick live planes — or,
    /// with a single live plane, disjoint router shards within it — in
    /// parallel behind a deterministic commit. Results are byte-identical
    /// for every worker count (the determinism suite asserts this). The
    /// count is taken literally — callers picking a lane count for wall-
    /// clock benefit should cap it at the host's available parallelism,
    /// since extra lanes can only timeshare (the harness engines do).
    pub fn set_workers(&mut self, workers: usize)
    where
        T: Send,
    {
        self.pool = if workers > 1 {
            Some(TickPool::new(workers - 1))
        } else {
            None
        };
    }

    /// Whether every plane is quiescent (empty active sets, empty wires,
    /// no staged ESID update) — the precondition for [`MultiNetwork::leap`].
    pub fn is_quiescent(&self) -> bool {
        self.planes.iter().all(Network::is_quiescent)
    }

    /// Advances every plane's clock by `delta` cycles without ticking.
    /// Exact only while [`MultiNetwork::is_quiescent`] holds: a quiescent
    /// plane's tick/commit pair is a provable no-op apart from the clock
    /// edge, so `delta` of them collapse to one addition per plane.
    pub fn leap(&mut self, delta: u64) {
        debug_assert!(self.is_quiescent(), "leap over a live network");
        for n in &mut self.planes {
            n.leap(delta);
        }
    }

    /// ORs into `bits` the notification regions touched by the planes that
    /// ticked this cycle. Planes skipped as quiescent are ignored — their
    /// work lists are stale leftovers from their last live cycle — so the
    /// mask reflects only real fabric activity. This is the
    /// delivery-fabric half of the per-region activity mask behind the
    /// per-region leap accounting; see `Network::or_ticked_regions`.
    pub fn or_ticked_regions(
        &self,
        region_of_router: &[u32],
        region_of_ep: &[u32],
        bits: &mut [u64],
    ) {
        for (p, n) in self.planes.iter().enumerate() {
            if !self.skipped[p] {
                n.or_ticked_regions(region_of_router, region_of_ep, bits);
            }
        }
    }

    /// Compute phase of one cycle: ticks only planes with pending work.
    ///
    /// A plane is *quiescent* when its router and injection active sets
    /// are empty, no wire carries in-flight traffic and no ESID update is
    /// staged; ticking such a plane is a provable no-op (empty drains,
    /// empty wire rotations), so it is skipped and only its clock advances
    /// at [`MultiNetwork::commit`]. The skip is exact — the equivalence
    /// suite asserts byte-identical reports against the always-scan
    /// engine, which never skips.
    ///
    /// With a worker pool installed ([`MultiNetwork::set_workers`]), live
    /// planes tick concurrently — each plane is a disjoint unit of state,
    /// and per-plane observability sinks stay disjoint too, so the only
    /// ordering discipline needed is the one [`MultiNetwork::commit`]
    /// already imposes (plane order). A lone live plane instead shards its
    /// router ticks across the pool (see `Network::tick_with_pool`).
    pub fn tick(&mut self)
    where
        T: Send,
    {
        let mut live = std::mem::take(&mut self.live_scratch);
        live.clear();
        for (p, n) in self.planes.iter_mut().enumerate() {
            let skip = !self.always_scan && n.is_quiescent();
            self.skipped[p] = skip;
            if !skip {
                live.push(p as u32);
            }
        }
        match (&self.pool, live.len()) {
            (Some(pool), 2..) => {
                let ptr = PlanePtr(self.planes.as_mut_ptr());
                // Capture the wrapper by reference (not its raw field) so
                // the closure is `Sync` via `PlanePtr`'s impl.
                let ptr = &ptr;
                let live_ref: &[u32] = &live;
                pool.run(live_ref.len(), &|i| {
                    // SAFETY: `live` holds distinct plane indices, so each
                    // job takes a disjoint `&mut Network<T>`.
                    #[allow(unsafe_code)]
                    unsafe {
                        (*ptr.0.add(live_ref[i] as usize)).tick()
                    };
                });
            }
            (Some(pool), 1) => self.planes[live[0] as usize].tick_with_pool(pool),
            _ => {
                for &p in &live {
                    self.planes[p as usize].tick();
                }
            }
        }
        self.live_scratch = live;
    }

    /// Clock edge: commits ticked planes, fast-forwards skipped ones.
    pub fn commit(&mut self) {
        for (p, n) in self.planes.iter_mut().enumerate() {
            if self.skipped[p] {
                n.commit_idle();
            } else {
                n.commit();
            }
        }
    }

    /// Convenience: `tick` + `commit`.
    pub fn step(&mut self)
    where
        T: Send,
    {
        self.tick();
        self.commit();
    }

    /// Whether every plane is fully drained.
    pub fn is_drained(&self) -> bool {
        self.planes.iter().all(Network::is_drained)
    }

    /// The last cycle on which any plane made progress.
    pub fn last_progress(&self) -> Cycle {
        self.planes
            .iter()
            .map(Network::last_progress)
            .max()
            .expect("at least one plane")
    }

    /// Aggregate statistics, merged over every plane.
    pub fn stats(&self) -> NocStats {
        let mut total = self.planes[0].stats();
        for n in &self.planes[1..] {
            total.merge(&n.stats());
        }
        total
    }

    /// Occupied-state dump of every plane, for deadlock debugging.
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        let mut out = String::new();
        for (p, n) in self.planes.iter().enumerate() {
            let d = n.debug_dump();
            if !d.is_empty() {
                out.push_str(&format!("plane {p}\n{d}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::VnetId;
    use crate::topology::{Mesh, Ring, RouterId, Torus};

    fn two_planes(k: u16, planes: usize) -> MultiNetwork<u64> {
        MultiNetwork::new(
            Mesh::square_with_corner_mcs(k),
            NocConfig::scorpio(),
            NonZeroUsize::new(planes).unwrap(),
            0,
        )
    }

    #[test]
    fn steering_partitions_every_address_exactly_once() {
        for planes in 1..=6usize {
            for gran in [0u32, 1, 3, 6] {
                let s = PlaneSteer::new(NonZeroUsize::new(planes).unwrap(), gran);
                let mut per_plane = vec![0usize; planes];
                // A whole number of full rotations so the partition is
                // exactly balanced.
                let span = ((planes as u64) << gran) * 64;
                for addr in 0..span {
                    let p = s.plane_of(addr);
                    assert!(p < planes, "plane out of range");
                    // Exactly once: the same address never maps elsewhere.
                    assert_eq!(s.plane_of(addr), p, "steering must be deterministic");
                    per_plane[p] += 1;
                }
                // Every plane gets an equal share of a full rotation span.
                assert!(
                    per_plane.iter().all(|&n| n as u64 == span / planes as u64),
                    "unbalanced partition {per_plane:?} (planes={planes}, gran={gran})"
                );
                // Addresses within one stripe share a plane.
                let stripe = 1u64 << gran;
                for base in (0..1024u64).step_by(stripe as usize) {
                    let p = s.plane_of(base);
                    for off in 0..stripe {
                        assert_eq!(s.plane_of(base + off), p, "stripe split across planes");
                    }
                }
            }
        }
    }

    #[test]
    fn single_plane_delegates_transparently() {
        let mut multi = two_planes(4, 1);
        let mut single: Network<u64> =
            Network::new(Mesh::square_with_corner_mcs(4), NocConfig::scorpio());
        let src = Endpoint::tile(RouterId(0));
        let (plane, uid) = multi
            .try_inject(src, Packet::request(src, Sid(0), 0, 7))
            .unwrap();
        assert_eq!(plane, 0);
        let uid2 = single
            .try_inject(src, Packet::request(src, Sid(0), 0, 7))
            .unwrap();
        assert_eq!(uid, uid2);
        for _ in 0..200 {
            multi.step();
            single.step();
        }
        // Identical delivery pattern at every endpoint.
        let eps: Vec<Endpoint> = multi.topology().endpoints().collect();
        for ep in eps {
            let m: Vec<_> = multi.eject_heads_plane(0, ep).map(|(s, _)| s).collect();
            let s: Vec<_> = single.eject_heads(ep).map(|(sl, _)| sl).collect();
            assert_eq!(m, s, "divergence at {ep}");
        }
    }

    #[test]
    fn planes_carry_disjoint_address_sets() {
        let mut net = two_planes(4, 2);
        let src = Endpoint::tile(RouterId(5));
        // Even addresses -> plane 0, odd -> plane 1.
        let (p0, _) = net
            .try_inject(src, Packet::request(src, Sid(5), 0, 42))
            .unwrap();
        let (p1, _) = net
            .try_inject(src, Packet::request(src, Sid(5), 1, 43))
            .unwrap();
        assert_eq!((p0, p1), (0, 1));
        for _ in 0..300 {
            net.step();
        }
        let far = Endpoint::tile(RouterId(10));
        let heads0: Vec<u64> = net
            .eject_heads_plane(0, far)
            .map(|(_, f)| f.packet.payload)
            .collect();
        let heads1: Vec<u64> = net
            .eject_heads_plane(1, far)
            .map(|(_, f)| f.packet.payload)
            .collect();
        assert_eq!(heads0, vec![42]);
        assert_eq!(heads1, vec![43]);
    }

    #[test]
    fn idle_planes_advance_their_clock() {
        let mut net = two_planes(3, 4);
        let src = Endpoint::tile(RouterId(0));
        // Only plane 2 carries traffic.
        net.try_inject(src, Packet::request(src, Sid(0), 0, 2))
            .unwrap();
        for _ in 0..50 {
            net.step();
        }
        // Lockstep clocks despite three planes being skipped throughout.
        for p in 0..4 {
            assert_eq!(net.plane(p).cycle().as_u64(), 50, "plane {p} clock");
        }
        assert!(net.plane(2).stats().delivered_packets.get() == 0);
        let dst = Endpoint::tile(RouterId(8));
        assert!(net.eject_heads_plane(2, dst).next().is_some());
    }

    #[test]
    fn merged_stats_sum_over_planes() {
        let mut net = two_planes(4, 2);
        let src = Endpoint::tile(RouterId(0));
        for addr in 0..4u64 {
            net.try_inject(src, Packet::request(src, Sid(0), addr as u16, addr))
                .unwrap();
        }
        assert_eq!(net.stats().injected_packets.get(), 4);
        assert_eq!(net.plane(0).stats().injected_packets.get(), 2);
        assert_eq!(net.plane(1).stats().injected_packets.get(), 2);
        let eps: Vec<Endpoint> = net.topology().endpoints().collect();
        for _ in 0..500 {
            for &ep in &eps {
                for p in 0..2 {
                    let slots: Vec<EjectSlot> =
                        net.eject_heads_plane(p, ep).map(|(s, _)| s).collect();
                    for s in slots {
                        net.eject_take_plane(p, ep, s);
                    }
                }
            }
            net.step();
            if net.is_drained() {
                break;
            }
        }
        assert!(net.is_drained());
        // 19 copies per broadcast on the 4x4 + corner-MC fabric.
        assert_eq!(net.stats().delivered_packets.get(), 4 * 19);
    }

    #[test]
    fn unordered_broadcast_steers_and_drains_on_all_fabrics() {
        for topo in [
            Topology::from(Mesh::square_with_corner_mcs(4)),
            Topology::from(Torus::square_with_corner_mcs(4)),
            Topology::from(Ring::with_spread_mcs(16, 4)),
        ] {
            let mut cfg = NocConfig::scorpio();
            cfg.vnets[0].ordered = false;
            let mut net: MultiNetwork<u64> =
                MultiNetwork::new(topo.clone(), cfg, NonZeroUsize::new(3).unwrap(), 0);
            let src = Endpoint::tile(RouterId(2));
            for addr in 0..6u64 {
                net.try_inject(src, Packet::broadcast_unordered(VnetId(0), src, addr))
                    .unwrap();
            }
            let eps: Vec<Endpoint> = net.topology().endpoints().collect();
            for _ in 0..800 {
                for &ep in &eps {
                    for p in 0..3 {
                        let slots: Vec<EjectSlot> =
                            net.eject_heads_plane(p, ep).map(|(s, _)| s).collect();
                        for s in slots {
                            net.eject_take_plane(p, ep, s);
                        }
                    }
                }
                net.step();
                if net.is_drained() {
                    break;
                }
            }
            assert!(net.is_drained(), "{} wedged", topo.label());
            assert_eq!(net.stats().delivered_packets.get(), 6 * 19);
        }
    }

    #[test]
    #[should_panic(expected = "interleave shift out of range")]
    fn oversized_interleave_panics() {
        let _ = PlaneSteer::new(NonZeroUsize::new(2).unwrap(), 64);
    }
}
